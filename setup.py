"""Setup shim for environments without the ``wheel`` package.

The offline evaluation environment ships setuptools 65 without ``wheel``,
which breaks PEP 660 editable installs; keeping a ``setup.py`` lets
``pip install -e .`` fall back to the legacy develop-mode path.
"""

from setuptools import setup

setup()
