"""Command-line interface: run workloads and comparisons without writing code.

Usage (installed as ``python -m repro``)::

    python -m repro datasets
    python -m repro profiles
    python -m repro run --system GraFBoost --algorithm bfs --dataset kron28
    python -m repro compare --dataset wdc --algorithms pagerank,bfs \\
        --systems GraFBoost,GraFSoft,FlashGraph,X-Stream

``run`` executes one (system, algorithm, dataset) cell and prints the
metrics the paper reports; ``compare`` prints a figure-style matrix with
times normalized to GraFSoft.
"""

from __future__ import annotations

import argparse
import sys

from repro.engine.modes import MODES as EXECUTION_MODES
from repro.flash.device import FlashError
from repro.flash.faults import CrashPlan, FaultPlan
from repro.graph.datasets import DATASETS, DEFAULT_SCALE
from repro.harness import (
    ALGORITHMS,
    BASELINE_SYSTEMS,
    GRAFBOOST_FAMILY,
    load_dataset,
    results_by,
    run_cell,
    run_matrix,
)
from repro.perf.profiles import (
    GRAFBOOST,
    GRAFBOOST2,
    GRAFSOFT,
    SERVER_SSD_ARRAY,
    SINGLE_SSD_SERVER,
)
from repro.perf.report import (
    format_table,
    human_bytes,
    human_seconds,
    mode_trace_summary,
    superstep_timeline,
    wear_rows,
)

ALL_SYSTEMS = list(GRAFBOOST_FAMILY) + list(BASELINE_SYSTEMS)


def _parse_scale(text: str) -> float:
    value = float(text)
    if not 0 < value <= 1:
        raise argparse.ArgumentTypeError(f"scale must be in (0, 1], got {text}")
    return value


def _parse_faults(text: str) -> FaultPlan:
    try:
        return FaultPlan.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _parse_crashes(text: str) -> CrashPlan:
    try:
        return CrashPlan.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraFBoost reproduction: external graph analytics "
                    "on (simulated) accelerated flash storage.")
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser("datasets", help="list the Table I datasets")
    datasets.add_argument("--scale", type=_parse_scale, default=DEFAULT_SCALE)

    sub.add_parser("profiles", help="list the hardware profiles (§V platforms)")

    run = sub.add_parser("run", help="run one system on one algorithm")
    run.add_argument("--system", choices=ALL_SYSTEMS, default="GraFBoost")
    run.add_argument("--algorithm", choices=list(ALGORITHMS), default="bfs")
    run.add_argument("--dataset", choices=sorted(DATASETS), default="kron28")
    run.add_argument("--scale", type=_parse_scale, default=DEFAULT_SCALE)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--timeline", action="store_true",
                     help="print the per-superstep breakdown")
    run.add_argument("--faults", type=_parse_faults, default=None,
                     metavar="SPEC",
                     help="seeded fault-injection plan for the flash device, "
                          "e.g. seed=3,ber=5e-5,pfail=1e-4 (GraFBoost-family "
                          "systems only)")
    run.add_argument("--crash", type=_parse_crashes, default=None,
                     metavar="SPEC", dest="crashes",
                     help="seeded power-loss plan, e.g. seed=3,ops=5 or "
                          "at=120/4000/9000; each crash kills the stack "
                          "mid-run, which then remounts and resumes from "
                          "the latest checkpoint (pagerank/bfs on "
                          "GraFBoost-family systems)")
    run.add_argument("--checkpoint-every", type=int, default=None,
                     metavar="N",
                     help="checkpoint engine state every N supersteps "
                          "(default: 4 when --crash is given, else off)")
    run.add_argument("--sanitize", action="store_true",
                     help="attach FlashSan, the runtime flash-invariant "
                          "sanitizer, to the simulated device (GraFBoost-"
                          "family systems; equivalent to REPRO_SANITIZE=1)")
    run.add_argument("--workers", type=int, default=None, metavar="N",
                     help="sort-reduce worker processes for the GraFBoost-"
                          "family engines (default: REPRO_WORKERS or 1); "
                          "results and simulated time are bit-identical "
                          "for any N")
    run.add_argument("--mode", choices=list(EXECUTION_MODES), default=None,
                     help="engine execution mode for the GraFBoost-family "
                          "systems (default: REPRO_MODE or sortreduce); "
                          "adaptive picks per superstep and reports the "
                          "decision trace")

    serve = sub.add_parser(
        "serve",
        help="drive a multi-tenant service workload (analytics jobs + "
             "point queries) and print the deterministic scheduler trace")
    serve.add_argument("--system", choices=list(GRAFBOOST_FAMILY),
                       default="GraFBoost")
    serve.add_argument("--dataset", choices=sorted(DATASETS), default="kron28")
    serve.add_argument("--scale", type=_parse_scale, default=DEFAULT_SCALE)
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument("--job", action="append", dest="jobs", metavar="SPEC",
                       help="submit one job: tenant:kind[:k=v,...][@round], "
                            "e.g. t0:pagerank:iters=2, "
                            "t1:neighborhood:v=5,depth=2, "
                            "t0:path:src=0,dst=9, "
                            "t1:vstate:ref=svc-1,v=0+3 (repeatable); "
                            "deadline=N expires a job N rounds after "
                            "arrival, retries=N caps its retry budget, and "
                            "tenant:cancel:ref=svc-1@round tears a job down")
    serve.add_argument("--demo", action="store_true",
                       help="submit the built-in two-tenant demo workload "
                            "(2 analytics runs, 6 point queries, 1 rejected "
                            "submission)")
    serve.add_argument("--quota", action="append", dest="quotas",
                       metavar="TENANT=R/Q/P",
                       help="per-tenant quota: max running/queued analytics "
                            "runs and outstanding point queries, e.g. "
                            "t0=1/0/8 (repeatable)")
    serve.add_argument("--faults", type=_parse_faults, default=None,
                       metavar="SPEC",
                       help="seeded fault-injection plan (as in run)")
    serve.add_argument("--crash", type=_parse_crashes, default=None,
                       metavar="SPEC", dest="crashes",
                       help="seeded power-loss plan; job state and engine "
                            "checkpoints are journaled on flash, so the "
                            "service recovers with a bit-identical trace")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="sort-reduce worker processes (trace is "
                            "bit-identical for any N)")
    serve.add_argument("--mode", choices=list(EXECUTION_MODES), default=None,
                       help="engine execution mode for the analytics jobs")

    compare = sub.add_parser("compare", help="run a figure-style matrix")
    compare.add_argument("--dataset", choices=sorted(DATASETS), default="kron28")
    compare.add_argument("--systems", default="GraFBoost,GraFBoost2,GraFSoft")
    compare.add_argument("--algorithms", default="pagerank,bfs")
    compare.add_argument("--scale", type=_parse_scale, default=DEFAULT_SCALE)
    compare.add_argument("--seed", type=int, default=1)
    return parser


def cmd_datasets(args) -> int:
    rows = []
    for name, dataset in DATASETS.items():
        rows.append([
            name,
            f"{dataset.paper_nodes:,}",
            f"{dataset.paper_edges:,}",
            dataset.paper_edgefactor,
            f"{dataset.scaled_nodes(args.scale):,}",
            f"{dataset.scaled_edges(args.scale):,}",
        ])
    print(format_table(
        ["name", "paper nodes", "paper edges", "edgefactor",
         f"nodes @{args.scale:g}", f"edges @{args.scale:g}"],
        rows, title="Table I datasets"))
    return 0


def cmd_profiles(_args) -> int:
    rows = []
    for profile in (GRAFBOOST, GRAFBOOST2, GRAFSOFT, SERVER_SSD_ARRAY,
                    SINGLE_SSD_SERVER):
        rows.append([
            profile.name,
            human_bytes(profile.dram_capacity),
            f"{profile.flash_read_bw / 2**30:.1f}/{profile.flash_write_bw / 2**30:.1f} GB/s",
            profile.cpu_threads,
            "yes" if profile.has_accelerator else "no",
        ])
    print(format_table(
        ["profile", "DRAM", "flash r/w", "threads", "accelerator"],
        rows, title="Hardware profiles (§V platforms)"))
    return 0


def cmd_run(args) -> int:
    graph = load_dataset(args.dataset, args.scale, seed=args.seed)
    print(f"{args.dataset} @ scale {args.scale:g}: "
          f"{graph.num_vertices:,} vertices, {graph.num_edges:,} edges")
    # NB: --timeline is handled *after* all flag validation and goes through
    # run_cell like every other invocation, so it composes with --faults/
    # --crash/--sanitize/--checkpoint-every instead of silently dropping
    # them (it used to return early through a separate bare-engine path).
    if args.timeline and args.system not in GRAFBOOST_FAMILY:
        print(f"--timeline only applies to the simulated flash stacks "
              f"({', '.join(GRAFBOOST_FAMILY)}), not {args.system}",
              file=sys.stderr)
        return 2
    if args.faults is not None and args.system not in GRAFBOOST_FAMILY:
        print(f"--faults only applies to the simulated flash stacks "
              f"({', '.join(GRAFBOOST_FAMILY)}), not {args.system}",
              file=sys.stderr)
        return 2
    if args.crashes is not None:
        if args.system not in GRAFBOOST_FAMILY:
            print(f"--crash only applies to the simulated flash stacks "
                  f"({', '.join(GRAFBOOST_FAMILY)}), not {args.system}",
                  file=sys.stderr)
            return 2
        if args.algorithm not in ("pagerank", "bfs"):
            print("--crash supports pagerank and bfs (multi-phase "
                  "algorithms have no checkpoint protocol)", file=sys.stderr)
            return 2
    if args.sanitize and args.system not in GRAFBOOST_FAMILY:
        print(f"--sanitize only applies to the simulated flash stacks "
              f"({', '.join(GRAFBOOST_FAMILY)}), not {args.system}",
              file=sys.stderr)
        return 2
    if args.mode is not None and args.system not in GRAFBOOST_FAMILY:
        print(f"--mode only applies to the simulated flash stacks "
              f"({', '.join(GRAFBOOST_FAMILY)}), not {args.system}",
              file=sys.stderr)
        return 2
    checkpoint_every = args.checkpoint_every
    if checkpoint_every is None:
        checkpoint_every = 4 if args.crashes is not None else 0
    try:
        cell = run_cell(args.system, graph, args.algorithm, scale=args.scale,
                        dataset=args.dataset, faults=args.faults,
                        crashes=args.crashes,
                        checkpoint_every=checkpoint_every,
                        sanitize=True if args.sanitize else None,
                        workers=args.workers, mode=args.mode)
    except FlashError as e:
        print(f"{args.system} {args.algorithm}: aborted on "
              f"{type(e).__name__}: {e}", file=sys.stderr)
        return 1
    if not cell.completed:
        print(f"{args.system} {args.algorithm}: DNF — {cell.dnf_reason}")
        return 1
    if args.timeline:
        print(superstep_timeline(cell.superstep_metrics or []))
        print(f"total simulated time: {human_seconds(cell.elapsed_s)}")
    rows = [
        ["system", cell.system],
        ["algorithm", cell.algorithm],
        ["simulated time", human_seconds(cell.elapsed_s)],
        ["supersteps", cell.supersteps],
        ["traversed edges", f"{cell.traversed_edges:,}"],
        ["MTEPS", f"{cell.mteps:.2f}"],
        ["flash traffic", human_bytes(cell.flash_bytes)],
        ["peak memory", human_bytes(cell.memory_bytes)],
    ]
    if cell.mode_trace:
        rows.append(["mode trace",
                     mode_trace_summary(cell.mode_trace, cell.mode_phases)])
    if args.faults is not None:
        rows += [
            ["corrected bit errors", f"{cell.corrected_bit_errors:,}"],
            ["read retries", f"{cell.read_retries:,}"],
            ["checksum recoveries", f"{cell.checksum_recoveries:,}"],
            ["retired blocks", f"{cell.retired_blocks:,}"],
        ]
    if args.crashes is not None:
        rows += [
            ["power losses", f"{cell.power_losses:,}"],
            ["torn writes", f"{cell.torn_writes:,}"],
            ["remounts", f"{cell.remounts:,}"],
        ]
    rows += [[name, value] for name, value
             in wear_rows(cell.wear, cell.lifetime_writes_remaining)]
    print(format_table(["metric", "value"], rows))
    return 0


def cmd_serve(args) -> int:
    """Drive a multi-tenant service workload and print the scheduler trace."""
    from repro.harness import run_service_cell
    from repro.service import TenantQuota, demo_quotas, demo_workload

    jobs = list(args.jobs or [])
    quotas: dict[str, TenantQuota] = {}
    if args.demo:
        jobs = demo_workload() + jobs
        quotas.update(demo_quotas())
    if not jobs:
        print("serve needs at least one --job SPEC (or --demo)",
              file=sys.stderr)
        return 2
    for quota_spec in args.quotas or []:
        try:
            tenant, quota = _parse_quota(quota_spec)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        quotas[tenant] = quota
    try:
        cell = run_service_cell(args.system, load_dataset(
                                    args.dataset, args.scale, seed=args.seed),
                                jobs, scale=args.scale,
                                quotas=quotas or None, dataset=args.dataset,
                                faults=args.faults, crashes=args.crashes,
                                workers=args.workers, mode=args.mode)
    except (FlashError, ValueError) as e:
        print(f"serve: aborted on {type(e).__name__}: {e}", file=sys.stderr)
        return 1
    print("Scheduler trace")
    for line in cell.trace:
        print(f"  {line}")
    rows = [
        ["system", cell.system],
        ["jobs done", cell.jobs_done],
        ["jobs rejected", cell.jobs_rejected],
        ["jobs failed", cell.jobs_failed],
        ["scheduler rounds", cell.rounds],
        ["simulated time", human_seconds(cell.elapsed_s)],
        ["flash traffic", human_bytes(cell.flash_bytes)],
    ]
    if cell.jobs_quarantined:
        rows.append(["jobs quarantined", cell.jobs_quarantined])
    if cell.jobs_cancelled:
        rows.append(["jobs cancelled", cell.jobs_cancelled])
    if cell.retries:
        rows.append(["job retries", cell.retries])
    if cell.failures:
        rows.append(["flash failures", cell.failures])
    if cell.degraded_rejections:
        rows.append(["degraded rejections", cell.degraded_rejections])
    if args.crashes is not None:
        rows += [
            ["power losses", f"{cell.power_losses:,}"],
            ["remounts", f"{cell.remounts:,}"],
        ]
    rows += [[name, value] for name, value
             in wear_rows(cell.wear, cell.lifetime_writes_remaining)]
    print(format_table(["metric", "value"], rows))
    return 0


def _parse_quota(text: str):
    """``tenant=running/queued/point`` → (tenant, TenantQuota)."""
    from repro.service import TenantQuota

    tenant, sep, body = text.partition("=")
    parts = body.split("/")
    if not sep or not tenant or len(parts) != 3:
        raise ValueError(f"bad quota {text!r}; want tenant=running/queued/point")
    try:
        running, queued, point = (int(p) for p in parts)
    except ValueError:
        raise ValueError(f"bad quota {text!r}; limits must be integers") from None
    return tenant, TenantQuota(max_running=running, max_queued=queued,
                               max_point=point)


def cmd_compare(args) -> int:
    systems = [s.strip() for s in args.systems.split(",") if s.strip()]
    algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
    unknown = [s for s in systems if s not in ALL_SYSTEMS]
    if unknown:
        print(f"unknown systems: {', '.join(unknown)} "
              f"(known: {', '.join(ALL_SYSTEMS)})", file=sys.stderr)
        return 2
    unknown = [a for a in algorithms if a not in ALGORITHMS]
    if unknown:
        print(f"unknown algorithms: {', '.join(unknown)} "
              f"(known: {', '.join(ALGORITHMS)})", file=sys.stderr)
        return 2
    results = run_matrix(systems, algorithms, args.dataset, scale=args.scale,
                         seed=args.seed)
    rows = []
    for algorithm in algorithms:
        by_system = results_by(results, algorithm)
        row = [algorithm]
        for system in systems:
            cell = by_system[system]
            row.append(f"{cell.elapsed_s * 1000:.2f} ms" if cell.completed
                       else "DNF")
        rows.append(row)
    print(format_table(["algorithm"] + systems, rows,
                       title=f"{args.dataset} @ scale {args.scale:g} "
                             "(simulated time; lower is faster)"))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": cmd_datasets,
        "profiles": cmd_profiles,
        "run": cmd_run,
        "serve": cmd_serve,
        "compare": cmd_compare,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
