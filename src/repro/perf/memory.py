"""DRAM budget tracking for the simulated engines.

Every engine declares its in-memory data structures against a
:class:`MemoryTracker` sized from the active hardware profile.  Two policies
exist, mirroring how real systems behave when DRAM runs out:

* ``strict`` — allocation beyond the budget raises
  :class:`MemoryBudgetExceeded`.  Used by engines that refuse to run (the
  paper reports GraphLab and FlashGraph as DNF when their working set does
  not fit).
* ``swap`` — allocation beyond the budget succeeds but the overflow is
  recorded; the cost model then charges swap-thrashing I/O for accesses to
  the overflowed fraction.  This is how the paper's Fig 13 shows FlashGraph
  degrading "sharply" before eventually being stopped manually.
"""

from __future__ import annotations


class MemoryBudgetExceeded(RuntimeError):
    """Raised by a strict tracker when an allocation would exceed the budget."""

    def __init__(self, requested: int, in_use: int, budget: int, label: str):
        self.requested = requested
        self.in_use = in_use
        self.budget = budget
        self.label = label
        super().__init__(
            f"allocation {label!r} of {requested} B exceeds DRAM budget: "
            f"{in_use} B in use of {budget} B"
        )


class MemoryTracker:
    """Tracks labelled allocations against a DRAM budget.

    >>> mem = MemoryTracker(budget=1000)
    >>> mem.allocate("vertex-data", 600)
    >>> mem.in_use
    600
    >>> mem.free("vertex-data")
    >>> mem.in_use
    0
    """

    def __init__(self, budget: int, policy: str = "strict"):
        if policy not in ("strict", "swap"):
            raise ValueError(f"unknown memory policy {policy!r}")
        if budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        self.budget = budget
        self.policy = policy
        self._allocations: dict[str, int] = {}
        self.peak = 0

    @property
    def in_use(self) -> int:
        return sum(self._allocations.values())

    @property
    def available(self) -> int:
        return max(0, self.budget - self.in_use)

    @property
    def overflow(self) -> int:
        """Bytes allocated beyond the budget (only nonzero under ``swap``)."""
        return max(0, self.in_use - self.budget)

    @property
    def overflow_fraction(self) -> float:
        """Fraction of allocated bytes that do not fit in DRAM."""
        in_use = self.in_use
        if in_use == 0:
            return 0.0
        return self.overflow / in_use

    def allocate(self, label: str, nbytes: int) -> None:
        """Record an allocation; grows the existing allocation if the label exists."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        new_total = self.in_use + nbytes
        if self.policy == "strict" and new_total > self.budget:
            raise MemoryBudgetExceeded(nbytes, self.in_use, self.budget, label)
        self._allocations[label] = self._allocations.get(label, 0) + nbytes
        self.peak = max(self.peak, new_total)

    def free(self, label: str) -> None:
        """Release an allocation; freeing an unknown label is an error."""
        if label not in self._allocations:
            raise KeyError(f"no allocation named {label!r}")
        del self._allocations[label]

    def resize(self, label: str, nbytes: int) -> None:
        """Set the allocation for ``label`` to exactly ``nbytes``."""
        if label in self._allocations:
            del self._allocations[label]
        self.allocate(label, nbytes)

    def allocation(self, label: str) -> int:
        return self._allocations.get(label, 0)

    def labels(self) -> list[str]:
        return sorted(self._allocations)
