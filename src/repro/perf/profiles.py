"""Hardware profiles matching the paper's evaluation platforms (§V).

A :class:`HardwareProfile` bundles every device constant the cost model needs:
flash bandwidth/latency, DRAM bandwidth and capacity, CPU thread count and
per-thread stream-processing throughputs, accelerator clock, and the power
figures used in §V-C.6.

The concrete profiles below encode the platforms of the paper:

* :data:`GRAFBOOST` — the BlueDBM prototype: Xilinx VC707 with 1 GB DRAM at
  10 GB/s and two 512 GB raw flash cards (1.2 GB/s read / 0.5 GB/s write
  each); the host is a 24-core Xeon X5670 that stays nearly idle.
* :data:`GRAFBOOST2` — the projected system with 20 GB/s DRAM (§V-C.3: the
  only difference is double DRAM bandwidth, halving in-memory sort time).
* :data:`GRAFSOFT` / :data:`SERVER_SSD_ARRAY` — the 32-core Xeon E5-2690
  server with 128 GB DRAM and five PCIe SSDs totalling 6 GB/s of sequential
  read bandwidth.
* :data:`SINGLE_SSD_SERVER` — the same server restricted to one SSD, used for
  the small-graph evaluation (Fig 15).

Scaled-down experiments shrink DRAM budgets together with the dataset via
:meth:`HardwareProfile.scaled`, so that "memory = 150% of vertex data"
(Fig 13's x-axis) means the same thing at every scale.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB


@dataclass(frozen=True)
class HardwareProfile:
    """Device constants for one evaluation platform."""

    name: str

    # Host DRAM available to the graph engine (bytes).
    dram_capacity: int
    # DRAM bandwidth seen by the sorter (host DRAM for software, on-board
    # SODIMM for the accelerator), bytes/s.
    dram_bw: float

    # Flash / SSD array.
    flash_capacity: int
    flash_read_bw: float          # aggregate sequential read, bytes/s
    flash_write_bw: float         # aggregate sequential write, bytes/s
    flash_read_latency_s: float   # per-page access latency
    flash_write_latency_s: float
    flash_erase_latency_s: float
    flash_page_bytes: int = 8 * KB
    flash_block_pages: int = 256  # erase granularity: block_pages * page_bytes
    # Per-operation overhead a commodity FTL adds (lookup, queueing); zero
    # effective for raw AOFFS devices, which bypass the FTL (§IV-A).
    ftl_overhead_s: float = 40e-6

    # CPU.
    cpu_threads: int = 32
    # Throughput of one thread running an in-memory sort over KV records.
    cpu_sort_bw_per_thread: float = 150 * MB
    # Throughput of one 2-to-1 software merge(-reduce) thread.  A software
    # 16-to-1 merger is a tree of 15 such threads emitting ~800 MB/s (§IV-F).
    cpu_merge_bw_per_thread: float = 800 * MB
    # Throughput of one thread streaming edges through an edge program.
    cpu_stream_bw_per_thread: float = 600 * MB
    # Throughput of one thread applying random in-memory updates (hash/array
    # writes with poor locality) — much slower than streaming.
    cpu_scatter_bw_per_thread: float = 120 * MB

    # Hardware sort-reduce accelerator (absent for pure-software profiles).
    has_accelerator: bool = False
    accel_clock_hz: float = 125e6
    accel_word_bytes: int = 32    # 256-bit datapath words
    merge_fanout: int = 16

    # Power model inputs (§V-C.6).  ``host_cores`` is the physical core
    # count of the host machine, which can differ from ``cpu_threads`` (the
    # threads the *engine* is allowed to use — GraFBoost's host runs only
    # two threads on a 24-core Xeon).
    host_cores: int = 32
    host_idle_w: float = 110.0
    host_busy_w: float = 380.0
    accel_board_w: float = 50.0
    ssd_unit_w: float = 6.0
    ssd_count: int = 5

    def scaled(self, factor: float) -> "HardwareProfile":
        """Return a copy with capacities *and* per-operation latencies scaled.

        Bandwidths and thread counts keep paper values while DRAM/flash
        capacity shrink with the dataset.  Per-op latencies shrink by the
        same factor: a scaled run performs the same *number* of operations
        as the paper-scale run it stands for, but each moves ``factor``
        times fewer bytes — scaling the fixed per-op cost identically keeps
        the latency:transfer ratio (and therefore every random-vs-sequential
        and crossover result) where the paper has it.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return dataclasses.replace(
            self,
            dram_capacity=max(1, int(self.dram_capacity * factor)),
            flash_capacity=max(1, int(self.flash_capacity * factor)),
            flash_read_latency_s=self.flash_read_latency_s * factor,
            flash_write_latency_s=self.flash_write_latency_s * factor,
            flash_erase_latency_s=self.flash_erase_latency_s * factor,
            ftl_overhead_s=self.ftl_overhead_s * factor,
        )

    def with_dram(self, dram_capacity: int) -> "HardwareProfile":
        """Return a copy with a different DRAM budget (Fig 13 memory sweep)."""
        return dataclasses.replace(self, dram_capacity=dram_capacity)

    @property
    def accel_bw(self) -> float:
        """Peak accelerator throughput: one packed word per cycle (§V-C.3)."""
        return self.accel_clock_hz * self.accel_word_bytes

    @property
    def flash_block_bytes(self) -> int:
        return self.flash_block_pages * self.flash_page_bytes


# The BlueDBM-based prototype (§V-C): VC707 + 1 GB 10 GB/s DRAM + two raw
# flash cards.  Host DRAM budget is tiny because sort-reduce runs in-storage;
# the paper reports 2 GB of memory use (Table II).
GRAFBOOST = HardwareProfile(
    name="GraFBoost",
    dram_capacity=2 * GB,
    dram_bw=10 * GB,
    flash_capacity=1 * TB,
    flash_read_bw=2.4 * GB,
    flash_write_bw=1.0 * GB,
    flash_read_latency_s=75e-6,    # raw flash through AOFFS, no FTL overhead
    flash_write_latency_s=300e-6,
    flash_erase_latency_s=3e-3,
    cpu_threads=2,                 # host runs only file management + iterators
    has_accelerator=True,
    host_cores=24,                 # BlueDBM host: 24-core Xeon X5670
    host_idle_w=110.0,
    host_busy_w=380.0,
    ssd_count=0,                   # storage power is in the accel board figure
)

# Projected system with doubled DRAM bandwidth (§V-C.3).
GRAFBOOST2 = dataclasses.replace(GRAFBOOST, name="GraFBoost2", dram_bw=20 * GB)

# The software evaluation server: 32-core Xeon E5-2690, 128 GB DRAM, five
# 512 GB PCIe SSDs with 6 GB/s total sequential read.  GraFSoft itself caps
# its memory use at 16 GB (§I, Table II).
SERVER_SSD_ARRAY = HardwareProfile(
    name="Server-5SSD",
    dram_capacity=128 * GB,
    dram_bw=50 * GB,
    flash_capacity=2.5 * TB,
    flash_read_bw=6.0 * GB,
    flash_write_bw=3.0 * GB,
    flash_read_latency_s=120e-6,   # commodity SSD with FTL
    flash_write_latency_s=400e-6,
    flash_erase_latency_s=4e-3,
    cpu_threads=32,
    has_accelerator=False,
    ssd_count=5,
)

GRAFSOFT = dataclasses.replace(SERVER_SSD_ARRAY, name="GraFSoft", dram_capacity=16 * GB)

# Small-graph evaluation (Fig 15): same server, one SSD, 1.2 GB/s.
SINGLE_SSD_SERVER = dataclasses.replace(
    SERVER_SSD_ARRAY,
    name="Server-1SSD",
    flash_capacity=512 * GB,
    flash_read_bw=1.2 * GB,
    flash_write_bw=0.6 * GB,
    ssd_count=1,
)

_PROFILES = {
    p.name.lower(): p
    for p in (GRAFBOOST, GRAFBOOST2, SERVER_SSD_ARRAY, GRAFSOFT, SINGLE_SSD_SERVER)
}


def profile_by_name(name: str) -> HardwareProfile:
    """Look up a built-in profile by (case-insensitive) name."""
    try:
        return _PROFILES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_PROFILES))
        raise KeyError(f"unknown hardware profile {name!r}; known: {known}") from None
