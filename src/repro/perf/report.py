"""Plain-text table/series formatting for the benchmark harness.

The benchmark files regenerate the paper's tables and figures as text: tables
become aligned rows, figures become series of (x, y) points.  Keeping the
formatting in one place makes every bench print comparable output.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["name", "n"], [["a", 1], ["bb", 22]]))
    name | n
    -----+---
    a    | 1
    bb   | 22
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN marks DNF entries
            return "DNF"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def normalize_series(values: Sequence[float], baseline: float) -> list[float]:
    """Normalize performance values against a baseline time.

    The paper's Fig 12/13a plot *performance* normalized to GraFSoft, i.e.
    ``baseline_time / system_time`` — higher is faster.  DNF entries (NaN or
    non-positive) normalize to 0.0, matching the "x" marks in the figures.
    """
    if baseline <= 0:
        raise ValueError(f"baseline time must be positive, got {baseline}")
    out = []
    for v in values:
        if v is None or v != v or v <= 0:
            out.append(0.0)
        else:
            out.append(baseline / v)
    return out


def superstep_timeline(supersteps, max_rows: int = 20) -> str:
    """Per-superstep breakdown table from a run's SuperstepMetrics list.

    Long runs (the WDC BFS tail has hundreds of supersteps) are sampled
    down to ``max_rows`` evenly spaced rows plus the last one.
    """
    if not supersteps:
        return "(no supersteps)"
    steps = list(supersteps)
    if len(steps) > max_rows:
        stride = len(steps) / (max_rows - 1)
        picked = [steps[int(i * stride)] for i in range(max_rows - 1)]
        picked.append(steps[-1])
        steps = picked
    rows = []
    for s in steps:
        rows.append([
            s.superstep,
            f"{s.activated:,}",
            f"{s.traversed_edges:,}",
            f"{s.update_pairs:,}",
            f"{s.reduced_pairs:,}",
            f"{s.elapsed_s * 1000:.3f}",
            human_bytes(s.flash_bytes),
            getattr(s, "mode", "sortreduce"),
        ])
    return format_table(
        ["step", "active", "edges", "updates", "reduced", "ms", "flash", "mode"],
        rows, title="Per-superstep timeline")


def mode_trace_summary(trace: Sequence[str],
                       phases: Sequence[tuple[str, int]] | None = None) -> str:
    """Run-length-compressed execution-mode trace.

    ``phases`` labels consecutive segments of a multi-phase trace by
    ``(label, length)`` — e.g. betweenness centrality's forward BFS plus its
    backtracing passes — so neither phase silently vanishes from reports.

    >>> mode_trace_summary(["densescan", "densescan", "sortreduce"])
    'densescan x2 -> sortreduce x1'
    >>> mode_trace_summary(["densescan", "sortreduce"],
    ...                    phases=[("forward", 1), ("backtrace", 1)])
    'forward: densescan x1 | backtrace: sortreduce x1'
    """
    if not trace:
        return "(none)"
    if phases:
        if sum(n for _, n in phases) != len(trace):
            raise ValueError(
                f"phase lengths {[n for _, n in phases]} do not cover a "
                f"trace of {len(trace)} supersteps")
        parts = []
        start = 0
        for label, length in phases:
            segment = trace[start:start + length]
            parts.append(f"{label}: {mode_trace_summary(segment)}")
            start += length
        return " | ".join(parts)
    parts = []
    current = trace[0]
    count = 0
    for mode in trace:
        if mode == current:
            count += 1
        else:
            parts.append(f"{current} x{count}")
            current, count = mode, 1
    parts.append(f"{current} x{count}")
    return " -> ".join(parts)


def wear_rows(wear, lifetime_remaining: float) -> list[tuple[str, str]]:
    """Device-wear rows for the CLI's metric tables.

    ``wear`` is a :class:`repro.flash.wear.WearReport` (or None for systems
    without a simulated device — then no rows).  ``lifetime_remaining`` is
    the ``lifetime_writes_remaining`` fraction.
    """
    if wear is None:
        return []
    rows = [
        ("device_bytes_written", human_bytes(wear.bytes_written)),
        ("device_lifetime_left", f"{lifetime_remaining:.1%}"),
        ("wear_evenness", f"{wear.wear_evenness():.3f}"),
    ]
    if wear.bad_blocks:
        rows.append(("bad_blocks", str(wear.bad_blocks)))
    return rows


def default_results_dir() -> str:
    """``benchmarks/results`` under the repository root, regardless of CWD."""
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[3]
    return str(repo_root / "benchmarks" / "results")


def emit_results(name: str, text: str, directory: str | None = None) -> str:
    """Print a benchmark's regenerated table/figure and persist it.

    Benchmarks both print (visible with ``pytest -s``) and write to
    ``benchmarks/results/<name>.txt`` under the repo root — anchored there
    (not CWD) so running benches from any directory lands artifacts in one
    place.  Returns the file path.
    """
    import os

    directory = directory or default_results_dir()
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text.rstrip() + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path


def human_bytes(nbytes: float) -> str:
    """Human-readable byte count (``1536`` → ``'1.5 KB'``)."""
    units = ["B", "KB", "MB", "GB", "TB", "PB"]
    value = float(nbytes)
    for unit in units:
        if abs(value) < 1024 or unit == units[-1]:
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def human_seconds(seconds: float) -> str:
    """Human-readable duration (``90`` → ``'1m30s'``)."""
    if seconds != seconds:
        return "DNF"
    if seconds < 1:
        return f"{seconds * 1000:.1f}ms"
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(seconds, 60)
    if minutes < 60:
        return f"{int(minutes)}m{int(secs)}s"
    hours, minutes = divmod(minutes, 60)
    return f"{int(hours)}h{int(minutes)}m"
