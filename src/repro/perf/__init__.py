"""Performance substrate: simulated clock, hardware profiles, cost and power models.

Every engine in this reproduction (GraFBoost, GraFSoft and the four baseline
systems) runs *functionally* on a simulated flash device, and every storage or
compute operation charges simulated time to a shared :class:`SimClock`.  The
clock plus the active :class:`HardwareProfile` is what turns counted work into
the execution-time and utilization numbers reported by the benchmark harness.
"""

from repro.perf.clock import SimClock, ResourceUsage
from repro.perf.profiles import (
    HardwareProfile,
    GRAFBOOST,
    GRAFBOOST2,
    GRAFSOFT,
    SERVER_SSD_ARRAY,
    SINGLE_SSD_SERVER,
    profile_by_name,
)
from repro.perf.memory import MemoryTracker, MemoryBudgetExceeded
from repro.perf.power import PowerModel, PowerBreakdown
from repro.perf.report import format_table, normalize_series

__all__ = [
    "SimClock",
    "ResourceUsage",
    "HardwareProfile",
    "GRAFBOOST",
    "GRAFBOOST2",
    "GRAFSOFT",
    "SERVER_SSD_ARRAY",
    "SINGLE_SSD_SERVER",
    "profile_by_name",
    "MemoryTracker",
    "MemoryBudgetExceeded",
    "PowerModel",
    "PowerBreakdown",
    "format_table",
    "normalize_series",
]
