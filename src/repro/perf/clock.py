"""Simulated clock with per-resource busy-time and byte accounting.

The clock is the single source of truth for "how long did this run take" in
the reproduction.  Components charge time against named *resources* (``flash``,
``cpu``, ``accel``, ``dram``, ``net``) and optionally record the number of
bytes moved, which lets the reporting layer compute achieved bandwidth and
utilization exactly the way Table II of the paper does.

Two charging modes exist:

* :meth:`SimClock.charge` — serial work; elapsed time advances by the full
  duration.
* :meth:`SimClock.charge_parallel` — overlapped stages (e.g. streaming a merge
  while flash reads are in flight); elapsed time advances by the *maximum*
  duration while each resource still accrues its own busy time.  This mirrors
  the paper's bottleneck analysis in §V-C.3, where sort-reduce throughput is
  ``max(io_time, compute_time)`` per chunk.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Resource names used throughout the reproduction.
FLASH = "flash"
CPU = "cpu"
ACCEL = "accel"
DRAM = "dram"
NET = "net"


@dataclass
class ResourceUsage:
    """Accumulated usage of one named resource."""

    busy_s: float = 0.0
    bytes_moved: int = 0
    ops: int = 0

    def add(self, seconds: float, nbytes: int = 0, ops: int = 1) -> None:
        self.busy_s += seconds
        self.bytes_moved += nbytes
        self.ops += ops


class SimClock:
    """Accumulates simulated elapsed time and per-resource busy time.

    >>> clock = SimClock()
    >>> clock.charge("flash", 0.5, nbytes=1024)
    >>> clock.charge_parallel({"flash": 1.0, "cpu": 0.25})
    >>> clock.elapsed_s
    1.5
    >>> clock.usage["cpu"].busy_s
    0.25
    """

    def __init__(self) -> None:
        self.elapsed_s: float = 0.0
        self.usage: dict[str, ResourceUsage] = {}

    def _usage(self, resource: str) -> ResourceUsage:
        if resource not in self.usage:
            self.usage[resource] = ResourceUsage()
        return self.usage[resource]

    def charge(self, resource: str, seconds: float, nbytes: int = 0, ops: int = 1) -> None:
        """Charge serial work: elapsed time advances by ``seconds``."""
        if seconds < 0:
            raise ValueError(f"negative charge: {seconds}")
        self._usage(resource).add(seconds, nbytes, ops)
        self.elapsed_s += seconds

    def charge_parallel(self, charges: dict[str, float], nbytes: dict[str, int] | None = None) -> None:
        """Charge overlapped work: elapsed advances by ``max(charges.values())``.

        Each resource accrues its own busy time, so utilization of the
        non-bottleneck resources drops below 100% — exactly how the paper's
        Table II shows GraFBoost's CPU at 200% of 3200% while flash is
        saturated.
        """
        if not charges:
            return
        nbytes = nbytes or {}
        for resource, seconds in charges.items():
            if seconds < 0:
                raise ValueError(f"negative charge for {resource}: {seconds}")
            self._usage(resource).add(seconds, nbytes.get(resource, 0))
        self.elapsed_s += max(charges.values())

    def charge_background(self, resource: str, seconds: float, nbytes: int = 0) -> None:
        """Charge work fully hidden behind other activity (e.g. NAND block
        erases pipelined by the storage device): busy time accrues, elapsed
        time does not advance."""
        if seconds < 0:
            raise ValueError(f"negative charge: {seconds}")
        self._usage(resource).add(seconds, nbytes)

    def charge_pool(self, resource: str, work_seconds: float, parallelism: float,
                    nbytes: int = 0) -> None:
        """Charge work spread over a pool of units (threads, sorter instances).

        Busy time accrues the full ``work_seconds`` (unit-seconds, so
        utilization reports busy-unit counts the way Table II reports CPU%),
        while elapsed time advances by ``work_seconds / parallelism``.
        """
        if work_seconds < 0:
            raise ValueError(f"negative charge: {work_seconds}")
        if parallelism <= 0:
            raise ValueError(f"parallelism must be positive, got {parallelism}")
        self._usage(resource).add(work_seconds, nbytes)
        self.elapsed_s += work_seconds / parallelism

    def busy_s(self, resource: str) -> float:
        """Total busy seconds accrued by ``resource`` (0.0 if never charged)."""
        usage = self.usage.get(resource)
        return usage.busy_s if usage else 0.0

    def bytes_moved(self, resource: str) -> int:
        """Total bytes recorded against ``resource``."""
        usage = self.usage.get(resource)
        return usage.bytes_moved if usage else 0

    def utilization(self, resource: str) -> float:
        """Fraction of elapsed time ``resource`` was busy (may exceed 1.0 for
        multi-unit resources like a thread pool if callers charge per-unit)."""
        if self.elapsed_s == 0:
            return 0.0
        return self.busy_s(resource) / self.elapsed_s

    def bandwidth(self, resource: str) -> float:
        """Achieved average bandwidth in bytes/second over the full run."""
        if self.elapsed_s == 0:
            return 0.0
        return self.bytes_moved(resource) / self.elapsed_s

    def checkpoint(self) -> "ClockCheckpoint":
        """Snapshot for measuring a sub-interval (e.g. a single superstep)."""
        return ClockCheckpoint(self, self.elapsed_s, {k: v.busy_s for k, v in self.usage.items()})

    def reset(self) -> None:
        self.elapsed_s = 0.0
        self.usage = {}


@dataclass
class ClockCheckpoint:
    """Delta-measurement helper returned by :meth:`SimClock.checkpoint`."""

    clock: SimClock
    start_elapsed: float
    start_busy: dict[str, float] = field(default_factory=dict)

    @property
    def elapsed_s(self) -> float:
        return self.clock.elapsed_s - self.start_elapsed

    def busy_s(self, resource: str) -> float:
        return self.clock.busy_s(resource) - self.start_busy.get(resource, 0.0)
