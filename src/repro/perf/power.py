"""Component-level power model reproducing §V-C.6.

The paper reports:

* GraFBoost prototype: ~160 W total, of which ~110 W is the near-idle host
  Xeon; the accelerated storage device accounts for the rest (~50 W).
* Replacing the host with a 30 W wimpy/embedded server halves total power to
  ~80 W without performance loss, because the host does almost no work.
* The FlashGraph setup draws over 410 W: the host under full 3200% CPU load
  plus five SSDs at under 6 W each.

The model composes exactly those terms: host power interpolated between idle
and busy by CPU utilization, the accelerator board when present, and the SSD
array.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.profiles import HardwareProfile


@dataclass(frozen=True)
class PowerBreakdown:
    """Average power draw of one run, by component (watts)."""

    host_w: float
    accelerator_w: float
    storage_w: float

    @property
    def total_w(self) -> float:
        return self.host_w + self.accelerator_w + self.storage_w

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("host", self.host_w),
            ("accelerator", self.accelerator_w),
            ("storage", self.storage_w),
            ("total", self.total_w),
        ]


class PowerModel:
    """Turns a run's CPU utilization into an average power figure.

    ``cpu_utilization`` is expressed the way the paper's Table II reports it:
    as a multiple of one core (e.g. 3200% = 32.0 busy cores).
    """

    def __init__(self, profile: HardwareProfile):
        self.profile = profile

    def average_power(self, cpu_utilization: float, host_idle_w: float | None = None) -> PowerBreakdown:
        """Average power for a run with the given busy-core count.

        ``host_idle_w`` overrides the host's idle floor, which models the
        paper's "wimpy 30 W server" projection for the accelerated system.
        """
        profile = self.profile
        idle = profile.host_idle_w if host_idle_w is None else host_idle_w
        busy_fraction = min(1.0, max(0.0, cpu_utilization / profile.host_cores))
        # Scale the *dynamic* range of the host with load; the idle floor is
        # whatever platform the accelerator is plugged into.
        host = idle + (profile.host_busy_w - profile.host_idle_w) * busy_fraction
        accel = profile.accel_board_w if profile.has_accelerator else 0.0
        storage = profile.ssd_unit_w * profile.ssd_count
        return PowerBreakdown(host_w=host, accelerator_w=accel, storage_w=storage)
