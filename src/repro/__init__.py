"""GraFBoost reproduction: external graph analytics on accelerated flash.

A full-system, simulation-backed reproduction of *GraFBoost: Using
Accelerated Flash Storage for External Graph Analytics* (ISCA 2018):

* the **sort-reduce** method and accelerator model (:mod:`repro.core`),
* a raw-flash device simulator, FTL-backed SSD, and the paper's Append-Only
  Flash File System (:mod:`repro.flash`),
* the on-flash graph format, Graph500/web-crawl dataset synthesizers, and
  the lazily-overlaid vertex array (:mod:`repro.graph`),
* the push-style vertex-centric engine with lazy active-vertex evaluation
  and bloom-filter active-list generation (:mod:`repro.engine`),
* BFS, PageRank, betweenness centrality, SSSP and label propagation
  (:mod:`repro.algorithms`),
* re-implementations of the compared systems — GraphLab, FlashGraph,
  X-Stream, GraphChi (:mod:`repro.baselines`),
* and the simulated clock / hardware-profile / power models that turn
  counted work into the paper's evaluation numbers (:mod:`repro.perf`).

Quickstart::

    from repro.engine.config import make_system
    from repro.graph.datasets import build_graph, DEFAULT_SCALE
    from repro.algorithms.bfs import run_bfs

    graph = build_graph("kron28", DEFAULT_SCALE)
    system = make_system("grafboost", DEFAULT_SCALE,
                         num_vertices_hint=graph.num_vertices)
    flash_graph = system.load_graph(graph)
    engine = system.engine_for(flash_graph, graph.num_vertices)
    result = run_bfs(engine, root=0)
    print(result.num_supersteps, result.mteps, "MTEPS")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
