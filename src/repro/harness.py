"""Evaluation harness: runs (system × algorithm × dataset) cells and emits
the rows behind every table and figure of the paper's §V.

The benchmark files under ``benchmarks/`` are thin wrappers over this
module: they pick the workload matrix of one figure, run it, and print the
same rows/series the paper reports.  Keeping the logic here makes the same
sweeps scriptable from user code and testable.

Systems are addressed by the paper's names:

* ``GraFBoost`` / ``GraFBoost2`` / ``GraFSoft`` — the engines of this
  library (fully functional through the simulated flash stack).
* ``GraphLab`` / ``GraphLab5`` / ``FlashGraph`` / ``X-Stream`` /
  ``GraphChi`` — the baseline strategy models.

Every run returns a :class:`WorkloadResult`; a DNF (out of memory, id-space
or patience cutoff) carries ``elapsed_s = NaN`` exactly like the missing
bars and ``*`` marks in the figures.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.algorithms.bc import run_betweenness_centrality
from repro.algorithms.bfs import run_bfs
from repro.algorithms.pagerank import run_pagerank
from repro.baselines import (
    ClusterInMemoryEngine,
    EdgeCentricEngine,
    InMemoryEngine,
    SemiExternalEngine,
    ShardedExternalEngine,
)
from repro.baselines.base import DNF_CUTOFF_UNLIMITED
from repro.baselines.semiexternal import VERTEX_ID_SPACE
from repro.engine.config import make_system
from repro.flash.device import FlashRecoveryExhaustedError, PowerLossError
from repro.flash.wear import WearReport, lifetime_writes_remaining
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DEFAULT_SCALE, build_graph, dataset_by_name
from repro.perf.profiles import (
    GB,
    GRAFBOOST,
    GRAFBOOST2,
    GRAFSOFT,
    HardwareProfile,
    SERVER_SSD_ARRAY,
    SINGLE_SSD_SERVER,
)
import dataclasses

#: Fig 15 configuration: "GraFBoost also used only one flash card ...
#: matching 512 GB capacity and 1.2 GB/s bandwidth" (§V-D).
GRAFBOOST_ONE_CARD = dataclasses.replace(
    GRAFBOOST, name="GraFBoost-1card", flash_capacity=512 * GB,
    flash_read_bw=1.2 * GB, flash_write_bw=0.5 * GB)

GRAFBOOST_FAMILY = ("GraFBoost", "GraFBoost2", "GraFSoft")
BASELINE_SYSTEMS = ("GraphLab", "GraphLab5", "FlashGraph", "X-Stream", "GraphChi")
ALGORITHMS = ("pagerank", "bfs", "bc")

#: Default in-process graph cache budget; override with
#: ``REPRO_GRAPH_CACHE_BYTES``.  Deliberately small — a long-lived service
#: process must not accumulate every graph it ever loaded.
GRAPH_CACHE_DEFAULT_BYTES = 256 * 1024 * 1024


class GraphCache:
    """A byte-budgeted LRU over built datasets, keyed ``(name, scale, seed)``.

    The most recently used entry is always kept, even when it alone exceeds
    the budget — back-to-back loads of the same key must return the same
    object (callers rely on identity for cross-run comparisons); the budget
    only bounds what *accumulates* beyond that.
    """

    def __init__(self, budget_bytes: int | None = None):
        if budget_bytes is None:
            budget_bytes = int(os.environ.get("REPRO_GRAPH_CACHE_BYTES",
                                              GRAPH_CACHE_DEFAULT_BYTES))
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[tuple, CSRGraph]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def current_bytes(self) -> int:
        return sum(g.nbytes for g in self._entries.values())

    def get(self, key: tuple) -> CSRGraph | None:
        graph = self._entries.get(key)
        if graph is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return graph

    def put(self, key: tuple, graph: CSRGraph) -> None:
        self._entries[key] = graph
        self._entries.move_to_end(key)
        while len(self._entries) > 1 and self.current_bytes > self.budget_bytes:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "evictions": self.evictions,
                "current_bytes": self.current_bytes,
                "budget_bytes": self.budget_bytes}


_GRAPH_CACHE = GraphCache()


def load_dataset(name: str, scale: float = DEFAULT_SCALE, seed: int = 1) -> CSRGraph:
    """Build (and memoize) a dataset at the requested scale.

    In-process results go through the byte-budgeted :class:`GraphCache`
    (``REPRO_GRAPH_CACHE_BYTES``); across processes,
    :func:`repro.graph.datasets.build_graph` persists built graphs to the
    on-disk dataset cache (``REPRO_DATASET_CACHE``), so repeated benchmark
    invocations skip synthesis entirely.
    """
    key = (name, scale, seed)
    graph = _GRAPH_CACHE.get(key)
    if graph is None:
        graph = build_graph(name, scale, seed=seed)
        _GRAPH_CACHE.put(key, graph)
    return graph


def graph_cache() -> GraphCache:
    """The process-wide dataset cache (stats/clear hook for services)."""
    return _GRAPH_CACHE


def default_root(graph: CSRGraph) -> int:
    """First vertex with outbound edges — the BFS/BC source."""
    degrees = graph.out_degrees()
    nonzero = np.flatnonzero(degrees > 0)
    if len(nonzero) == 0:
        raise ValueError("graph has no edges")
    return int(nonzero[0])


@dataclass
class WorkloadResult:
    """One cell of an evaluation matrix."""

    system: str
    algorithm: str
    dataset: str
    completed: bool
    elapsed_s: float
    supersteps: int = 0
    traversed_edges: int = 0
    cpu_busy_s: float = 0.0
    flash_bytes: int = 0
    memory_bytes: int = 0
    dnf_reason: str = ""
    # Fault-injection outcome counters (all zero without a FaultPlan).
    corrected_bit_errors: int = 0
    read_retries: int = 0
    uncorrectable_reads: int = 0
    checksum_recoveries: int = 0
    retired_blocks: int = 0
    # Crash-injection outcome counters (all zero without a CrashPlan).
    power_losses: int = 0
    remounts: int = 0
    torn_writes: int = 0
    # Final vertex values (populated by run_with_crashes for divergence
    # checks against an uninterrupted run).
    final_values: np.ndarray | None = None
    # Per-superstep execution modes (GraFBoost-family engines only; the
    # adaptive decision trace — constant for static modes).  Multi-phase
    # algorithms (bc) concatenate all phases; ``mode_phases`` labels the
    # segments, e.g. ``[("forward", 4), ("backtrace", 3)]``.
    mode_trace: list[str] | None = None
    mode_phases: list[tuple[str, int]] | None = None
    # Per-superstep metrics of the (forward) run — what ``--timeline``
    # renders.  Carried on the result so the timeline path goes through the
    # same fault/crash/sanitize wiring as every other cell.
    superstep_metrics: list | None = None
    # Device wear at the end of the run (GraFBoost-family stacks only —
    # baseline strategy models have no simulated device to wear out).
    wear: WearReport | None = None
    lifetime_writes_remaining: float = 1.0

    @property
    def time_or_nan(self) -> float:
        return self.elapsed_s if self.completed else float("nan")

    @property
    def mteps(self) -> float:
        if not self.completed or self.elapsed_s <= 0:
            return 0.0
        return self.traversed_edges / self.elapsed_s / 1e6


def run_grafboost_system(kind: str, graph: CSRGraph, algorithm: str,
                         scale: float = DEFAULT_SCALE,
                         dram_bytes: int | None = None,
                         profile: HardwareProfile | None = None,
                         dataset: str = "?", seed_root: int | None = None,
                         pagerank_iterations: int = 1,
                         faults=None, crashes=None,
                         checkpoint_every: int = 0,
                         durable: bool = False,
                         sanitize: bool | None = None,
                         workers: int | None = None,
                         mode: str | None = None) -> WorkloadResult:
    """Run one of the GraFBoost-family engines on an algorithm.

    ``faults`` (a :class:`~repro.flash.faults.FaultPlan`) makes the run a
    seeded chaos test; its recovery counters land on the result.
    ``crashes`` (a :class:`~repro.flash.faults.CrashPlan`) additionally
    injects power losses; the run then goes through the
    :func:`run_with_crashes` crash→remount→resume loop.  ``sanitize``
    attaches FlashSan to the device (``None`` defers to ``REPRO_SANITIZE``).
    ``workers`` turns on parallel sort-reduce (``None`` defers to
    ``REPRO_WORKERS``); results and simulated time are bit-identical for
    any worker count.  ``mode`` picks the engine execution mode (``None``
    defers to ``REPRO_MODE``; see :mod:`repro.engine.modes`) — the result
    carries the per-superstep ``mode_trace``.
    """
    if crashes is not None:
        return run_with_crashes(kind, graph, algorithm, scale=scale,
                                crashes=crashes,
                                checkpoint_every=checkpoint_every,
                                dram_bytes=dram_bytes, profile=profile,
                                dataset=dataset, seed_root=seed_root,
                                pagerank_iterations=pagerank_iterations,
                                faults=faults, sanitize=sanitize,
                                workers=workers, mode=mode)
    system = make_system(kind.lower(), scale, dram_bytes=dram_bytes,
                         num_vertices_hint=graph.num_vertices, profile=profile,
                         faults=faults, durable=durable, sanitize=sanitize,
                         workers=workers, mode=mode)
    flash_graph = system.load_graph(graph)
    engine = system.engine_for(flash_graph, graph.num_vertices,
                               checkpoint_every=checkpoint_every)
    root = default_root(graph) if seed_root is None else seed_root

    if algorithm == "pagerank":
        result = run_pagerank(engine, graph.num_vertices,
                              iterations=pagerank_iterations)
        elapsed, supersteps, traversed = (result.elapsed_s, result.num_supersteps,
                                          result.total_traversed_edges)
    elif algorithm == "bfs":
        result = run_bfs(engine, root)
        elapsed, supersteps, traversed = (result.elapsed_s, result.num_supersteps,
                                          result.total_traversed_edges)
    elif algorithm == "bc":
        result = run_betweenness_centrality(engine, root)
        elapsed, supersteps, traversed = (result.elapsed_s, result.num_supersteps,
                                          result.total_traversed_edges)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")

    if algorithm == "bc":
        # Both phases: the forward BFS supersteps *and* the backtracing
        # sort-reduce passes (each one level of the BFS tree).
        forward_modes = [s.mode for s in result.forward.supersteps]
        mode_trace = forward_modes + list(result.backtrace_modes)
        mode_phases = [("forward", len(forward_modes)),
                       ("backtrace", len(result.backtrace_modes))]
        steps = result.forward.supersteps
    else:
        steps = result.supersteps
        mode_trace = [s.mode for s in steps]
        mode_phases = None
    clock = system.clock
    workload = WorkloadResult(
        system=kind, algorithm=algorithm, dataset=dataset, completed=True,
        elapsed_s=elapsed, supersteps=supersteps, traversed_edges=traversed,
        cpu_busy_s=clock.busy_s("cpu") + clock.busy_s("accel"),
        flash_bytes=clock.bytes_moved("flash"),
        memory_bytes=system.memory.peak,
        mode_trace=mode_trace,
        mode_phases=mode_phases,
        superstep_metrics=list(steps),
    )
    _attach_injection_stats(workload, system)
    return workload


def _attach_injection_stats(workload: WorkloadResult, system) -> None:
    """Copy fault/crash injector counters and wear onto a finished result."""
    workload.wear = WearReport.from_device(system.device)
    workload.lifetime_writes_remaining = lifetime_writes_remaining(
        system.device)
    injector = system.device.faults
    if injector is not None:
        stats = injector.stats
        workload.corrected_bit_errors = stats.bits_corrected
        workload.read_retries = stats.read_retries
        workload.uncorrectable_reads = stats.uncorrectable_reads
        workload.checksum_recoveries = stats.checksum_recoveries
        workload.retired_blocks = stats.blocks_retired
    crash_injector = system.device.crashes
    if crash_injector is not None:
        workload.power_losses = crash_injector.stats.power_losses
        workload.torn_writes = crash_injector.stats.torn_writes


def run_with_crashes(kind: str, graph: CSRGraph, algorithm: str,
                     scale: float = DEFAULT_SCALE, crashes=None,
                     checkpoint_every: int = 4,
                     dram_bytes: int | None = None,
                     profile: HardwareProfile | None = None,
                     dataset: str = "?", seed_root: int | None = None,
                     pagerank_iterations: int = 1,
                     faults=None, max_remounts: int = 10_000,
                     sanitize: bool | None = None,
                     workers: int | None = None,
                     mode: str | None = None) -> WorkloadResult:
    """Run an algorithm under power-loss injection: crash → remount → resume.

    The stack is built durable; every :class:`PowerLossError` the injector
    raises is answered by remounting the store (journal replay and FTL
    recovery charge real simulated time against the shared clock) and
    re-running the algorithm, which auto-resumes from the latest
    checkpoint.  The loop terminates because the crash schedule is finite —
    op indices are device-lifetime, so remounts and re-execution *drain*
    the schedule even with ``checkpoint_every=0`` — and the final vertex
    values are bit-identical to an uninterrupted run.

    Only the single-program algorithms are supported (``pagerank``,
    ``bfs``); multi-phase drivers like betweenness centrality would need
    per-phase checkpoint names.
    """
    if algorithm not in ("pagerank", "bfs"):
        raise ValueError(
            f"run_with_crashes supports pagerank/bfs, not {algorithm!r}")
    system = make_system(kind.lower(), scale, dram_bytes=dram_bytes,
                         num_vertices_hint=graph.num_vertices, profile=profile,
                         faults=faults, crashes=crashes, durable=True,
                         sanitize=sanitize, workers=workers, mode=mode)
    remounts = 0

    def remount() -> None:
        # Recovery itself reads flash, so a power loss can interrupt the
        # mount scan / journal replay too — just start the mount over.
        nonlocal remounts
        while True:
            remounts += 1
            if remounts > max_remounts:
                raise FlashRecoveryExhaustedError(
                    f"gave up after {max_remounts} remounts; crash plan or "
                    f"checkpoint cadence leaves no forward progress",
                    plan=crashes)
            try:
                system.remount()
                return
            except PowerLossError:
                continue

    def scrub(prefix: str) -> None:
        while True:
            try:
                for name in list(system.store.list_files()):
                    if name.startswith(prefix):
                        system.store.delete(name)
                return
            except PowerLossError:
                remount()

    start_s = system.clock.elapsed_s
    while True:  # graph loading can crash too: scrub partials and rewrite
        try:
            flash_graph = system.load_graph(graph)
            break
        except PowerLossError:
            remount()
            scrub("graph:")
    root = default_root(graph) if seed_root is None else seed_root

    resumed = False
    while True:
        engine = system.engine_for(flash_graph, graph.num_vertices,
                                   checkpoint_every=checkpoint_every,
                                   auto_resume=resumed)
        try:
            if algorithm == "pagerank":
                result = run_pagerank(engine, graph.num_vertices,
                                      iterations=pagerank_iterations)
            else:
                result = run_bfs(engine, root)
            break
        except PowerLossError:
            remount()
            flash_graph = system.reattach_graph(flash_graph)
            resumed = True

    clock = system.clock
    workload = WorkloadResult(
        system=kind, algorithm=algorithm, dataset=dataset, completed=True,
        elapsed_s=clock.elapsed_s - start_s, supersteps=result.num_supersteps,
        traversed_edges=result.total_traversed_edges,
        cpu_busy_s=clock.busy_s("cpu") + clock.busy_s("accel"),
        flash_bytes=clock.bytes_moved("flash"),
        memory_bytes=system.memory.peak,
    )
    workload.remounts = remounts
    workload.final_values = result.final_values()
    workload.mode_trace = [s.mode for s in result.supersteps]
    workload.superstep_metrics = list(result.supersteps)
    _attach_injection_stats(workload, system)
    return workload


_BASELINE_CLASSES = {
    "GraphLab": InMemoryEngine,
    "GraphLab5": ClusterInMemoryEngine,
    "FlashGraph": SemiExternalEngine,
    "X-Stream": EdgeCentricEngine,
    "GraphChi": ShardedExternalEngine,
}


def run_baseline_system(name: str, graph: CSRGraph, algorithm: str,
                        profile: HardwareProfile,
                        scale: float = DEFAULT_SCALE,
                        cutoff_s: float = DNF_CUTOFF_UNLIMITED,
                        dataset: str = "?", seed_root: int | None = None,
                        pagerank_iterations: int = 1) -> WorkloadResult:
    """Run one baseline strategy model on an algorithm."""
    try:
        engine_cls = _BASELINE_CLASSES[name]
    except KeyError:
        known = ", ".join(sorted(_BASELINE_CLASSES))
        raise KeyError(f"unknown baseline {name!r}; known: {known}") from None
    kwargs = {"cutoff_s": cutoff_s}
    if engine_cls is SemiExternalEngine:
        # FlashGraph's 32-bit ids hold at most 2^32 - 1 vertices (scaled):
        # WDC (~0.7 * 2^32) loads, kron32 (exactly 2^32) cannot (Fig 12a).
        kwargs["max_vertices"] = max(1, int(VERTEX_ID_SPACE * scale) - 1)
    engine = engine_cls(graph, profile, **kwargs)
    root = default_root(graph) if seed_root is None else seed_root

    if algorithm == "pagerank":
        result = engine.run_pagerank(iterations=pagerank_iterations)
    elif algorithm == "bfs":
        result = engine.run_bfs(root)
    elif algorithm == "bc":
        result = engine.run_bc(root)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")

    return WorkloadResult(
        system=name, algorithm=algorithm, dataset=dataset,
        completed=result.completed, elapsed_s=result.time_or_nan,
        supersteps=result.supersteps, traversed_edges=result.traversed_edges,
        cpu_busy_s=result.cpu_busy_s, flash_bytes=result.flash_bytes,
        memory_bytes=result.peak_memory, dnf_reason=result.dnf_reason,
    )


def run_cell(system: str, graph: CSRGraph, algorithm: str,
             scale: float = DEFAULT_SCALE,
             server_profile: HardwareProfile | None = None,
             dram_bytes: int | None = None,
             cutoff_s: float = DNF_CUTOFF_UNLIMITED,
             dataset: str = "?",
             pagerank_iterations: int = 1,
             grafboost_profile: HardwareProfile | None = None,
             faults=None, crashes=None,
             checkpoint_every: int = 0,
             sanitize: bool | None = None,
             workers: int | None = None,
             mode: str | None = None) -> WorkloadResult:
    """Dispatch one (system, algorithm) cell with shared conventions.

    ``server_profile`` is the host every *software* system runs on (the
    32-core server, possibly with a Fig 13 DRAM override); the GraFBoost
    accelerator stacks always use their own device profiles, with
    ``dram_bytes`` only affecting GraFSoft.
    """
    if server_profile is None:
        server_profile = SERVER_SSD_ARRAY.scaled(scale)
    if dram_bytes is not None:
        server_profile = server_profile.with_dram(dram_bytes)
    if system in GRAFBOOST_FAMILY:
        # GraFBoost's accelerator memory never depends on host DRAM; GraFSoft
        # is capped at its own 16 GB regardless of the machine (§I).
        # ``grafboost_profile`` overrides the storage device for the
        # accelerated systems (Fig 15 uses a single flash card).
        profile = grafboost_profile if system != "GraFSoft" else None
        return run_grafboost_system(system, graph, algorithm, scale=scale,
                                    dataset=dataset, profile=profile,
                                    pagerank_iterations=pagerank_iterations,
                                    faults=faults, crashes=crashes,
                                    checkpoint_every=checkpoint_every,
                                    sanitize=sanitize, workers=workers,
                                    mode=mode)
    return run_baseline_system(system, graph, algorithm, server_profile,
                               scale=scale, cutoff_s=cutoff_s, dataset=dataset,
                               pagerank_iterations=pagerank_iterations)


@dataclass
class ServiceCellResult:
    """One service workload cell: a job mix driven to completion."""

    system: str
    dataset: str
    jobs_done: int
    jobs_rejected: int
    jobs_failed: int
    rounds: int
    remounts: int
    power_losses: int
    rejections: int
    elapsed_s: float
    flash_bytes: int
    trace: list[str]
    jobs: list
    # Failure-domain outcome counters (all zero on a fault-free run).
    jobs_quarantined: int = 0
    jobs_cancelled: int = 0
    retries: int = 0
    failures: int = 0
    degraded_rejections: int = 0
    # Device wear at the end of the cell.
    wear: WearReport | None = None
    lifetime_writes_remaining: float = 1.0


def run_service_cell(kind: str, graph: CSRGraph, jobs: list,
                     scale: float = DEFAULT_SCALE,
                     quotas=None, config=None,
                     dataset: str = "?", seed_root: int | None = None,
                     faults=None, crashes=None,
                     sanitize: bool | None = None,
                     workers: int | None = None,
                     mode: str | None = None) -> ServiceCellResult:
    """Run a multi-tenant service workload on a GraFBoost-family stack.

    ``jobs`` is a list of job specs (strings in the CLI syntax or
    :class:`~repro.service.JobSpec` instances) submitted before the
    scheduler starts.  The stack is always built durable: job state lives in
    an on-flash journal, so the cell survives ``crashes`` power-loss
    injection with a bit-identical scheduler trace.
    """
    if kind not in GRAFBOOST_FAMILY:
        raise ValueError(
            f"service cells need a GraFBoost-family system, not {kind!r}")
    system = make_system(kind.lower(), scale,
                         num_vertices_hint=graph.num_vertices,
                         faults=faults, crashes=crashes, durable=True,
                         sanitize=sanitize, workers=workers, mode=mode)
    start_s = system.clock.elapsed_s
    pre_remounts = 0

    def remount() -> None:
        nonlocal pre_remounts
        while True:
            pre_remounts += 1
            try:
                system.remount()
                return
            except PowerLossError:
                continue

    while True:  # graph loading can crash too: scrub partials and rewrite
        try:
            flash_graph = system.load_graph(graph)
            break
        except PowerLossError:
            remount()
            while True:
                try:
                    for name in list(system.store.list_files()):
                        if name.startswith("graph:"):
                            system.store.delete(name)
                    break
                except PowerLossError:
                    remount()

    root = default_root(graph) if seed_root is None else seed_root
    service = system.service_for(flash_graph, graph.num_vertices,
                                 config=config, quotas=quotas,
                                 default_root=root)
    service.submit_all(jobs)
    report = service.run()
    return ServiceCellResult(
        system=kind, dataset=dataset,
        jobs_done=len(report.jobs_by_state("done")),
        jobs_rejected=len(report.jobs_by_state("rejected")),
        jobs_failed=len(report.jobs_by_state("failed")),
        rounds=report.rounds,
        remounts=report.remounts + pre_remounts,
        power_losses=report.power_losses,
        rejections=report.rejections,
        elapsed_s=system.clock.elapsed_s - start_s,
        flash_bytes=system.clock.bytes_moved("flash"),
        trace=report.trace,
        jobs=report.jobs,
        jobs_quarantined=report.quarantined,
        jobs_cancelled=report.cancelled,
        retries=report.retries,
        failures=report.failures,
        degraded_rejections=report.degraded_rejections,
        wear=report.wear,
        lifetime_writes_remaining=report.lifetime_writes_remaining,
    )


def run_matrix(systems: list[str], algorithms: list[str], dataset: str,
               scale: float = DEFAULT_SCALE, seed: int = 1,
               server_profile: HardwareProfile | None = None,
               dram_bytes: int | None = None,
               patience_factor: float = 50.0) -> list[WorkloadResult]:
    """Run a full figure matrix: all systems on all algorithms of a dataset.

    The experiment's patience (the paper stopped runs "taking too long"
    manually) is ``patience_factor`` times the slowest completed
    GraFBoost-family time per algorithm.
    """
    graph = load_dataset(dataset, scale, seed)
    results: list[WorkloadResult] = []
    for algorithm in algorithms:
        reference_times: list[float] = []
        for system in systems:
            if system in GRAFBOOST_FAMILY:
                cell = run_cell(system, graph, algorithm, scale=scale,
                                server_profile=server_profile,
                                dram_bytes=dram_bytes, dataset=dataset)
                reference_times.append(cell.elapsed_s)
                results.append(cell)
        cutoff = (max(reference_times) * patience_factor
                  if reference_times else DNF_CUTOFF_UNLIMITED)
        for system in systems:
            if system not in GRAFBOOST_FAMILY:
                results.append(run_cell(system, graph, algorithm, scale=scale,
                                        server_profile=server_profile,
                                        dram_bytes=dram_bytes,
                                        cutoff_s=cutoff, dataset=dataset))
    return results


def results_by(results: list[WorkloadResult], algorithm: str) -> dict[str, WorkloadResult]:
    """Index one algorithm's results by system name."""
    return {r.system: r for r in results if r.algorithm == algorithm}
