"""The vertex-program interface (Algorithm 1's vocabulary, vectorized).

A graph algorithm is expressed as four functions plus a reduction operator:

* :meth:`VertexProgram.edge_program` — per-edge: combine the source vertex's
  value with the edge property into an update for the destination.
* ``reduce_op`` — *vertex_update*: the binary associative function that
  merges updates targeting the same vertex; this is what sort-reduce
  interleaves into its merge phases.
* :meth:`VertexProgram.finalize` — per-vertex, after reduction (PageRank's
  dampening).
* :meth:`VertexProgram.is_active` — whether the finalized value activates
  the vertex for the next superstep.

All methods are vectorized over numpy arrays — an element-at-a-time API at
these data volumes would make a pure-Python reproduction unusable.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.kvstream import KVArray
from repro.core.reduce_ops import ReduceOp


class VertexProgram:
    """Base class for push-style vertex programs.

    Subclasses set :attr:`value_dtype`, :attr:`reduce_op`,
    :attr:`default_value` and override the four program methods.  The base
    implementations give pass-through finalize and always-active semantics.
    """

    #: Human-readable algorithm name (used in reports).
    name = "vertex-program"
    #: dtype of vertex values and update messages.
    value_dtype: np.dtype = np.dtype("<u8")
    #: vertex_update — must be binary associative (§III-A).
    reduce_op: ReduceOp
    #: Initial value of every vertex in ``V``.
    default_value: object = 0
    #: Whether edge_program consumes edge weights.
    uses_weights = False
    #: Job-scope label applied by :meth:`namespaced` ("" until then).  Failure
    #: records and the service's flash-state purge use it to attribute a
    #: namespaced run back to its owning job.
    namespace: str = ""

    # ------------------------------------------------------------ the program

    def edge_program(self, src_values: np.ndarray, src_ids: np.ndarray,
                     edge_weights: np.ndarray | None,
                     src_degrees: np.ndarray) -> np.ndarray:
        """Per-edge update values.

        All inputs are aligned per-edge arrays: the source vertex's value and
        id, the edge weight (None for unweighted graphs), and the source's
        out-degree (PageRank's ``numNeighbors``).
        """
        raise NotImplementedError

    def vertex_messages(self, values: np.ndarray, ids: np.ndarray,
                        degrees: np.ndarray) -> np.ndarray | None:
        """Per-active-vertex message value, or None when updates are per-edge.

        Many programs send the same value along every out-edge of a vertex
        (PageRank: value/degree; BFS: the source id; CC: the label).
        Returning that per-vertex array lets the engine expand it with a
        single repeat instead of materializing per-edge source value/id/
        degree arrays first — the result is element-for-element identical to
        calling :meth:`edge_program` on the expanded arrays.  Programs whose
        updates genuinely depend on the individual edge (weights) keep the
        default None and take the per-edge path.
        """
        return None

    def finalize(self, new_values: np.ndarray, old_values: np.ndarray) -> np.ndarray:
        """Combine the reduced update with the previous vertex value."""
        return new_values

    def is_active(self, finalized: np.ndarray, old_values: np.ndarray,
                  old_steps: np.ndarray, superstep: int) -> np.ndarray:
        """Mask of vertices that activate for the next superstep."""
        return np.ones(len(finalized), dtype=bool)

    # --------------------------------------------------------------- kickoff

    def initial_updates(self, num_vertices: int) -> Iterator[KVArray]:
        """The ``newV`` stream that seeds superstep 0.

        Default: every vertex active with the default value (the hardware
        vertex list generator of §IV-D).  Algorithms with sparse starts
        (BFS, SSSP) override with their root update.
        """
        return all_active_chunks(num_vertices, self.value_dtype, self.default_value)

    def initial_frontier_hint(self, num_vertices: int) -> int:
        """How many updates :meth:`initial_updates` will emit.

        The adaptive execution mode needs superstep 0's frontier size
        before consuming the (single-pass) update stream.  The default
        matches the dense all-active kickoff; sparse-start programs (BFS,
        SSSP) override alongside :meth:`initial_updates`.
        """
        return num_vertices

    # ------------------------------------------------------------- namespacing

    def namespaced(self, label: str) -> "VertexProgram":
        """Give this program instance a job-scoped name.

        Everything the engine persists — sort-reduce run files, the
        checkpoint's algorithm tag, the resume-time orphan sweep prefix —
        derives from :attr:`name`, so two concurrent runs of the *same*
        algorithm over one store must not share it.  The service layer calls
        ``program.namespaced(job_id)`` to keep each job's on-flash footprint
        (and crash/resume state) disjoint.  Returns ``self`` for chaining.
        """
        if not label or any(c in label for c in ":/ "):
            raise ValueError(f"bad namespace label {label!r}")
        self.name = f"{self.name}@{label}"
        self.namespace = label
        return self

    # ---------------------------------------------------------------- limits

    def max_supersteps(self) -> int:
        """Upper bound on supersteps (the engine also stops on quiescence)."""
        return 1 << 30


def all_active_chunks(num_vertices: int, value_dtype: np.dtype, value,
                      chunk_records: int = 1 << 16) -> Iterator[KVArray]:
    """Stream (k, value) for every vertex — the hardware vertex list
    generator module: "emits a stream of active vertex key-value pairs with
    uniform values" (§IV-D).  Generated, not read, so it costs no flash I/O.
    """
    for start in range(0, num_vertices, chunk_records):
        stop = min(start + chunk_records, num_vertices)
        keys = np.arange(start, stop, dtype=np.uint64)
        values = np.full(stop - start, value, dtype=np.dtype(value_dtype))
        yield KVArray(keys, values)


def single_seed(key: int, value, value_dtype: np.dtype) -> Iterator[KVArray]:
    """A one-vertex seed stream (BFS/SSSP roots)."""
    yield KVArray(
        np.array([key], dtype=np.uint64),
        np.array([value], dtype=np.dtype(value_dtype)),
    )
