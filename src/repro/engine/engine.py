"""The superstep driver: runs a vertex program to quiescence and collects
per-superstep metrics (the numbers behind every evaluation figure).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.external import RunHandle, SortReduceStats
from repro.core.parallel import get_pool
from repro.engine.api import VertexProgram
from repro.engine.modes import (
    MODES,
    AdaptivePolicy,
    build_modes,
    charge_mode_switch,
    semiexternal_footprint,
)
from repro.flash.device import FlashError
from repro.engine.superstep import SuperstepExecutor
from repro.graph.formats import FlashCSR
from repro.graph.vertexdata import VertexArray

#: Checkpoint format version (bumped on incompatible layout changes).
CHECKPOINT_VERSION = 1


@dataclass
class SuperstepMetrics:
    """One superstep's observable behaviour, including resource deltas —
    the per-superstep breakdown behind the paper's §V-C analysis."""

    superstep: int
    activated: int
    traversed_edges: int
    update_pairs: int
    reduced_pairs: int
    elapsed_s: float
    flash_bytes: int = 0
    flash_busy_s: float = 0.0
    compute_busy_s: float = 0.0
    #: Execution mode this superstep ran under (the adaptive decision
    #: trace; trailing default keeps old checkpoints restorable).
    mode: str = "sortreduce"

    @property
    def flash_bandwidth(self) -> float:
        """Achieved flash bandwidth during this superstep (bytes/s)."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.flash_bytes / self.elapsed_s


@dataclass
class RunResult:
    """Everything a completed run exposes to callers and benchmarks."""

    algorithm: str
    vertices: VertexArray
    supersteps: list[SuperstepMetrics] = field(default_factory=list)
    sort_stats: list[SortReduceStats] = field(default_factory=list)
    elapsed_s: float = 0.0
    completed: bool = True

    @property
    def num_supersteps(self) -> int:
        return len(self.supersteps)

    @property
    def total_traversed_edges(self) -> int:
        return sum(s.traversed_edges for s in self.supersteps)

    @property
    def total_activated(self) -> int:
        return sum(s.activated for s in self.supersteps)

    @property
    def mode_trace(self) -> list[str]:
        """Execution mode of each superstep, in order (constant for static
        modes; the per-superstep decision record for adaptive runs)."""
        return [s.mode for s in self.supersteps]

    @property
    def mteps(self) -> float:
        """Millions of traversed edges per (simulated) second."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.total_traversed_edges / self.elapsed_s / 1e6

    def final_values(self) -> np.ndarray:
        return self.vertices.final_values()


class GraFBoostEngine:
    """Drives a vertex program over one assembled system stack.

    The engine owns no hardware state of its own: the graph, vertex array,
    file store and cost-model backend are injected, so the same driver runs
    as GraFBoost (accelerator + AOFFS), GraFBoost2, or GraFSoft (software +
    commodity SSD file system).
    """

    def __init__(self, graph: FlashCSR, store, backend, num_vertices: int,
                 chunk_bytes: int, fanout: int = 16, memory=None,
                 lazy: bool = True, max_overlays: int = 64,
                 checkpoint_every: int = 0, checkpoint_prefix: str = "ckpt",
                 auto_resume: bool = False, workers: int = 1,
                 mode: str = "sortreduce"):
        if mode not in MODES:
            raise ValueError(f"unknown execution mode {mode!r}; known: "
                             + ", ".join(MODES))
        # Execution mode: a static mode runs every superstep one way;
        # "adaptive" picks per superstep (see repro.engine.modes).  The
        # default "sortreduce" path is byte-for-byte the classic engine.
        self.mode = mode
        self.graph = graph
        self.store = store
        self.backend = backend
        self.num_vertices = num_vertices
        self.chunk_bytes = chunk_bytes
        self.fanout = fanout
        self.memory = memory
        self.lazy = lazy
        self.max_overlays = max_overlays
        # Parallel sort-reduce: N >= 2 attaches the shared worker pool;
        # N == 1 is byte-for-byte the serial path (pool is None).  Either
        # way results and simulated time are bit-identical.
        self.workers = workers
        self.pool = get_pool(workers)
        # Crash tolerance: every `checkpoint_every` supersteps, persist the
        # vertex data, frontier run and superstep counter to the (durable)
        # store; `auto_resume` makes run() continue from the newest matching
        # checkpoint after a remount.  Both default off — checkpointing
        # writes real (simulated) flash traffic.
        self.checkpoint_every = checkpoint_every
        self.checkpoint_prefix = checkpoint_prefix
        self.auto_resume = auto_resume
        self.resumed_from_superstep: int | None = None
        self._retired: list[str] = []

    @property
    def clock(self):
        return self.store.device.clock

    def run(self, program: VertexProgram, max_supersteps: int | None = None) -> RunResult:
        """Execute supersteps until quiescence or the superstep limit.

        On a limit cut (fixed-iteration algorithms like the paper's one-pass
        PageRank measurement), a final apply pass folds the outstanding
        ``newV`` into ``V`` so :meth:`RunResult.final_values` is consistent.
        """
        limit = program.max_supersteps() if max_supersteps is None else max_supersteps
        run_start = self.clock.elapsed_s
        retire = self._retire_file if self.checkpoint_every else None

        state = self._load_checkpoint(program) if self.auto_resume else None
        self.resumed_from_superstep = None
        if state is not None:
            vertices, prev_run, superstep, result = self._restore(program, state)
            prev_chunks = prev_run.chunks()
            self.resumed_from_superstep = superstep
        else:
            vertices = VertexArray(
                self.store, self.num_vertices, program.value_dtype,
                program.default_value, max_overlays=self.max_overlays,
                retire=retire,
            )
            result = RunResult(algorithm=program.name, vertices=vertices)
            prev_chunks = program.initial_updates(self.num_vertices)
            prev_run = None
            superstep = 0
        executor = SuperstepExecutor(
            self.graph, vertices, program, self.store, self.backend,
            self.chunk_bytes, fanout=self.fanout, memory=self.memory, lazy=self.lazy,
            pool=self.pool,
        )
        mode_table = build_modes(executor)
        footprint = semiexternal_footprint(self.num_vertices, program.value_dtype)
        policy = None
        if self.mode == "adaptive":
            budget = (self.memory.budget if self.memory is not None
                      else self.store.device.profile.dram_capacity)
            policy = AdaptivePolicy(self.num_vertices, self.graph.num_edges,
                                    program.value_dtype, budget)
        # The mode of the superstep before this one — restored from the
        # checkpointed metrics on resume, so switch charges land at the
        # same supersteps in crashed and uninterrupted runs.
        prev_mode = result.supersteps[-1].mode if result.supersteps else None
        last_checkpoint = superstep
        while superstep < limit:
            if (self.checkpoint_every and superstep > last_checkpoint
                    and superstep % self.checkpoint_every == 0):
                self._write_checkpoint(program, result, vertices, prev_run,
                                       superstep)
                last_checkpoint = superstep
            if policy is not None:
                incoming = (prev_run.num_records if prev_run is not None
                            else program.initial_frontier_hint(self.num_vertices))
                mode_name = policy.choose(incoming)
            else:
                mode_name = self.mode
            checkpoint = self.clock.checkpoint()
            flash_bytes_start = self.clock.bytes_moved("flash")
            charge_mode_switch(self.clock, self.store.device.profile,
                               prev_mode, mode_name, footprint)
            try:
                outcome = mode_table[mode_name].run_superstep(prev_chunks, superstep)
            except FlashError as e:
                e.add_note(f"while running {program.name} superstep {superstep}")
                raise
            if prev_run is not None:
                self._discard_run(prev_run)
            prev_run = outcome.new_run
            result.supersteps.append(SuperstepMetrics(
                superstep=superstep,
                activated=outcome.activated,
                traversed_edges=outcome.traversed_edges,
                update_pairs=outcome.update_pairs,
                reduced_pairs=outcome.new_run.num_records,
                elapsed_s=checkpoint.elapsed_s,
                flash_bytes=self.clock.bytes_moved("flash") - flash_bytes_start,
                flash_busy_s=checkpoint.busy_s("flash"),
                compute_busy_s=checkpoint.busy_s("cpu") + checkpoint.busy_s("accel"),
                mode=mode_name,
            ))
            prev_mode = mode_name
            result.sort_stats.append(outcome.sort_stats)
            vertices.maybe_compact()
            superstep += 1
            if outcome.new_run.num_records == 0 and outcome.activated == 0:
                break
            prev_chunks = prev_run.chunks()
            if outcome.new_run.num_records == 0:
                # Frontier died this superstep: one more (empty) pass would
                # change nothing, stop now.
                break

        if prev_run is not None and prev_run.num_records:
            self._apply_pass(executor, prev_run, superstep)
            prev_run.delete()
        if self.checkpoint_every:
            self._clear_checkpoint()
        result.elapsed_s = self.clock.elapsed_s - run_start
        return result

    def _apply_pass(self, executor: SuperstepExecutor, run, superstep: int) -> None:
        """Fold an unconsumed ``newV`` into ``V`` without pushing edges."""
        program = executor.program
        cursor = executor.vertices.cursor()
        overlay = executor.vertices.overlay_writer(superstep)
        from repro.core.kvstream import KVArray

        for chunk in run.chunks():
            old_values, old_steps = cursor.lookup(chunk.keys)
            finalized = program.finalize(chunk.values, old_values)
            mask = program.is_active(finalized, old_values, old_steps, superstep)
            if np.any(mask):
                overlay.add(KVArray(chunk.keys[mask], np.asarray(finalized)[mask]))
        overlay.close()

    # ----------------------------------------------------- checkpoint/restart

    @property
    def _checkpoint_file(self) -> str:
        return f"{self.checkpoint_prefix}:latest"

    def _retire_file(self, name: str) -> None:
        """Defer a deletion until the next checkpoint supersedes the one that
        may still reference this file."""
        self._retired.append(name)

    def _discard_run(self, run) -> None:
        if not self.checkpoint_every:
            run.delete()
        elif run.num_records and self.store.exists(run.name):
            self._retire_file(run.name)

    def _write_checkpoint(self, program: VertexProgram, result: RunResult,
                          vertices: VertexArray, prev_run, superstep: int) -> None:
        """Persist resumable state through the store's crash-consistent path.

        Ordering is the whole protocol: every file the checkpoint references
        is already sealed on flash, the staging file is sealed before the
        atomic rename publishes it, and only *after* publication are the
        files retired since the previous checkpoint actually deleted.  A
        power loss at any point leaves either the old or the new checkpoint
        fully intact (plus, at worst, some orphaned files that resume's
        sweep reclaims).
        """
        files = vertices.files_on_flash()
        state = {
            "version": CHECKPOINT_VERSION,
            "algorithm": program.name,
            "superstep": superstep,
            "vertices": vertices.snapshot_state(),
            "prev_run": {
                "name": prev_run.name, "num_records": prev_run.num_records,
                "level": prev_run.level, "seq": prev_run.seq,
            },
            "supersteps": [asdict(m) for m in result.supersteps],
            "sort_stats": [s.to_dict() for s in result.sort_stats],
            "files": files + ([prev_run.name] if prev_run.num_records else []),
        }
        staging = f"{self.checkpoint_prefix}:staging"
        if self.store.exists(staging):
            self.store.delete(staging)
        self.store.append(staging, json.dumps(state).encode())
        self.store.seal(staging)
        self.store.rename(staging, self._checkpoint_file, overwrite=True)
        retired, self._retired = self._retired, []
        for name in retired:
            if self.store.exists(name):
                self.store.delete(name)

    def _load_checkpoint(self, program: VertexProgram) -> dict | None:
        if not self.store.exists(self._checkpoint_file):
            return None
        state = json.loads(bytes(self.store.read(self._checkpoint_file)))
        if (state.get("version") != CHECKPOINT_VERSION
                or state.get("algorithm") != program.name):
            return None
        return state

    def _restore(self, program: VertexProgram, state: dict):
        """Rebuild engine state from a checkpoint and sweep crash orphans."""
        retire = self._retire_file if self.checkpoint_every else None
        vertices = VertexArray.restore(
            self.store, state["vertices"], program.value_dtype,
            program.default_value, max_overlays=self.max_overlays,
            retire=retire)
        run_state = state["prev_run"]
        prev_run = RunHandle(self.store, run_state["name"],
                             run_state["num_records"], program.value_dtype,
                             level=run_state["level"], seq=run_state["seq"])
        result = RunResult(algorithm=program.name, vertices=vertices)
        result.supersteps = [SuperstepMetrics(**m) for m in state["supersteps"]]
        result.sort_stats = [SortReduceStats.from_dict(d)
                             for d in state["sort_stats"]]
        self._sweep_orphans(program, state)
        return vertices, prev_run, int(state["superstep"]), result

    def _sweep_orphans(self, program: VertexProgram, state: dict) -> None:
        """Delete engine-owned files the checkpoint does not reference.

        These are the half-written leftovers of the interrupted superstep
        (overlay/run files whose metadata committed but whose logical role
        died with the crash) plus anything retired after the checkpoint
        published.  Only names under the engine's own prefixes are touched —
        graph files and foreign data are left alone.
        """
        referenced = set(state["files"])
        referenced.add(self._checkpoint_file)
        vertex_prefix = state["vertices"]["prefix"] + ":"
        run_prefix = f"{program.name}-s"
        for name in list(self.store.list_files()):
            if name in referenced:
                continue
            if (name.startswith(vertex_prefix) or name.startswith(run_prefix)
                    or name == f"{self.checkpoint_prefix}:staging"):
                self.store.delete(name)

    def _clear_checkpoint(self) -> None:
        """Completion: drop checkpoint files and flush deferred deletions."""
        for name in (f"{self.checkpoint_prefix}:staging", self._checkpoint_file):
            if self.store.exists(name):
                self.store.delete(name)
        retired, self._retired = self._retired, []
        for name in retired:
            if self.store.exists(name):
                self.store.delete(name)
