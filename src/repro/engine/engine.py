"""The superstep driver: runs a vertex program to quiescence and collects
per-superstep metrics (the numbers behind every evaluation figure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.external import SortReduceStats
from repro.engine.api import VertexProgram
from repro.flash.device import FlashError
from repro.engine.superstep import SuperstepExecutor
from repro.graph.formats import FlashCSR
from repro.graph.vertexdata import VertexArray


@dataclass
class SuperstepMetrics:
    """One superstep's observable behaviour, including resource deltas —
    the per-superstep breakdown behind the paper's §V-C analysis."""

    superstep: int
    activated: int
    traversed_edges: int
    update_pairs: int
    reduced_pairs: int
    elapsed_s: float
    flash_bytes: int = 0
    flash_busy_s: float = 0.0
    compute_busy_s: float = 0.0

    @property
    def flash_bandwidth(self) -> float:
        """Achieved flash bandwidth during this superstep (bytes/s)."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.flash_bytes / self.elapsed_s


@dataclass
class RunResult:
    """Everything a completed run exposes to callers and benchmarks."""

    algorithm: str
    vertices: VertexArray
    supersteps: list[SuperstepMetrics] = field(default_factory=list)
    sort_stats: list[SortReduceStats] = field(default_factory=list)
    elapsed_s: float = 0.0
    completed: bool = True

    @property
    def num_supersteps(self) -> int:
        return len(self.supersteps)

    @property
    def total_traversed_edges(self) -> int:
        return sum(s.traversed_edges for s in self.supersteps)

    @property
    def total_activated(self) -> int:
        return sum(s.activated for s in self.supersteps)

    @property
    def mteps(self) -> float:
        """Millions of traversed edges per (simulated) second."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.total_traversed_edges / self.elapsed_s / 1e6

    def final_values(self) -> np.ndarray:
        return self.vertices.final_values()


class GraFBoostEngine:
    """Drives a vertex program over one assembled system stack.

    The engine owns no hardware state of its own: the graph, vertex array,
    file store and cost-model backend are injected, so the same driver runs
    as GraFBoost (accelerator + AOFFS), GraFBoost2, or GraFSoft (software +
    commodity SSD file system).
    """

    def __init__(self, graph: FlashCSR, store, backend, num_vertices: int,
                 chunk_bytes: int, fanout: int = 16, memory=None,
                 lazy: bool = True, max_overlays: int = 64):
        self.graph = graph
        self.store = store
        self.backend = backend
        self.num_vertices = num_vertices
        self.chunk_bytes = chunk_bytes
        self.fanout = fanout
        self.memory = memory
        self.lazy = lazy
        self.max_overlays = max_overlays

    @property
    def clock(self):
        return self.store.device.clock

    def run(self, program: VertexProgram, max_supersteps: int | None = None) -> RunResult:
        """Execute supersteps until quiescence or the superstep limit.

        On a limit cut (fixed-iteration algorithms like the paper's one-pass
        PageRank measurement), a final apply pass folds the outstanding
        ``newV`` into ``V`` so :meth:`RunResult.final_values` is consistent.
        """
        limit = program.max_supersteps() if max_supersteps is None else max_supersteps
        vertices = VertexArray(
            self.store, self.num_vertices, program.value_dtype,
            program.default_value, max_overlays=self.max_overlays,
        )
        executor = SuperstepExecutor(
            self.graph, vertices, program, self.store, self.backend,
            self.chunk_bytes, fanout=self.fanout, memory=self.memory, lazy=self.lazy,
        )
        result = RunResult(algorithm=program.name, vertices=vertices)
        run_start = self.clock.elapsed_s

        prev_chunks = program.initial_updates(self.num_vertices)
        prev_run = None
        superstep = 0
        while superstep < limit:
            checkpoint = self.clock.checkpoint()
            flash_bytes_start = self.clock.bytes_moved("flash")
            try:
                outcome = executor.run(prev_chunks, superstep)
            except FlashError as e:
                e.add_note(f"while running {program.name} superstep {superstep}")
                raise
            if prev_run is not None:
                prev_run.delete()
            prev_run = outcome.new_run
            result.supersteps.append(SuperstepMetrics(
                superstep=superstep,
                activated=outcome.activated,
                traversed_edges=outcome.traversed_edges,
                update_pairs=outcome.update_pairs,
                reduced_pairs=outcome.new_run.num_records,
                elapsed_s=checkpoint.elapsed_s,
                flash_bytes=self.clock.bytes_moved("flash") - flash_bytes_start,
                flash_busy_s=checkpoint.busy_s("flash"),
                compute_busy_s=checkpoint.busy_s("cpu") + checkpoint.busy_s("accel"),
            ))
            result.sort_stats.append(outcome.sort_stats)
            vertices.maybe_compact()
            superstep += 1
            if outcome.new_run.num_records == 0 and outcome.activated == 0:
                break
            prev_chunks = prev_run.chunks()
            if outcome.new_run.num_records == 0:
                # Frontier died this superstep: one more (empty) pass would
                # change nothing, stop now.
                break

        if prev_run is not None and prev_run.num_records:
            self._apply_pass(executor, prev_run, superstep)
            prev_run.delete()
        result.elapsed_s = self.clock.elapsed_s - run_start
        return result

    def _apply_pass(self, executor: SuperstepExecutor, run, superstep: int) -> None:
        """Fold an unconsumed ``newV`` into ``V`` without pushing edges."""
        program = executor.program
        cursor = executor.vertices.cursor()
        overlay = executor.vertices.overlay_writer(superstep)
        from repro.core.kvstream import KVArray

        for chunk in run.chunks():
            old_values, old_steps = cursor.lookup(chunk.keys)
            finalized = program.finalize(chunk.values, old_values)
            mask = program.is_active(finalized, old_values, old_steps, superstep)
            if np.any(mask):
                overlay.add(KVArray(chunk.keys[mask], np.asarray(finalized)[mask]))
        overlay.close()
