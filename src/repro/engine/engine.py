"""The superstep driver: runs a vertex program to quiescence and collects
per-superstep metrics (the numbers behind every evaluation figure).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.external import RunHandle, SortReduceStats
from repro.core.parallel import get_pool
from repro.engine.api import VertexProgram
from repro.engine.modes import (
    MODES,
    AdaptivePolicy,
    build_modes,
    charge_mode_switch,
    semiexternal_footprint,
)
from repro.flash.device import FlashError
from repro.engine.superstep import SuperstepExecutor
from repro.graph.formats import FlashCSR
from repro.graph.vertexdata import VertexArray

#: Checkpoint format version (bumped on incompatible layout changes).
CHECKPOINT_VERSION = 1


@dataclass
class SuperstepMetrics:
    """One superstep's observable behaviour, including resource deltas —
    the per-superstep breakdown behind the paper's §V-C analysis."""

    superstep: int
    activated: int
    traversed_edges: int
    update_pairs: int
    reduced_pairs: int
    elapsed_s: float
    flash_bytes: int = 0
    flash_busy_s: float = 0.0
    compute_busy_s: float = 0.0
    #: Execution mode this superstep ran under (the adaptive decision
    #: trace; trailing default keeps old checkpoints restorable).
    mode: str = "sortreduce"

    @property
    def flash_bandwidth(self) -> float:
        """Achieved flash bandwidth during this superstep (bytes/s)."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.flash_bytes / self.elapsed_s


@dataclass
class RunResult:
    """Everything a completed run exposes to callers and benchmarks."""

    algorithm: str
    vertices: VertexArray
    supersteps: list[SuperstepMetrics] = field(default_factory=list)
    sort_stats: list[SortReduceStats] = field(default_factory=list)
    elapsed_s: float = 0.0
    completed: bool = True

    @property
    def num_supersteps(self) -> int:
        return len(self.supersteps)

    @property
    def total_traversed_edges(self) -> int:
        return sum(s.traversed_edges for s in self.supersteps)

    @property
    def total_activated(self) -> int:
        return sum(s.activated for s in self.supersteps)

    @property
    def mode_trace(self) -> list[str]:
        """Execution mode of each superstep, in order (constant for static
        modes; the per-superstep decision record for adaptive runs)."""
        return [s.mode for s in self.supersteps]

    @property
    def mteps(self) -> float:
        """Millions of traversed edges per (simulated) second."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.total_traversed_edges / self.elapsed_s / 1e6

    def final_values(self) -> np.ndarray:
        return self.vertices.final_values()


class GraFBoostEngine:
    """Drives a vertex program over one assembled system stack.

    The engine owns no hardware state of its own: the graph, vertex array,
    file store and cost-model backend are injected, so the same driver runs
    as GraFBoost (accelerator + AOFFS), GraFBoost2, or GraFSoft (software +
    commodity SSD file system).
    """

    def __init__(self, graph: FlashCSR, store, backend, num_vertices: int,
                 chunk_bytes: int, fanout: int = 16, memory=None,
                 lazy: bool = True, max_overlays: int = 64,
                 checkpoint_every: int = 0, checkpoint_prefix: str = "ckpt",
                 auto_resume: bool = False, workers: int = 1,
                 mode: str = "sortreduce"):
        if mode not in MODES:
            raise ValueError(f"unknown execution mode {mode!r}; known: "
                             + ", ".join(MODES))
        # Execution mode: a static mode runs every superstep one way;
        # "adaptive" picks per superstep (see repro.engine.modes).  The
        # default "sortreduce" path is byte-for-byte the classic engine.
        self.mode = mode
        self.graph = graph
        self.store = store
        self.backend = backend
        self.num_vertices = num_vertices
        self.chunk_bytes = chunk_bytes
        self.fanout = fanout
        self.memory = memory
        self.lazy = lazy
        self.max_overlays = max_overlays
        # Parallel sort-reduce: N >= 2 attaches the shared worker pool;
        # N == 1 is byte-for-byte the serial path (pool is None).  Either
        # way results and simulated time are bit-identical.
        self.workers = workers
        self.pool = get_pool(workers)
        # Crash tolerance: every `checkpoint_every` supersteps, persist the
        # vertex data, frontier run and superstep counter to the (durable)
        # store; `auto_resume` makes run() continue from the newest matching
        # checkpoint after a remount.  Both default off — checkpointing
        # writes real (simulated) flash traffic.
        self.checkpoint_every = checkpoint_every
        self.checkpoint_prefix = checkpoint_prefix
        self.auto_resume = auto_resume
        self.resumed_from_superstep: int | None = None
        self._retired: list[str] = []

    @property
    def clock(self):
        return self.store.device.clock

    def run(self, program: VertexProgram, max_supersteps: int | None = None) -> RunResult:
        """Execute supersteps until quiescence or the superstep limit.

        On a limit cut (fixed-iteration algorithms like the paper's one-pass
        PageRank measurement), a final apply pass folds the outstanding
        ``newV`` into ``V`` so :meth:`RunResult.final_values` is consistent.
        """
        run = self.start(program, max_supersteps=max_supersteps)
        while run.step():
            pass
        return run.finish()

    def start(self, program: VertexProgram,
              max_supersteps: int | None = None) -> "EngineRun":
        """Begin a run that the caller advances one superstep at a time.

        The service layer interleaves many in-flight :class:`EngineRun`
        instances over one stack (cooperative multitasking on the shared sim
        clock); :meth:`run` is exactly ``start()`` + a ``step()`` loop +
        ``finish()``, so the decomposition is behaviour-preserving.
        """
        return EngineRun(self, program, max_supersteps=max_supersteps)

    def _apply_pass(self, executor: SuperstepExecutor, run, superstep: int) -> None:
        """Fold an unconsumed ``newV`` into ``V`` without pushing edges."""
        program = executor.program
        cursor = executor.vertices.cursor()
        overlay = executor.vertices.overlay_writer(superstep)
        from repro.core.kvstream import KVArray

        for chunk in run.chunks():
            old_values, old_steps = cursor.lookup(chunk.keys)
            finalized = program.finalize(chunk.values, old_values)
            mask = program.is_active(finalized, old_values, old_steps, superstep)
            if np.any(mask):
                overlay.add(KVArray(chunk.keys[mask], np.asarray(finalized)[mask]))
        overlay.close()

    # ----------------------------------------------------- checkpoint/restart

    @property
    def _checkpoint_file(self) -> str:
        return f"{self.checkpoint_prefix}:latest"

    def _retire_file(self, name: str) -> None:
        """Defer a deletion until the next checkpoint supersedes the one that
        may still reference this file."""
        self._retired.append(name)

    def _discard_run(self, run) -> None:
        if not self.checkpoint_every:
            run.delete()
        elif run.num_records and self.store.exists(run.name):
            self._retire_file(run.name)

    def _write_checkpoint(self, program: VertexProgram, result: RunResult,
                          vertices: VertexArray, prev_run, superstep: int) -> None:
        """Persist resumable state through the store's crash-consistent path.

        Ordering is the whole protocol: every file the checkpoint references
        is already sealed on flash, the staging file is sealed before the
        atomic rename publishes it, and only *after* publication are the
        files retired since the previous checkpoint actually deleted.  A
        power loss at any point leaves either the old or the new checkpoint
        fully intact (plus, at worst, some orphaned files that resume's
        sweep reclaims).
        """
        files = vertices.files_on_flash()
        state = {
            "version": CHECKPOINT_VERSION,
            "algorithm": program.name,
            "superstep": superstep,
            "vertices": vertices.snapshot_state(),
            "prev_run": {
                "name": prev_run.name, "num_records": prev_run.num_records,
                "level": prev_run.level, "seq": prev_run.seq,
            },
            "supersteps": [asdict(m) for m in result.supersteps],
            "sort_stats": [s.to_dict() for s in result.sort_stats],
            "files": files + ([prev_run.name] if prev_run.num_records else []),
        }
        staging = f"{self.checkpoint_prefix}:staging"
        if self.store.exists(staging):
            self.store.delete(staging)
        self.store.append(staging, json.dumps(state).encode())
        self.store.seal(staging)
        self.store.rename(staging, self._checkpoint_file, overwrite=True)
        retired, self._retired = self._retired, []
        for name in retired:
            if self.store.exists(name):
                self.store.delete(name)

    def _load_checkpoint(self, program: VertexProgram) -> dict | None:
        if not self.store.exists(self._checkpoint_file):
            return None
        state = json.loads(bytes(self.store.read(self._checkpoint_file)))
        if (state.get("version") != CHECKPOINT_VERSION
                or state.get("algorithm") != program.name):
            return None
        return state

    def _restore(self, program: VertexProgram, state: dict):
        """Rebuild engine state from a checkpoint and sweep crash orphans."""
        retire = self._retire_file if self.checkpoint_every else None
        vertices = VertexArray.restore(
            self.store, state["vertices"], program.value_dtype,
            program.default_value, max_overlays=self.max_overlays,
            retire=retire)
        run_state = state["prev_run"]
        prev_run = RunHandle(self.store, run_state["name"],
                             run_state["num_records"], program.value_dtype,
                             level=run_state["level"], seq=run_state["seq"])
        result = RunResult(algorithm=program.name, vertices=vertices)
        result.supersteps = [SuperstepMetrics(**m) for m in state["supersteps"]]
        result.sort_stats = [SortReduceStats.from_dict(d)
                             for d in state["sort_stats"]]
        self._sweep_orphans(program, state)
        return vertices, prev_run, int(state["superstep"]), result

    def _sweep_orphans(self, program: VertexProgram, state: dict) -> None:
        """Delete engine-owned files the checkpoint does not reference.

        These are the half-written leftovers of the interrupted superstep
        (overlay/run files whose metadata committed but whose logical role
        died with the crash) plus anything retired after the checkpoint
        published.  Only names under the engine's own prefixes are touched —
        graph files and foreign data are left alone.
        """
        referenced = set(state["files"])
        referenced.add(self._checkpoint_file)
        vertex_prefix = state["vertices"]["prefix"] + ":"
        run_prefix = f"{program.name}-s"
        for name in list(self.store.list_files()):
            if name in referenced:
                continue
            if (name.startswith(vertex_prefix) or name.startswith(run_prefix)
                    or name == f"{self.checkpoint_prefix}:staging"):
                self.store.delete(name)

    def _clear_checkpoint(self) -> None:
        """Completion: drop checkpoint files and flush deferred deletions."""
        for name in (f"{self.checkpoint_prefix}:staging", self._checkpoint_file):
            if self.store.exists(name):
                self.store.delete(name)
        retired, self._retired = self._retired, []
        for name in retired:
            if self.store.exists(name):
                self.store.delete(name)

    # --------------------------------------------------------- state teardown

    def _purge(self, program_name: str, vertex_prefix: str | None) -> None:
        """Delete *every* file a run of ``program_name`` owns on flash:
        sort-reduce run files, vertex base/overlay files, and this engine's
        checkpoint pair.  Only engine-owned prefixes are touched — graph
        files and other jobs' state are left alone."""
        prefixes = [f"{program_name}-s"]
        if vertex_prefix:
            prefixes.append(vertex_prefix + ":")
        for name in list(self.store.list_files()):
            if any(name.startswith(p) for p in prefixes):
                self.store.delete(name)
        for name in (f"{self.checkpoint_prefix}:staging", self._checkpoint_file):
            if self.store.exists(name):
                self.store.delete(name)
        self._retired = []

    def purge_program_state(self, program: VertexProgram) -> None:
        """Reclaim a dead run's flash state when no live :class:`EngineRun`
        exists (after a crash, or once a failed run was abandoned).

        The checkpoint — if one survives — names the run's vertex-data
        prefix, so the purge reaches files whose names are not derivable
        from the program alone.  This is the quarantine hook the service
        layer sweeps failed jobs through.
        """
        state = self._load_checkpoint(program)
        vertex_prefix = state["vertices"]["prefix"] if state else None
        self._purge(program.name, vertex_prefix)


class EngineRun:
    """One in-flight vertex-program run, advanced superstep by superstep.

    Holds exactly the loop state of the classic ``run()`` driver —
    checkpoint cadence, mode policy, the previous superstep's run file —
    so that a ``step()`` loop followed by :meth:`finish` reproduces the
    monolithic loop byte for byte.  Between ``step()`` calls other work
    (another job's superstep, a point-query batch) may charge the shared
    clock; per-superstep metrics are deltas around each step, so they stay
    exact, while :attr:`RunResult.elapsed_s` spans submit-to-finish wall
    (simulated) time — the job latency a service reports.
    """

    def __init__(self, engine: GraFBoostEngine, program: VertexProgram,
                 max_supersteps: int | None = None):
        self.engine = engine
        self.program = program
        self.limit = (program.max_supersteps() if max_supersteps is None
                      else max_supersteps)
        self.run_start = engine.clock.elapsed_s
        retire = engine._retire_file if engine.checkpoint_every else None

        state = engine._load_checkpoint(program) if engine.auto_resume else None
        engine.resumed_from_superstep = None
        if state is not None:
            (self.vertices, self.prev_run, self.superstep,
             self.result) = engine._restore(program, state)
            self.prev_chunks = self.prev_run.chunks()
            engine.resumed_from_superstep = self.superstep
        else:
            self.vertices = VertexArray(
                engine.store, engine.num_vertices, program.value_dtype,
                program.default_value, max_overlays=engine.max_overlays,
                retire=retire,
            )
            self.result = RunResult(algorithm=program.name, vertices=self.vertices)
            self.prev_chunks = program.initial_updates(engine.num_vertices)
            self.prev_run = None
            self.superstep = 0
        self.executor = SuperstepExecutor(
            engine.graph, self.vertices, program, engine.store, engine.backend,
            engine.chunk_bytes, fanout=engine.fanout, memory=engine.memory,
            lazy=engine.lazy, pool=engine.pool,
        )
        self.mode_table = build_modes(self.executor)
        self.footprint = semiexternal_footprint(engine.num_vertices,
                                                program.value_dtype)
        self.policy = None
        if engine.mode == "adaptive":
            budget = (engine.memory.budget if engine.memory is not None
                      else engine.store.device.profile.dram_capacity)
            self.policy = AdaptivePolicy(engine.num_vertices,
                                         engine.graph.num_edges,
                                         program.value_dtype, budget)
        # The mode of the superstep before this one — restored from the
        # checkpointed metrics on resume, so switch charges land at the
        # same supersteps in crashed and uninterrupted runs.
        self.prev_mode = (self.result.supersteps[-1].mode
                          if self.result.supersteps else None)
        self.last_checkpoint = self.superstep
        self.done = False
        self._finished = False

    @property
    def pending_records(self) -> int:
        """Incoming frontier size of the next superstep (a pure function of
        checkpointed state — the scheduler's decision input)."""
        if self.prev_run is not None:
            return self.prev_run.num_records
        return self.program.initial_frontier_hint(self.engine.num_vertices)

    def step(self) -> bool:
        """Run one superstep; returns False once the run needs no more."""
        if self.done or self.superstep >= self.limit:
            self.done = True
            return False
        engine = self.engine
        program = self.program
        if (engine.checkpoint_every and self.superstep > self.last_checkpoint
                and self.superstep % engine.checkpoint_every == 0):
            engine._write_checkpoint(program, self.result, self.vertices,
                                     self.prev_run, self.superstep)
            self.last_checkpoint = self.superstep
        if self.policy is not None:
            mode_name = self.policy.choose(self.pending_records)
        else:
            mode_name = engine.mode
        checkpoint = engine.clock.checkpoint()
        flash_bytes_start = engine.clock.bytes_moved("flash")
        charge_mode_switch(engine.clock, engine.store.device.profile,
                           self.prev_mode, mode_name, self.footprint)
        try:
            outcome = self.mode_table[mode_name].run_superstep(
                self.prev_chunks, self.superstep)
        except FlashError as e:
            e.add_note(f"while running {program.name} superstep {self.superstep}")
            # Structured context for failure records: which run, where.
            e.superstep = self.superstep
            e.algorithm = program.name
            raise
        if self.prev_run is not None:
            engine._discard_run(self.prev_run)
        self.prev_run = outcome.new_run
        self.result.supersteps.append(SuperstepMetrics(
            superstep=self.superstep,
            activated=outcome.activated,
            traversed_edges=outcome.traversed_edges,
            update_pairs=outcome.update_pairs,
            reduced_pairs=outcome.new_run.num_records,
            elapsed_s=checkpoint.elapsed_s,
            flash_bytes=engine.clock.bytes_moved("flash") - flash_bytes_start,
            flash_busy_s=checkpoint.busy_s("flash"),
            compute_busy_s=checkpoint.busy_s("cpu") + checkpoint.busy_s("accel"),
            mode=mode_name,
        ))
        self.prev_mode = mode_name
        self.result.sort_stats.append(outcome.sort_stats)
        self.vertices.maybe_compact()
        self.superstep += 1
        if outcome.new_run.num_records == 0 and outcome.activated == 0:
            self.done = True
            return False
        self.prev_chunks = self.prev_run.chunks()
        if outcome.new_run.num_records == 0:
            # Frontier died this superstep: one more (empty) pass would
            # change nothing, stop now.
            self.done = True
            return False
        if self.superstep >= self.limit:
            self.done = True
            return False
        return True

    def abandon(self) -> None:
        """Tear down a *failed* run but keep its last sealed checkpoint.

        A retry rebuilt with ``auto_resume=True`` continues from that
        checkpoint; everything the dead attempt wrote after it — overlay
        files, run files, the staging checkpoint — is swept through the
        same orphan logic crash recovery uses.  With no checkpoint on flash
        the attempt's whole footprint is purged (the retry restarts from
        scratch, which is what resuming "from the last sealed checkpoint"
        means when none was ever sealed).
        """
        self.done = True
        self._finished = True
        engine = self.engine
        state = engine._load_checkpoint(self.program)
        if state is not None:
            engine._sweep_orphans(self.program, state)
            engine._retired = []
        else:
            engine._purge(self.program.name, self.vertices.prefix)

    def cancel(self) -> None:
        """Abort an in-flight run and reclaim every file it owns on flash —
        checkpoint included.  Unlike :meth:`abandon` nothing survives: this
        is the cancellation/quarantine teardown, not a retry boundary."""
        self.done = True
        self._finished = True
        self.engine._purge(self.program.name, self.vertices.prefix)

    def finish(self) -> RunResult:
        """Final apply pass, checkpoint cleanup, and elapsed accounting."""
        if self._finished:
            return self.result
        self._finished = True
        self.done = True
        engine = self.engine
        if self.prev_run is not None and self.prev_run.num_records:
            engine._apply_pass(self.executor, self.prev_run, self.superstep)
            self.prev_run.delete()
        if engine.checkpoint_every:
            engine._clear_checkpoint()
        self.result.elapsed_s = engine.clock.elapsed_s - self.run_start
        return self.result
