"""System assembly: wire a hardware profile into a runnable stack.

A :class:`SystemConfig` owns one simulated clock, one flash device, one file
store and one cost-model backend — everything an engine run charges against.
:func:`make_system` builds the three GraFBoost-family stacks of the paper:

* ``grafboost`` — accelerator backend over raw flash + AOFFS (§IV).
* ``grafboost2`` — the same with 20 GB/s on-board DRAM (§V-C.3).
* ``grafsoft`` — software backend over a commodity SSD file system on the
  32-core server (§IV-F).

Scaled-down experiments pass ``scale_factor``: dataset, DRAM budget and the
512 MB sort-chunk size all shrink together, so external merging still
happens at the same *relative* depth as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.accelerator import AcceleratorBackend, SoftwareBackend
from repro.core.packing import PackingSpec
from repro.core.parallel import resolve_workers
from repro.engine.engine import GraFBoostEngine
from repro.engine.modes import resolve_mode
from repro.flash.aoffs import AppendOnlyFlashFS
from repro.flash.device import FlashDevice, FlashGeometry
from repro.flash.filestore import SSDFileSystem
from repro.flash.ftl import SSD
from repro.graph.csr import CSRGraph
from repro.graph.formats import FlashCSR
from repro.perf.clock import SimClock
from repro.perf.memory import MemoryTracker
from repro.perf.profiles import (
    GRAFBOOST,
    GRAFBOOST2,
    GRAFSOFT,
    HardwareProfile,
    MB,
)

#: The paper's in-memory sort chunk (512 MB), scaled with the experiment.
PAPER_CHUNK_BYTES = 512 * MB
#: Smallest chunk worth sorting separately in the scaled simulation (kept
#: well above the 8 KB flash page so run files aren't dominated by page
#: padding, which paper-size 512 MB chunks never see).
MIN_CHUNK_BYTES = 64 * 1024

_KINDS = {
    "grafboost": (GRAFBOOST, "aoffs"),
    "grafboost2": (GRAFBOOST2, "aoffs"),
    "grafsoft": (GRAFSOFT, "ssd"),
}


@dataclass
class SystemConfig:
    """One assembled system stack."""

    name: str
    profile: HardwareProfile
    scale_factor: float
    clock: SimClock
    device: FlashDevice
    store: object            # AppendOnlyFlashFS or SSDFileSystem
    backend: object          # AcceleratorBackend or SoftwareBackend
    memory: MemoryTracker
    chunk_bytes: int
    fanout: int = 16
    durable: bool = False
    #: Sort-reduce worker processes (1 = serial; resolved from
    #: ``REPRO_WORKERS`` when ``make_system`` is given ``workers=None``).
    workers: int = 1
    #: Engine execution mode (``sortreduce`` | ``semiexternal`` |
    #: ``densescan`` | ``adaptive``; resolved from ``REPRO_MODE`` when
    #: ``make_system`` is given ``mode=None``).
    mode: str = "sortreduce"

    def engine_for(self, graph: FlashCSR, num_vertices: int,
                   lazy: bool = True, checkpoint_every: int = 0,
                   auto_resume: bool = False,
                   checkpoint_prefix: str = "ckpt") -> GraFBoostEngine:
        return GraFBoostEngine(
            graph, self.store, self.backend, num_vertices,
            chunk_bytes=self.chunk_bytes, fanout=self.fanout,
            memory=self.memory, lazy=lazy,
            checkpoint_every=checkpoint_every, auto_resume=auto_resume,
            checkpoint_prefix=checkpoint_prefix,
            workers=self.workers, mode=self.mode,
        )

    def service_for(self, graph: FlashCSR, num_vertices: int,
                    config=None, quotas=None, default_root: int = 0):
        """A multi-tenant analytics service over this stack.

        Jobs submitted to the returned :class:`~repro.service.GraphService`
        run as interleaved :meth:`engine_for` engines (each with its own
        checkpoint namespace) plus batched point queries against ``graph``.
        """
        from repro.service import GraphService

        return GraphService(self, graph, num_vertices, config=config,
                            quotas=quotas, default_root=default_root)

    def load_graph(self, graph: CSRGraph, prefix: str = "graph") -> FlashCSR:
        """Serialize a CSR graph into this system's store."""
        return FlashCSR.write(self.store, prefix, graph)

    def remount(self) -> None:
        """Rebuild the file store from flash after a simulated power loss.

        The hardware — device, clock, backend — survives a crash; only the
        host-side store object dies.  The replacement store replays the
        durable metadata (journal or metadata log), which charges recovery
        reads against the shared clock, so recovered runs account their
        mount time honestly.  The fresh MemoryTracker keeps the old peak:
        DRAM contents died with power, but the experiment's peak-usage
        metric spans the whole run.
        """
        if not self.durable:
            raise RuntimeError(
                f"system {self.name!r} was not built durable=True; nothing "
                f"on flash can be remounted after a power loss")
        if isinstance(self.store, AppendOnlyFlashFS):
            self.store = AppendOnlyFlashFS(
                self.device, prefetch_pages=self.store.prefetch_pages,
                durable=True)
        else:
            ssd = SSD.mount(self.device,
                            ftl_overhead_s=self.profile.ftl_overhead_s)
            self.store = SSDFileSystem.mount(
                ssd, prefetch_pages=self.store.prefetch_pages)
        peak = self.memory.peak
        self.memory = MemoryTracker(budget=self.memory.budget,
                                    policy=self.memory.policy)
        self.memory.peak = peak

    def reattach_graph(self, flash_graph: FlashCSR) -> FlashCSR:
        """Point a graph handle at the remounted store (files survive)."""
        graph = FlashCSR(self.store, flash_graph.prefix,
                         flash_graph.num_vertices, flash_graph.num_edges,
                         has_weights=flash_graph.has_weights)
        graph.wasted_read_bytes = flash_graph.wasted_read_bytes
        return graph


def scaled_geometry(capacity_bytes: int, page_bytes: int = 8192,
                    min_blocks: int = 4096) -> FlashGeometry:
    """Flash geometry for a scaled device.

    Pages keep their real 8 KB size (page granularity drives the random
    access waste the paper measures), but blocks shrink so the device still
    has a realistic *number* of blocks (a real 1 TB device has ~500 K) for
    AOFFS's block-per-file allocation when thousands of small sorted runs
    and per-superstep overlays coexist.
    """
    pages_per_block = 256
    while pages_per_block > 1 and capacity_bytes // (pages_per_block * page_bytes) < min_blocks:
        pages_per_block //= 2
    num_blocks = max(min_blocks, -(-capacity_bytes // (pages_per_block * page_bytes)))
    return FlashGeometry(page_bytes=page_bytes, pages_per_block=pages_per_block,
                         num_blocks=num_blocks)


def make_system(kind: str, scale_factor: float = 1.0,
                dram_bytes: int | None = None,
                flash_capacity: int | None = None,
                num_vertices_hint: int | None = None,
                profile: HardwareProfile | None = None,
                faults=None, crashes=None,
                durable: bool = False,
                sanitize: bool | None = None,
                workers: int | None = None,
                mode: str | None = None) -> SystemConfig:
    """Build one of the GraFBoost-family stacks at a given scale.

    ``dram_bytes`` overrides the (scaled) DRAM budget — the Fig 13 memory
    sweep.  ``flash_capacity`` overrides device size; by default the scaled
    profile capacity is multiplied by 6 to absorb block-granular allocation
    slack of many coexisting run files.  ``num_vertices_hint`` sizes the
    accelerator's key packing (Fig 7).  ``faults`` is an optional
    :class:`~repro.flash.faults.FaultPlan` turning the run into a seeded
    chaos test.  ``crashes`` (a :class:`~repro.flash.faults.CrashPlan`)
    additionally injects power losses at seeded flash-op indices; it
    implies ``durable=True``, which makes the store write its metadata
    through to flash so :meth:`SystemConfig.remount` can recover it.
    ``sanitize`` attaches FlashSan (see :mod:`repro.flash.sanitizer`) to the
    device; ``None`` defers to the ``REPRO_SANITIZE`` environment variable.
    ``workers`` enables the parallel sort-reduce backend (``None`` defers to
    ``REPRO_WORKERS``, default 1 = serial); results, stats and simulated
    time are bit-identical for every worker count.  ``mode`` selects the
    engine execution mode (``None`` defers to ``REPRO_MODE``, default
    ``sortreduce``; see :mod:`repro.engine.modes`).
    """
    durable = durable or crashes is not None
    if profile is None:
        try:
            base_profile, store_kind = _KINDS[kind]
        except KeyError:
            known = ", ".join(sorted(_KINDS))
            raise KeyError(f"unknown system kind {kind!r}; known: {known}") from None
    else:
        base_profile = profile
        store_kind = "aoffs" if profile.has_accelerator else "ssd"

    scaled = base_profile.scaled(scale_factor) if scale_factor != 1.0 else base_profile
    if dram_bytes is not None:
        scaled = scaled.with_dram(dram_bytes)

    capacity = flash_capacity if flash_capacity is not None else scaled.flash_capacity * 6
    clock = SimClock()

    if store_kind == "aoffs":
        # Key widths are sized for the *paper-equivalent* vertex count so
        # the packing win (Fig 7) matches what the real datasets would get.
        if num_vertices_hint:
            equivalent = max(2, int(num_vertices_hint / scale_factor))
            packing = PackingSpec.for_vertex_count(equivalent, value_bits=32)
        else:
            packing = PackingSpec(key_bits=34, value_bits=32)
        backend = AcceleratorBackend(scaled, packing)
        device = FlashDevice(scaled_geometry(capacity), scaled, clock,
                             traffic_scale=backend.traffic_scale(),
                             faults=faults, crashes=crashes,
                             sanitize=sanitize)
        store = AppendOnlyFlashFS(device, durable=durable)
    else:
        backend = SoftwareBackend(scaled)
        device = FlashDevice(scaled_geometry(capacity), scaled, clock,
                             faults=faults, crashes=crashes,
                             sanitize=sanitize)
        store = SSDFileSystem(SSD(device, ftl_overhead_s=scaled.ftl_overhead_s,
                                  durable=durable),
                              durable=durable)

    chunk = int(PAPER_CHUNK_BYTES * scale_factor)
    chunk = max(MIN_CHUNK_BYTES, min(max(chunk, MIN_CHUNK_BYTES), scaled.dram_capacity * 4))
    memory = MemoryTracker(budget=max(scaled.dram_capacity, 4 * chunk), policy="strict")

    return SystemConfig(
        name=kind if profile is None else profile.name,
        profile=scaled,
        scale_factor=scale_factor,
        clock=clock,
        device=device,
        store=store,
        backend=backend,
        memory=memory,
        chunk_bytes=chunk,
        durable=durable,
        workers=resolve_workers(workers),
        mode=resolve_mode(mode),
    )
