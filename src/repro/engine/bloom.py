"""Re-export of :mod:`repro.core.bloom` under its historical engine location.

The filter itself is a generic data structure used both by Algorithm 4's
active-list generation (engine layer) and by the vertex array's per-overlay
skip filters (graph layer), so it lives in :mod:`repro.core`.
"""

from repro.core.bloom import BloomFilter

__all__ = ["BloomFilter"]
