"""Pluggable execution modes: sort-reduce, semi-external, dense scan.

GraFBoost's sort-reduce wins on the paper's scenario — sparse frontiers over
vertex data much larger than DRAM — but other engines win elsewhere:
FlashGraph-style *semi-external* execution (vertex state pinned in DRAM,
selective edge I/O) is faster whenever the vertex data fits, and
X-Stream-style *dense scans* (stream the whole adjacency sequentially) beat
per-vertex gathers once most vertices are active.  This module promotes
those strategies out of :mod:`repro.baselines` into first-class execution
modes of the real engine: every mode runs on the same simulated flash
stack, SimClock, checkpoint protocol and ``--workers`` pool, and produces a
sorted, reduced run file interchangeable with the sort-reduce path's.

An :class:`ExecutionMode` covers one superstep end to end — update
generation, reduction, and staging the finalized values into ``V`` — and
returns the same :class:`~repro.engine.superstep.SuperstepOutcome` the
default executor does, so the engine driver (metrics, checkpoints,
quiescence) is mode-agnostic.  The three static modes:

* ``sortreduce`` — today's path, byte-for-byte unchanged (pure delegation
  to :class:`~repro.engine.superstep.SuperstepExecutor`).  The default.
* ``semiexternal`` — a dense per-vertex value table in DRAM absorbs the
  update stream (through the shared
  :meth:`~repro.core.reduce_ops.ReduceOp.scatter_into` path, so FIRST/LAST
  ordering rules stay in one place); edge I/O stays selective.  The part of
  the table that does not fit the DRAM budget thrashes, charged with the
  same random-page-fault model as :mod:`repro.baselines.semiexternal`.
* ``densescan`` — one sequential scan of the full index + edge files per
  superstep, filtered by a dense active mask, feeding the ordinary
  external sort-reducer.  Frontier-independent I/O, promoted from
  :mod:`repro.baselines.edgecentric`.

On top, :class:`AdaptivePolicy` picks a static mode per superstep from
stats the engine already tracks — the incoming frontier size, average
degree vs. total edge volume, and the vertex-data footprint vs. the DRAM
budget — and :func:`charge_mode_switch` bills the cost of entering a mode
(loading the vertex table into DRAM) to the sim clock.  Decisions are pure
functions of checkpointed state, so adaptive runs stay bit-identical under
``--workers`` sweeps and crash/resume.
"""

from __future__ import annotations

import os
from typing import Callable, Iterator

import numpy as np

# DENSE_THRESHOLD is shared with the FlashGraph baseline model: the frontier
# density above which per-vertex random reads degrade to a sequential scan.
from repro.baselines.semiexternal import DENSE_THRESHOLD
from repro.core.external import MERGE_IO_BYTES, RunHandle, SortReduceStats, next_run_seq
from repro.core.kvstream import KVArray
from repro.engine.superstep import SuperstepExecutor, SuperstepOutcome
from repro.flash.device import FlashError
from repro.graph.formats import OFFSET_DTYPE, TARGET_DTYPE, WEIGHT_DTYPE

#: Every selectable mode (``adaptive`` picks among the static ones).
MODES = ("sortreduce", "semiexternal", "densescan", "adaptive")
STATIC_MODES = ("sortreduce", "semiexternal", "densescan")

#: Adaptive only commits to semi-external while the vertex table uses at
#: most this fraction of the DRAM budget, leaving headroom for the chunk
#: buffers the other modes need if a later superstep switches away.
SEMI_FIT_HEADROOM = 0.5

#: Edge chunk of the dense scan (record count), matching
#: :meth:`repro.graph.formats.FlashCSR.stream_edges`.
SCAN_EDGES_PER_CHUNK = 1 << 18


def resolve_mode(mode: str | None) -> str:
    """``None`` defers to ``REPRO_MODE`` (default ``sortreduce``)."""
    if mode is None:
        env = os.environ.get("REPRO_MODE", "").strip()
        mode = env if env else "sortreduce"
    if mode not in MODES:
        known = ", ".join(MODES)
        raise ValueError(f"unknown execution mode {mode!r}; known: {known}")
    return mode


def semiexternal_footprint(num_vertices: int, value_dtype: np.dtype) -> int:
    """DRAM bytes the semi-external vertex table needs: one dense value
    slot plus one touched-mask byte per vertex."""
    return num_vertices * (np.dtype(value_dtype).itemsize + 1)


class ExecutionMode:
    """One way to run a superstep against an assembled system stack.

    Modes wrap the engine's :class:`SuperstepExecutor` — they reuse its
    graph/vertex-array/store/backend wiring and its edge-push machinery —
    and must return a :class:`SuperstepOutcome` whose ``new_run`` is a
    sorted, reduced run file, regardless of how the reduction happened.
    Non-default modes always use Algorithm 3's lazy staging; the eager
    Algorithm 2 ablation exists only on the sort-reduce path.
    """

    name = "mode"

    def __init__(self, executor: SuperstepExecutor):
        self.ex = executor

    def run_superstep(self, prev_newv: Iterator[KVArray],
                      superstep: int) -> SuperstepOutcome:
        raise NotImplementedError


class SortReduceMode(ExecutionMode):
    """The paper's path, unchanged: delegate to the executor verbatim."""

    name = "sortreduce"

    def run_superstep(self, prev_newv: Iterator[KVArray],
                      superstep: int) -> SuperstepOutcome:
        return self.ex.run(prev_newv, superstep)


def _lazy_pass(ex: SuperstepExecutor, prev_newv: Iterator[KVArray],
               superstep: int,
               push: Callable[[np.ndarray, np.ndarray], int]) -> tuple[int, int]:
    """Algorithm 3's finalize + activate + stage loop with a pluggable push.

    Mirrors ``SuperstepExecutor._run_lazy`` exactly (that method stays
    untouched so the default path is byte-for-byte the seed's); ``push``
    receives each chunk's active (keys, values) and returns the number of
    edges it traversed.  Returns ``(activated, traversed)``.
    """
    program = ex.program
    cursor = ex.vertices.cursor()
    overlay = ex.vertices.overlay_writer(superstep)
    activated = 0
    traversed = 0
    for chunk in prev_newv:
        if len(chunk) == 0:
            continue
        old_values, old_steps = cursor.lookup(chunk.keys)
        finalized = program.finalize(chunk.values, old_values)
        mask = program.is_active(finalized, old_values, old_steps, superstep)
        active_keys = chunk.keys[mask]
        active_values = np.asarray(finalized)[mask]
        if len(active_keys) == 0:
            continue
        overlay.add(KVArray(active_keys, active_values))
        activated += len(active_keys)
        traversed += push(active_keys, active_values)
    overlay.close()
    return activated, traversed


class DramAggregator:
    """A dense in-DRAM vertex-update table that quacks like a sort-reducer.

    ``add(kv)`` reduces each update batch straight into a per-vertex value
    array via the shared :meth:`ReduceOp.scatter_into` path — no run files,
    no external merging.  The table pins as much of the DRAM budget as is
    available; updates landing in the unpinned remainder fault whole pages
    in and out, charged with the FlashGraph thrash model
    (:mod:`repro.baselines.semiexternal`).  ``finish()`` emits the touched
    slots, already sorted by construction, as one sealed run file.
    """

    def __init__(self, ex: SuperstepExecutor, superstep: int):
        program = ex.program
        self.ex = ex
        self.op = program.reduce_op
        self.value_dtype = np.dtype(program.value_dtype)
        n = max(ex.graph.num_vertices, ex.vertices.num_vertices)
        self.values = np.zeros(n, dtype=self.value_dtype)
        self.touched = np.zeros(n, dtype=bool)
        self.stats = SortReduceStats()
        self._batch_out = 0
        # Shares the reducers' run-name counter so every engine-owned run
        # file is unique and the crash tests can pin name lengths.
        self.name = f"{program.name}-s{superstep}-{next_run_seq()}:run-0"
        footprint = semiexternal_footprint(n, self.value_dtype)
        self._mem_label = f"{self.name}:vertex-dram"
        pinned = footprint
        if ex.memory is not None:
            pinned = min(footprint, ex.memory.available)
            ex.memory.allocate(self._mem_label, pinned)
        self._mem_allocated = ex.memory is not None
        #: Fraction of the vertex table that did not fit in DRAM; accesses
        #: to it fault pages in and out (FlashGraph's Fig 13 degradation).
        self.swap = (footprint - pinned) / footprint if footprint else 0.0

    @property
    def clock(self):
        return self.ex.store.device.clock

    def add(self, kv: KVArray) -> None:
        """Reduce one unsorted update batch into the dense table."""
        if kv.value_dtype != self.value_dtype:
            raise ValueError(f"value dtype {kv.value_dtype} != {self.value_dtype}")
        if len(kv) == 0:
            return
        self.stats.total_input_pairs += len(kv)
        # Sorting + reducing the batch costs the same as a chunk sort of
        # equal volume; the dense scatter is random-access CPU work.
        self.ex.backend.charge_chunk_sort(self.clock, kv.nbytes)
        distinct = self.op.scatter_into(self.values, self.touched,
                                        kv.keys, kv.values)
        self.stats.record(0, len(kv), distinct)
        self._batch_out += distinct
        profile = self.ex.store.device.profile
        scatter_bytes = distinct * (8 + self.value_dtype.itemsize)
        self.clock.charge_pool(
            "cpu", scatter_bytes / profile.cpu_scatter_bw_per_thread,
            profile.cpu_threads)
        self._charge_thrash(distinct)

    def _charge_thrash(self, vertices_touched: int) -> None:
        """Random page faults for table slots beyond the DRAM budget
        (the baseline model's ``_charge_thrash``, against the real clock)."""
        if self.swap <= 0 or vertices_touched == 0:
            return
        profile = self.ex.store.device.profile
        page = profile.flash_page_bytes
        faults = int(vertices_touched * self.swap)
        if faults == 0:
            return
        nbytes = faults * page
        self.clock.charge(
            "flash", faults * profile.flash_read_latency_s
            + nbytes / profile.flash_read_bw, nbytes=nbytes, ops=faults)
        self.clock.charge(
            "flash", faults * profile.flash_write_latency_s
            + nbytes / profile.flash_write_bw, nbytes=nbytes, ops=faults)

    def finish(self) -> RunHandle:
        """Emit the touched slots as one sorted, sealed run file."""
        store = self.ex.store
        try:
            idx = np.flatnonzero(self.touched)
            n = len(idx)
            if n == 0:
                self.stats.record(1, self._batch_out, 0)
                return RunHandle(store, self.name, 0, self.value_dtype)
            out = KVArray(idx.astype(np.uint64), self.values[idx])
            per_chunk = max(1, MERGE_IO_BYTES // out.record_bytes)
            for start in range(0, n, per_chunk):
                store.append(self.name,
                             out.slice(start, min(start + per_chunk, n)).to_bytes())
            store.seal(self.name)
            # Folding the per-batch reductions into one table plays the
            # merge phase's role in the stats (Fig 14's written fractions).
            self.stats.record(1, self._batch_out, n)
            return RunHandle(store, self.name, n, self.value_dtype, level=1)
        finally:
            self._free()

    def abandon(self) -> None:
        """Error path: release DRAM and delete any partial run file."""
        self._free()
        try:
            if self.ex.store.exists(self.name):
                self.ex.store.delete(self.name)
        except FlashError:
            pass  # best-effort cleanup on an already-failing device

    def _free(self) -> None:
        if self._mem_allocated:
            self._mem_allocated = False
            self.ex.memory.free(self._mem_label)


class SemiExternalMode(ExecutionMode):
    """Vertex data pinned in DRAM, selective edge I/O (FlashGraph-style).

    Identical to the lazy sort-reduce pass on the edge side — the same
    coalesced index/edge gathers, the same edge-stream charge — but the
    update stream lands in a :class:`DramAggregator` instead of the
    external sort-reducer, eliminating all intermediate run traffic.
    """

    name = "semiexternal"

    def run_superstep(self, prev_newv: Iterator[KVArray],
                      superstep: int) -> SuperstepOutcome:
        ex = self.ex
        agg = DramAggregator(ex, superstep)
        try:
            activated, traversed = _lazy_pass(
                ex, prev_newv, superstep,
                lambda keys, values: ex._push_edges(agg, keys, values))
            new_run = agg.finish()
        except Exception:
            agg.abandon()
            raise
        return SuperstepOutcome(
            new_run=new_run,
            sort_stats=agg.stats,
            activated=activated,
            traversed_edges=traversed,
            update_pairs=agg.stats.total_input_pairs,
        )


class DenseScanMode(ExecutionMode):
    """Whole-adjacency streaming scan for dense frontiers (X-Stream-style).

    Stages the frontier into a dense active mask, then reads the index and
    edge files sequentially once, filters edges by source activity, and
    feeds the surviving updates to the ordinary external sort-reducer.
    I/O volume is frontier-independent — the winning trade exactly when
    most vertices are active.
    """

    name = "densescan"

    def run_superstep(self, prev_newv: Iterator[KVArray],
                      superstep: int) -> SuperstepOutcome:
        ex = self.ex
        program = ex.program
        n = ex.graph.num_vertices
        active_mask = np.zeros(n, dtype=bool)
        values_dense = np.zeros(n, dtype=program.value_dtype)

        def stage(keys: np.ndarray, values: np.ndarray) -> int:
            idx = keys.astype(np.int64)
            active_mask[idx] = True
            values_dense[idx] = values
            return 0  # edges are traversed by the scan below

        activated, _ = _lazy_pass(ex, prev_newv, superstep, stage)
        reducer = ex._make_reducer(superstep)
        try:
            traversed = 0
            if activated:
                traversed = self._scan(reducer, active_mask, values_dense)
            new_run = reducer.finish()
        except Exception:
            reducer.close()
            raise
        return SuperstepOutcome(
            new_run=new_run,
            sort_stats=reducer.stats,
            activated=activated,
            traversed_edges=traversed,
            update_pairs=reducer.stats.total_input_pairs,
        )

    def _scan(self, reducer, active_mask: np.ndarray,
              values_dense: np.ndarray) -> int:
        """One sequential pass over index + edges, pushing active updates."""
        ex = self.ex
        program = ex.program
        graph = ex.graph
        n = graph.num_vertices
        offsets = ex.store.read_array(graph.index_file, OFFSET_DTYPE).astype(np.int64)
        degrees = np.diff(offsets)
        srcs_all = np.repeat(np.arange(n, dtype=np.int64), degrees)

        # Per-vertex message fast path, expanded to a dense lookup table so
        # each edge chunk is one fancy index instead of a per-edge call.
        msg_dense = None
        if not program.uses_weights:
            active_idx = np.flatnonzero(active_mask)
            per_vertex = program.vertex_messages(
                values_dense[active_idx], active_idx.astype(np.uint64),
                degrees[active_idx].astype(np.uint64))
            if per_vertex is not None:
                msg_dense = np.zeros(n, dtype=program.value_dtype)
                msg_dense[active_idx] = per_vertex

        traversed = 0
        for start in range(0, graph.num_edges, SCAN_EDGES_PER_CHUNK):
            cnt = min(SCAN_EDGES_PER_CHUNK, graph.num_edges - start)
            dsts = ex.store.read_array(graph.edge_file, TARGET_DTYPE, start, cnt)
            weights = None
            if program.uses_weights:
                weights = ex.store.read_array(graph.weight_file, WEIGHT_DTYPE,
                                              start, cnt)
            srcs = srcs_all[start:start + cnt]
            sel = active_mask[srcs]
            hit = int(np.count_nonzero(sel))
            if hit == 0:
                continue
            src_sel = srcs[sel]
            if msg_dense is not None:
                messages = msg_dense[src_sel]
            else:
                messages = program.edge_program(
                    values_dense[src_sel], src_sel.astype(np.uint64),
                    weights[sel] if weights is not None else None,
                    degrees[src_sel].astype(np.uint64))
            update = KVArray(dsts[sel],
                             np.asarray(messages, dtype=program.value_dtype))
            reducer.add(update)
            ex.backend.charge_edge_stream(ex.clock, update.nbytes)
            traversed += hit
        return traversed


def build_modes(executor: SuperstepExecutor) -> dict[str, ExecutionMode]:
    """All static modes wrapping one executor (construction is charge-free)."""
    return {mode.name: mode for mode in (
        SortReduceMode(executor),
        SemiExternalMode(executor),
        DenseScanMode(executor),
    )}


class AdaptivePolicy:
    """Per-superstep mode choice from stats the engine already tracks.

    The decision inputs are all pure functions of checkpointed state — the
    incoming frontier size (the previous run's record count), the graph's
    shape, and the configured DRAM budget — so the trace is deterministic
    across worker counts and identical on crash/resume:

    1. vertex table fits comfortably in DRAM → ``semiexternal`` (no
       external sorting at all beats both scan strategies);
    2. dense frontier, or the selective gather would move at least as many
       bytes as one full scan → ``densescan``;
    3. otherwise → ``sortreduce`` (the paper's scenario: sparse frontier,
       vertex data out of core).
    """

    def __init__(self, num_vertices: int, num_edges: int,
                 value_dtype: np.dtype, dram_budget: int):
        self.num_vertices = max(1, num_vertices)
        self.avg_degree = num_edges / self.num_vertices
        self.scan_bytes = ((num_vertices + 1) * OFFSET_DTYPE.itemsize
                           + num_edges * TARGET_DTYPE.itemsize)
        self.footprint = semiexternal_footprint(num_vertices, value_dtype)
        self.dram_budget = dram_budget

    def choose(self, incoming: int) -> str:
        if self.footprint <= self.dram_budget * SEMI_FIT_HEADROOM:
            return "semiexternal"
        density = incoming / self.num_vertices
        gather_bytes = incoming * self.avg_degree * TARGET_DTYPE.itemsize
        if density >= DENSE_THRESHOLD or gather_bytes >= self.scan_bytes:
            return "densescan"
        return "sortreduce"


def charge_mode_switch(clock, profile, from_mode: str | None, to_mode: str,
                       footprint_bytes: int) -> None:
    """Bill the cost of switching execution modes between supersteps.

    Entering ``semiexternal`` streams the vertex table into DRAM (one
    CPU-side pass over the footprint); leaving it, or moving between the
    two flash-resident modes, is free — their state already lives in the
    run files.  Staying in the same mode costs nothing, so a static
    ``sortreduce`` run charges exactly zero here (golden-preserving) and an
    adaptive run with a constant trace is bit-identical to the matching
    static mode.
    """
    if from_mode is None:
        from_mode = "sortreduce"
    if from_mode == to_mode or to_mode != "semiexternal":
        return
    work = footprint_bytes / profile.cpu_stream_bw_per_thread
    clock.charge_pool("cpu", work, profile.cpu_threads)
