"""Superstep execution: Algorithms 2 and 3 of the paper.

The production path is **Algorithm 3** (lazy active-vertex evaluation): one
sequential pass over the previous superstep's ``newV`` simultaneously

1. finalizes each vertex's reduced update against its old value in ``V``,
2. decides activity,
3. stages the finalized value into ``V``'s overlay for this superstep, and
4. pushes the active vertices' out-edges through the edge program into the
   external sort-reducer,

saving the two extra I/O operations per active vertex that Algorithm 2's
materialized active list costs (§III-C).  Algorithm 2 is also implemented —
it writes and re-reads the explicit active list — so the lazy-evaluation
ablation can measure exactly that difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.external import ExternalSortReducer, RunHandle, SortReduceStats
from repro.core.kvstream import KVArray
from repro.engine.api import VertexProgram
from repro.graph.formats import FlashCSR
from repro.graph.vertexdata import VertexArray


@dataclass
class SuperstepOutcome:
    """What one superstep produced."""

    new_run: RunHandle
    sort_stats: SortReduceStats
    activated: int
    traversed_edges: int
    update_pairs: int


class SuperstepExecutor:
    """Runs supersteps of a vertex program against one system stack."""

    def __init__(self, graph: FlashCSR, vertices: VertexArray, program: VertexProgram,
                 store, backend, chunk_bytes: int, fanout: int = 16,
                 memory=None, lazy: bool = True, pool=None):
        self.graph = graph
        self.vertices = vertices
        self.program = program
        self.store = store
        self.backend = backend
        self.chunk_bytes = chunk_bytes
        self.fanout = fanout
        self.memory = memory
        self.lazy = lazy
        self.pool = pool

    @property
    def clock(self):
        return self.store.device.clock

    # -------------------------------------------------------------- superstep

    def run(self, prev_newv: Iterator[KVArray], superstep: int) -> SuperstepOutcome:
        if self.lazy:
            return self._run_lazy(prev_newv, superstep)
        return self._run_eager(prev_newv, superstep)

    def _run_lazy(self, prev_newv: Iterator[KVArray], superstep: int) -> SuperstepOutcome:
        """Algorithm 3: finalize + activate + stage + push in one pass."""
        program = self.program
        reducer = self._make_reducer(superstep)
        try:
            cursor = self.vertices.cursor()
            overlay = self.vertices.overlay_writer(superstep)
            activated = 0
            traversed = 0
            for chunk in prev_newv:
                if len(chunk) == 0:
                    continue
                old_values, old_steps = cursor.lookup(chunk.keys)
                finalized = program.finalize(chunk.values, old_values)
                mask = program.is_active(finalized, old_values, old_steps, superstep)
                active_keys = chunk.keys[mask]
                active_values = np.asarray(finalized)[mask]
                if len(active_keys) == 0:
                    continue
                overlay.add(KVArray(active_keys, active_values))
                activated += len(active_keys)
                traversed += self._push_edges(reducer, active_keys, active_values)
            overlay.close()
            new_run = reducer.finish()
        except Exception:
            # The superstep failed (device error, worker death, bad program
            # output): release the reducer's DRAM buffer and run files, then
            # let the typed error propagate.
            reducer.close()
            raise
        return SuperstepOutcome(
            new_run=new_run,
            sort_stats=reducer.stats,
            activated=activated,
            traversed_edges=traversed,
            update_pairs=reducer.stats.total_input_pairs,
        )

    def _run_eager(self, prev_newv: Iterator[KVArray], superstep: int) -> SuperstepOutcome:
        """Algorithm 2: materialize the active list A_i, then push from it.

        Two extra I/O operations per active vertex vs the lazy path: the
        write of A_i and its read back (§III-C).
        """
        program = self.program
        cursor = self.vertices.cursor()
        overlay = self.vertices.overlay_writer(superstep)
        active_file = f"{self.vertices.prefix}:active-{superstep}"
        active_records = 0
        rec_dtype = np.dtype([("k", "<u8"), ("v", program.value_dtype)])
        for chunk in prev_newv:
            if len(chunk) == 0:
                continue
            old_values, old_steps = cursor.lookup(chunk.keys)
            finalized = program.finalize(chunk.values, old_values)
            mask = program.is_active(finalized, old_values, old_steps, superstep)
            active_keys = chunk.keys[mask]
            active_values = np.asarray(finalized)[mask]
            if len(active_keys) == 0:
                continue
            overlay.add(KVArray(active_keys, active_values))
            records = np.empty(len(active_keys), dtype=rec_dtype)
            records["k"] = active_keys
            records["v"] = active_values
            self.store.append(active_file, records.tobytes())  # extra I/O #1
            active_records += len(active_keys)
        overlay.close()

        reducer = self._make_reducer(superstep)
        try:
            activated = active_records
            traversed = 0
            if active_records:
                self.store.seal(active_file)
                item = rec_dtype.itemsize
                per_chunk = max(1, (1 << 22) // item)
                for start in range(0, active_records, per_chunk):
                    n = min(per_chunk, active_records - start)
                    raw = self.store.read(active_file, start * item, n * item)  # extra I/O #2
                    records = np.frombuffer(raw, dtype=rec_dtype)
                    traversed += self._push_edges(reducer, records["k"].copy(),
                                                  records["v"].copy())
                self.store.delete(active_file)
            new_run = reducer.finish()
        except Exception:
            reducer.close()
            raise
        return SuperstepOutcome(
            new_run=new_run,
            sort_stats=reducer.stats,
            activated=activated,
            traversed_edges=traversed,
            update_pairs=reducer.stats.total_input_pairs,
        )

    # ----------------------------------------------------------------- pieces

    def _make_reducer(self, superstep: int) -> ExternalSortReducer:
        return ExternalSortReducer(
            self.store, self.program.reduce_op, self.program.value_dtype,
            self.backend, self.chunk_bytes, fanout=self.fanout,
            name_prefix=f"{self.program.name}-s{superstep}", memory=self.memory,
            pool=self.pool,
        )

    def _push_edges(self, reducer: ExternalSortReducer, active_keys: np.ndarray,
                    active_values: np.ndarray) -> int:
        """Stream the active vertices' out-edges through the edge program."""
        program = self.program
        starts, ends = self.graph.index_lookup(active_keys)
        degrees = ends - starts
        targets = self.graph.edges_for(starts, ends)
        if len(targets) == 0:
            return 0
        weights = self.graph.weights_for(starts, ends) if program.uses_weights else None
        per_vertex = None
        if weights is None:
            per_vertex = program.vertex_messages(
                active_values, active_keys, degrees.astype(np.uint64))
        if per_vertex is not None:
            messages = np.repeat(per_vertex, degrees)
        else:
            src_values = np.repeat(active_values, degrees)
            src_ids = np.repeat(active_keys, degrees)
            src_degrees = np.repeat(degrees, degrees).astype(np.uint64)
            messages = program.edge_program(src_values, src_ids, weights, src_degrees)
        update = KVArray(targets, np.asarray(messages, dtype=program.value_dtype))
        reducer.add(update)
        self.backend.charge_edge_stream(self.clock, update.nbytes)
        return len(targets)
