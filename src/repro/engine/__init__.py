"""The GraFBoost vertex-centric engine (§III-C, §IV).

Push-style vertex programs (edge_program / vertex_update / finalize /
is_active, Algorithm 1's vocabulary) are executed in bulk-synchronous
supersteps whose random vertex updates are routed through external
sort-reduce:

* :mod:`repro.engine.api` — the :class:`VertexProgram` interface and the
  all-active vertex list generator (§IV-D's hardware generator module).
* :mod:`repro.engine.superstep` — Algorithm 3 (lazy active-vertex
  evaluation, the production path) and Algorithm 2 (eager) for the
  ablation.
* :mod:`repro.engine.bloom` — the bloom filter of Algorithm 4.
* :mod:`repro.engine.engine` — the superstep driver and run metrics.
* :mod:`repro.engine.config` — system assembly: GraFBoost / GraFBoost2 /
  GraFSoft stacks at a chosen scale.
"""

from repro.engine.api import VertexProgram, all_active_chunks
from repro.engine.bloom import BloomFilter
from repro.engine.engine import GraFBoostEngine, RunResult, SuperstepMetrics
from repro.engine.config import SystemConfig, make_system

__all__ = [
    "VertexProgram",
    "all_active_chunks",
    "BloomFilter",
    "GraFBoostEngine",
    "RunResult",
    "SuperstepMetrics",
    "SystemConfig",
    "make_system",
]
