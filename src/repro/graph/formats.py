"""On-flash graph layout (Fig 6) and a latency-aware reader.

A graph is two immutable files in a file store:

* ``{prefix}:index`` — ``num_vertices + 1`` uint64 offsets; entry ``v`` is
  the position of vertex ``v``'s first outbound edge in the edge file.
* ``{prefix}:edges`` — uint64 destination vertex ids, grouped by source.
* ``{prefix}:weights`` — optional float32 edge properties, aligned with the
  edge file.

Reads of edges for a *sorted* active-vertex list are coalesced: byte ranges
separated by less than the device's latency-equivalent gap (``latency ×
bandwidth``) are fetched as one read, trading some wasted bytes for fewer
latency stalls.  This models the lookahead buffers of §V-C.3 — a low-latency
raw-flash device coalesces less and "almost removes unused flash reads",
while a commodity SSD must read ahead more aggressively.  Wasted bytes are
tracked so the effect is measurable.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

OFFSET_DTYPE = np.dtype("<u8")
TARGET_DTYPE = np.dtype("<u8")
WEIGHT_DTYPE = np.dtype("<f4")


def coalesce_ranges(starts: np.ndarray, ends: np.ndarray, max_gap: int) -> list[tuple[int, int]]:
    """Merge sorted, possibly-overlapping [start, end) ranges whose gaps are
    at most ``max_gap``; returns merged (start, end) spans.

    A span boundary falls wherever a start exceeds the running maximum of
    all previous ends by more than ``max_gap``.  The global running maximum
    and the per-span running maximum agree at every boundary decision (a
    carried-over larger end from an earlier span implies the gap test fails
    either way), so one cummax pass finds the boundaries and a segmented
    reduction recovers the exact per-span end.
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    nonempty = ends > starts
    if not nonempty.all():
        starts, ends = starts[nonempty], ends[nonempty]
    if len(starts) == 0:
        return []
    covered = np.maximum.accumulate(ends)
    first = np.empty(len(starts), dtype=bool)
    first[0] = True
    np.greater(starts[1:] - covered[:-1], max_gap, out=first[1:])
    boundaries = np.flatnonzero(first)
    span_starts = starts[boundaries]
    span_ends = np.maximum.reduceat(ends, boundaries)
    return list(zip(span_starts.tolist(), span_ends.tolist()))


class FlashCSR:
    """Reader/writer for the on-flash CSR format."""

    def __init__(self, store, prefix: str, num_vertices: int, num_edges: int,
                 has_weights: bool = False):
        self.store = store
        self.prefix = prefix
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self.has_weights = has_weights
        self.wasted_read_bytes = 0  # coalescing overshoot, for the ablation

    # ---------------------------------------------------------------- layout

    @property
    def index_file(self) -> str:
        return f"{self.prefix}:index"

    @property
    def edge_file(self) -> str:
        return f"{self.prefix}:edges"

    @property
    def weight_file(self) -> str:
        return f"{self.prefix}:weights"

    @property
    def nbytes(self) -> int:
        """Total on-flash size of the graph structure."""
        total = (self.num_vertices + 1) * OFFSET_DTYPE.itemsize
        total += self.num_edges * TARGET_DTYPE.itemsize
        if self.has_weights:
            total += self.num_edges * WEIGHT_DTYPE.itemsize
        return total

    @staticmethod
    def write(store, prefix: str, graph: CSRGraph) -> "FlashCSR":
        """Serialize an in-memory CSR graph into flash files."""
        out = FlashCSR(store, prefix, graph.num_vertices, graph.num_edges,
                       has_weights=graph.has_weights)
        store.append_array(out.index_file, graph.offsets.astype(OFFSET_DTYPE))
        store.seal(out.index_file)
        store.append_array(out.edge_file, graph.targets.astype(TARGET_DTYPE))
        store.seal(out.edge_file)
        if graph.has_weights:
            store.append_array(out.weight_file, graph.weights.astype(WEIGHT_DTYPE))
            store.seal(out.weight_file)
        return out

    # ------------------------------------------------------------- device gap

    def _latency_gap_bytes(self) -> int:
        """Coalescing window: ranges closer than this merge into one read.

        The window is the larger of (a) one access latency's worth of
        sequential transfer — reading the gap is cheaper than a new access —
        and (b) one flash page, since ranges sharing a page are fetched by
        the same physical read anyway.  A lower-latency device keeps a
        smaller window and wastes fewer bytes (§V-C.3's lookahead buffers).
        """
        profile = self.store.device.profile
        return max(int(profile.flash_read_latency_s * profile.flash_read_bw),
                   profile.flash_page_bytes)

    # ----------------------------------------------------------------- lookups

    def index_lookup(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Edge-file offset ranges for a sorted array of vertex ids.

        Returns (starts, ends) in *edge units*.  Index entries are fetched
        with coalesced reads over the index file.
        """
        if len(keys) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        keys = np.asarray(keys, dtype=np.int64)
        if np.any(keys[1:] < keys[:-1]):
            raise ValueError("index_lookup requires sorted keys")
        if keys[0] < 0 or keys[-1] >= self.num_vertices:
            raise ValueError("vertex id out of range")
        item = OFFSET_DTYPE.itemsize
        gap = max(1, self._latency_gap_bytes() // item)
        spans = coalesce_ranges(keys, keys + 2, gap)
        block, span_starts, block_base = self._read_spans(self.index_file, OFFSET_DTYPE, spans)
        block = block.astype(np.int64)
        span_idx = np.searchsorted(span_starts, keys, side="right") - 1
        local = block_base[span_idx] + (keys - span_starts[span_idx])
        return block[local], block[local + 1]

    def edges_for(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        """Destination ids of the edge ranges, concatenated in order."""
        return self._gather(self.edge_file, TARGET_DTYPE, starts, ends)

    def weights_for(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        if not self.has_weights:
            raise ValueError(f"graph {self.prefix!r} has no edge weights")
        return self._gather(self.weight_file, WEIGHT_DTYPE, starts, ends)

    def _read_spans(self, filename: str, dtype: np.dtype, spans: list[tuple[int, int]],
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Read every coalesced span (one store read each, in order) and
        return (concatenated data, span starts, offset of each span's data
        in the concatenation)."""
        blocks = [self.store.read_array(filename, dtype, s, e - s) for s, e in spans]
        span_starts = np.fromiter((s for s, _ in spans), dtype=np.int64, count=len(spans))
        lengths = np.fromiter((len(b) for b in blocks), dtype=np.int64, count=len(blocks))
        block_base = np.zeros(len(spans), dtype=np.int64)
        np.cumsum(lengths[:-1], out=block_base[1:])
        return (blocks[0] if len(blocks) == 1 else np.concatenate(blocks),
                span_starts, block_base)

    def _gather(self, filename: str, dtype: np.dtype, starts: np.ndarray,
                ends: np.ndarray) -> np.ndarray:
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        lengths = np.maximum(ends - starts, 0)
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=dtype)
        item = dtype.itemsize
        gap = max(1, self._latency_gap_bytes() // item)
        spans = coalesce_ranges(starts, ends, gap)
        block, span_starts, block_base = self._read_spans(filename, dtype, spans)
        self.wasted_read_bytes += len(block) * item
        # Scatter-gather index arithmetic: each range's slice of its covering
        # span, flattened into one fancy-index read of the concatenated data.
        nonempty = lengths > 0
        s_nz, len_nz = starts[nonempty], lengths[nonempty]
        # Dense supersteps request adjacent ranges tiling one span exactly —
        # the gather is the identity and the fancy index can be skipped.
        if (len(spans) == 1 and total == len(block) and s_nz[0] == span_starts[0]
                and np.array_equal(s_nz[1:], s_nz[:-1] + len_nz[:-1])):
            self.wasted_read_bytes -= total * item
            return block.copy()  # writable, like the fancy-indexed result
        span_idx = np.searchsorted(span_starts, s_nz, side="right") - 1
        base = block_base[span_idx] + (s_nz - span_starts[span_idx])
        range_start = np.cumsum(len_nz) - len_nz
        within = np.arange(total, dtype=np.int64) - np.repeat(range_start, len_nz)
        out = block[np.repeat(base, len_nz) + within]
        self.wasted_read_bytes -= total * item
        return out

    # ---------------------------------------------------------------- streams

    def stream_edges(self, edges_per_chunk: int = 1 << 18):
        """Sequentially scan the whole graph, yielding (srcs, dsts[, weights]).

        The access pattern edge-centric systems (X-Stream) and dense
        supersteps use: pure sequential reads of the index and edge files.
        """
        offsets = self.store.read_array(self.index_file, OFFSET_DTYPE).astype(np.int64)
        degrees = np.diff(offsets)
        srcs_all = np.repeat(np.arange(self.num_vertices, dtype=np.uint64), degrees)
        for start in range(0, self.num_edges, edges_per_chunk):
            n = min(edges_per_chunk, self.num_edges - start)
            dsts = self.store.read_array(self.edge_file, TARGET_DTYPE, start, n)
            weights = None
            if self.has_weights:
                weights = self.store.read_array(self.weight_file, WEIGHT_DTYPE, start, n)
            yield srcs_all[start:start + n], dsts, weights

    def out_degrees(self) -> np.ndarray:
        """Per-vertex outbound degree (one sequential index scan)."""
        offsets = self.store.read_array(self.index_file, OFFSET_DTYPE).astype(np.int64)
        return np.diff(offsets).astype(np.uint64)
