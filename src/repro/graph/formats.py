"""On-flash graph layout (Fig 6) and a latency-aware reader.

A graph is two immutable files in a file store:

* ``{prefix}:index`` — ``num_vertices + 1`` uint64 offsets; entry ``v`` is
  the position of vertex ``v``'s first outbound edge in the edge file.
* ``{prefix}:edges`` — uint64 destination vertex ids, grouped by source.
* ``{prefix}:weights`` — optional float32 edge properties, aligned with the
  edge file.

Reads of edges for a *sorted* active-vertex list are coalesced: byte ranges
separated by less than the device's latency-equivalent gap (``latency ×
bandwidth``) are fetched as one read, trading some wasted bytes for fewer
latency stalls.  This models the lookahead buffers of §V-C.3 — a low-latency
raw-flash device coalesces less and "almost removes unused flash reads",
while a commodity SSD must read ahead more aggressively.  Wasted bytes are
tracked so the effect is measurable.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

OFFSET_DTYPE = np.dtype("<u8")
TARGET_DTYPE = np.dtype("<u8")
WEIGHT_DTYPE = np.dtype("<f4")


def coalesce_ranges(starts: np.ndarray, ends: np.ndarray, max_gap: int) -> list[tuple[int, int]]:
    """Merge sorted, possibly-overlapping [start, end) ranges whose gaps are
    at most ``max_gap``; returns merged (start, end) spans."""
    spans: list[tuple[int, int]] = []
    for s, e in zip(starts, ends):
        s, e = int(s), int(e)
        if e <= s:
            continue
        if spans and s - spans[-1][1] <= max_gap:
            prev_s, prev_e = spans[-1]
            spans[-1] = (prev_s, max(prev_e, e))
        else:
            spans.append((s, e))
    return spans


class FlashCSR:
    """Reader/writer for the on-flash CSR format."""

    def __init__(self, store, prefix: str, num_vertices: int, num_edges: int,
                 has_weights: bool = False):
        self.store = store
        self.prefix = prefix
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self.has_weights = has_weights
        self.wasted_read_bytes = 0  # coalescing overshoot, for the ablation

    # ---------------------------------------------------------------- layout

    @property
    def index_file(self) -> str:
        return f"{self.prefix}:index"

    @property
    def edge_file(self) -> str:
        return f"{self.prefix}:edges"

    @property
    def weight_file(self) -> str:
        return f"{self.prefix}:weights"

    @property
    def nbytes(self) -> int:
        """Total on-flash size of the graph structure."""
        total = (self.num_vertices + 1) * OFFSET_DTYPE.itemsize
        total += self.num_edges * TARGET_DTYPE.itemsize
        if self.has_weights:
            total += self.num_edges * WEIGHT_DTYPE.itemsize
        return total

    @staticmethod
    def write(store, prefix: str, graph: CSRGraph) -> "FlashCSR":
        """Serialize an in-memory CSR graph into flash files."""
        out = FlashCSR(store, prefix, graph.num_vertices, graph.num_edges,
                       has_weights=graph.has_weights)
        store.append_array(out.index_file, graph.offsets.astype(OFFSET_DTYPE))
        store.seal(out.index_file)
        store.append_array(out.edge_file, graph.targets.astype(TARGET_DTYPE))
        store.seal(out.edge_file)
        if graph.has_weights:
            store.append_array(out.weight_file, graph.weights.astype(WEIGHT_DTYPE))
            store.seal(out.weight_file)
        return out

    # ------------------------------------------------------------- device gap

    def _latency_gap_bytes(self) -> int:
        """Coalescing window: ranges closer than this merge into one read.

        The window is the larger of (a) one access latency's worth of
        sequential transfer — reading the gap is cheaper than a new access —
        and (b) one flash page, since ranges sharing a page are fetched by
        the same physical read anyway.  A lower-latency device keeps a
        smaller window and wastes fewer bytes (§V-C.3's lookahead buffers).
        """
        profile = self.store.device.profile
        return max(int(profile.flash_read_latency_s * profile.flash_read_bw),
                   profile.flash_page_bytes)

    # ----------------------------------------------------------------- lookups

    def index_lookup(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Edge-file offset ranges for a sorted array of vertex ids.

        Returns (starts, ends) in *edge units*.  Index entries are fetched
        with coalesced reads over the index file.
        """
        if len(keys) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        keys = np.asarray(keys, dtype=np.int64)
        if np.any(keys[1:] < keys[:-1]):
            raise ValueError("index_lookup requires sorted keys")
        if keys[0] < 0 or keys[-1] >= self.num_vertices:
            raise ValueError("vertex id out of range")
        item = OFFSET_DTYPE.itemsize
        gap = max(1, self._latency_gap_bytes() // item)
        spans = coalesce_ranges(keys, keys + 2, gap)
        starts = np.empty(len(keys), dtype=np.int64)
        ends = np.empty(len(keys), dtype=np.int64)
        for span_start, span_end in spans:
            block = self.store.read_array(
                self.index_file, OFFSET_DTYPE, span_start, span_end - span_start
            ).astype(np.int64)
            mask = (keys >= span_start) & (keys + 2 <= span_end)
            local = keys[mask] - span_start
            starts[mask] = block[local]
            ends[mask] = block[local + 1]
        return starts, ends

    def edges_for(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        """Destination ids of the edge ranges, concatenated in order."""
        return self._gather(self.edge_file, TARGET_DTYPE, starts, ends)

    def weights_for(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        if not self.has_weights:
            raise ValueError(f"graph {self.prefix!r} has no edge weights")
        return self._gather(self.weight_file, WEIGHT_DTYPE, starts, ends)

    def _gather(self, filename: str, dtype: np.dtype, starts: np.ndarray,
                ends: np.ndarray) -> np.ndarray:
        total = int(np.sum(ends - starts))
        if total == 0:
            return np.empty(0, dtype=dtype)
        item = dtype.itemsize
        gap = max(1, self._latency_gap_bytes() // item)
        spans = coalesce_ranges(starts, ends, gap)
        out = np.empty(total, dtype=dtype)
        pos = 0
        span_index = 0
        block: np.ndarray | None = None
        for s, e in zip(starts, ends):
            s, e = int(s), int(e)
            if e <= s:
                continue
            # Ranges and spans are both sorted; advance to the covering span.
            while block is None or e > spans[span_index][1]:
                if block is not None:
                    span_index += 1
                span_start, span_end = spans[span_index]
                block = self.store.read_array(filename, dtype, span_start, span_end - span_start)
                self.wasted_read_bytes += (span_end - span_start) * item
            span_start = spans[span_index][0]
            n = e - s
            out[pos:pos + n] = block[s - span_start:e - span_start]
            pos += n
        self.wasted_read_bytes -= total * item
        if pos != total:
            raise AssertionError("gather did not cover all requested ranges")
        return out

    # ---------------------------------------------------------------- streams

    def stream_edges(self, edges_per_chunk: int = 1 << 18):
        """Sequentially scan the whole graph, yielding (srcs, dsts[, weights]).

        The access pattern edge-centric systems (X-Stream) and dense
        supersteps use: pure sequential reads of the index and edge files.
        """
        offsets = self.store.read_array(self.index_file, OFFSET_DTYPE).astype(np.int64)
        degrees = np.diff(offsets)
        srcs_all = np.repeat(np.arange(self.num_vertices, dtype=np.uint64), degrees)
        for start in range(0, self.num_edges, edges_per_chunk):
            n = min(edges_per_chunk, self.num_edges - start)
            dsts = self.store.read_array(self.edge_file, TARGET_DTYPE, start, n)
            weights = None
            if self.has_weights:
                weights = self.store.read_array(self.weight_file, WEIGHT_DTYPE, start, n)
            yield srcs_all[start:start + n], dsts, weights

    def out_degrees(self) -> np.ndarray:
        """Per-vertex outbound degree (one sequential index scan)."""
        offsets = self.store.read_array(self.index_file, OFFSET_DTYPE).astype(np.int64)
        return np.diff(offsets).astype(np.uint64)
