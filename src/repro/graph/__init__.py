"""Graph substrate: structures, on-flash format, generators, datasets.

GraFBoost stores graphs in compressed sparse column (outbound edge-list)
format as two immutable flash files — an index file of per-vertex offsets
and an edge file of destination/property records (Fig 6) — plus a dense
vertex-value array ``V`` and sparse ``newV`` overlays (§IV-B).

* :mod:`repro.graph.csr` — in-memory CSR used for construction, the
  in-memory baseline, and reference algorithm checks.
* :mod:`repro.graph.formats` — the flash file layout and a reader with
  latency-aware read coalescing (the "lookahead buffer" of §V-C.3).
* :mod:`repro.graph.generators` — Graph500 Kronecker, R-MAT, power-law
  ("twitter"-like) and shallow/long-tail web ("wdc"-like) synthesizers.
* :mod:`repro.graph.datasets` — the Table I dataset registry, parameterized
  by a scale factor.
* :mod:`repro.graph.vertexdata` — ``V`` as a lazily-updated base + sorted
  overlay stack, the paper's trick for appending vertex updates instead of
  random-writing them.
"""

from repro.graph.csr import CSRGraph
from repro.graph.formats import FlashCSR
from repro.graph.generators import (
    kronecker_edges,
    rmat_edges,
    powerlaw_edges,
    webcrawl_edges,
    uniform_edges,
)
from repro.graph.datasets import GraphDataset, DATASETS, dataset_by_name, build_graph
from repro.graph.vertexdata import VertexArray

__all__ = [
    "CSRGraph",
    "FlashCSR",
    "kronecker_edges",
    "rmat_edges",
    "powerlaw_edges",
    "webcrawl_edges",
    "uniform_edges",
    "GraphDataset",
    "DATASETS",
    "dataset_by_name",
    "build_graph",
    "VertexArray",
]
