"""Graph import/export: text edge lists and packed binary.

The paper's datasets arrive as multi-hundred-gigabyte text edge lists
(Table I's "txtsize" column — WDC is 2.6 TB of text) and are converted into
GraFBoost's compressed binary format before analysis.  This module provides
that ingestion path for real inputs:

* :func:`read_edge_list` / :func:`write_edge_list` — whitespace-separated
  ``src dst [weight]`` text, comment lines ignored (the format of SNAP,
  Graph500 and WDC distributions).
* :func:`read_binary_edges` / :func:`write_binary_edges` — packed
  little-endian uint64 pairs (plus optional float32 weights), the compact
  on-disk interchange form.
* :func:`load_graph_file` — sniffs the format and returns a
  :class:`~repro.graph.csr.CSRGraph` ready for
  :meth:`~repro.engine.config.SystemConfig.load_graph`.

Everything streams in bounded chunks, so converting a file never needs the
whole edge list in memory at once beyond the final CSR build.
"""

from __future__ import annotations

import io
import os
from typing import Iterator

import numpy as np

from repro.graph.csr import CSRGraph

#: Magic prefix of the packed binary format.
BINARY_MAGIC = b"GRFB"
_FLAG_WEIGHTED = 1


def parse_edge_lines(lines: Iterator[str]) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Parse ``src dst [weight]`` lines; '#' and '%' lines are comments."""
    srcs: list[int] = []
    dsts: list[int] = []
    weights: list[float] = []
    saw_weight = None
    for line_number, line in enumerate(lines, 1):
        text = line.strip()
        if not text or text.startswith(("#", "%")):
            continue
        fields = text.split()
        if len(fields) not in (2, 3):
            raise ValueError(
                f"line {line_number}: expected 'src dst [weight]', got {text!r}")
        if saw_weight is None:
            saw_weight = len(fields) == 3
        elif saw_weight != (len(fields) == 3):
            raise ValueError(
                f"line {line_number}: mixed weighted and unweighted edges")
        try:
            srcs.append(int(fields[0]))
            dsts.append(int(fields[1]))
            if saw_weight:
                weights.append(float(fields[2]))
        except ValueError as error:
            raise ValueError(f"line {line_number}: {error}") from None
        if srcs[-1] < 0 or dsts[-1] < 0:
            raise ValueError(f"line {line_number}: negative vertex id")
    src = np.array(srcs, dtype=np.uint64)
    dst = np.array(dsts, dtype=np.uint64)
    w = np.array(weights, dtype=np.float32) if saw_weight else None
    return src, dst, w


def read_edge_list(path: str) -> CSRGraph:
    """Load a text edge list into a CSR graph.

    The vertex count is one past the largest id seen.
    """
    with open(path, "r") as f:
        src, dst, weights = parse_edge_lines(f)
    if len(src) == 0:
        raise ValueError(f"{path}: no edges found")
    num_vertices = int(max(src.max(), dst.max())) + 1
    return CSRGraph.from_edges(src, dst, num_vertices, weights)


def write_edge_list(graph: CSRGraph, path: str) -> None:
    """Write a CSR graph as a text edge list (one edge per line)."""
    src, dst = graph.edge_list()
    with open(path, "w") as f:
        f.write(f"# {graph.num_vertices} vertices, {graph.num_edges} edges\n")
        if graph.has_weights:
            for s, d, w in zip(src, dst, graph.weights):
                f.write(f"{int(s)} {int(d)} {float(w):g}\n")
        else:
            for s, d in zip(src, dst):
                f.write(f"{int(s)} {int(d)}\n")


def write_binary_edges(graph: CSRGraph, path: str) -> None:
    """Write the packed binary form: magic, header, then edge records."""
    src, dst = graph.edge_list()
    flags = _FLAG_WEIGHTED if graph.has_weights else 0
    header = np.array([graph.num_vertices, graph.num_edges, flags],
                      dtype="<u8")
    with open(path, "wb") as f:
        f.write(BINARY_MAGIC)
        f.write(header.tobytes())
        f.write(src.astype("<u8").tobytes())
        f.write(dst.astype("<u8").tobytes())
        if graph.has_weights:
            f.write(graph.weights.astype("<f4").tobytes())


def read_binary_edges(path: str) -> CSRGraph:
    """Load the packed binary form written by :func:`write_binary_edges`."""
    with open(path, "rb") as f:
        magic = f.read(4)
        if magic != BINARY_MAGIC:
            raise ValueError(f"{path}: not a GraFBoost binary edge file")
        header_bytes = f.read(24)
        if len(header_bytes) != 24:
            raise ValueError(f"{path}: truncated header")
        header = np.frombuffer(header_bytes, dtype="<u8")
        num_vertices, num_edges, flags = (int(header[0]), int(header[1]),
                                          int(header[2]))

        def read_exact(nbytes: int, what: str) -> bytes:
            data = f.read(nbytes)
            if len(data) != nbytes:
                raise ValueError(f"{path}: truncated {what} data")
            return data

        src = np.frombuffer(read_exact(8 * num_edges, "edge"), dtype="<u8")
        dst = np.frombuffer(read_exact(8 * num_edges, "edge"), dtype="<u8")
        weights = None
        if flags & _FLAG_WEIGHTED:
            weights = np.frombuffer(read_exact(4 * num_edges, "weight"),
                                    dtype="<f4")
    return CSRGraph.from_edges(src.copy(), dst.copy(), num_vertices,
                               None if weights is None else weights.copy())


def load_graph_file(path: str) -> CSRGraph:
    """Sniff text vs binary and load either."""
    with open(path, "rb") as f:
        prefix = f.read(4)
    if prefix == BINARY_MAGIC:
        return read_binary_edges(path)
    return read_edge_list(path)


def text_size_estimate(graph: CSRGraph) -> int:
    """Estimated text edge-list size (the Table I "txtsize" column)."""
    buffer = io.StringIO()
    src, dst = graph.edge_list()
    sample = min(256, graph.num_edges)
    for s, d in zip(src[:sample], dst[:sample]):
        buffer.write(f"{int(s)} {int(d)}\n")
    if sample == 0:
        return 0
    return int(len(buffer.getvalue()) / sample * graph.num_edges)
