"""The Table I dataset registry, parameterized by a scale factor.

Each entry records the paper's published statistics (nodes, edges, edge
factor, binary and text sizes) and knows how to synthesize a structurally
analogous graph at ``scale_factor`` times the vertex count.  Scaled
experiments shrink the DRAM budgets by the same factor
(:meth:`~repro.perf.profiles.HardwareProfile.scaled`), so every
"memory as a percentage of vertex data" point of Fig 13 lands where the
paper's does.

The default :data:`DEFAULT_SCALE` (2^-14) keeps the largest graph (wdc,
128 B edges in the paper) under ten million edges — tractable for the
pure-Python functional simulation while still forcing multi-level external
merges at the scaled DRAM sizes.
"""

from __future__ import annotations

import math
import os
import tempfile
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph import generators

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Default linear vertex-count scale for scaled-down experiments.
DEFAULT_SCALE = 2.0 ** -14


@dataclass(frozen=True)
class GraphDataset:
    """One row of Table I plus its synthesizer."""

    name: str
    paper_nodes: int
    paper_edges: int
    paper_edgefactor: int
    paper_size_bytes: int      # column-compressed binary encoding (Table I "size")
    paper_txt_bytes: int       # text edge-list size (Table I "txtsize")
    make_edges: Callable[[float, int], tuple[np.ndarray, np.ndarray, int]]

    def scaled_nodes(self, scale_factor: float) -> int:
        return max(16, int(self.paper_nodes * scale_factor))

    def scaled_edges(self, scale_factor: float) -> int:
        return self.scaled_nodes(scale_factor) * self.paper_edgefactor

    def edges(self, scale_factor: float = DEFAULT_SCALE, seed: int = 1,
              ) -> tuple[np.ndarray, np.ndarray, int]:
        """Synthesize (src, dst, num_vertices) at the requested scale."""
        if scale_factor <= 0 or scale_factor > 1:
            raise ValueError(f"scale_factor must be in (0, 1], got {scale_factor}")
        return self.make_edges(scale_factor, seed)

    def vertex_data_bytes(self, scale_factor: float = DEFAULT_SCALE,
                          value_bytes: int = 8) -> int:
        """Size of the dense vertex array V — Fig 13's 100% reference point."""
        return self.scaled_nodes(scale_factor) * value_bytes


def _kron(paper_scale: int, edgefactor: int):
    def make(scale_factor: float, seed: int) -> tuple[np.ndarray, np.ndarray, int]:
        shrink_bits = max(0, round(-math.log2(scale_factor)))
        return generators.kronecker_edges(
            max(4, paper_scale - shrink_bits), edgefactor, seed=seed
        )
    return make


def _twitter(scale_factor: float, seed: int) -> tuple[np.ndarray, np.ndarray, int]:
    n = max(64, int(41_000_000 * scale_factor))
    return generators.powerlaw_edges(n, n * 36, exponent=1.3, seed=seed)


def _wdc(scale_factor: float, seed: int) -> tuple[np.ndarray, np.ndarray, int]:
    n = max(64, int(3_000_000_000 * scale_factor))
    return generators.webcrawl_edges(n, edgefactor=43, seed=seed)


DATASETS: dict[str, GraphDataset] = {
    "twitter": GraphDataset(
        name="twitter",
        paper_nodes=41_000_000,
        paper_edges=1_470_000_000,
        paper_edgefactor=36,
        paper_size_bytes=6 * GB,
        paper_txt_bytes=25 * GB,
        make_edges=_twitter,
    ),
    "kron28": GraphDataset(
        name="kron28",
        paper_nodes=268_000_000,
        paper_edges=4_000_000_000,
        paper_edgefactor=16,
        paper_size_bytes=18 * GB,
        paper_txt_bytes=88 * GB,
        make_edges=_kron(28, 16),
    ),
    "kron30": GraphDataset(
        name="kron30",
        paper_nodes=1_000_000_000,
        paper_edges=17_000_000_000,
        paper_edgefactor=16,
        paper_size_bytes=72 * GB,
        paper_txt_bytes=351 * GB,
        make_edges=_kron(30, 16),
    ),
    "kron32": GraphDataset(
        name="kron32",
        paper_nodes=4_000_000_000,
        paper_edges=32_000_000_000,
        paper_edgefactor=8,
        paper_size_bytes=128 * GB,
        paper_txt_bytes=295 * GB,
        make_edges=_kron(32, 8),
    ),
    "wdc": GraphDataset(
        name="wdc",
        paper_nodes=3_000_000_000,
        paper_edges=128_000_000_000,
        paper_edgefactor=43,
        paper_size_bytes=502 * GB,
        paper_txt_bytes=2648 * GB,
        make_edges=_wdc,
    ),
}


def dataset_by_name(name: str) -> GraphDataset:
    try:
        return DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None


#: Bump when the synthesized graphs or the cache layout change, so stale
#: cache entries from older code are never loaded.
DATASET_CACHE_VERSION = 1


def dataset_cache_dir() -> str | None:
    """Directory for the persistent dataset cache, or None when disabled.

    ``REPRO_DATASET_CACHE`` overrides the default of
    ``~/.cache/repro-datasets``; setting it to ``off`` (or ``0``) disables
    on-disk caching entirely.
    """
    override = os.environ.get("REPRO_DATASET_CACHE")
    if override is not None:
        if override.strip().lower() in ("", "off", "0", "none"):
            return None
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-datasets")


def _cache_path(name: str, scale_factor: float, seed: int, weighted: bool) -> str | None:
    base = dataset_cache_dir()
    if base is None:
        return None
    # float().hex() is exact, so distinct scales can never collide.
    scale_key = float(scale_factor).hex().replace("0x", "").replace(".", "_")
    fname = (f"{name}-s{scale_key}-r{seed}-w{int(weighted)}"
             f"-v{DATASET_CACHE_VERSION}.npz")
    return os.path.join(base, fname)


def _load_cached(path: str) -> CSRGraph | None:
    try:
        with np.load(path, allow_pickle=False) as data:
            weights = data["weights"] if "weights" in data.files else None
            return CSRGraph(int(data["num_vertices"]), data["offsets"],
                            data["targets"], weights)
    except (OSError, KeyError, ValueError):
        return None  # unreadable/corrupt entry: fall through to a rebuild


def _store_cached(path: str, graph: CSRGraph) -> None:
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        arrays = {
            "num_vertices": np.int64(graph.num_vertices),
            "offsets": graph.offsets,
            "targets": graph.targets,
        }
        if graph.weights is not None:
            arrays["weights"] = graph.weights
        # Write-then-rename so a concurrent reader never sees a torn file.
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, path)
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError:
        pass  # caching is best-effort; the build result is still returned


def build_graph(name: str, scale_factor: float = DEFAULT_SCALE, seed: int = 1,
                weighted: bool = False, cache: bool = True) -> CSRGraph:
    """Synthesize a dataset and return it as an in-memory CSR graph.

    Built graphs are persisted to :func:`dataset_cache_dir` keyed by
    (name, scale, seed, weighted, cache version); later builds of the same
    graph load the CSR arrays instead of re-running the generator.  Pass
    ``cache=False`` to bypass the cache in both directions.
    """
    path = _cache_path(name, scale_factor, seed, weighted) if cache else None
    if path is not None and os.path.exists(path):
        cached = _load_cached(path)
        if cached is not None:
            return cached
    dataset = dataset_by_name(name)
    src, dst, n = dataset.edges(scale_factor, seed)
    weights = generators.random_weights(len(src), seed=seed) if weighted else None
    graph = CSRGraph.from_edges(src, dst, n, weights)
    if path is not None:
        _store_cached(path, graph)
    return graph
