"""Synthetic graph generators for the paper's five evaluation datasets.

The paper evaluates on Graph500 Kronecker graphs (kron28/30/32), the twitter
follower graph, and the Web Data Commons hyperlink crawl (Table I).  Real
multi-terabyte inputs are unavailable offline, so each is synthesized with
the structural property that drives its results:

* :func:`kronecker_edges` — the Graph500 reference R-MAT recursion
  (A=0.57, B=0.19, C=0.19, D=0.05), giving the skewed degree distribution
  that makes reduction collapse most updates early.
* :func:`powerlaw_edges` — a Zipf-attachment "twitter"-like social graph:
  few supersteps, extreme hubs, >80% phase-0 reduction (Fig 14).
* :func:`webcrawl_edges` — a "wdc"-like web graph: host-local chain links
  plus hub links, engineered to give BFS a very long sparse tail of
  supersteps — the property that makes X-Stream take "23 days" (§V-C.1).
* :func:`uniform_edges` — Erdős–Rényi-style uniform edges for tests.

All generators are deterministic given a seed and return (src, dst) uint64
arrays; duplicate edges and self-loops are kept, as in Graph500 inputs.

RNG audit (repro-lint RL001): every function here constructs its own
``np.random.default_rng(seed)`` from an explicit caller-supplied seed and
draws nothing from global or OS-entropy state — two calls with the same
arguments produce byte-identical edge lists, which is what lets
``load_dataset`` cache built graphs and the invariance goldens stay pinned.
"""

from __future__ import annotations

import numpy as np

#: Graph500 initiator matrix probabilities.
KRON_A, KRON_B, KRON_C = 0.57, 0.19, 0.19


def kronecker_edges(scale: int, edgefactor: int = 16, seed: int = 1,
                    ) -> tuple[np.ndarray, np.ndarray, int]:
    """Graph500 Kronecker generator: 2**scale vertices, edgefactor per vertex.

    Returns (src, dst, num_vertices).  Vertex ids are permuted as the
    Graph500 spec requires, so vertex id does not correlate with degree.
    """
    if scale < 1 or scale > 30:
        raise ValueError(f"kronecker scale out of supported range [1, 30]: {scale}")
    n = 1 << scale
    m = n * edgefactor
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.uint64)
    dst = np.zeros(m, dtype=np.uint64)
    ab = KRON_A + KRON_B
    c_norm = KRON_C / (1.0 - ab)
    a_norm = KRON_A / ab
    for bit in range(scale):
        r1 = rng.random(m)
        r2 = rng.random(m)
        src_bit = r1 > ab
        dst_bit = r2 > np.where(src_bit, c_norm, a_norm)
        src |= src_bit.astype(np.uint64) << np.uint64(bit)
        dst |= dst_bit.astype(np.uint64) << np.uint64(bit)
    perm = rng.permutation(n).astype(np.uint64)
    return perm[src.astype(np.int64)], perm[dst.astype(np.int64)], n


def rmat_edges(scale: int, edgefactor: int, a: float, b: float, c: float,
               seed: int = 1) -> tuple[np.ndarray, np.ndarray, int]:
    """General R-MAT with caller-chosen quadrant probabilities."""
    if not 0 < a + b + c < 1:
        raise ValueError(f"a+b+c must be in (0, 1), got {a + b + c}")
    n = 1 << scale
    m = n * edgefactor
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.uint64)
    dst = np.zeros(m, dtype=np.uint64)
    ab = a + b
    c_norm = c / (1.0 - ab)
    a_norm = a / ab
    for bit in range(scale):
        src_bit = rng.random(m) > ab
        dst_bit = rng.random(m) > np.where(src_bit, c_norm, a_norm)
        src |= src_bit.astype(np.uint64) << np.uint64(bit)
        dst |= dst_bit.astype(np.uint64) << np.uint64(bit)
    return src, dst, n


def _zipf_ids(rng: np.random.Generator, n: int, count: int, exponent: float) -> np.ndarray:
    """Sample ``count`` vertex ids from an (approximate) Zipf distribution
    over ``n`` ids via inverse-CDF sampling of a bounded Pareto."""
    u = rng.random(count)
    # Inverse CDF of p(x) ∝ x^-exponent on [1, n].
    if exponent == 1.0:
        ids = np.exp(u * np.log(n))
    else:
        e = 1.0 - exponent
        ids = (u * (n ** e - 1.0) + 1.0) ** (1.0 / e)
    return np.minimum(ids.astype(np.uint64), np.uint64(n - 1))


def powerlaw_edges(num_vertices: int, num_edges: int, exponent: float = 1.3,
                   seed: int = 1) -> tuple[np.ndarray, np.ndarray, int]:
    """Twitter-like social graph: both endpoints Zipf-skewed, shuffled ids."""
    if num_vertices < 2:
        raise ValueError(f"need at least 2 vertices, got {num_vertices}")
    rng = np.random.default_rng(seed)
    src = _zipf_ids(rng, num_vertices, num_edges, exponent)
    dst = _zipf_ids(rng, num_vertices, num_edges, exponent)
    perm = rng.permutation(num_vertices).astype(np.uint64)
    return perm[src.astype(np.int64)], perm[dst.astype(np.int64)], num_vertices


def webcrawl_edges(num_vertices: int, edgefactor: int = 43, chain_fraction: float = 0.3,
                   tail_fraction: float = 0.02, seed: int = 1,
                   ) -> tuple[np.ndarray, np.ndarray, int]:
    """WDC-like web crawl: hub-skewed links plus host-local chains and a
    long pendant path.

    Structure: ``tail_fraction`` of the vertices form one long directed
    chain hanging off the main component (the thousands-of-sparse-supersteps
    BFS tail the paper observed on WDC); the rest mix next-vertex "host
    navigation" links with Zipf-distributed hub links.
    """
    if num_vertices < 16:
        raise ValueError(f"webcrawl graph needs >= 16 vertices, got {num_vertices}")
    if not 0 <= tail_fraction < 0.5:
        raise ValueError(f"tail_fraction must be in [0, 0.5), got {tail_fraction}")
    rng = np.random.default_rng(seed)
    n_tail = int(num_vertices * tail_fraction)
    n_core = num_vertices - n_tail
    m_core = n_core * edgefactor

    n_chain = int(m_core * chain_fraction)
    chain_src = rng.integers(0, n_core - 1, n_chain).astype(np.uint64)
    chain_dst = chain_src + np.uint64(1)

    n_hub = m_core - n_chain
    hub_src = rng.integers(0, n_core, n_hub).astype(np.uint64)
    hub_dst = _zipf_ids(rng, n_core, n_hub, 1.4)

    # The pendant path: core vertex 0 → n_core → n_core+1 → … (one edge each),
    # giving BFS exactly n_tail extra supersteps with one active vertex.
    tail_ids = np.arange(n_core, num_vertices, dtype=np.uint64)
    tail_src = np.concatenate([[np.uint64(0)], tail_ids[:-1]]) if n_tail else np.empty(0, np.uint64)
    tail_dst = tail_ids

    src = np.concatenate([chain_src, hub_src, tail_src])
    dst = np.concatenate([chain_dst, hub_dst, tail_dst])
    return src, dst, num_vertices


def uniform_edges(num_vertices: int, num_edges: int, seed: int = 1,
                  ) -> tuple[np.ndarray, np.ndarray, int]:
    """Uniform random (Erdős–Rényi-style multigraph) edges, for tests."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, num_edges).astype(np.uint64)
    dst = rng.integers(0, num_vertices, num_edges).astype(np.uint64)
    return src, dst, num_vertices


def random_weights(num_edges: int, seed: int = 1, low: float = 0.1,
                   high: float = 10.0) -> np.ndarray:
    """Uniform edge weights for SSSP-style workloads."""
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, num_edges).astype(np.float32)
