"""The vertex value array ``V``: dense base plus lazy sorted overlays.

AOFFS forbids random updates, and the paper's abstract calls out the
solution: "GraFBoost stores newly updated vertex values generated in each
superstep lazily with the old vertex values".  Concretely, ``V`` is

* an optional **dense base file** of per-vertex records, and
* a stack of **sorted sparse overlays**, one appended per superstep with the
  finalized values of that superstep's active vertices.

Because every reader of ``V`` (the lazy superstep of Algorithm 3) walks keys
in sorted order, each overlay is read sequentially at most once per
superstep through a :class:`VertexScanCursor`.  When the overlay stack gets
deep, :meth:`VertexArray.compact` merges everything into a fresh dense base
with one sequential pass — still append-only.

Each record also stores the superstep index of its last update, which
Algorithm 4 (PageRank's custom active-list generation) uses to ignore stale
sort-reduced values (§III-C).

Sparse-frontier algorithms (BFS on the WDC graph runs for *thousands* of
supersteps, §V-C.2) would otherwise touch every overlay on every lookup, so
each overlay keeps small host-memory metadata — key range plus a bloom
filter, exactly like an LSM tree's per-SSTable filters — letting lookups
skip overlays that cannot contain the queried keys without any flash I/O.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.bloom import BloomFilter
from repro.core.kvstream import KVArray
from repro.graph.formats import coalesce_ranges

_va_counter = itertools.count()

#: Superstep marker for "never updated".
NEVER = -1

#: Records per chunk when scanning overlays/base sequentially.
SCAN_CHUNK_RECORDS = 1 << 16


def _record_dtype(value_dtype: np.dtype) -> np.dtype:
    return np.dtype([("v", np.dtype(value_dtype)), ("step", "<i8")])


def _overlay_dtype(value_dtype: np.dtype) -> np.dtype:
    return np.dtype([("k", "<u8"), ("v", np.dtype(value_dtype)), ("step", "<i8")])


@dataclass
class Overlay:
    """One superstep's sorted sparse update file plus its host-memory
    skip metadata (key range and bloom filter, like an LSM SSTable)."""

    name: str
    count: int
    min_key: int
    max_key: int
    bloom: BloomFilter

    def may_contain(self, sorted_keys: np.ndarray) -> bool:
        """False only if no queried key can possibly be in this overlay."""
        if len(sorted_keys) == 0:
            return False
        if int(sorted_keys[-1]) < self.min_key or int(sorted_keys[0]) > self.max_key:
            return False
        in_range = sorted_keys[
            (sorted_keys >= np.uint64(self.min_key))
            & (sorted_keys <= np.uint64(self.max_key))
        ]
        if len(in_range) == 0:
            return False
        # Dense probes always pass; bloom checks pay off on sparse frontiers.
        if len(in_range) > 256:
            return True
        return bool(self.bloom.contains(in_range).any())


class VertexArray:
    """``V`` on flash: default-valued until written, append-only thereafter."""

    def __init__(self, store, num_vertices: int, value_dtype: np.dtype,
                 default_value, prefix: str | None = None, max_overlays: int = 8,
                 retire=None):
        if num_vertices < 1:
            raise ValueError(f"num_vertices must be >= 1, got {num_vertices}")
        if max_overlays < 1:
            raise ValueError(f"max_overlays must be >= 1, got {max_overlays}")
        self.store = store
        self.num_vertices = num_vertices
        self.value_dtype = np.dtype(value_dtype)
        self.default_value = default_value
        self.prefix = prefix or f"vertexdata-{next(_va_counter)}"
        self.max_overlays = max_overlays
        # Compaction normally deletes superseded files immediately; a
        # checkpointing engine passes ``retire`` so files the last durable
        # checkpoint still references outlive the compaction that obsoleted
        # them (they are deleted once the next checkpoint lands).
        self._discard = retire if retire is not None else store.delete
        self._base_generation = 0
        self._base_materialized = False
        self._overlays: list[Overlay] = []
        self._overlay_counter = 0
        self.compactions = 0

    # ---------------------------------------------------------------- naming

    @property
    def _base_file(self) -> str:
        return f"{self.prefix}:base-{self._base_generation}"

    # ---------------------------------------------------------------- staging

    def stage(self, updates: KVArray, step: int) -> None:
        """Append one superstep's finalized active-vertex values as an overlay.

        ``updates`` must be strictly key-sorted (it comes out of sort-reduce,
        so it is).  Staging never compacts — open cursors would be
        invalidated mid-superstep; the engine calls :meth:`maybe_compact`
        between supersteps instead.
        """
        writer = self.overlay_writer(step)
        writer.add(updates)
        writer.close()

    def overlay_writer(self, step: int) -> "OverlayWriter":
        """Incrementally build one superstep's overlay from sorted chunks.

        Algorithm 3 stages active-vertex updates while it scans ``newV``;
        the writer appends them to a single overlay file and registers it on
        close (empty overlays are dropped).
        """
        return OverlayWriter(self, step)

    def maybe_compact(self) -> bool:
        """Compact if the overlay stack is deeper than ``max_overlays``.

        Call between supersteps, never while a cursor is open.
        """
        if len(self._overlays) > self.max_overlays:
            self.compact()
            return True
        return False

    # ---------------------------------------------------------------- lookups

    def cursor(self) -> "VertexScanCursor":
        """A sequential reader for one sorted pass over the key space."""
        return VertexScanCursor(self)

    def read_values(self, sorted_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One-shot sorted lookup (convenience over a fresh cursor)."""
        return self.cursor().lookup(sorted_keys)

    def scan(self, chunk_records: int = SCAN_CHUNK_RECORDS):
        """Yield (keys, values, steps) over the full key space, merged."""
        cursor = self.cursor()
        for start in range(0, self.num_vertices, chunk_records):
            keys = np.arange(start, min(start + chunk_records, self.num_vertices),
                             dtype=np.uint64)
            values, steps = cursor.lookup(keys)
            yield keys, values, steps

    def final_values(self) -> np.ndarray:
        """Collect the whole array in memory (result extraction / tests)."""
        out = np.empty(self.num_vertices, dtype=self.value_dtype)
        for keys, values, _steps in self.scan():
            out[keys.astype(np.int64)] = values
        return out

    # ------------------------------------------------------------- compaction

    def compact(self) -> None:
        """Merge base + overlays into a fresh dense base (sequential pass)."""
        new_generation = self._base_generation + 1
        new_name = f"{self.prefix}:base-{new_generation}"
        rec_dtype = _record_dtype(self.value_dtype)
        for keys, values, steps in self.scan():
            records = np.empty(len(keys), dtype=rec_dtype)
            records["v"] = values
            records["step"] = steps
            self.store.append(new_name, records.tobytes())
        self.store.seal(new_name)
        if self._base_materialized:
            self._discard(self._base_file)
        for overlay in self._overlays:
            self._discard(overlay.name)
        self._overlays = []
        self._base_generation = new_generation
        self._base_materialized = True
        self.compactions += 1

    # ------------------------------------------------------------- checkpoints

    def snapshot_state(self) -> dict:
        """JSON-safe description of the on-flash state (for checkpoints).

        Bloom filters are deliberately absent: they are rebuilt bit-identically
        from the overlay files at :meth:`restore` time, since both the filter
        geometry and the inserted key sets are functions of the file contents.
        """
        return {
            "prefix": self.prefix,
            "num_vertices": self.num_vertices,
            "base_generation": self._base_generation,
            "base_materialized": self._base_materialized,
            "overlay_counter": self._overlay_counter,
            "compactions": self.compactions,
            "overlays": [{"name": o.name, "count": o.count,
                          "min_key": o.min_key, "max_key": o.max_key}
                         for o in self._overlays],
        }

    @classmethod
    def restore(cls, store, state: dict, value_dtype: np.dtype, default_value,
                max_overlays: int = 8, retire=None) -> "VertexArray":
        """Reattach to checkpointed vertex data after a remount."""
        array = cls(store, state["num_vertices"], value_dtype, default_value,
                    prefix=state["prefix"], max_overlays=max_overlays,
                    retire=retire)
        array._base_generation = state["base_generation"]
        array._base_materialized = state["base_materialized"]
        array._overlay_counter = state["overlay_counter"]
        array.compactions = state["compactions"]
        dtype = _overlay_dtype(array.value_dtype)
        item = dtype.itemsize
        for o in state["overlays"]:
            bloom = BloomFilter(max(64, o["count"] * 10), num_hashes=3)
            for start in range(0, o["count"], SCAN_CHUNK_RECORDS):
                n = min(SCAN_CHUNK_RECORDS, o["count"] - start)
                raw = store.read(o["name"], start * item, n * item)
                bloom.add(np.frombuffer(raw, dtype=dtype)["k"].copy())
            array._overlays.append(Overlay(
                name=o["name"], count=o["count"], min_key=o["min_key"],
                max_key=o["max_key"], bloom=bloom))
        return array

    def files_on_flash(self) -> list[str]:
        """Every store file this array currently references."""
        files = [o.name for o in self._overlays]
        if self._base_materialized:
            files.append(self._base_file)
        return files

    @property
    def overlay_depth(self) -> int:
        return len(self._overlays)

    def overlays(self) -> list[Overlay]:
        """The live overlays, oldest first.

        With compaction disabled, overlay ``i`` is exactly superstep ``i``'s
        active-vertex list — what betweenness centrality backtraces over.
        """
        return list(self._overlays)

    @property
    def nbytes_on_flash(self) -> int:
        total = 0
        if self._base_materialized:
            total += self.store.size(self._base_file)
        for overlay in self._overlays:
            total += self.store.size(overlay.name)
        return total


class OverlayWriter:
    """Builds one overlay file from ascending sorted update chunks."""

    def __init__(self, array: VertexArray, step: int):
        self.array = array
        self.step = step
        self.name = f"{array.prefix}:overlay-{array._overlay_counter}"
        array._overlay_counter += 1
        self.count = 0
        self._last_key = -1
        self._min_key = None
        self._key_chunks: list[np.ndarray] = []
        self._closed = False

    def add(self, updates: KVArray) -> None:
        if self._closed:
            raise RuntimeError("add() after close()")
        if len(updates) == 0:
            return
        if updates.value_dtype != self.array.value_dtype:
            raise ValueError(f"value dtype {updates.value_dtype} != {self.array.value_dtype}")
        if not updates.is_strictly_sorted():
            raise ValueError("overlay updates must be strictly key-sorted")
        if int(updates.keys[0]) <= self._last_key:
            raise ValueError("overlay chunks must be ascending across calls")
        if int(updates.keys[-1]) >= self.array.num_vertices:
            raise ValueError("update key out of range")
        if self._min_key is None:
            self._min_key = int(updates.keys[0])
        self._last_key = int(updates.keys[-1])
        self._key_chunks.append(updates.keys.copy())
        records = np.empty(len(updates), dtype=_overlay_dtype(self.array.value_dtype))
        records["k"] = updates.keys
        records["v"] = updates.values
        records["step"] = self.step
        self.array.store.append(self.name, records.tobytes())
        self.count += len(updates)

    def close(self) -> int:
        """Seal and register the overlay; returns the staged record count."""
        if self._closed:
            return self.count
        self._closed = True
        if self.count == 0:
            return 0
        self.array.store.seal(self.name)
        bloom = BloomFilter(max(64, self.count * 10), num_hashes=3)
        for keys in self._key_chunks:
            bloom.add(keys)
        self._key_chunks = []
        self.array._overlays.append(Overlay(
            name=self.name, count=self.count,
            min_key=self._min_key, max_key=self._last_key, bloom=bloom,
        ))
        return self.count


class _OverlayCursor:
    """Sequential chunked reader of one sorted overlay file."""

    __slots__ = ("store", "overlay", "dtype", "pos", "buffer")

    def __init__(self, store, overlay: Overlay, dtype: np.dtype):
        self.store = store
        self.overlay = overlay
        self.dtype = dtype
        self.pos = 0
        self.buffer = np.empty(0, dtype=dtype)

    @property
    def name(self) -> str:
        return self.overlay.name

    @property
    def count(self) -> int:
        return self.overlay.count

    def advance_to(self, max_key: int) -> None:
        """Ensure the buffer covers all records with key <= max_key."""
        item = self.dtype.itemsize
        while self.pos < self.count and (
            len(self.buffer) == 0 or int(self.buffer["k"][-1]) <= max_key
        ):
            n = min(SCAN_CHUNK_RECORDS, self.count - self.pos)
            raw = self.store.read(self.name, self.pos * item, n * item)
            chunk = np.frombuffer(raw, dtype=self.dtype)
            self.buffer = np.concatenate([self.buffer, chunk]) if len(self.buffer) else chunk
            self.pos += n

    def extract(self, sorted_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (query positions, values, steps) of matches, then discard
        everything at or below the last queried key."""
        if len(sorted_keys) == 0 or len(self.buffer) == 0:
            return (np.empty(0, np.intp),) * 3  # type: ignore[return-value]
        idx = np.searchsorted(self.buffer["k"], sorted_keys)
        valid = idx < len(self.buffer)
        hits = np.zeros(len(sorted_keys), dtype=bool)
        hits[valid] = self.buffer["k"][idx[valid]] == sorted_keys[valid]
        positions = np.flatnonzero(hits)
        values = self.buffer["v"][idx[hits]]
        steps = self.buffer["step"][idx[hits]]
        cutoff = int(np.searchsorted(self.buffer["k"], sorted_keys[-1], side="right"))
        self.buffer = self.buffer[cutoff:]
        return positions, values, steps


class VertexScanCursor:
    """Sorted-pass reader over a :class:`VertexArray`.

    Successive :meth:`lookup` calls must present non-decreasing key ranges
    (each call's keys sorted, and each call's first key at or after the
    previous call's last).  That is exactly the access pattern of
    Algorithm 3, and it lets every overlay be streamed once.
    """

    def __init__(self, array: VertexArray):
        self.array = array
        dtype = _overlay_dtype(array.value_dtype)
        self._overlays = [
            _OverlayCursor(array.store, overlay, dtype)
            for overlay in array._overlays
        ]
        self._last_key = -1

    def lookup(self, sorted_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Values and last-update steps for a sorted key array."""
        sorted_keys = np.asarray(sorted_keys, dtype=np.uint64)
        if len(sorted_keys) == 0:
            return (np.empty(0, self.array.value_dtype), np.empty(0, np.int64))
        keys_i = sorted_keys.astype(np.int64)
        if np.any(keys_i[1:] < keys_i[:-1]):
            raise ValueError("lookup requires sorted keys")
        if keys_i[0] < self._last_key:
            raise ValueError(
                f"cursor moved backwards: key {keys_i[0]} after {self._last_key}"
            )
        if keys_i[-1] >= self.array.num_vertices:
            raise ValueError("vertex id out of range")
        self._last_key = int(keys_i[-1])

        values = np.full(len(sorted_keys), self.array.default_value,
                         dtype=self.array.value_dtype)
        steps = np.full(len(sorted_keys), NEVER, dtype=np.int64)
        if self.array._base_materialized:
            self._gather_base(keys_i, values, steps)
        max_key = int(keys_i[-1])
        for cursor in self._overlays:  # older overlays first; newer overwrite
            # Host-memory range/bloom metadata skips overlays that cannot
            # hold any queried key — no flash I/O for them at all.
            if len(cursor.buffer) == 0 and not cursor.overlay.may_contain(sorted_keys):
                continue
            cursor.advance_to(max_key)
            positions, v, s = cursor.extract(sorted_keys)
            values[positions] = v
            steps[positions] = s
        return values, steps

    def _gather_base(self, keys_i: np.ndarray, values: np.ndarray,
                     steps: np.ndarray) -> None:
        array = self.array
        dtype = _record_dtype(array.value_dtype)
        item = dtype.itemsize
        profile = array.store.device.profile
        gap_bytes = max(int(profile.flash_read_latency_s * profile.flash_read_bw),
                        profile.flash_page_bytes)
        gap = max(1, gap_bytes // item)
        spans = coalesce_ranges(keys_i, keys_i + 1, gap)
        span_index = 0
        block: np.ndarray | None = None
        for qi, key in enumerate(keys_i):
            while block is None or key >= spans[span_index][1]:
                if block is not None:
                    span_index += 1
                span_start, span_end = spans[span_index]
                raw = array.store.read(array._base_file, span_start * item,
                                       (span_end - span_start) * item)
                block = np.frombuffer(raw, dtype=dtype)
            records = block[key - spans[span_index][0]]
            values[qi] = records["v"]
            steps[qi] = records["step"]
