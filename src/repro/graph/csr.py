"""In-memory compressed sparse row (out-edge list) graph.

The construction intermediate for the flash format, the working structure of
the in-memory (GraphLab-like) baseline, and the substrate for reference
algorithm implementations used in cross-validation tests.
"""

from __future__ import annotations

import numpy as np


class CSRGraph:
    """Out-edge adjacency in CSR form.

    ``offsets[v] : offsets[v+1]`` indexes into ``targets`` (and ``weights``
    when present) for vertex ``v``'s outbound edges.  Edges are sorted by
    source; target order within a vertex follows input order.
    """

    def __init__(self, num_vertices: int, offsets: np.ndarray, targets: np.ndarray,
                 weights: np.ndarray | None = None):
        offsets = np.asarray(offsets, dtype=np.uint64)
        targets = np.asarray(targets, dtype=np.uint64)
        if len(offsets) != num_vertices + 1:
            raise ValueError(f"offsets length {len(offsets)} != num_vertices+1 ({num_vertices + 1})")
        if offsets[0] != 0 or offsets[-1] != len(targets):
            raise ValueError("offsets must start at 0 and end at len(targets)")
        if np.any(np.diff(offsets.astype(np.int64)) < 0):
            raise ValueError("offsets must be non-decreasing")
        if len(targets) and targets.max() >= num_vertices:
            raise ValueError("edge target out of range")
        if weights is not None and len(weights) != len(targets):
            raise ValueError("weights must align with targets")
        self.num_vertices = num_vertices
        self.offsets = offsets
        self.targets = targets
        self.weights = None if weights is None else np.asarray(weights, dtype=np.float32)

    # -------------------------------------------------------------- factories

    @staticmethod
    def from_edges(src: np.ndarray, dst: np.ndarray, num_vertices: int,
                   weights: np.ndarray | None = None) -> "CSRGraph":
        """Build from parallel source/target arrays (any order, duplicates kept)."""
        src = np.asarray(src, dtype=np.uint64)
        dst = np.asarray(dst, dtype=np.uint64)
        if len(src) != len(dst):
            raise ValueError(f"src/dst length mismatch: {len(src)} vs {len(dst)}")
        if weights is not None and len(weights) != len(src):
            raise ValueError(f"weights length {len(weights)} != edge count {len(src)}")
        if len(src) and max(src.max(), dst.max()) >= num_vertices:
            raise ValueError("edge endpoint out of range")
        order = np.argsort(src, kind="stable")
        src_sorted = src[order]
        counts = np.bincount(src_sorted.astype(np.int64), minlength=num_vertices)
        offsets = np.zeros(num_vertices + 1, dtype=np.uint64)
        np.cumsum(counts, out=offsets[1:])
        w = None if weights is None else np.asarray(weights)[order]
        return CSRGraph(num_vertices, offsets, dst[order], w)

    # -------------------------------------------------------------- properties

    @property
    def num_edges(self) -> int:
        return len(self.targets)

    @property
    def has_weights(self) -> bool:
        return self.weights is not None

    @property
    def nbytes(self) -> int:
        """In-memory footprint of the structure (what GraphLab must hold)."""
        total = self.offsets.nbytes + self.targets.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return total

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.offsets.astype(np.int64)).astype(np.uint64)

    def out_degree(self, v: int) -> int:
        return int(self.offsets[v + 1] - self.offsets[v])

    def neighbors(self, v: int) -> np.ndarray:
        return self.targets[int(self.offsets[v]):int(self.offsets[v + 1])]

    def edge_weights(self, v: int) -> np.ndarray | None:
        if self.weights is None:
            return None
        return self.weights[int(self.offsets[v]):int(self.offsets[v + 1])]

    # ------------------------------------------------------------- operations

    def reversed(self) -> "CSRGraph":
        """The transpose graph (in-edge lists), needed by pull-style consumers."""
        src = np.repeat(
            np.arange(self.num_vertices, dtype=np.uint64),
            np.diff(self.offsets.astype(np.int64)),
        )
        return CSRGraph.from_edges(self.targets, src, self.num_vertices, self.weights)

    def edge_list(self) -> tuple[np.ndarray, np.ndarray]:
        """(src, dst) arrays in CSR order."""
        src = np.repeat(
            np.arange(self.num_vertices, dtype=np.uint64),
            np.diff(self.offsets.astype(np.int64)),
        )
        return src, self.targets.copy()

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.num_vertices}, m={self.num_edges}, weighted={self.has_weights})"
