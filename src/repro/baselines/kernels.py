"""Shared numpy compute kernels for the baseline engines.

The four baselines differ in *where data lives and what I/O each superstep
costs*, not in what they compute — so the per-superstep computation is
factored here and every engine produces identical (cross-validated) answers.

Reductions go through :mod:`repro.core.reduce_ops` — the same audited op
table the sort-reduce engine and the execution modes use — so FIRST/LAST
ordering semantics are defined in exactly one place.
"""

from __future__ import annotations

import numpy as np

from repro.core.kvstream import KVArray
from repro.core.reduce_ops import FIRST, SUM
from repro.graph.csr import CSRGraph

#: Parent/label marker for untouched vertices (matches the engine's value).
UNVISITED = np.uint64(0xFFFFFFFFFFFFFFFF)


def bfs_expand(graph: CSRGraph, frontier: np.ndarray,
               parents: np.ndarray) -> tuple[np.ndarray, int]:
    """One BFS superstep: returns (next frontier, edges traversed).

    ``parents`` is updated in place for newly discovered vertices.
    """
    if len(frontier) == 0:
        return frontier, 0
    starts = graph.offsets[frontier].astype(np.int64)
    ends = graph.offsets[frontier + 1].astype(np.int64)
    degrees = ends - starts
    total = int(degrees.sum())
    if total == 0:
        return np.empty(0, np.int64), 0
    targets = np.concatenate(
        [graph.targets[s:e] for s, e in zip(starts, ends)]
    ).astype(np.int64)
    sources = np.repeat(frontier, degrees)
    fresh_mask = parents[targets] == UNVISITED
    targets, sources = targets[fresh_mask], sources[fresh_mask]
    if len(targets) == 0:
        return np.empty(0, np.int64), total
    # First writer wins — the engine's FIRST reduction, via the shared op
    # table (stable sort keeps stream order within equal keys).
    pairs = KVArray(targets.astype(np.uint64),
                    sources.astype(np.uint64)).sorted()
    winners = FIRST.reduce_sorted(pairs, presorted=True)
    next_frontier = winners.keys.astype(np.int64)
    parents[next_frontier] = winners.values.astype(parents.dtype)
    return next_frontier, total


def pagerank_iteration(graph: CSRGraph, rank: np.ndarray, degrees: np.ndarray,
                       has_inbound: np.ndarray, damping: float = 0.85) -> np.ndarray:
    """One push-PageRank iteration with retained rank for no-inbound vertices."""
    n = graph.num_vertices
    src, dst = graph.edge_list()
    src_i, dst_i = src.astype(np.int64), dst.astype(np.int64)
    contributions = np.zeros(n)
    touched = np.zeros(n, dtype=bool)
    pushing = degrees[src_i] > 0
    # SUM through the shared dense-aggregation path (stable sort keeps the
    # per-key addition sequence in stream order, matching np.add.at).
    SUM.scatter_into(contributions, touched, dst_i[pushing],
                     rank[src_i[pushing]] / degrees[src_i[pushing]])
    new_rank = (1 - damping) / n + damping * contributions
    return np.where(has_inbound, new_rank, rank)


def bc_backtrace(levels_lists: list[tuple[np.ndarray, np.ndarray]],
                 num_vertices: int) -> np.ndarray:
    """Descendant-count backtrace over per-level (vertices, parents) lists.

    Level 0 is the root level; deeper levels push ``1 + credit`` to their
    parents, exactly as the sort-reduce backtrace does.
    """
    centrality = np.zeros(num_vertices, dtype=np.float64)
    credit: dict[int, float] = {}
    for level_index in range(len(levels_lists) - 1, -1, -1):
        vertices, parents = levels_lists[level_index]
        level_credit = np.array([credit.get(int(v), 0.0) for v in vertices])
        centrality[vertices.astype(np.int64)] = level_credit
        if level_index == 0:
            break
        credit = {}
        for v, p, c in zip(vertices, parents, level_credit):
            if int(p) != int(v):
                credit[int(p)] = credit.get(int(p), 0.0) + 1.0 + c
    return centrality
