"""X-Stream-like edge-centric engine with streaming partitions.

X-Stream (§II-A) never does random storage access: every superstep it
streams the *entire* edge list sequentially, emits updates for edges whose
source is active into per-partition logs, and then streams the logs back to
apply them.  Vertex state is split into however many streaming partitions it
takes to fit one in memory, so it "maintains performance with smaller
memory ... by simply splitting the stream" (§V-C.2, Fig 13b) — the paper
even notes its update logs outgrew the flash array at high partition counts.

The fatal flaw the paper highlights: the full edge scan happens every
superstep *regardless of how sparse the frontier is*.  On WDC BFS, with
thousands of near-empty supersteps, each pass took ~500 s, projecting to
"two million seconds, or 23 days" (§V-C.1) — here that surfaces as a cutoff
DNF.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BaselineResult,
    ChargingMixin,
    DNF_CUTOFF_UNLIMITED,
    RunCutoff,
)
from repro.baselines import kernels
from repro.graph.csr import CSRGraph
from repro.perf.clock import SimClock
from repro.perf.profiles import HardwareProfile

#: Bytes per logged update record (destination id + value).
UPDATE_RECORD_BYTES = 16

#: Vertex state bytes per vertex (value + degree + flags).
VERTEX_STATE_BYTES = 24


class EdgeCentricEngine(ChargingMixin):
    """X-Stream-like execution: full edge scans, streaming partitions."""

    name = "X-Stream"

    def __init__(self, graph: CSRGraph, profile: HardwareProfile,
                 clock: SimClock | None = None,
                 cutoff_s: float = DNF_CUTOFF_UNLIMITED):
        self.graph = graph
        self.profile = profile
        self.clock = clock or SimClock()
        self.cutoff_s = cutoff_s
        self.edge_scan_bytes = graph.num_edges * 12  # src+dst packed records
        self.update_log_overflow = False

    # ------------------------------------------------------------- provision

    def num_partitions(self) -> int:
        """Streaming partitions needed so one partition's vertices fit in DRAM."""
        state = self.graph.num_vertices * VERTEX_STATE_BYTES
        return max(1, -(-state * 2 // self.profile.dram_capacity))

    # ---------------------------------------------------------------- charges

    def _charge_superstep(self, active_edges: int) -> None:
        """One superstep: scan all edges, shuffle updates out and back."""
        partitions = self.num_partitions()
        # Full sequential edge scan — the defining cost, frontier-independent.
        self.charge_seq_read(self.edge_scan_bytes)
        update_bytes = active_edges * UPDATE_RECORD_BYTES
        if partitions > 1:
            # Updates spill to per-partition logs on flash and stream back.
            if update_bytes > self.profile.flash_capacity:
                self.update_log_overflow = True
            self.charge_seq_write(update_bytes)
            self.charge_seq_read(update_bytes)
        # Edge processing and update shuffling are scatter-heavy: X-Stream
        # runs all 32 cores flat out yet moves only ~2 GB/s of a 6 GB/s
        # array (Table II) — it is compute-bound, not I/O-bound.
        self.charge_cpu_scatter(self.edge_scan_bytes + 2 * update_bytes)

    # ------------------------------------------------------------ algorithms

    def run_bfs(self, root: int) -> BaselineResult:
        start = self.clock.elapsed_s
        graph = self.graph
        parents = np.full(graph.num_vertices, kernels.UNVISITED, dtype=np.uint64)
        parents[root] = root
        frontier = np.array([root], dtype=np.int64)
        supersteps = 0
        traversed = 0
        try:
            while len(frontier):
                degrees = (graph.offsets[frontier + 1] - graph.offsets[frontier]).astype(np.int64)
                active_edges = int(degrees.sum())
                frontier, edges = kernels.bfs_expand(graph, frontier, parents)
                traversed += edges
                supersteps += 1
                self._charge_superstep(active_edges)
        except RunCutoff as cut:
            return self._cutoff("bfs", cut, supersteps, traversed)
        return self._done("bfs", start, parents, supersteps, traversed)

    def run_pagerank(self, iterations: int = 1, damping: float = 0.85) -> BaselineResult:
        start = self.clock.elapsed_s
        graph = self.graph
        rank = np.full(graph.num_vertices, 1.0 / graph.num_vertices)
        degrees = graph.out_degrees().astype(np.float64)
        has_inbound = np.zeros(graph.num_vertices, dtype=bool)
        has_inbound[graph.targets.astype(np.int64)] = True
        supersteps = 0
        try:
            for _ in range(iterations):
                rank = kernels.pagerank_iteration(graph, rank, degrees,
                                                  has_inbound, damping)
                supersteps += 1
                self._charge_superstep(graph.num_edges)
        except RunCutoff as cut:
            return self._cutoff("pagerank", cut, supersteps,
                                supersteps * graph.num_edges)
        return self._done("pagerank", start, rank, supersteps,
                          supersteps * graph.num_edges)

    def run_bc(self, root: int) -> BaselineResult:
        start = self.clock.elapsed_s
        graph = self.graph
        parents = np.full(graph.num_vertices, kernels.UNVISITED, dtype=np.uint64)
        parents[root] = root
        frontier = np.array([root], dtype=np.int64)
        levels_lists = [(frontier.copy(), np.array([root], dtype=np.uint64))]
        supersteps = 0
        traversed = 0
        try:
            while len(frontier):
                degrees = (graph.offsets[frontier + 1] - graph.offsets[frontier]).astype(np.int64)
                active_edges = int(degrees.sum())
                frontier, edges = kernels.bfs_expand(graph, frontier, parents)
                traversed += edges
                supersteps += 1
                self._charge_superstep(active_edges)
                if len(frontier):
                    levels_lists.append((frontier.copy(), parents[frontier]))
            centrality = kernels.bc_backtrace(levels_lists, graph.num_vertices)
            # Backtracing scans the edge list once more per level.
            for vertices, _parents in levels_lists[::-1]:
                self._charge_superstep(len(vertices))
        except RunCutoff as cut:
            return self._cutoff("bc", cut, supersteps, traversed)
        return self._done("bc", start, centrality, supersteps, traversed)

    # --------------------------------------------------------------- results

    def _done(self, algorithm: str, start: float, values: np.ndarray,
              supersteps: int, traversed: int) -> BaselineResult:
        return BaselineResult(
            system=self.name, algorithm=algorithm, completed=True,
            elapsed_s=self.clock.elapsed_s - start, values=values,
            supersteps=supersteps, traversed_edges=traversed,
            peak_memory=self.profile.dram_capacity,
            cpu_busy_s=self.clock.busy_s("cpu"),
            flash_bytes=self.clock.bytes_moved("flash"),
        )

    def _cutoff(self, algorithm: str, cut: RunCutoff, supersteps: int,
                traversed: int) -> BaselineResult:
        return BaselineResult(
            system=self.name, algorithm=algorithm, completed=False,
            elapsed_s=float("nan"), dnf_reason=str(cut),
            supersteps=supersteps, traversed_edges=traversed,
            peak_memory=self.profile.dram_capacity,
        )
