"""Common machinery for the baseline engines: charging helpers, run results,
and the did-not-finish protocol.

The paper's figures contain several kinds of failure — GraphLab exceeding
memory, FlashGraph thrashing until "stopped manually", X-Stream's projected
"23 days" on WDC BFS — all rendered as missing bars or ``*`` marks.  A
baseline run therefore ends in one of three ways: completed, out-of-memory
(refused up front), or cutoff (simulated time exceeded the experiment's
patience, like stopping a run by hand).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.perf.clock import SimClock
from repro.perf.profiles import HardwareProfile

#: Sentinel patience: never cut a run off.
DNF_CUTOFF_UNLIMITED = float("inf")


class RunCutoff(Exception):
    """Raised internally when a run exceeds the experiment's patience."""


@dataclass
class BaselineResult:
    """Outcome of one baseline run (mirrors the engine's RunResult shape)."""

    system: str
    algorithm: str
    completed: bool
    elapsed_s: float
    values: np.ndarray | None = None
    supersteps: int = 0
    traversed_edges: int = 0
    dnf_reason: str = ""
    peak_memory: int = 0
    cpu_busy_s: float = 0.0
    flash_bytes: int = 0

    @property
    def time_or_nan(self) -> float:
        """Execution time, NaN for DNF — the form the figure tables use."""
        return self.elapsed_s if self.completed else float("nan")

    def final_values(self) -> np.ndarray:
        if self.values is None:
            raise RuntimeError(f"{self.system} {self.algorithm} did not finish: {self.dnf_reason}")
        return self.values


class ChargingMixin:
    """Storage/CPU charging helpers shared by every baseline engine.

    Subclasses provide ``self.profile`` and ``self.clock``; the helpers
    translate strategy-level traffic (sequential scans, random page reads,
    CPU streaming) into clock charges consistent with the device model.
    """

    profile: HardwareProfile
    clock: SimClock
    cutoff_s: float

    def _check_cutoff(self) -> None:
        if self.clock.elapsed_s > self.cutoff_s:
            raise RunCutoff(
                f"exceeded patience of {self.cutoff_s:.0f}s simulated time"
            )

    def charge_seq_read(self, nbytes: float) -> None:
        """Large sequential flash read: bandwidth-bound."""
        if nbytes <= 0:
            return
        self.clock.charge("flash", self.profile.flash_read_latency_s
                          + nbytes / self.profile.flash_read_bw, nbytes=int(nbytes))
        self._check_cutoff()

    def charge_seq_write(self, nbytes: float) -> None:
        if nbytes <= 0:
            return
        self.clock.charge("flash", self.profile.flash_write_latency_s
                          + nbytes / self.profile.flash_write_bw, nbytes=int(nbytes))
        self._check_cutoff()

    def charge_random_reads(self, accesses: int, nbytes: float) -> None:
        """Fine-grained random flash reads: latency-bound at low queue depth."""
        if accesses <= 0:
            return
        seconds = accesses * self.profile.flash_read_latency_s \
            + nbytes / self.profile.flash_read_bw
        self.clock.charge("flash", seconds, nbytes=int(nbytes), ops=accesses)
        self._check_cutoff()

    def charge_random_writes(self, accesses: int, nbytes: float) -> None:
        if accesses <= 0:
            return
        seconds = accesses * self.profile.flash_write_latency_s \
            + nbytes / self.profile.flash_write_bw
        self.clock.charge("flash", seconds, nbytes=int(nbytes), ops=accesses)
        self._check_cutoff()

    def charge_cpu_stream(self, nbytes: float, threads: int | None = None) -> None:
        """Streaming computation over ``nbytes`` spread across the thread pool."""
        if nbytes <= 0:
            return
        threads = threads or self.profile.cpu_threads
        work = nbytes / self.profile.cpu_stream_bw_per_thread
        self.clock.charge_pool("cpu", work, threads)
        self._check_cutoff()

    def charge_cpu_scatter(self, nbytes: float, threads: int | None = None) -> None:
        """Random-access computation (hash/array scatter), much slower per thread."""
        if nbytes <= 0:
            return
        threads = threads or self.profile.cpu_threads
        work = nbytes / self.profile.cpu_scatter_bw_per_thread
        self.clock.charge_pool("cpu", work, threads)
        self._check_cutoff()


def graph_bytes_on_flash(graph: CSRGraph) -> int:
    """On-flash size of the CSR files (index + edges [+ weights])."""
    total = (graph.num_vertices + 1) * 8 + graph.num_edges * 8
    if graph.has_weights:
        total += graph.num_edges * 4
    return total
