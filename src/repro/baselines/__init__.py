"""Baseline graph-analytics systems the paper compares against (§II-A, §V).

Each baseline re-implements the published *storage and execution strategy*
of one competing system, computes real answers on the same graphs, and
charges its storage traffic and compute against the same simulated clock and
device model the GraFBoost engines use:

* :class:`InMemoryEngine` — GraphLab-like: the whole (replicated) graph in
  DRAM; fastest when it fits, swap-thrashes to DNF when it does not.
  :class:`ClusterInMemoryEngine` adds the 5-node GraphLab5 configuration.
* :class:`SemiExternalEngine` — FlashGraph-like: vertex arrays pinned in
  DRAM, edges read from SSD on demand through a page cache; DNF when even
  vertex data outgrows memory.
* :class:`EdgeCentricEngine` — X-Stream-like: streams *every* edge each
  superstep through streaming partitions; immune to memory pressure,
  hopeless on long sparse frontiers.
* :class:`ShardedExternalEngine` — GraphChi-like: parallel sliding windows
  over on-disk shards, re-reading the whole graph every iteration.

Unlike the GraFBoost engines (whose data physically round-trips through the
simulated flash device), baselines compute functionally in memory and meter
their storage traffic through the cost model — the comparison the paper
makes is about I/O strategy, and that is what is simulated.
"""

from repro.baselines.base import BaselineResult, DNF_CUTOFF_UNLIMITED
from repro.baselines.inmemory import InMemoryEngine, ClusterInMemoryEngine
from repro.baselines.semiexternal import SemiExternalEngine
from repro.baselines.edgecentric import EdgeCentricEngine
from repro.baselines.shard import ShardedExternalEngine

__all__ = [
    "BaselineResult",
    "DNF_CUTOFF_UNLIMITED",
    "InMemoryEngine",
    "ClusterInMemoryEngine",
    "SemiExternalEngine",
    "EdgeCentricEngine",
    "ShardedExternalEngine",
]
