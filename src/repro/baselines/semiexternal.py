"""FlashGraph-like semi-external engine: vertices in DRAM, edges on SSD.

FlashGraph pins all vertex state in memory and reads edge lists from SSD on
demand (§II-A).  Its behaviour across the paper's figures:

* comparable to in-memory systems while vertex state fits (Fig 12b),
* BFS needs little memory (frontier-driven, §V-C.2) and stays fast on small
  machines,
* performance "degrades sharply" once vertex state outgrows DRAM — swap
  thrashing — and runs get "stopped manually" (the ``*`` marks of Fig 13),
* it fails outright on kron32, whose vertex state exceeds 128 GB (Fig 12a).

The model: per-algorithm vertex state must (mostly) fit; the DRAM left over
acts as an edge page cache whose hit rate scales with how much of the edge
file it covers; sparse supersteps issue per-vertex random reads
(latency-bound), dense supersteps degrade to sequential scans.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BaselineResult,
    ChargingMixin,
    DNF_CUTOFF_UNLIMITED,
    RunCutoff,
    graph_bytes_on_flash,
)
from repro.baselines import kernels
from repro.graph.csr import CSRGraph
from repro.perf.clock import SimClock
from repro.perf.profiles import HardwareProfile

#: Framework bookkeeping per vertex (message queues, indices) on top of the
#: algorithm's own state.  Calibrated against Fig 13's x-axis (percent of
#: 8-byte-per-vertex data): BFS state equals vertex data (degradation only
#: below the 100% point), PageRank needs twice that (slowdown visible from
#: 150%), BC five times (degrades from 400%) — the orderings of Fig 13b-d.
VERTEX_OVERHEAD_BYTES = 0

#: Algorithm state per vertex; BC's is largest (parents, levels, credits,
#: per-level bookkeeping), which is why its "performance degradation [is]
#: faster" in Fig 13d.
ALG_STATE_BYTES = {"bfs": 8, "pagerank": 16, "bc": 40}

#: Beyond this much vertex-state overflow the run is declared failed rather
#: than thrashed (the paper's runs "stopped manually", Fig 13b).
MAX_SWAP_FRACTION = 0.6

#: FlashGraph (FAST'15) uses 32-bit vertex ids; a graph whose vertex count
#: exceeds the id space cannot be loaded at all — the kron32 DNF of Fig 12a
#: ("128 GB of memory was not enough ... to fit all vertex data").
VERTEX_ID_SPACE = 2 ** 32

#: Fraction of active vertices above which edge access is effectively a
#: sequential scan rather than per-vertex random reads.
DENSE_THRESHOLD = 0.3

#: Average wasted bytes per random edge-list read (page-granularity slack).
RANDOM_READ_WASTE = 2048

#: Fraction of the array's streaming bandwidth FlashGraph's request-granular
#: I/O engine achieves: Table II reports 1.5 GB/s of the 6 GB/s array.
BW_EFFICIENCY = 0.25


class SemiExternalEngine(ChargingMixin):
    """FlashGraph-like execution over one simulated SSD array."""

    name = "FlashGraph"

    def __init__(self, graph: CSRGraph, profile: HardwareProfile,
                 clock: SimClock | None = None,
                 cutoff_s: float = DNF_CUTOFF_UNLIMITED,
                 max_vertices: int | None = None):
        """``max_vertices`` is the vertex-id-space limit; scaled experiments
        pass ``VERTEX_ID_SPACE * scale_factor`` so the limit shrinks with
        everything else."""
        self.graph = graph
        self.profile = profile
        self.clock = clock or SimClock()
        self.cutoff_s = cutoff_s
        self.max_vertices = max_vertices
        self.edge_file_bytes = graph.num_edges * 8
        # Bytes of the edge file never yet read: the page cache starts cold,
        # so the first touch of every byte is a miss regardless of cache
        # size (the paper measures PageRank's *first* iteration).
        self._cold_bytes = self.edge_file_bytes

    # ------------------------------------------------------------- provision

    def state_bytes(self, algorithm: str) -> int:
        per_vertex = ALG_STATE_BYTES[algorithm] + VERTEX_OVERHEAD_BYTES
        return self.graph.num_vertices * per_vertex

    def swap_fraction(self, algorithm: str) -> float:
        state = self.state_bytes(algorithm)
        return max(0.0, state - self.profile.dram_capacity) / state

    def cache_hit_rate(self, algorithm: str) -> float:
        cache = max(0, self.profile.dram_capacity - self.state_bytes(algorithm))
        if self.edge_file_bytes == 0:
            return 1.0
        return min(1.0, cache / self.edge_file_bytes)

    def _setup(self, algorithm: str) -> float | None:
        """Load vertex state; returns the swap fraction, or None on DNF."""
        if self.max_vertices is not None and self.graph.num_vertices > self.max_vertices:
            return None
        swap = self.swap_fraction(algorithm)
        if swap > MAX_SWAP_FRACTION:
            return None
        self.charge_seq_read((self.graph.num_vertices + 1) * 8)  # index file
        self.charge_cpu_stream(self.state_bytes(algorithm))
        return swap

    def _oom(self, algorithm: str) -> BaselineResult:
        if self.max_vertices is not None and self.graph.num_vertices > self.max_vertices:
            reason = (f"{self.graph.num_vertices} vertices exceed the "
                      f"(scaled) vertex id space of {self.max_vertices}")
        else:
            reason = (f"vertex state {self.state_bytes(algorithm)} B exceeds DRAM "
                      f"{self.profile.dram_capacity} B beyond thrashing tolerance")
        return BaselineResult(
            system=self.name, algorithm=algorithm, completed=False,
            elapsed_s=float("nan"), dnf_reason=reason,
            peak_memory=self.state_bytes(algorithm),
        )

    # ---------------------------------------------------------------- charges

    def _charge_edge_access(self, algorithm: str, active: int, edge_bytes: int) -> None:
        """Edge reads for one superstep: random when sparse, a scan when dense."""
        if active == 0 or edge_bytes == 0:
            return
        # Cold first-touch bytes always miss; re-reads hit per cache share.
        cold = min(edge_bytes, self._cold_bytes)
        self._cold_bytes -= cold
        warm = edge_bytes - cold
        miss = 1.0 - self.cache_hit_rate(algorithm)
        edge_bytes = cold + warm * miss
        if edge_bytes <= 0:
            return
        miss = 1.0
        if active > DENSE_THRESHOLD * self.graph.num_vertices:
            # Request-granular I/O reaches only a fraction of the array's
            # streaming bandwidth (Table II), charged as extra volume.
            self.charge_seq_read(edge_bytes / BW_EFFICIENCY)
        else:
            accesses = max(1, int(active * min(1.0, edge_bytes / max(1, cold + warm))))
            self.charge_random_reads(
                accesses,
                (edge_bytes + accesses * RANDOM_READ_WASTE) / BW_EFFICIENCY)

    def _charge_thrash(self, algorithm: str, swap: float, vertices_touched: int) -> None:
        """Swap traffic for vertex-state accesses that miss DRAM.

        Vertex updates arrive in edge order — effectively random — so a
        miss has no page locality: every out-of-core access faults a whole
        page in (and usually evicts a dirty one).  This is what makes
        FlashGraph's degradation "sharp" once state outgrows DRAM (Fig 13b).
        """
        if swap <= 0 or vertices_touched == 0:
            return
        page = self.profile.flash_page_bytes
        faults = int(vertices_touched * swap)
        if faults == 0:
            return
        self.charge_random_reads(faults, faults * page)
        self.charge_random_writes(faults, faults * page)

    def _charge_compute(self, edges: int, vertices: int) -> None:
        # Per edge: read the edge record and random-update the destination's
        # in-memory vertex state (Table II: FlashGraph runs all 32 cores at
        # 3200% while its flash moves only 1.5 GB/s — it is compute-bound).
        self.charge_cpu_scatter(edges * 24 + vertices * 8)

    # ------------------------------------------------------------ algorithms

    def run_bfs(self, root: int) -> BaselineResult:
        swap = self._setup("bfs")
        if swap is None:
            return self._oom("bfs")
        start = self.clock.elapsed_s
        graph = self.graph
        parents = np.full(graph.num_vertices, kernels.UNVISITED, dtype=np.uint64)
        parents[root] = root
        frontier = np.array([root], dtype=np.int64)
        supersteps = 0
        traversed = 0
        try:
            while len(frontier):
                active = len(frontier)
                degrees = (graph.offsets[frontier + 1] - graph.offsets[frontier]).astype(np.int64)
                edge_bytes = int(degrees.sum()) * 8
                frontier, edges = kernels.bfs_expand(graph, frontier, parents)
                traversed += edges
                supersteps += 1
                self._charge_edge_access("bfs", active, edge_bytes)
                self._charge_compute(edges, active + len(frontier))
                self._charge_thrash("bfs", swap, active + len(frontier))
        except RunCutoff as cut:
            return self._cutoff("bfs", cut, supersteps, traversed)
        return self._done("bfs", start, parents, supersteps, traversed)

    def run_pagerank(self, iterations: int = 1, damping: float = 0.85) -> BaselineResult:
        swap = self._setup("pagerank")
        if swap is None:
            return self._oom("pagerank")
        start = self.clock.elapsed_s
        graph = self.graph
        rank = np.full(graph.num_vertices, 1.0 / graph.num_vertices)
        degrees = graph.out_degrees().astype(np.float64)
        has_inbound = np.zeros(graph.num_vertices, dtype=bool)
        has_inbound[graph.targets.astype(np.int64)] = True
        supersteps = 0
        try:
            for _ in range(iterations):
                rank = kernels.pagerank_iteration(graph, rank, degrees,
                                                  has_inbound, damping)
                supersteps += 1
                self._charge_edge_access("pagerank", graph.num_vertices,
                                         self.edge_file_bytes)
                self._charge_compute(graph.num_edges, graph.num_vertices)
                self._charge_thrash("pagerank", swap, graph.num_vertices)
        except RunCutoff as cut:
            return self._cutoff("pagerank", cut, supersteps,
                                supersteps * graph.num_edges)
        return self._done("pagerank", start, rank, supersteps,
                          supersteps * graph.num_edges)

    def run_bc(self, root: int) -> BaselineResult:
        swap = self._setup("bc")
        if swap is None:
            return self._oom("bc")
        start = self.clock.elapsed_s
        graph = self.graph
        parents = np.full(graph.num_vertices, kernels.UNVISITED, dtype=np.uint64)
        parents[root] = root
        frontier = np.array([root], dtype=np.int64)
        levels_lists = [(frontier.copy(), np.array([root], dtype=np.uint64))]
        supersteps = 0
        traversed = 0
        try:
            while len(frontier):
                active = len(frontier)
                degrees = (graph.offsets[frontier + 1] - graph.offsets[frontier]).astype(np.int64)
                edge_bytes = int(degrees.sum()) * 8
                frontier, edges = kernels.bfs_expand(graph, frontier, parents)
                traversed += edges
                supersteps += 1
                self._charge_edge_access("bc", active, edge_bytes)
                self._charge_compute(edges, active + len(frontier))
                self._charge_thrash("bc", swap, active + len(frontier))
                if len(frontier):
                    levels_lists.append((frontier.copy(), parents[frontier]))
            centrality = kernels.bc_backtrace(levels_lists, graph.num_vertices)
            for vertices, _parents in levels_lists[::-1]:
                self._charge_compute(0, 2 * len(vertices))
                self._charge_thrash("bc", swap, 2 * len(vertices))
        except RunCutoff as cut:
            return self._cutoff("bc", cut, supersteps, traversed)
        return self._done("bc", start, centrality, supersteps, traversed)

    # --------------------------------------------------------------- results

    def _done(self, algorithm: str, start: float, values: np.ndarray,
              supersteps: int, traversed: int) -> BaselineResult:
        return BaselineResult(
            system=self.name, algorithm=algorithm, completed=True,
            elapsed_s=self.clock.elapsed_s - start, values=values,
            supersteps=supersteps, traversed_edges=traversed,
            peak_memory=self.state_bytes(algorithm),
            cpu_busy_s=self.clock.busy_s("cpu"),
            flash_bytes=self.clock.bytes_moved("flash"),
        )

    def _cutoff(self, algorithm: str, cut: RunCutoff, supersteps: int,
                traversed: int) -> BaselineResult:
        return BaselineResult(
            system=self.name, algorithm=algorithm, completed=False,
            elapsed_s=float("nan"), dnf_reason=str(cut),
            supersteps=supersteps, traversed_edges=traversed,
            peak_memory=self.state_bytes(algorithm),
        )
