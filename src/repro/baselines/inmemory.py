"""GraphLab-like in-memory engine, single-node and 5-node cluster.

GraphLab stores the entire graph — vertices and edges, with PowerGraph-style
replication overhead — in DRAM.  When it fits it is among the fastest
systems; when it does not, the paper reports it "thrashes swap space and
fails to complete within reasonable time" (§I-B), so this engine refuses
with an out-of-memory DNF rather than pretending.

:class:`ClusterInMemoryEngine` models the paper's GraphLab5: five 48 GB
nodes over 1 G Ethernet.  Memory pools across nodes, compute parallelizes,
but every superstep pays network synchronization — which is why GraphLab5
wins PageRank on kron28 yet loses BFS on twitter even to single-node
GraphLab ("the network becoming the bottleneck with irregular data transfer
patterns", §V-D).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BaselineResult,
    ChargingMixin,
    DNF_CUTOFF_UNLIMITED,
    RunCutoff,
    graph_bytes_on_flash,
)
from repro.baselines import kernels
from repro.graph.csr import CSRGraph
from repro.perf.clock import SimClock
from repro.perf.profiles import HardwareProfile, MB

#: PowerGraph-style in-memory blow-up over the compact binary size
#: (vertex/edge objects, mirrors, locks).  Calibrated so the paper's
#: feasibility boundary holds: twitter (6 GB) fits in 128 GB, kron28
#: (18 GB) does not; kron28 fits in GraphLab5's pooled 240 GB, kron30
#: (72 GB) does not.
REPLICATION_FACTOR = 10.0

#: 1 G Ethernet payload bandwidth.
GIGABIT_BW = 115 * MB
#: Per-superstep barrier/synchronization cost in the cluster (a bulk
#: synchronous barrier over 1 G Ethernet with a software stack).
SYNC_LATENCY_S = 1e-3
#: Average remote mirrors per vertex under PowerGraph-style vertex cuts
#: (grows ~sqrt(nodes); ~1.5 for a 5-node cluster).
MIRRORS_PER_VERTEX = 1.5

#: Bytes of in-memory work per edge traversed (index + target + value).
EDGE_TOUCH_BYTES = 16


class InMemoryEngine(ChargingMixin):
    """Single-node GraphLab-like execution."""

    name = "GraphLab"

    def __init__(self, graph: CSRGraph, profile: HardwareProfile,
                 clock: SimClock | None = None,
                 cutoff_s: float = DNF_CUTOFF_UNLIMITED,
                 replication_factor: float = REPLICATION_FACTOR):
        self.graph = graph
        self.profile = profile
        self.clock = clock or SimClock()
        self.cutoff_s = cutoff_s
        self.replication_factor = replication_factor

    # ------------------------------------------------------------- provision

    def memory_required(self) -> int:
        """DRAM needed: replicated graph structure plus vertex state."""
        return int(self.graph.nbytes * self.replication_factor
                   + self.graph.num_vertices * 24)

    def memory_available(self) -> int:
        return self.profile.dram_capacity

    def fits(self) -> bool:
        return self.memory_required() <= self.memory_available()

    def _oom(self, algorithm: str) -> BaselineResult:
        return BaselineResult(
            system=self.name, algorithm=algorithm, completed=False,
            elapsed_s=float("nan"),
            dnf_reason=(
                f"out of memory: needs {self.memory_required()} B of "
                f"{self.memory_available()} B DRAM"
            ),
            peak_memory=self.memory_required(),
        )

    def _load(self) -> None:
        """Read the graph from storage and build the in-memory structure."""
        flash_bytes = graph_bytes_on_flash(self.graph)
        self.charge_seq_read(flash_bytes)
        self.charge_cpu_stream(self.graph.nbytes * self.replication_factor)

    def _compute_parallelism(self) -> int:
        return self.profile.cpu_threads

    def _charge_superstep(self, edges_touched: int, active_vertices: int) -> None:
        self.charge_cpu_scatter(edges_touched * EDGE_TOUCH_BYTES,
                                self._compute_parallelism())

    # ------------------------------------------------------------ algorithms

    def run_bfs(self, root: int) -> BaselineResult:
        if not self.fits():
            return self._oom("bfs")
        start = self.clock.elapsed_s
        parents = np.full(self.graph.num_vertices, kernels.UNVISITED, dtype=np.uint64)
        parents[root] = root
        frontier = np.array([root], dtype=np.int64)
        supersteps = 0
        traversed = 0
        try:
            self._load()
            while len(frontier):
                frontier, edges = kernels.bfs_expand(self.graph, frontier, parents)
                traversed += edges
                supersteps += 1
                self._charge_superstep(edges, len(frontier))
        except RunCutoff as cut:
            return self._cutoff("bfs", cut, supersteps, traversed)
        return self._done("bfs", start, parents, supersteps, traversed)

    def run_pagerank(self, iterations: int = 1, damping: float = 0.85) -> BaselineResult:
        if not self.fits():
            return self._oom("pagerank")
        start = self.clock.elapsed_s
        graph = self.graph
        rank = np.full(graph.num_vertices, 1.0 / graph.num_vertices)
        degrees = graph.out_degrees().astype(np.float64)
        has_inbound = np.zeros(graph.num_vertices, dtype=bool)
        has_inbound[graph.targets.astype(np.int64)] = True
        supersteps = 0
        try:
            self._load()
            for _ in range(iterations):
                rank = kernels.pagerank_iteration(graph, rank, degrees,
                                                  has_inbound, damping)
                supersteps += 1
                self._charge_superstep(graph.num_edges, graph.num_vertices)
        except RunCutoff as cut:
            return self._cutoff("pagerank", cut, supersteps, supersteps * graph.num_edges)
        return self._done("pagerank", start, rank, supersteps,
                          supersteps * graph.num_edges)

    def run_bc(self, root: int) -> BaselineResult:
        if not self.fits():
            return self._oom("bc")
        start = self.clock.elapsed_s
        graph = self.graph
        parents = np.full(graph.num_vertices, kernels.UNVISITED, dtype=np.uint64)
        parents[root] = root
        frontier = np.array([root], dtype=np.int64)
        levels_lists = [(frontier.copy(), np.array([root], dtype=np.uint64))]
        supersteps = 0
        traversed = 0
        try:
            self._load()
            while len(frontier):
                frontier, edges = kernels.bfs_expand(self.graph, frontier, parents)
                traversed += edges
                supersteps += 1
                self._charge_superstep(edges, len(frontier))
                if len(frontier):
                    levels_lists.append((frontier.copy(), parents[frontier]))
            centrality = kernels.bc_backtrace(levels_lists, graph.num_vertices)
            # Backtrace touches every tree edge once per level list.
            self._charge_superstep(sum(len(v) for v, _ in levels_lists), 0)
        except RunCutoff as cut:
            return self._cutoff("bc", cut, supersteps, traversed)
        return self._done("bc", start, centrality, supersteps, traversed)

    # --------------------------------------------------------------- results

    def _done(self, algorithm: str, start: float, values: np.ndarray,
              supersteps: int, traversed: int) -> BaselineResult:
        return BaselineResult(
            system=self.name, algorithm=algorithm, completed=True,
            elapsed_s=self.clock.elapsed_s - start, values=values,
            supersteps=supersteps, traversed_edges=traversed,
            peak_memory=self.memory_required(),
            cpu_busy_s=self.clock.busy_s("cpu"),
            flash_bytes=self.clock.bytes_moved("flash"),
        )

    def _cutoff(self, algorithm: str, cut: RunCutoff, supersteps: int,
                traversed: int) -> BaselineResult:
        return BaselineResult(
            system=self.name, algorithm=algorithm, completed=False,
            elapsed_s=float("nan"), dnf_reason=str(cut),
            supersteps=supersteps, traversed_edges=traversed,
            peak_memory=self.memory_required(),
        )


class ClusterInMemoryEngine(InMemoryEngine):
    """GraphLab5: five pooled nodes over 1 G Ethernet (§V-D)."""

    name = "GraphLab5"

    def __init__(self, graph: CSRGraph, profile: HardwareProfile,
                 num_nodes: int = 5, clock: SimClock | None = None,
                 cutoff_s: float = DNF_CUTOFF_UNLIMITED,
                 replication_factor: float = REPLICATION_FACTOR,
                 network_bw: float = GIGABIT_BW):
        super().__init__(graph, profile, clock, cutoff_s, replication_factor)
        if num_nodes < 2:
            raise ValueError(f"a cluster needs >= 2 nodes, got {num_nodes}")
        self.num_nodes = num_nodes
        self.network_bw = network_bw

    def memory_available(self) -> int:
        return self.profile.dram_capacity * self.num_nodes

    def _compute_parallelism(self) -> int:
        return self.profile.cpu_threads * self.num_nodes

    def _load(self) -> None:
        """Each node loads (and replicates) its own partition in parallel."""
        from repro.baselines.base import graph_bytes_on_flash

        flash_bytes = graph_bytes_on_flash(self.graph)
        self.charge_seq_read(flash_bytes / self.num_nodes)
        self.charge_cpu_stream(self.graph.nbytes * self.replication_factor,
                               self._compute_parallelism())

    def _charge_superstep(self, edges_touched: int, active_vertices: int) -> None:
        super()._charge_superstep(edges_touched, active_vertices)
        # Mirror synchronization: every active vertex's value crosses the
        # network to its remote mirrors, plus a per-superstep barrier.
        # Sparse many-superstep algorithms (BFS) drown in the barrier
        # latency — "the network becoming the bottleneck" (§V-D).
        sync_bytes = int(active_vertices * 8 * MIRRORS_PER_VERTEX)
        self.clock.charge("net", SYNC_LATENCY_S + sync_bytes / self.network_bw,
                          nbytes=sync_bytes)
        self._check_cutoff()
