"""GraphChi-like fully-external engine: parallel sliding windows over shards.

GraphChi (§II-A) targets machines where even vertex data does not fit in
DRAM.  The graph is pre-sharded by destination interval, each shard sorted
by source; an iteration loads each shard as the "memory shard" and slides a
window over every other shard — which means the *whole graph is re-read
(and partly re-written, since updated values live on the edges) every
iteration*, with "additional work" that leaves it "uncompetitive with
memory-based systems" (the paper could not even collect GraphChi numbers on
its large graphs due to low performance).

The strength modeled here: its memory requirement is a constant shard
budget, so it never DNFs on memory — only on patience.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BaselineResult,
    ChargingMixin,
    DNF_CUTOFF_UNLIMITED,
    RunCutoff,
)
from repro.baselines import kernels
from repro.graph.csr import CSRGraph
from repro.perf.clock import SimClock
from repro.perf.profiles import HardwareProfile

#: GraphChi stores values on edges: each edge record is (src, dst, value).
EDGE_RECORD_BYTES = 24

#: Disk-era engineering: effective CPU parallelism is low (the paper's
#: GraphChi was designed for disks and a few threads).
EFFECTIVE_THREADS = 4

#: Fraction of edge data rewritten per iteration (updated edge values).
REWRITE_FRACTION = 0.5


class ShardedExternalEngine(ChargingMixin):
    """GraphChi-like execution with constant memory use."""

    name = "GraphChi"

    def __init__(self, graph: CSRGraph, profile: HardwareProfile,
                 clock: SimClock | None = None,
                 cutoff_s: float = DNF_CUTOFF_UNLIMITED,
                 shard_memory_bytes: int | None = None):
        self.graph = graph
        self.profile = profile
        self.clock = clock or SimClock()
        self.cutoff_s = cutoff_s
        self.shard_memory = shard_memory_bytes or min(
            profile.dram_capacity // 2, 4 * (1 << 30))
        self.edge_data_bytes = graph.num_edges * EDGE_RECORD_BYTES

    def num_shards(self) -> int:
        return max(1, -(-self.edge_data_bytes // self.shard_memory))

    # ---------------------------------------------------------------- charges

    def _charge_iteration(self) -> None:
        """One full parallel-sliding-windows pass over all shards."""
        # Memory shard + sliding windows: the whole edge data is read once,
        # and updated edge values are written back.
        self.charge_seq_read(self.edge_data_bytes)
        self.charge_seq_write(self.edge_data_bytes * REWRITE_FRACTION)
        self.charge_cpu_stream(self.edge_data_bytes, threads=EFFECTIVE_THREADS)
        # Re-sorting updates into shard order is extra work GraphChi pays.
        self.charge_cpu_scatter(self.edge_data_bytes * 0.5,
                                threads=EFFECTIVE_THREADS)

    # ------------------------------------------------------------ algorithms

    def run_bfs(self, root: int) -> BaselineResult:
        start = self.clock.elapsed_s
        graph = self.graph
        parents = np.full(graph.num_vertices, kernels.UNVISITED, dtype=np.uint64)
        parents[root] = root
        frontier = np.array([root], dtype=np.int64)
        supersteps = 0
        traversed = 0
        try:
            while len(frontier):
                frontier, edges = kernels.bfs_expand(graph, frontier, parents)
                traversed += edges
                supersteps += 1
                self._charge_iteration()
        except RunCutoff as cut:
            return self._cutoff("bfs", cut, supersteps, traversed)
        return self._done("bfs", start, parents, supersteps, traversed)

    def run_pagerank(self, iterations: int = 1, damping: float = 0.85) -> BaselineResult:
        start = self.clock.elapsed_s
        graph = self.graph
        rank = np.full(graph.num_vertices, 1.0 / graph.num_vertices)
        degrees = graph.out_degrees().astype(np.float64)
        has_inbound = np.zeros(graph.num_vertices, dtype=bool)
        has_inbound[graph.targets.astype(np.int64)] = True
        supersteps = 0
        try:
            for _ in range(iterations):
                rank = kernels.pagerank_iteration(graph, rank, degrees,
                                                  has_inbound, damping)
                supersteps += 1
                self._charge_iteration()
        except RunCutoff as cut:
            return self._cutoff("pagerank", cut, supersteps,
                                supersteps * graph.num_edges)
        return self._done("pagerank", start, rank, supersteps,
                          supersteps * graph.num_edges)

    def run_bc(self, root: int) -> BaselineResult:
        start = self.clock.elapsed_s
        graph = self.graph
        parents = np.full(graph.num_vertices, kernels.UNVISITED, dtype=np.uint64)
        parents[root] = root
        frontier = np.array([root], dtype=np.int64)
        levels_lists = [(frontier.copy(), np.array([root], dtype=np.uint64))]
        supersteps = 0
        traversed = 0
        try:
            while len(frontier):
                frontier, edges = kernels.bfs_expand(graph, frontier, parents)
                traversed += edges
                supersteps += 1
                self._charge_iteration()
                if len(frontier):
                    levels_lists.append((frontier.copy(), parents[frontier]))
            centrality = kernels.bc_backtrace(levels_lists, graph.num_vertices)
            for _ in levels_lists:
                self._charge_iteration()
        except RunCutoff as cut:
            return self._cutoff("bc", cut, supersteps, traversed)
        return self._done("bc", start, centrality, supersteps, traversed)

    # --------------------------------------------------------------- results

    def _done(self, algorithm: str, start: float, values: np.ndarray,
              supersteps: int, traversed: int) -> BaselineResult:
        return BaselineResult(
            system=self.name, algorithm=algorithm, completed=True,
            elapsed_s=self.clock.elapsed_s - start, values=values,
            supersteps=supersteps, traversed_edges=traversed,
            peak_memory=self.shard_memory,
            cpu_busy_s=self.clock.busy_s("cpu"),
            flash_bytes=self.clock.bytes_moved("flash"),
        )

    def _cutoff(self, algorithm: str, cut: RunCutoff, supersteps: int,
                traversed: int) -> BaselineResult:
        return BaselineResult(
            system=self.name, algorithm=algorithm, completed=False,
            elapsed_s=float("nan"), dnf_reason=str(cut),
            supersteps=supersteps, traversed_edges=traversed,
            peak_memory=self.shard_memory,
        )
