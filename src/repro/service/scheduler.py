"""The deterministic service scheduler: many jobs, one sim clock.

:class:`GraphService` turns one assembled system stack into a multi-tenant
analytics service.  Clients :meth:`~GraphService.submit` jobs (analytics
runs and point queries, tagged with an arrival round); :meth:`~GraphService.run`
then drives everything to completion in discrete *rounds*:

1. **Arrivals** — submissions tagged with this round get their admission
   decision (admit / queue / reject; see :mod:`repro.service.admission`).
2. **Analytics steps** — every running job advances exactly one superstep,
   in job-id order, via the engine's cooperative :class:`EngineRun` handle.
   A job that completes writes its vertex values to a durable result file
   and releases its bandwidth reservation.
3. **Promotion** — queued runs start executing if a completion freed
   bandwidth.
4. **Point batch** — all outstanding point queries advance together in one
   shared batch (:func:`repro.service.queries.run_point_batch`); ``vstate``
   reads resolve once their referenced job is done.
5. **Journal** — the whole job table is published to flash through the
   same staging → seal → atomic-rename protocol the engine checkpoint
   uses, so job state survives power loss.

Every decision above is a pure function of (submission list, journaled job
table): no wall clock, no randomness, no dependence on absolute sim time.
Combined with the engine's own determinism across worker counts (PR 5) and
crash/resume (PR 3), the service's :meth:`~GraphService.trace` is
bit-identical across ``--workers`` and power-loss injection — absolute
round/time quantities are deliberately excluded, because crash re-execution
legitimately repeats work.

On a :class:`PowerLossError` the service remounts the store (charging real
recovery time), reloads the journal, rebuilds the admission ledger from the
journaled job states, and re-creates engines with ``auto_resume=True`` so
each interrupted run continues from its own checkpoint namespace
(``svc:<job-id>:ckpt``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.flash.device import PowerLossError
from repro.service.admission import (
    ADMITTED,
    QUEUED_DECISION,
    AdmissionController,
    TenantQuota,
)
from repro.service.jobs import (
    DONE,
    FAILED,
    PENDING,
    QUEUED,
    REJECTED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobSpec,
    make_program,
    parse_job_spec,
)
from repro.service.queries import checksum, read_vstate, run_point_batch

JOURNAL_FILE = "svc:jobs"
JOURNAL_VERSION = 1


@dataclass
class ServiceConfig:
    """Service-wide knobs (all deterministic)."""

    #: Per-job engine checkpoint cadence (supersteps); every admitted run is
    #: crash→remount→resume durable through the PR 3 machinery.
    checkpoint_every: int = 2
    #: Hard ceiling on scheduler rounds (a stuck dependency otherwise spins).
    max_rounds: int = 100_000
    #: Give-up bound for the remount retry loop under crash injection.
    max_remounts: int = 10_000


@dataclass
class ServiceReport:
    """What :meth:`GraphService.run` hands back."""

    jobs: list
    trace: list
    rounds: int
    remounts: int
    power_losses: int
    rejections: int

    def jobs_by_state(self, state: str) -> list:
        return [j for j in self.jobs if j.state == state]


class GraphService:
    """A multi-tenant graph analytics service over one system stack."""

    def __init__(self, system, graph, num_vertices: int,
                 config: ServiceConfig | None = None,
                 quotas: dict[str, TenantQuota] | None = None,
                 default_root: int = 0):
        self.system = system
        self.graph = graph
        self.num_vertices = num_vertices
        self.config = config or ServiceConfig()
        self.default_root = default_root
        self._quotas = dict(quotas or {})
        self.controller = AdmissionController(system.profile.flash_read_bw,
                                              self._quotas)
        #: (job_id, spec) in submission order — the workload definition.
        #: Journaled alongside the job table so future arrivals replay
        #: identically after a crash.
        self.submissions: list[tuple[str, JobSpec]] = []
        self.jobs: dict[str, Job] = {}
        self.round = 0
        self.remounts = 0
        self._engines: dict = {}
        self._next_id = 1

    # -------------------------------------------------------------- submission

    def submit(self, spec: JobSpec | str) -> str:
        """Register a job; returns its deterministic id (``svc-<n>``).

        Admission is decided at the spec's arrival round, not here — a
        submission is just workload input.
        """
        if isinstance(spec, str):
            spec = parse_job_spec(spec)
        job_id = f"svc-{self._next_id}"
        self._next_id += 1
        self.submissions.append((job_id, spec))
        return job_id

    def submit_all(self, specs) -> list[str]:
        return [self.submit(spec) for spec in specs]

    # --------------------------------------------------------------- main loop

    def run(self) -> ServiceReport:
        """Drive all submitted jobs to a terminal state."""
        while not self._finished():
            if self.round >= self.config.max_rounds:
                raise RuntimeError(
                    f"service exceeded {self.config.max_rounds} rounds; "
                    f"a job dependency is probably unsatisfiable")
            try:
                self._run_round()
            except PowerLossError:
                while True:
                    try:
                        self._recover()
                        break
                    except PowerLossError:
                        continue
        crashes = self.system.device.crashes
        return ServiceReport(
            jobs=[self.jobs[jid] for jid, _ in self.submissions
                  if jid in self.jobs],
            trace=self.trace(),
            rounds=self.round,
            remounts=self.remounts,
            power_losses=crashes.stats.power_losses if crashes else 0,
            rejections=self.controller.rejections,
        )

    def _finished(self) -> bool:
        if not self.submissions:
            return True
        for job_id, _ in self.submissions:
            job = self.jobs.get(job_id)
            if job is None or job.state not in TERMINAL_STATES:
                return False
        return True

    def _run_round(self) -> None:
        r = self.round
        # 1. Arrivals (submission order): one admission decision each,
        # recorded once — never recomputed, part of the canonical trace.
        for job_id, spec in self.submissions:
            if spec.at_round == r and job_id not in self.jobs:
                self._arrive(job_id, spec)
        # 2. One superstep per running analytics job, job-id order.
        for job_id, _ in self.submissions:
            job = self.jobs.get(job_id)
            if job is not None and job.state == RUNNING:
                self._step_job(job)
        # 3. Completions may have freed bandwidth: promote queued runs.
        for job_id, _ in self.submissions:
            job = self.jobs.get(job_id)
            if (job is not None and job.state == QUEUED
                    and self.controller.promote(job.spec.tenant)):
                job.state = RUNNING
        # 4. All outstanding point queries advance as one shared batch.
        self._run_points()
        # 5. Publish the new job table; this is the round's commit point.
        self.round = r + 1
        self._write_journal()

    # ---------------------------------------------------------------- arrivals

    def _arrive(self, job_id: str, spec: JobSpec) -> None:
        job = Job(job_id=job_id, spec=spec)
        if spec.is_analytics:
            decision = self.controller.admit_analytics(spec.tenant)
            job.admission = decision
            if decision == ADMITTED:
                job.state = RUNNING
            elif decision == QUEUED_DECISION:
                job.state = QUEUED
            else:
                job.state = REJECTED
                job.reason = "flash bandwidth saturated and tenant queue full"
        else:
            decision = self.controller.admit_point(spec.tenant)
            job.admission = decision
            if decision == ADMITTED:
                job.state = PENDING
            else:
                job.state = REJECTED
                job.reason = "tenant point-query quota exceeded"
        self.jobs[job_id] = job

    # ----------------------------------------------------------- analytics jobs

    def _build_run(self, job: Job):
        """(Re)create the cooperative engine run for an admitted job.

        ``auto_resume=True`` unconditionally: with no checkpoint on flash it
        is a fresh start, after a crash it resumes from the job's own
        checkpoint namespace.  The program is namespaced by job id so two
        concurrent runs of the same algorithm keep disjoint on-flash state.
        """
        program, limit = make_program(job.spec, self.num_vertices,
                                      self.default_root)
        program.namespaced(job.job_id)
        engine = self.system.engine_for(
            self.graph, self.num_vertices,
            checkpoint_every=self.config.checkpoint_every,
            auto_resume=True,
            checkpoint_prefix=f"svc:{job.job_id}:ckpt")
        run = engine.start(program, max_supersteps=limit)
        self._engines[job.job_id] = run
        return run

    def _step_job(self, job: Job) -> None:
        run = self._engines.get(job.job_id)
        if run is None:
            run = self._build_run(job)
        if run.step():
            return
        result = run.finish()
        self._engines.pop(job.job_id, None)
        values = result.final_values()
        values_file = self._write_values(job.job_id, values)
        job.result = {
            "kind": job.spec.kind,
            "supersteps": result.num_supersteps,
            "modes": [m.mode for m in result.supersteps],
            "checksum": checksum(values),
            "values_file": values_file,
            "dtype": values.dtype.str,
            "elapsed_s": result.elapsed_s,
        }
        job.state = DONE
        self.controller.release(job.spec.tenant)

    def _write_values(self, job_id: str, values: np.ndarray) -> str:
        """Durably publish a finished job's vertex values.

        Staging → seal → atomic rename, like the engine checkpoint: a crash
        between completion and the journal commit re-runs the job, and the
        rewrite lands over the partial file instead of appending to it.
        """
        store = self.system.store
        final = f"svc:{job_id}:values"
        staging = f"{final}:staging"
        if store.exists(staging):
            store.delete(staging)
        store.append_array(staging, values)
        store.seal(staging)
        store.rename(staging, final, overwrite=True)
        return final

    # ------------------------------------------------------------ point queries

    def _run_points(self) -> None:
        batch: list[tuple[str, str, dict]] = []
        for job_id, _ in self.submissions:
            job = self.jobs.get(job_id)
            if job is None or job.state != PENDING:
                continue
            if job.spec.kind in ("neighborhood", "path"):
                batch.append((job_id, job.spec.kind, job.spec.params))
            else:
                self._try_vstate(job)
        if not batch:
            return
        results = run_point_batch(self.graph, self.system.backend,
                                  self.system.clock, batch)
        for job_id, _, _ in batch:
            job = self.jobs[job_id]
            job.result = results[job_id]
            job.state = DONE
            self.controller.release_point(job.spec.tenant)

    def _try_vstate(self, job: Job) -> None:
        """Resolve a vertex-state read once its referenced job is terminal."""
        ref = str(job.spec.params.get("ref", ""))
        known = any(jid == ref for jid, _ in self.submissions)
        target = self.jobs.get(ref)
        if not known:
            job.state = FAILED
            job.reason = f"unknown ref job {ref!r}"
            self.controller.release_point(job.spec.tenant)
            return
        if target is None or target.state not in TERMINAL_STATES:
            return  # dependency still in flight; stays pending
        if target.state != DONE or not target.spec.is_analytics:
            job.state = FAILED
            job.reason = f"ref job {ref} ended {target.state}"
            self.controller.release_point(job.spec.tenant)
            return
        vertices = job.spec.params.get("v", [0])
        if isinstance(vertices, int):
            vertices = [vertices]
        job.result = read_vstate(self.system.store,
                                 target.result["values_file"],
                                 np.dtype(target.result["dtype"]), vertices)
        job.state = DONE
        self.controller.release_point(job.spec.tenant)

    # ------------------------------------------------------------- durability

    def _write_journal(self) -> None:
        state = {
            "version": JOURNAL_VERSION,
            "round": self.round,
            "next_id": self._next_id,
            "submissions": [{"job_id": jid, "spec": spec.to_dict()}
                            for jid, spec in self.submissions],
            "jobs": [self.jobs[jid].to_dict()
                     for jid, _ in self.submissions if jid in self.jobs],
        }
        store = self.system.store
        staging = f"{JOURNAL_FILE}:staging"
        if store.exists(staging):
            store.delete(staging)
        store.append(staging, json.dumps(state).encode())
        store.seal(staging)
        store.rename(staging, JOURNAL_FILE, overwrite=True)

    def _recover(self) -> None:
        """Answer a power loss: remount, reload the journal, rebuild state."""
        self._engines = {}
        while True:
            self.remounts += 1
            if self.remounts > self.config.max_remounts:
                raise RuntimeError(
                    f"gave up after {self.config.max_remounts} remounts; "
                    f"crash plan leaves the service no forward progress")
            try:
                self.system.remount()
                break
            except PowerLossError:
                continue
        self.graph = self.system.reattach_graph(self.graph)
        store = self.system.store
        if store.exists(JOURNAL_FILE):
            state = json.loads(bytes(store.read(JOURNAL_FILE)))
            if state.get("version") != JOURNAL_VERSION:
                raise RuntimeError(
                    f"service journal version {state.get('version')!r} "
                    f"unsupported (want {JOURNAL_VERSION})")
            self.round = int(state["round"])
            self._next_id = int(state["next_id"])
            self.submissions = [(d["job_id"], JobSpec.from_dict(d["spec"]))
                                for d in state["submissions"]]
            self.jobs = {d["job_id"]: Job.from_dict(d)
                         for d in state["jobs"]}
        else:
            # Crash before the first commit point: the whole first round
            # replays from the (in-memory) workload definition.
            self.round = 0
            self.jobs = {}
        self._rebuild_controller()

    def _rebuild_controller(self) -> None:
        """Reconstruct the admission ledger from journaled job states.

        Decisions themselves are *not* recomputed — they were recorded at
        arrival and survive in the journal; only the live counters (running
        reservations, queue depths, outstanding queries) are re-derived.
        """
        self.controller = AdmissionController(
            self.system.profile.flash_read_bw, self._quotas)
        for job_id, _ in self.submissions:
            job = self.jobs.get(job_id)
            if job is None:
                continue
            if job.is_analytics:
                if job.state == RUNNING:
                    self.controller.acquire(job.spec.tenant)
                elif job.state == QUEUED:
                    self.controller.note_queued(job.spec.tenant)
                elif job.state == REJECTED:
                    self.controller.note_rejection()
            else:
                if job.state == PENDING:
                    self.controller.note_point(job.spec.tenant)
                elif job.state == REJECTED:
                    self.controller.note_rejection()

    # ------------------------------------------------------------------ trace

    def trace(self) -> list[str]:
        """The canonical scheduler trace — the determinism suite's artifact.

        One line per submission (in submission order) plus a rejection
        count.  Absolute rounds and simulated times are excluded on
        purpose: crash re-execution repeats work, shifting both, while
        admission decisions, superstep counts, mode traces and result
        checksums are invariants.
        """
        from repro.perf.report import mode_trace_summary

        lines = []
        for job_id, spec in self.submissions:
            job = self.jobs.get(job_id)
            if job is None:
                lines.append(f"{job_id} tenant={spec.tenant} "
                             f"kind={spec.kind} state=unarrived")
                continue
            parts = [job_id, f"tenant={spec.tenant}", f"kind={spec.kind}",
                     f"admission={job.admission}", f"state={job.state}"]
            res = job.result
            if job.state == DONE and job.is_analytics:
                parts.append(f"supersteps={res['supersteps']}")
                parts.append(f"modes={mode_trace_summary(res['modes'])}")
                parts.append(f"checksum={res['checksum']:08x}")
            elif job.state == DONE:
                if res.get("kind") == "path":
                    parts.append(f"found={res['found']}")
                parts.append(f"checksum={res['checksum']:08x}")
            elif job.reason:
                parts.append(f"reason={job.reason!r}")
            lines.append(" ".join(parts))
        lines.append(f"rejections={self.controller.rejections}")
        return lines


def demo_quotas() -> dict[str, TenantQuota]:
    """Quotas of the two-tenant demo: tenant B cannot queue, so its second
    analytics submission is rejected once the flash channel saturates."""
    return {"tA": TenantQuota(max_running=1, max_queued=1, max_point=8),
            "tB": TenantQuota(max_running=1, max_queued=0, max_point=8)}


def demo_workload() -> list[str]:
    """The acceptance demo: 2 admitted analytics runs + 6 point queries
    across 2 tenants, plus one analytics submission that admission control
    rejects (9 submitted, 8 complete)."""
    return [
        "tA:pagerank:iters=2",
        "tB:cc",
        "tB:bfs",                         # rejected: saturated, no queue slot
        "tA:neighborhood:v=0,depth=2",
        "tA:path:src=0,dst=5",
        "tA:vstate:ref=svc-1,v=0+1+2",
        "tB:neighborhood:v=3,depth=1",
        "tB:path:src=1,dst=4",
        "tB:vstate:ref=svc-2,v=0+1",
    ]
