"""The deterministic service scheduler: many jobs, one sim clock.

:class:`GraphService` turns one assembled system stack into a multi-tenant
analytics service.  Clients :meth:`~GraphService.submit` jobs (analytics
runs and point queries, tagged with an arrival round); :meth:`~GraphService.run`
then drives everything to completion in discrete *rounds*:

1. **Arrivals** — submissions tagged with this round get their admission
   decision (admit / queue / reject; see :mod:`repro.service.admission`).
2. **Analytics steps** — every running job advances exactly one superstep,
   in job-id order, via the engine's cooperative :class:`EngineRun` handle.
   A job that completes writes its vertex values to a durable result file
   and releases its bandwidth reservation.
3. **Promotion** — queued runs start executing if a completion freed
   bandwidth.
4. **Point batch** — all outstanding point queries advance together in one
   shared batch (:func:`repro.service.queries.run_point_batch`); ``vstate``
   reads resolve once their referenced job is done.
5. **Journal** — the whole job table is published to flash through the
   same staging → seal → atomic-rename protocol the engine checkpoint
   uses, so job state survives power loss.

Every decision above is a pure function of (submission list, journaled job
table): no wall clock, no randomness, no dependence on absolute sim time.
Combined with the engine's own determinism across worker counts (PR 5) and
crash/resume (PR 3), the service's :meth:`~GraphService.trace` is
bit-identical across ``--workers`` and power-loss injection — absolute
round/time quantities are deliberately excluded, because crash re-execution
legitimately repeats work.

On a :class:`PowerLossError` the service remounts the store (charging real
recovery time), reloads the journal, rebuilds the admission ledger from the
journaled job states, and re-creates engines with ``auto_resume=True`` so
each interrupted run continues from its own checkpoint namespace
(``svc:<job-id>:ckpt``).

**Failure domains.**  A :class:`FlashError` raised inside one job's
superstep (uncorrectable ECC, out-of-space, bad-block exhaustion) is *that
job's* failure, never the service's: the scheduler records a typed
:class:`~repro.service.jobs.JobFailure` on the job (journaled durably),
abandons the dead attempt back to its last sealed checkpoint, releases the
bandwidth reservation, and every other job's round proceeds exactly as if
the failed job had completed its reservation early.  Failed analytics jobs
retry up to their budget with exponential backoff — backoff rounds are a
pure function of journaled state (retry count), and the backoff *time* is
charged to the sim clock — resuming from the last checkpoint.  Jobs that
exhaust retries or outlive their ``deadline_rounds`` are *quarantined*:
their whole flash footprint (checkpoint included) is swept through the
engine's purge path, their quota is released, and a tombstone stays in the
journal.  A tenant can also tear a job down explicitly with a ``cancel``
control op.  :class:`PowerLossError` deliberately stays outside all of this
— power loss kills the whole host, not one job, and only the recovery loop
above may observe it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.flash.device import (
    FlashError,
    FlashOutOfSpaceError,
    FlashProgramError,
    FlashRecoveryExhaustedError,
    FlashUncorrectableError,
    FlashWearOutError,
    PowerLossError,
)
from repro.flash.faults import error_context
from repro.flash.wear import (
    HEALTHY,
    DegradePolicy,
    WearReport,
    lifetime_writes_remaining,
)
from repro.service.admission import (
    ADMITTED,
    DEGRADED_DECISION,
    QUEUED_DECISION,
    AdmissionController,
    TenantQuota,
)
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    QUARANTINED,
    QUEUED,
    REJECTED,
    RETRYING,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobFailure,
    JobSpec,
    make_program,
    parse_job_spec,
)
from repro.service.queries import checksum, read_vstate, run_point_batch

JOURNAL_FILE = "svc:jobs"
JOURNAL_VERSION = 1


@dataclass(frozen=True)
class PoisonSpec:
    """Deterministic per-job fault injection (tests and the chaos bench).

    Raises a typed :class:`FlashError` when the job is about to execute
    ``superstep``, on its first ``attempts`` attempts.  The trigger is a
    pure function of journaled state — the run's resume superstep and the
    job's journaled retry count — so it fires at exactly the same logical
    point across ``--workers``, ``--mode`` and arbitrary crash schedules.
    (Device-level BER injection cannot make that promise: its RNG advances
    with every re-executed flash op.)
    """

    superstep: int = 1
    attempts: int = 1
    #: One of "uncorrectable" | "program" | "oos" | "wearout".
    error: str = "uncorrectable"


#: Map a PoisonSpec.error name onto the taxonomy class it raises.
_POISON_ERRORS = {
    "uncorrectable": FlashUncorrectableError,
    "program": FlashProgramError,
    "oos": FlashOutOfSpaceError,
    "wearout": FlashWearOutError,
}


@dataclass
class ServiceConfig:
    """Service-wide knobs (all deterministic)."""

    #: Per-job engine checkpoint cadence (supersteps); every admitted run is
    #: crash→remount→resume durable through the PR 3 machinery.
    checkpoint_every: int = 2
    #: Hard ceiling on scheduler rounds (a stuck dependency otherwise spins).
    max_rounds: int = 100_000
    #: Give-up bound for the remount retry loop under crash injection.
    max_remounts: int = 10_000
    #: Default retry budget for failed analytics jobs (per-job override via
    #: the ``retries=N`` spec param).
    max_retries: int = 2
    #: Base backoff in scheduler rounds; attempt ``k`` waits
    #: ``retry_backoff_rounds << k`` rounds before re-admission.
    retry_backoff_rounds: int = 1
    #: Simulated seconds charged to the shared clock per failed attempt
    #: (scaled ``<< attempt``) — backoff costs real simulated time.
    retry_backoff_s: float = 0.05
    #: Rated program/erase cycles for the wear probe
    #: (:func:`repro.flash.wear.lifetime_writes_remaining`).
    rated_pe_cycles: int = 3000
    #: Wear thresholds for degraded-mode admission.
    degrade: DegradePolicy = field(default_factory=DegradePolicy)
    #: Deterministic per-job fault injection: job id -> PoisonSpec.
    poison: dict = field(default_factory=dict)


@dataclass
class ServiceReport:
    """What :meth:`GraphService.run` hands back."""

    jobs: list
    trace: list
    rounds: int
    remounts: int
    power_losses: int
    rejections: int
    #: Failure-domain counters (all zero on a healthy, fault-free run).
    failures: int = 0
    retries: int = 0
    quarantined: int = 0
    cancelled: int = 0
    degraded_rejections: int = 0
    #: Device wear at the end of the run (see :mod:`repro.flash.wear`).
    wear: WearReport | None = None
    lifetime_writes_remaining: float = 1.0

    def jobs_by_state(self, state: str) -> list:
        return [j for j in self.jobs if j.state == state]


class GraphService:
    """A multi-tenant graph analytics service over one system stack."""

    def __init__(self, system, graph, num_vertices: int,
                 config: ServiceConfig | None = None,
                 quotas: dict[str, TenantQuota] | None = None,
                 default_root: int = 0):
        self.system = system
        self.graph = graph
        self.num_vertices = num_vertices
        self.config = config or ServiceConfig()
        self.default_root = default_root
        self._quotas = dict(quotas or {})
        self.controller = AdmissionController(system.profile.flash_read_bw,
                                              self._quotas,
                                              wear_probe=self._wear_probe,
                                              degrade=self.config.degrade)
        #: (job_id, spec) in submission order — the workload definition.
        #: Journaled alongside the job table so future arrivals replay
        #: identically after a crash.
        self.submissions: list[tuple[str, JobSpec]] = []
        self.jobs: dict[str, Job] = {}
        self.round = 0
        self.remounts = 0
        self._engines: dict = {}
        self._next_id = 1

    def _wear_probe(self) -> tuple[float, int]:
        """Live device health for degraded-mode admission decisions."""
        device = self.system.device
        return (lifetime_writes_remaining(device, self.config.rated_pe_cycles),
                device.bad_block_count)

    # -------------------------------------------------------------- submission

    def submit(self, spec: JobSpec | str) -> str:
        """Register a job; returns its deterministic id (``svc-<n>``).

        Admission is decided at the spec's arrival round, not here — a
        submission is just workload input.
        """
        if isinstance(spec, str):
            spec = parse_job_spec(spec)
        job_id = f"svc-{self._next_id}"
        self._next_id += 1
        self.submissions.append((job_id, spec))
        return job_id

    def submit_all(self, specs) -> list[str]:
        return [self.submit(spec) for spec in specs]

    # --------------------------------------------------------------- main loop

    def run(self) -> ServiceReport:
        """Drive all submitted jobs to a terminal state."""
        while not self._finished():
            if self.round >= self.config.max_rounds:
                raise RuntimeError(
                    f"service exceeded {self.config.max_rounds} rounds; "
                    f"a job dependency is probably unsatisfiable")
            try:
                self._run_round()
            except PowerLossError:
                while True:
                    try:
                        self._recover()
                        break
                    except PowerLossError:
                        continue
        crashes = self.system.device.crashes
        jobs = [self.jobs[jid] for jid, _ in self.submissions
                if jid in self.jobs]
        return ServiceReport(
            jobs=jobs,
            trace=self.trace(),
            rounds=self.round,
            remounts=self.remounts,
            power_losses=crashes.stats.power_losses if crashes else 0,
            rejections=self.controller.rejections,
            failures=sum(len(j.failures) for j in jobs),
            retries=sum(j.retries for j in jobs),
            quarantined=sum(1 for j in jobs if j.state == QUARANTINED),
            cancelled=sum(1 for j in jobs if j.state == CANCELLED),
            degraded_rejections=self.controller.degraded_rejections,
            wear=WearReport.from_device(self.system.device),
            lifetime_writes_remaining=lifetime_writes_remaining(
                self.system.device, self.config.rated_pe_cycles),
        )

    def _finished(self) -> bool:
        if not self.submissions:
            return True
        for job_id, _ in self.submissions:
            job = self.jobs.get(job_id)
            if job is None or job.state not in TERMINAL_STATES:
                return False
        return True

    def _run_round(self) -> None:
        r = self.round
        # 1. Arrivals (submission order): one admission decision each,
        # recorded once — never recomputed, part of the canonical trace.
        for job_id, spec in self.submissions:
            if spec.at_round == r and job_id not in self.jobs:
                self._arrive(job_id, spec)
        # 2. Deadlines are enforced before work: a job past its budget does
        # not get another superstep it will only throw away.
        self._expire_deadlines()
        # 3. Retrying jobs whose backoff expired try to re-acquire bandwidth.
        self._resume_retries()
        # 4. One superstep per running analytics job, job-id order.
        for job_id, _ in self.submissions:
            job = self.jobs.get(job_id)
            if job is not None and job.state == RUNNING:
                self._step_job(job)
        # 5. Completions/failures may have freed bandwidth: promote queued
        # runs (or shed them, if the device has degraded under us).
        self._promote()
        # 6. All outstanding point queries advance as one shared batch.
        self._run_points()
        # 7. Publish the new job table; this is the round's commit point.
        self.round = r + 1
        self._write_journal()

    # ---------------------------------------------------------------- arrivals

    def _arrive(self, job_id: str, spec: JobSpec) -> None:
        job = Job(job_id=job_id, spec=spec)
        if spec.is_control:
            # Control ops hold no quota and never schedule: they act at
            # arrival and finish in the same round.
            job.admission = ADMITTED
            self.jobs[job_id] = job
            self._do_cancel(job)
            return
        if spec.is_analytics:
            decision = self.controller.admit_analytics(spec.tenant)
            job.admission = decision
            if decision == ADMITTED:
                job.state = RUNNING
            elif decision == QUEUED_DECISION:
                job.state = QUEUED
            elif decision == DEGRADED_DECISION:
                job.state = REJECTED
                job.reason = "device degraded: analytics admission shed"
            else:
                job.state = REJECTED
                job.reason = "flash bandwidth saturated and tenant queue full"
        else:
            decision = self.controller.admit_point(spec.tenant)
            job.admission = decision
            if decision == ADMITTED:
                job.state = PENDING
            else:
                job.state = REJECTED
                job.reason = "tenant point-query quota exceeded"
        self.jobs[job_id] = job

    # ----------------------------------------------------------- analytics jobs

    def _build_run(self, job: Job):
        """(Re)create the cooperative engine run for an admitted job.

        ``auto_resume=True`` unconditionally: with no checkpoint on flash it
        is a fresh start, after a crash it resumes from the job's own
        checkpoint namespace.  The program is namespaced by job id so two
        concurrent runs of the same algorithm keep disjoint on-flash state.
        """
        program, limit = make_program(job.spec, self.num_vertices,
                                      self.default_root)
        program.namespaced(job.job_id)
        engine = self.system.engine_for(
            self.graph, self.num_vertices,
            checkpoint_every=self.config.checkpoint_every,
            auto_resume=True,
            checkpoint_prefix=f"svc:{job.job_id}:ckpt")
        run = engine.start(program, max_supersteps=limit)
        self._engines[job.job_id] = run
        return run

    def _step_job(self, job: Job) -> None:
        try:
            run = self._engines.get(job.job_id)
            if run is None:
                run = self._build_run(job)
            self._maybe_poison(job, run)
            if run.step():
                return
            result = run.finish()
            self._engines.pop(job.job_id, None)
            values = result.final_values()
            values_file = self._write_values(job.job_id, values)
        except FlashError as exc:
            # This job's failure domain ends here: record it, tear down the
            # attempt, and let every other job's round proceed untouched.
            self._job_failed(job, exc)
            return
        job.result = {
            "kind": job.spec.kind,
            "supersteps": result.num_supersteps,
            "modes": [m.mode for m in result.supersteps],
            "checksum": checksum(values),
            "values_file": values_file,
            "dtype": values.dtype.str,
            "elapsed_s": result.elapsed_s,
        }
        job.state = DONE
        self.controller.release(job.spec.tenant)

    def _maybe_poison(self, job: Job, run) -> None:
        """Fire the job's deterministic fault injection, if configured."""
        spec = self.config.poison.get(job.job_id)
        if spec is None:
            return
        if job.retries < spec.attempts and run.superstep == spec.superstep:
            cls = _POISON_ERRORS[spec.error]
            message = f"poisoned {spec.error} fault for {job.job_id}"
            if cls in (FlashUncorrectableError, FlashProgramError):
                exc = cls(message, block=0, page=0)
            else:
                exc = cls(message)
            exc.superstep = run.superstep
            exc.algorithm = run.program.name
            raise exc

    # ---------------------------------------------------------- failure domain

    def _job_failed(self, job: Job, exc: FlashError) -> None:
        """One job's flash error: journal it, abandon the attempt, back off.

        The dead attempt is rolled back to its last sealed checkpoint (files
        from the doomed superstep are swept; the checkpoint itself is kept
        so the retry resumes rather than restarts) and the job's bandwidth
        reservation is released for the duration of the backoff.
        """
        run = self._engines.pop(job.job_id, None)
        superstep = getattr(exc, "superstep",
                            run.superstep if run is not None else -1)
        failure = JobFailure(error=type(exc).__name__, message=str(exc),
                             superstep=superstep, attempt=job.retries,
                             context=error_context(exc))
        job.failures.append(failure.to_dict())
        if run is not None:
            run.abandon()
        self.controller.release(job.spec.tenant)
        limit = job.retry_limit(self.config.max_retries)
        if job.retries >= limit:
            self._quarantine(
                job, f"retries exhausted after {job.retries + 1} attempts")
            return
        attempt = job.retries
        job.retries += 1
        # Exponential backoff, a pure function of the journaled retry count:
        # the resume round replays identically after any crash, and the
        # backoff cost is real simulated time on the shared clock.
        job.retry_round = self.round + (self.config.retry_backoff_rounds
                                        << attempt)
        self.system.clock.charge(
            "cpu", self.config.retry_backoff_s * (1 << attempt))
        job.state = RETRYING

    def _quarantine(self, job: Job, reason: str) -> None:
        """Poison a job: sweep its whole flash footprint, leave a tombstone."""
        self._purge_job_flash(job)
        job.state = QUARANTINED
        job.reason = reason

    def _purge_job_flash(self, job: Job) -> None:
        """Remove every flash file a job owns: run state, checkpoint, values.

        Works with or without a live engine run — a quarantined RETRYING job
        has no run, so its checkpoint namespace is purged through a
        throwaway engine bound to the same prefix.
        """
        run = self._engines.pop(job.job_id, None)
        if run is not None:
            run.cancel()
        elif job.is_analytics:
            program, _ = make_program(job.spec, self.num_vertices,
                                      self.default_root)
            program.namespaced(job.job_id)
            engine = self.system.engine_for(
                self.graph, self.num_vertices,
                checkpoint_every=self.config.checkpoint_every,
                checkpoint_prefix=f"svc:{job.job_id}:ckpt")
            engine.purge_program_state(program)
        store = self.system.store
        for name in (f"svc:{job.job_id}:values:staging",
                     f"svc:{job.job_id}:values"):
            if store.exists(name):
                store.delete(name)

    def _write_values(self, job_id: str, values: np.ndarray) -> str:
        """Durably publish a finished job's vertex values.

        Staging → seal → atomic rename, like the engine checkpoint: a crash
        between completion and the journal commit re-runs the job, and the
        rewrite lands over the partial file instead of appending to it.
        """
        store = self.system.store
        final = f"svc:{job_id}:values"
        staging = f"{final}:staging"
        if store.exists(staging):
            store.delete(staging)
        store.append_array(staging, values)
        store.seal(staging)
        store.rename(staging, final, overwrite=True)
        return final

    # ------------------------------------------------------ cancel & deadlines

    def _do_cancel(self, job: Job) -> None:
        """Act on a ``cancel`` control op at its arrival round."""
        ref = str(job.spec.params.get("ref", ""))
        ref_spec = next((s for jid, s in self.submissions if jid == ref), None)
        if ref_spec is None:
            job.state = FAILED
            job.reason = f"unknown ref job {ref!r}"
            return
        if ref_spec.tenant != job.spec.tenant:
            job.state = FAILED
            job.reason = (f"ref job {ref} belongs to tenant "
                          f"{ref_spec.tenant!r}")
            return
        target = self.jobs.get(ref)
        if target is None:
            # Cancelling a job that has not arrived yet: leave a tombstone so
            # the arrival loop skips it entirely.
            self.jobs[ref] = Job(job_id=ref, spec=ref_spec, state=CANCELLED,
                                 admission="cancelled",
                                 reason=f"cancelled by {job.job_id} "
                                        f"before arrival")
            outcome = "cancelled"
        elif target.state in TERMINAL_STATES:
            outcome = "noop"
        else:
            self._cancel_job(target, f"cancelled by {job.job_id}")
            outcome = "cancelled"
        job.result = {"kind": "cancel", "ref": ref, "outcome": outcome}
        job.state = DONE

    def _cancel_job(self, target: Job, reason: str) -> None:
        """Tear down a live job: release its quota, sweep its flash state."""
        if target.is_analytics:
            if target.state == RUNNING:
                self.controller.release(target.spec.tenant)
            elif target.state == QUEUED:
                self.controller.release_queued(target.spec.tenant)
            # RETRYING holds neither bandwidth nor a queue slot.
            self._purge_job_flash(target)
        elif target.state == PENDING:
            self.controller.release_point(target.spec.tenant)
        target.state = CANCELLED
        target.reason = reason

    def _expire_deadlines(self) -> None:
        """Expire every non-terminal job past its ``deadline_rounds``.

        Analytics jobs are quarantined (their partial flash state is dead
        weight the service must reclaim); point queries simply fail.
        """
        for job_id, _ in self.submissions:
            job = self.jobs.get(job_id)
            if job is None or job.state in TERMINAL_STATES:
                continue
            d = job.spec.deadline_rounds
            if not d or self.round - job.spec.at_round < d:
                continue
            reason = f"deadline of {d} rounds exceeded"
            if job.is_analytics:
                if job.state == RUNNING:
                    self.controller.release(job.spec.tenant)
                elif job.state == QUEUED:
                    self.controller.release_queued(job.spec.tenant)
                self._quarantine(job, reason)
            else:
                self.controller.release_point(job.spec.tenant)
                job.state = FAILED
                job.reason = reason

    def _resume_retries(self) -> None:
        """Re-admit RETRYING jobs whose backoff expired, job-id order."""
        for job_id, _ in self.submissions:
            job = self.jobs.get(job_id)
            if (job is not None and job.state == RETRYING
                    and self.round >= job.retry_round
                    and self.controller.resume_retry(job.spec.tenant)):
                # The engine run is rebuilt lazily in _step_job with
                # auto_resume=True: the retry continues from the last sealed
                # checkpoint, not from scratch.
                job.state = RUNNING

    def _promote(self) -> None:
        """Move queued runs into execution — or shed them in degraded mode."""
        level = self.controller.wear_level()
        if level != HEALTHY:
            # A queue the device can no longer drain only starves tenants:
            # shed it with explicit DEGRADED rejections.
            for job_id, _ in self.submissions:
                job = self.jobs.get(job_id)
                if job is not None and job.state == QUEUED:
                    self.controller.shed_queued(job.spec.tenant)
                    job.admission = DEGRADED_DECISION
                    job.state = REJECTED
                    job.reason = f"device {level}: queued load shed"
            return
        for job_id, _ in self.submissions:
            job = self.jobs.get(job_id)
            if (job is not None and job.state == QUEUED
                    and self.controller.promote(job.spec.tenant)):
                job.state = RUNNING

    # ------------------------------------------------------------ point queries

    def _run_points(self) -> None:
        batch: list[tuple[str, str, dict]] = []
        for job_id, _ in self.submissions:
            job = self.jobs.get(job_id)
            if job is None or job.state != PENDING:
                continue
            if job.spec.kind in ("neighborhood", "path"):
                batch.append((job_id, job.spec.kind, job.spec.params))
            else:
                self._try_vstate(job)
        if not batch:
            return
        try:
            results = run_point_batch(self.graph, self.system.backend,
                                      self.system.clock, batch)
        except FlashError as exc:
            # The shared batch pass died on flash: every member shares the
            # failure, each against its own retry budget.
            for job_id, _, _ in batch:
                job = self.jobs[job_id]
                failure = JobFailure(error=type(exc).__name__,
                                     message=str(exc), superstep=-1,
                                     attempt=job.retries,
                                     context=error_context(exc))
                job.failures.append(failure.to_dict())
                if job.retries >= job.retry_limit(self.config.max_retries):
                    job.state = FAILED
                    job.reason = "retries exhausted in point batch"
                    self.controller.release_point(job.spec.tenant)
                else:
                    job.retries += 1   # stays PENDING, rebatched next round
            return
        for job_id, _, _ in batch:
            job = self.jobs[job_id]
            res = results[job_id]
            if "error" in res:
                # Per-query failure domain: one tenant's bad input fails only
                # its own query, the rest of the batch completed above.
                job.state = FAILED
                job.reason = f"invalid query: {res['error']}"
            else:
                job.result = res
                job.state = DONE
            self.controller.release_point(job.spec.tenant)

    def _try_vstate(self, job: Job) -> None:
        """Resolve a vertex-state read once its referenced job is terminal."""
        ref = str(job.spec.params.get("ref", ""))
        known = any(jid == ref for jid, _ in self.submissions)
        target = self.jobs.get(ref)
        if not known:
            job.state = FAILED
            job.reason = f"unknown ref job {ref!r}"
            self.controller.release_point(job.spec.tenant)
            return
        if target is None or target.state not in TERMINAL_STATES:
            return  # dependency still in flight; stays pending
        if target.state != DONE or not target.spec.is_analytics:
            job.state = FAILED
            job.reason = f"ref job {ref} ended {target.state}"
            self.controller.release_point(job.spec.tenant)
            return
        vertices = job.spec.params.get("v", [0])
        if isinstance(vertices, int):
            vertices = [vertices]
        job.result = read_vstate(self.system.store,
                                 target.result["values_file"],
                                 np.dtype(target.result["dtype"]), vertices)
        job.state = DONE
        self.controller.release_point(job.spec.tenant)

    # ------------------------------------------------------------- durability

    def _write_journal(self) -> None:
        state = {
            "version": JOURNAL_VERSION,
            "round": self.round,
            "next_id": self._next_id,
            "submissions": [{"job_id": jid, "spec": spec.to_dict()}
                            for jid, spec in self.submissions],
            "jobs": [self.jobs[jid].to_dict()
                     for jid, _ in self.submissions if jid in self.jobs],
        }
        store = self.system.store
        staging = f"{JOURNAL_FILE}:staging"
        if store.exists(staging):
            store.delete(staging)
        store.append(staging, json.dumps(state).encode())
        store.seal(staging)
        store.rename(staging, JOURNAL_FILE, overwrite=True)

    def _recover(self) -> None:
        """Answer a power loss: remount, reload the journal, rebuild state."""
        self._engines = {}
        while True:
            self.remounts += 1
            if self.remounts > self.config.max_remounts:
                crashes = self.system.device.crashes
                raise FlashRecoveryExhaustedError(
                    f"gave up after {self.config.max_remounts} remounts; "
                    f"crash plan leaves the service no forward progress",
                    plan=crashes.plan if crashes is not None else None)
            try:
                self.system.remount()
                break
            except PowerLossError:
                continue
        self.graph = self.system.reattach_graph(self.graph)
        store = self.system.store
        if store.exists(JOURNAL_FILE):
            state = json.loads(bytes(store.read(JOURNAL_FILE)))
            if state.get("version") != JOURNAL_VERSION:
                raise RuntimeError(
                    f"service journal version {state.get('version')!r} "
                    f"unsupported (want {JOURNAL_VERSION})")
            self.round = int(state["round"])
            self._next_id = int(state["next_id"])
            self.submissions = [(d["job_id"], JobSpec.from_dict(d["spec"]))
                                for d in state["submissions"]]
            self.jobs = {d["job_id"]: Job.from_dict(d)
                         for d in state["jobs"]}
        else:
            # Crash before the first commit point: the whole first round
            # replays from the (in-memory) workload definition.
            self.round = 0
            self.jobs = {}
        self._rebuild_controller()

    def _rebuild_controller(self) -> None:
        """Reconstruct the admission ledger from journaled job states.

        Decisions themselves are *not* recomputed — they were recorded at
        arrival and survive in the journal; only the live counters (running
        reservations, queue depths, outstanding queries) are re-derived.
        """
        self.controller = AdmissionController(
            self.system.profile.flash_read_bw, self._quotas,
            wear_probe=self._wear_probe, degrade=self.config.degrade)
        for job_id, _ in self.submissions:
            job = self.jobs.get(job_id)
            if job is None or job.spec.is_control:
                continue
            if job.is_analytics:
                if job.state == RUNNING:
                    self.controller.acquire(job.spec.tenant)
                elif job.state == QUEUED:
                    self.controller.note_queued(job.spec.tenant)
                elif job.state == REJECTED:
                    self.controller.note_rejection(
                        degraded=(job.admission == DEGRADED_DECISION))
                # RETRYING / QUARANTINED / CANCELLED hold no reservations.
            else:
                if job.state == PENDING:
                    self.controller.note_point(job.spec.tenant)
                elif job.state == REJECTED:
                    self.controller.note_rejection()

    # ------------------------------------------------------------------ trace

    def trace(self) -> list[str]:
        """The canonical scheduler trace — the determinism suite's artifact.

        One line per submission (in submission order) plus a rejection
        count.  Absolute rounds and simulated times are excluded on
        purpose: crash re-execution repeats work, shifting both, while
        admission decisions, superstep counts, mode traces and result
        checksums are invariants.
        """
        from repro.perf.report import mode_trace_summary

        lines = []
        for job_id, spec in self.submissions:
            job = self.jobs.get(job_id)
            if job is None:
                lines.append(f"{job_id} tenant={spec.tenant} "
                             f"kind={spec.kind} state=unarrived")
                continue
            parts = [job_id, f"tenant={spec.tenant}", f"kind={spec.kind}",
                     f"admission={job.admission}", f"state={job.state}"]
            if job.retries:
                parts.append(f"retries={job.retries}")
            if job.failures:
                parts.append(f"error={job.failures[-1]['error']}")
            res = job.result
            if job.state == DONE and job.is_analytics:
                parts.append(f"supersteps={res['supersteps']}")
                parts.append(f"modes={mode_trace_summary(res['modes'])}")
                parts.append(f"checksum={res['checksum']:08x}")
            elif job.state == DONE and res.get("kind") == "cancel":
                parts.append(f"outcome={res['outcome']}")
            elif job.state == DONE:
                if res.get("kind") == "path":
                    parts.append(f"found={res['found']}")
                parts.append(f"checksum={res['checksum']:08x}")
            elif job.reason:
                parts.append(f"reason={job.reason!r}")
            lines.append(" ".join(parts))
        lines.append(f"rejections={self.controller.rejections}")
        return lines


def demo_quotas() -> dict[str, TenantQuota]:
    """Quotas of the two-tenant demo: tenant B cannot queue, so its second
    analytics submission is rejected once the flash channel saturates."""
    return {"tA": TenantQuota(max_running=1, max_queued=1, max_point=8),
            "tB": TenantQuota(max_running=1, max_queued=0, max_point=8)}


def demo_workload() -> list[str]:
    """The acceptance demo: 2 admitted analytics runs + 6 point queries
    across 2 tenants, plus one analytics submission that admission control
    rejects (9 submitted, 8 complete)."""
    return [
        "tA:pagerank:iters=2",
        "tB:cc",
        "tB:bfs",                         # rejected: saturated, no queue slot
        "tA:neighborhood:v=0,depth=2",
        "tA:path:src=0,dst=5",
        "tA:vstate:ref=svc-1,v=0+1+2",
        "tB:neighborhood:v=3,depth=1",
        "tB:path:src=1,dst=4",
        "tB:vstate:ref=svc-2,v=0+1",
    ]
