"""Point queries, batched into shared graph passes.

A service round may hold many concurrent point queries (neighborhood
expansions, shortest-path probes).  Running each one as its own BFS would
issue the same kind of small random index/edge reads the paper's whole
design exists to avoid.  Instead, all queries active in a round advance
*together*, one level per pass:

1. Union the frontiers of every live query into one sorted vertex list.
2. One coalesced ``index_lookup`` + ``edges_for`` over the union — a single
   set of flash reads shared by the whole batch.
3. One ``charge_chunk_sort`` for the level — the batch's updates go through
   a shared sort-reduce pass rather than one tiny sort per query.
4. Each query then expands its own slice of the shared edge block.

Per-query expansion is order-deterministic: frontier vertices are processed
in sorted order and a newly discovered vertex's parent is its *first*
discoverer in that order, so a batched query returns byte-identical results
to the same query run alone (the determinism suite asserts this).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.service.jobs import DEFAULT_PATH_CAP

#: Simulated record width of a (vertex, payload) update in the shared pass.
RECORD_BYTES = 16


def checksum(array: np.ndarray) -> int:
    """crc32 of an array's bytes — the determinism suite's comparator."""
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


@dataclass
class _QueryState:
    """One live query's BFS state inside a batch."""

    job_id: str
    kind: str                    # "neighborhood" | "path"
    frontier: np.ndarray         # sorted vertex ids to expand next level
    visited: np.ndarray          # bool mask over vertices
    levels_left: int
    target: int = -1             # path only
    parents: dict = field(default_factory=dict)   # path only: child -> parent
    reached: list = field(default_factory=list)   # neighborhood: per-level hits
    done: bool = False


def _make_state(job_id: str, kind: str, params: dict, num_vertices: int) -> _QueryState:
    visited = np.zeros(num_vertices, dtype=bool)
    if kind == "neighborhood":
        v = int(params["v"])
        depth = int(params.get("depth", 1))
        _check_vertex(v, num_vertices)
        visited[v] = True
        return _QueryState(job_id, kind, np.array([v], dtype=np.int64),
                           visited, depth)
    if kind == "path":
        src, dst = int(params["src"]), int(params["dst"])
        _check_vertex(src, num_vertices)
        _check_vertex(dst, num_vertices)
        cap = int(params.get("cap", DEFAULT_PATH_CAP))
        visited[src] = True
        state = _QueryState(job_id, kind, np.array([src], dtype=np.int64),
                            visited, cap, target=dst)
        if src == dst:
            state.done = True
        return state
    raise ValueError(f"not a batched point-query kind: {kind!r}")


def _check_vertex(v: int, num_vertices: int) -> None:
    if not 0 <= v < num_vertices:
        raise ValueError(f"vertex {v} out of range [0, {num_vertices})")


def run_point_batch(graph, backend, clock, queries: list[tuple[str, str, dict]],
                    ) -> dict[str, dict]:
    """Advance every query to completion against ``graph``.

    ``queries`` is a list of ``(job_id, kind, params)``; returns a JSON-safe
    result dict per job id.  All flash reads and the per-level sort-reduce
    charge are shared across the batch.

    Invalid queries (out-of-range vertex, missing param) are a *per-query*
    failure domain: the offending job gets an ``{"error": ...}`` result and
    the rest of the batch proceeds untouched — one tenant's bad input must
    never take down another tenant's round.
    """
    states = []
    errors: dict[str, dict] = {}
    for job_id, kind, params in queries:
        try:
            states.append(_make_state(job_id, kind, params,
                                      graph.num_vertices))
        except (ValueError, KeyError, TypeError) as exc:
            errors[job_id] = {"kind": kind,
                              "error": f"{type(exc).__name__}: {exc}"}
    while True:
        live = [s for s in states if not s.done and len(s.frontier)
                and s.levels_left > 0]
        if not live:
            break
        union = np.unique(np.concatenate([s.frontier for s in live]))
        starts, ends = graph.index_lookup(union)
        dsts = graph.edges_for(starts, ends)
        lengths = (ends - starts).astype(np.int64)
        base = np.cumsum(lengths) - lengths
        # The batch's level goes through one shared sort-reduce pass: one
        # chunk-sort charge for the union's updates, not one per query.
        backend.charge_chunk_sort(clock, max(1, len(dsts)) * RECORD_BYTES)
        for state in live:
            _advance(state, union, dsts, base, lengths)
    results = {s.job_id: _finish(s) for s in states}
    results.update(errors)
    return results


def _advance(state: _QueryState, union: np.ndarray, dsts: np.ndarray,
             base: np.ndarray, lengths: np.ndarray) -> None:
    """Expand one query's frontier using the batch's shared edge block."""
    idx = np.searchsorted(union, state.frontier)
    n = lengths[idx]
    if int(n.sum()) == 0:
        state.frontier = np.empty(0, dtype=np.int64)
        return
    # Per-edge (src, dst) pairs in frontier order, then file order — the
    # same order a solo BFS over this frontier would see them.
    srcs = np.repeat(state.frontier, n)
    offs = np.concatenate([np.arange(b, b + c) for b, c in
                           zip(base[idx].tolist(), n.tolist())])
    level_dsts = dsts[offs].astype(np.int64)
    fresh = ~state.visited[level_dsts]
    new_dsts, new_srcs = level_dsts[fresh], srcs[fresh]
    if len(new_dsts) == 0:
        state.frontier = np.empty(0, dtype=np.int64)
        return
    uniq, first = np.unique(new_dsts, return_index=True)
    state.visited[uniq] = True
    if state.kind == "path":
        for child, parent in zip(uniq.tolist(), new_srcs[first].tolist()):
            state.parents[child] = parent
        if state.visited[state.target]:
            state.done = True
    else:
        state.reached.append(uniq)
    state.frontier = uniq
    state.levels_left -= 1


def _finish(state: _QueryState) -> dict:
    if state.kind == "neighborhood":
        vertices = np.flatnonzero(state.visited).astype(np.int64)
        return {"kind": "neighborhood", "count": int(len(vertices)),
                "vertices": vertices[:64].tolist(),
                "checksum": checksum(vertices)}
    # path: walk the parent chain back from the target.
    if not state.visited[state.target]:
        return {"kind": "path", "found": False, "path": [],
                "checksum": checksum(np.empty(0, dtype=np.int64))}
    hops = [state.target]
    while hops[-1] in state.parents:
        hops.append(state.parents[hops[-1]])
    hops.reverse()
    arr = np.asarray(hops, dtype=np.int64)
    return {"kind": "path", "found": True, "hops": len(hops) - 1,
            "path": hops[:64], "checksum": checksum(arr)}


def read_vstate(store, filename: str, value_dtype, vertices: list[int]) -> dict:
    """Vertex-state reads from a finished run's durable result file.

    One coalesced pass over the sorted vertex list — the same access
    discipline as the index lookups above.
    """
    order = sorted(set(int(v) for v in vertices))
    values = [store.read_array(filename, np.dtype(value_dtype), v, 1)[0]
              for v in order]
    arr = np.asarray(values)
    return {"kind": "vstate", "vertices": order,
            "values": [_json_scalar(v) for v in arr.tolist()],
            "checksum": checksum(arr)}


def _json_scalar(v):
    # float32 values reach JSON via repr of the exact float; ints stay ints.
    return float(v) if isinstance(v, float) else int(v)
