"""Job vocabulary of the analytics service: specs, states, results.

A *job* is either a full analytics run (``pagerank`` / ``bfs`` / ``cc`` —
the single-program algorithms the PR 3 checkpoint protocol covers, so every
admitted run is crash→remount→resume durable for free) or a cheap *point
query* answered in milliseconds of simulated time:

* ``neighborhood`` — all vertices within ``depth`` hops of ``v``;
* ``path`` — an unweighted shortest path ``src → dst`` (BFS, depth-capped);
* ``vstate`` — vertex values of a *finished* analytics job (``ref`` names
  the job), read back from its durable result file.

Specs are plain data (tenant, kind, params, arrival round), so a workload
is a JSON-able list and scheduler decisions stay pure functions of it.
CLI syntax: ``tenant:kind[:k=v[,k=v...]][@round]`` — e.g.
``t0:pagerank:iters=2``, ``t1:neighborhood:v=5,depth=2``,
``t0:path:src=0,dst=9@1``, ``t1:vstate:ref=svc-1,v=0+3+7``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

ANALYTICS_KINDS = ("pagerank", "bfs", "cc")
POINT_KINDS = ("neighborhood", "path", "vstate")
JOB_KINDS = ANALYTICS_KINDS + POINT_KINDS

#: Terminal and non-terminal job states.
QUEUED = "queued"          # admitted to the system but waiting for bandwidth
RUNNING = "running"        # analytics job with an in-flight engine run
PENDING = "pending"        # point query waiting for its batch (or dependency)
DONE = "done"
REJECTED = "rejected"      # admission control refused the submission
FAILED = "failed"          # dependency missing/failed (vstate on a dead ref)
TERMINAL_STATES = (DONE, REJECTED, FAILED)

#: BFS depth cap for ``path`` queries without an explicit ``cap`` param.
DEFAULT_PATH_CAP = 64


@dataclass(frozen=True)
class JobSpec:
    """One submission: who wants what, and when it arrives."""

    tenant: str
    kind: str
    params: dict = field(default_factory=dict)
    at_round: int = 0

    def __post_init__(self):
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; known: "
                             + ", ".join(JOB_KINDS))
        if not self.tenant or any(c in self.tenant for c in ":/ @"):
            raise ValueError(f"bad tenant name {self.tenant!r}")
        if self.at_round < 0:
            raise ValueError(f"at_round must be >= 0, got {self.at_round}")

    @property
    def is_analytics(self) -> bool:
        return self.kind in ANALYTICS_KINDS

    def to_dict(self) -> dict:
        return {"tenant": self.tenant, "kind": self.kind,
                "params": dict(self.params), "at_round": self.at_round}

    @staticmethod
    def from_dict(d: dict) -> "JobSpec":
        return JobSpec(tenant=d["tenant"], kind=d["kind"],
                       params=dict(d.get("params", {})),
                       at_round=int(d.get("at_round", 0)))


def parse_job_spec(text: str) -> JobSpec:
    """Parse the CLI job syntax (see module docstring)."""
    body, _, round_part = text.partition("@")
    at_round = 0
    if round_part:
        try:
            at_round = int(round_part)
        except ValueError:
            raise ValueError(f"bad @round suffix in job spec {text!r}") from None
    pieces = body.split(":", 2)
    if len(pieces) < 2:
        raise ValueError(
            f"job spec {text!r} needs tenant:kind[:params][@round]")
    tenant, kind = pieces[0], pieces[1]
    params: dict = {}
    if len(pieces) == 3 and pieces[2]:
        for pair in pieces[2].split(","):
            k, sep, v = pair.partition("=")
            if not sep:
                raise ValueError(f"bad param {pair!r} in job spec {text!r}")
            params[k.strip()] = _parse_param(v.strip())
    return JobSpec(tenant=tenant, kind=kind, params=params, at_round=at_round)


def _parse_param(value: str):
    """Param values: int where possible, ``a+b+c`` as an int list, else str."""
    if "+" in value:
        return [_parse_scalar(v) for v in value.split("+")]
    return _parse_scalar(value)


def _parse_scalar(value: str):
    try:
        return int(value)
    except ValueError:
        return value


@dataclass
class Job:
    """Scheduler-side record of one submission; journaled as a dict.

    Everything here is JSON-safe so the table round-trips through the
    durable journal byte-for-byte — job state survives the same power-loss
    injection the engine does.
    """

    job_id: str
    spec: JobSpec
    state: str = PENDING
    #: Initial admission decision ("admitted" | "queued" | "rejected") —
    #: recorded once at arrival and never recomputed, part of the trace.
    admission: str = ""
    #: Result summary of a finished job (small, JSON-safe): per-kind fields
    #: plus a crc32 checksum of the full payload for determinism checks.
    result: dict = field(default_factory=dict)
    #: Why a job was rejected/failed.
    reason: str = ""

    @property
    def is_analytics(self) -> bool:
        return self.spec.is_analytics

    def to_dict(self) -> dict:
        return {"job_id": self.job_id, "spec": self.spec.to_dict(),
                "state": self.state, "admission": self.admission,
                "result": self.result, "reason": self.reason}

    @staticmethod
    def from_dict(d: dict) -> "Job":
        return Job(job_id=d["job_id"], spec=JobSpec.from_dict(d["spec"]),
                   state=d["state"], admission=d["admission"],
                   result=dict(d["result"]), reason=d.get("reason", ""))


def make_program(spec: JobSpec, num_vertices: int, default_root: int):
    """Build the (namespaced-later) vertex program for an analytics spec."""
    if spec.kind == "pagerank":
        from repro.algorithms.pagerank import PageRankProgram

        return PageRankProgram(num_vertices), int(spec.params.get("iters", 1))
    if spec.kind == "bfs":
        from repro.algorithms.bfs import BFSProgram

        root = int(spec.params.get("root", default_root))
        return BFSProgram(root), None
    if spec.kind == "cc":
        from repro.algorithms.cc import LabelPropagationProgram

        return LabelPropagationProgram(), None
    raise ValueError(f"not an analytics kind: {spec.kind!r}")
