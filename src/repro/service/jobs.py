"""Job vocabulary of the analytics service: specs, states, results.

A *job* is either a full analytics run (``pagerank`` / ``bfs`` / ``cc`` —
the single-program algorithms the PR 3 checkpoint protocol covers, so every
admitted run is crash→remount→resume durable for free) or a cheap *point
query* answered in milliseconds of simulated time:

* ``neighborhood`` — all vertices within ``depth`` hops of ``v``;
* ``path`` — an unweighted shortest path ``src → dst`` (BFS, depth-capped);
* ``vstate`` — vertex values of a *finished* analytics job (``ref`` names
  the job), read back from its durable result file.

Specs are plain data (tenant, kind, params, arrival round), so a workload
is a JSON-able list and scheduler decisions stay pure functions of it.
CLI syntax: ``tenant:kind[:k=v[,k=v...]][@round]`` — e.g.
``t0:pagerank:iters=2``, ``t1:neighborhood:v=5,depth=2``,
``t0:path:src=0,dst=9@1``, ``t1:vstate:ref=svc-1,v=0+3+7``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

ANALYTICS_KINDS = ("pagerank", "bfs", "cc")
POINT_KINDS = ("neighborhood", "path", "vstate")
#: Control operations: processed at arrival, never scheduled.  ``cancel``
#: takes ``ref=<job-id>`` and tears down that job (same tenant only).
CONTROL_KINDS = ("cancel",)
JOB_KINDS = ANALYTICS_KINDS + POINT_KINDS + CONTROL_KINDS

#: Terminal and non-terminal job states.
QUEUED = "queued"          # admitted to the system but waiting for bandwidth
RUNNING = "running"        # analytics job with an in-flight engine run
PENDING = "pending"        # point query waiting for its batch (or dependency)
RETRYING = "retrying"      # failed analytics job in deterministic backoff
DONE = "done"
REJECTED = "rejected"      # admission control refused the submission
FAILED = "failed"          # dependency missing/failed, or retries exhausted
QUARANTINED = "quarantined"  # poison job: flash state swept, quota released
CANCELLED = "cancelled"    # torn down by a tenant's cancel control op
TERMINAL_STATES = (DONE, REJECTED, FAILED, QUARANTINED, CANCELLED)

#: BFS depth cap for ``path`` queries without an explicit ``cap`` param.
DEFAULT_PATH_CAP = 64


@dataclass(frozen=True)
class JobSpec:
    """One submission: who wants what, when it arrives, and its deadline."""

    tenant: str
    kind: str
    params: dict = field(default_factory=dict)
    at_round: int = 0
    #: Rounds after arrival before the job is expired (0 = no deadline).
    #: Analytics jobs past their deadline are quarantined (flash state
    #: swept, quota released); point queries simply fail.
    deadline_rounds: int = 0

    def __post_init__(self):
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; known: "
                             + ", ".join(JOB_KINDS))
        if not self.tenant or any(c in self.tenant for c in ":/ @"):
            raise ValueError(f"bad tenant name {self.tenant!r}")
        if self.at_round < 0:
            raise ValueError(f"at_round must be >= 0, got {self.at_round}")
        if self.deadline_rounds < 0:
            raise ValueError(
                f"deadline_rounds must be >= 0, got {self.deadline_rounds}")

    @property
    def is_analytics(self) -> bool:
        return self.kind in ANALYTICS_KINDS

    @property
    def is_control(self) -> bool:
        return self.kind in CONTROL_KINDS

    def to_dict(self) -> dict:
        return {"tenant": self.tenant, "kind": self.kind,
                "params": dict(self.params), "at_round": self.at_round,
                "deadline_rounds": self.deadline_rounds}

    @staticmethod
    def from_dict(d: dict) -> "JobSpec":
        return JobSpec(tenant=d["tenant"], kind=d["kind"],
                       params=dict(d.get("params", {})),
                       at_round=int(d.get("at_round", 0)),
                       deadline_rounds=int(d.get("deadline_rounds", 0)))


def parse_job_spec(text: str) -> JobSpec:
    """Parse the CLI job syntax (see module docstring)."""
    body, _, round_part = text.partition("@")
    at_round = 0
    if round_part:
        try:
            at_round = int(round_part)
        except ValueError:
            raise ValueError(f"bad @round suffix in job spec {text!r}") from None
    pieces = body.split(":", 2)
    if len(pieces) < 2:
        raise ValueError(
            f"job spec {text!r} needs tenant:kind[:params][@round]")
    tenant, kind = pieces[0], pieces[1]
    params: dict = {}
    if len(pieces) == 3 and pieces[2]:
        for pair in pieces[2].split(","):
            k, sep, v = pair.partition("=")
            if not sep:
                raise ValueError(f"bad param {pair!r} in job spec {text!r}")
            params[k.strip()] = _parse_param(v.strip())
    deadline = params.pop("deadline", 0)
    if not isinstance(deadline, int):
        raise ValueError(f"deadline must be an integer round count, "
                         f"got {deadline!r} in job spec {text!r}")
    return JobSpec(tenant=tenant, kind=kind, params=params, at_round=at_round,
                   deadline_rounds=deadline)


def _parse_param(value: str):
    """Param values: int where possible, ``a+b+c`` as an int list, else str."""
    if "+" in value:
        return [_parse_scalar(v) for v in value.split("+")]
    return _parse_scalar(value)


def _parse_scalar(value: str):
    try:
        return int(value)
    except ValueError:
        return value


@dataclass(frozen=True)
class JobFailure:
    """One failed attempt of a job: the typed flash error plus its context.

    Journaled durably on the job record, so failure history survives power
    loss exactly like every other scheduler decision.  ``error`` is the
    taxonomy class name (``FlashUncorrectableError``, ...), ``context`` the
    structured flash-op attributes :func:`repro.flash.faults.error_context`
    collected (block/page addresses, superstep, namespaced algorithm).
    """

    error: str
    message: str
    superstep: int
    attempt: int
    context: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"error": self.error, "message": self.message,
                "superstep": self.superstep, "attempt": self.attempt,
                "context": dict(self.context)}

    @staticmethod
    def from_dict(d: dict) -> "JobFailure":
        return JobFailure(error=d["error"], message=d.get("message", ""),
                          superstep=int(d.get("superstep", -1)),
                          attempt=int(d.get("attempt", 0)),
                          context=dict(d.get("context", {})))


@dataclass
class Job:
    """Scheduler-side record of one submission; journaled as a dict.

    Everything here is JSON-safe so the table round-trips through the
    durable journal byte-for-byte — job state survives the same power-loss
    injection the engine does.
    """

    job_id: str
    spec: JobSpec
    state: str = PENDING
    #: Initial admission decision ("admitted" | "queued" | "rejected" |
    #: "degraded") — recorded once at arrival and never recomputed, part of
    #: the trace.
    admission: str = ""
    #: Result summary of a finished job (small, JSON-safe): per-kind fields
    #: plus a crc32 checksum of the full payload for determinism checks.
    result: dict = field(default_factory=dict)
    #: Why a job was rejected/failed/quarantined/cancelled.
    reason: str = ""
    #: Completed retry count (attempts beyond the first).
    retries: int = 0
    #: Earliest round a RETRYING job may resume (exponential backoff; a pure
    #: function of journaled state, so it replays identically after a crash).
    retry_round: int = 0
    #: Failure history: one :meth:`JobFailure.to_dict` entry per failed
    #: attempt, newest last.
    failures: list = field(default_factory=list)

    @property
    def is_analytics(self) -> bool:
        return self.spec.is_analytics

    def retry_limit(self, default: int) -> int:
        """Per-job retry budget: the ``retries=N`` spec param, else the
        service default."""
        return int(self.spec.params.get("retries", default))

    def to_dict(self) -> dict:
        return {"job_id": self.job_id, "spec": self.spec.to_dict(),
                "state": self.state, "admission": self.admission,
                "result": self.result, "reason": self.reason,
                "retries": self.retries, "retry_round": self.retry_round,
                "failures": list(self.failures)}

    @staticmethod
    def from_dict(d: dict) -> "Job":
        return Job(job_id=d["job_id"], spec=JobSpec.from_dict(d["spec"]),
                   state=d["state"], admission=d["admission"],
                   result=dict(d["result"]), reason=d.get("reason", ""),
                   retries=int(d.get("retries", 0)),
                   retry_round=int(d.get("retry_round", 0)),
                   failures=list(d.get("failures", [])))


def make_program(spec: JobSpec, num_vertices: int, default_root: int):
    """Build the (namespaced-later) vertex program for an analytics spec."""
    if spec.kind == "pagerank":
        from repro.algorithms.pagerank import PageRankProgram

        return PageRankProgram(num_vertices), int(spec.params.get("iters", 1))
    if spec.kind == "bfs":
        from repro.algorithms.bfs import BFSProgram

        root = int(spec.params.get("root", default_root))
        return BFSProgram(root), None
    if spec.kind == "cc":
        from repro.algorithms.cc import LabelPropagationProgram

        return LabelPropagationProgram(), None
    raise ValueError(f"not an analytics kind: {spec.kind!r}")
