"""Multi-tenant analytics service over the GraFBoost engine.

The paper's pitch is one cheap flash-backed node serving analytics that
would otherwise need a cluster; this package is the serving layer that
pitch implies.  See :mod:`repro.service.scheduler` for the round-based
deterministic scheduler, :mod:`repro.service.admission` for quotas and
bandwidth reservations, and :mod:`repro.service.queries` for batched point
queries.
"""

from repro.service.admission import (
    ADMITTED,
    ANALYTICS_BW_FRACTION,
    QUEUED_DECISION,
    REJECTED_DECISION,
    AdmissionController,
    TenantQuota,
)
from repro.service.jobs import (
    ANALYTICS_KINDS,
    JOB_KINDS,
    POINT_KINDS,
    Job,
    JobSpec,
    parse_job_spec,
)
from repro.service.queries import run_point_batch
from repro.service.scheduler import (
    GraphService,
    ServiceConfig,
    ServiceReport,
    demo_quotas,
    demo_workload,
)

__all__ = [
    "ADMITTED",
    "ANALYTICS_BW_FRACTION",
    "ANALYTICS_KINDS",
    "AdmissionController",
    "GraphService",
    "JOB_KINDS",
    "Job",
    "JobSpec",
    "POINT_KINDS",
    "QUEUED_DECISION",
    "REJECTED_DECISION",
    "ServiceConfig",
    "ServiceReport",
    "TenantQuota",
    "demo_quotas",
    "demo_workload",
    "parse_job_spec",
    "run_point_batch",
]
