"""Multi-tenant analytics service over the GraFBoost engine.

The paper's pitch is one cheap flash-backed node serving analytics that
would otherwise need a cluster; this package is the serving layer that
pitch implies.  See :mod:`repro.service.scheduler` for the round-based
deterministic scheduler and its per-job failure domains,
:mod:`repro.service.admission` for quotas, bandwidth reservations and
wear-aware degraded mode, and :mod:`repro.service.queries` for batched
point queries.
"""

from repro.service.admission import (
    ADMITTED,
    ANALYTICS_BW_FRACTION,
    DEGRADED_DECISION,
    QUEUED_DECISION,
    REJECTED_DECISION,
    AdmissionController,
    TenantQuota,
)
from repro.service.jobs import (
    ANALYTICS_KINDS,
    CANCELLED,
    CONTROL_KINDS,
    JOB_KINDS,
    POINT_KINDS,
    QUARANTINED,
    RETRYING,
    TERMINAL_STATES,
    Job,
    JobFailure,
    JobSpec,
    parse_job_spec,
)
from repro.service.queries import run_point_batch
from repro.service.scheduler import (
    GraphService,
    PoisonSpec,
    ServiceConfig,
    ServiceReport,
    demo_quotas,
    demo_workload,
)

__all__ = [
    "ADMITTED",
    "ANALYTICS_BW_FRACTION",
    "ANALYTICS_KINDS",
    "AdmissionController",
    "CANCELLED",
    "CONTROL_KINDS",
    "DEGRADED_DECISION",
    "GraphService",
    "JOB_KINDS",
    "Job",
    "JobFailure",
    "JobSpec",
    "POINT_KINDS",
    "PoisonSpec",
    "QUARANTINED",
    "QUEUED_DECISION",
    "REJECTED_DECISION",
    "RETRYING",
    "ServiceConfig",
    "ServiceReport",
    "TERMINAL_STATES",
    "TenantQuota",
    "demo_quotas",
    "demo_workload",
    "parse_job_spec",
    "run_point_batch",
]
