"""Admission control: quotas and flash-bandwidth reservations.

The service's bottleneck is the same one the paper measures: flash channel
bandwidth.  Every admitted analytics run streams edge data and sort-reduce
runs through the device, so each one *reserves* a fixed fraction of
``profile.flash_read_bw`` for its lifetime.  When the reservations would
exceed device bandwidth the run waits in the tenant's queue; when the queue
is full the submission is rejected outright.  Point queries are not
reserved against — they are batched into shared passes (see
:mod:`repro.service.queries`) whose cost is amortized across the batch —
but they do count against a per-tenant outstanding-query quota.

Everything here is a pure function of (quota table, current reservations,
device wear, spec); no clock reads, no randomness — the same inputs always
produce the same decision, which is what makes scheduler traces
bit-identical across worker counts and crash/resume.

Wear-aware degraded mode: the controller optionally consults a *wear probe*
(``() -> (lifetime_writes_remaining, bad_block_count)``, see
:mod:`repro.flash.wear`).  As the device degrades, the bandwidth capacity
reservations are made against shrinks — fewer concurrent analytics runs fit
— and submissions that would have queued are shed with an explicit
``DEGRADED`` rejection instead of starving admitted work.  A critical
device stops admitting analytics entirely.  Decisions are still journaled
once at arrival and never recomputed, so recovery replays them verbatim
even if wear crossed a threshold in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.flash.wear import CRITICAL, DEGRADED, HEALTHY, DegradePolicy

#: Fraction of device read bandwidth one analytics run reserves.  0.45 means
#: two concurrent runs fit (0.9) and a third (1.35) saturates the channel —
#: matching the paper's observation that sort-reduce keeps the flash array
#: near peak utilization, so co-running more than ~2 jobs only adds queueing.
ANALYTICS_BW_FRACTION = 0.45

ADMITTED = "admitted"
QUEUED_DECISION = "queued"
REJECTED_DECISION = "rejected"
#: Rejection because the device is degraded/critical, not because quotas or
#: healthy-capacity limits were hit — tenants can tell device trouble apart
#: from their own oversubscription.
DEGRADED_DECISION = "degraded"


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits; the default is deliberately tight for one node."""

    #: Concurrent analytics runs actually executing.
    max_running: int = 1
    #: Analytics runs allowed to wait for bandwidth (beyond this: reject).
    max_queued: int = 1
    #: Point queries outstanding (pending or batched) at once.
    max_point: int = 8


DEFAULT_QUOTA = TenantQuota()


@dataclass
class TenantUsage:
    """Live per-tenant counters the controller decides against."""

    running: int = 0
    queued: int = 0
    point: int = 0


class AdmissionController:
    """Decide admit / queue / reject for each submission.

    The controller is deliberately stateless about *which* jobs hold
    reservations — the scheduler owns the job table and feeds usage back in
    via :meth:`acquire` / :meth:`release`, so after a crash the controller
    is rebuilt exactly from the journaled job states.
    """

    def __init__(self, flash_read_bw: float,
                 quotas: dict[str, TenantQuota] | None = None,
                 wear_probe: Callable[[], tuple[float, int]] | None = None,
                 degrade: DegradePolicy | None = None):
        self.capacity = float(flash_read_bw)
        self.reservation = ANALYTICS_BW_FRACTION * self.capacity
        self.quotas = dict(quotas or {})
        self.usage: dict[str, TenantUsage] = {}
        self.reserved = 0.0
        self.rejections = 0
        self.degraded_rejections = 0
        #: ``() -> (lifetime_writes_remaining, bad_block_count)``; None means
        #: the device is always treated as healthy (the pre-wear behaviour).
        self.wear_probe = wear_probe
        self.degrade = degrade or DegradePolicy()

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, DEFAULT_QUOTA)

    def _usage(self, tenant: str) -> TenantUsage:
        return self.usage.setdefault(tenant, TenantUsage())

    # ------------------------------------------------------------------ wear

    def wear_level(self) -> str:
        """Current device health level (healthy / degraded / critical)."""
        if self.wear_probe is None:
            return HEALTHY
        lifetime_remaining, bad_blocks = self.wear_probe()
        return self.degrade.classify(lifetime_remaining, bad_blocks)

    def effective_capacity(self, level: str | None = None) -> float:
        """Bandwidth capacity reservations are made against, derated by
        device health: degraded shrinks it, critical zeroes it."""
        level = self.wear_level() if level is None else level
        if level == CRITICAL:
            return 0.0
        if level == DEGRADED:
            return self.capacity * self.degrade.degraded_capacity_fraction
        return self.capacity

    # ------------------------------------------------------------- decisions

    def decide_analytics(self, tenant: str) -> str:
        """Admission decision for one analytics submission (no side effect)."""
        quota, use = self.quota_for(tenant), self._usage(tenant)
        level = self.wear_level()
        fits_bw = (self.reserved + self.reservation
                   <= self.effective_capacity(level))
        if level != CRITICAL and fits_bw and use.running < quota.max_running:
            return ADMITTED
        if level != HEALTHY:
            # Degraded mode sheds load instead of queueing it: a queue the
            # device can no longer drain would just starve its tenants.
            return DEGRADED_DECISION
        if use.queued < quota.max_queued:
            return QUEUED_DECISION
        return REJECTED_DECISION

    def decide_point(self, tenant: str) -> str:
        """Admission decision for one point query (no side effect)."""
        quota, use = self.quota_for(tenant), self._usage(tenant)
        if use.point < quota.max_point:
            return ADMITTED
        return REJECTED_DECISION

    # ----------------------------------------------------------- accounting

    def admit_analytics(self, tenant: str) -> str:
        decision = self.decide_analytics(tenant)
        if decision == ADMITTED:
            self.acquire(tenant)
        elif decision == QUEUED_DECISION:
            self._usage(tenant).queued += 1
        else:
            self.rejections += 1
            if decision == DEGRADED_DECISION:
                self.degraded_rejections += 1
        return decision

    def admit_point(self, tenant: str) -> str:
        decision = self.decide_point(tenant)
        if decision == ADMITTED:
            self._usage(tenant).point += 1
        else:
            self.rejections += 1
        return decision

    def acquire(self, tenant: str) -> None:
        """Reserve bandwidth for a run that starts executing."""
        self._usage(tenant).running += 1
        self.reserved += self.reservation

    def release(self, tenant: str) -> None:
        """Return a finished run's reservation."""
        use = self._usage(tenant)
        use.running -= 1
        self.reserved -= self.reservation
        if self.reserved < 1e-9:     # clamp float dust, keep decisions exact
            self.reserved = 0.0

    def promote(self, tenant: str) -> bool:
        """Try to move one queued run of ``tenant`` into execution."""
        quota, use = self.quota_for(tenant), self._usage(tenant)
        if (use.queued > 0 and use.running < quota.max_running
                and self.reserved + self.reservation
                <= self.effective_capacity()):
            use.queued -= 1
            self.acquire(tenant)
            return True
        return False

    def resume_retry(self, tenant: str) -> bool:
        """Try to re-admit a RETRYING job whose backoff expired.

        Like :meth:`promote` but without queue accounting — a retrying job
        released its reservation at failure and holds no queue slot while it
        backs off.
        """
        quota, use = self.quota_for(tenant), self._usage(tenant)
        if (use.running < quota.max_running
                and self.reserved + self.reservation
                <= self.effective_capacity()):
            self.acquire(tenant)
            return True
        return False

    def release_queued(self, tenant: str) -> None:
        """Return a queue slot (cancellation, deadline expiry, load shed)."""
        self._usage(tenant).queued -= 1

    def release_point(self, tenant: str) -> None:
        self._usage(tenant).point -= 1

    def shed_queued(self, tenant: str) -> None:
        """Degraded mode: convert one queued run into a DEGRADED rejection."""
        self.release_queued(tenant)
        self.rejections += 1
        self.degraded_rejections += 1

    # ------------------------------------------------------------- recovery

    def note_queued(self, tenant: str) -> None:
        """Re-account a journaled queued run during crash recovery."""
        self._usage(tenant).queued += 1

    def note_point(self, tenant: str) -> None:
        """Re-account a journaled outstanding point query during recovery."""
        self._usage(tenant).point += 1

    def note_rejection(self, degraded: bool = False) -> None:
        """Re-account a journaled rejection during recovery."""
        self.rejections += 1
        if degraded:
            self.degraded_rejections += 1

    def utilization(self) -> float:
        """Reserved fraction of device read bandwidth (for reports)."""
        return self.reserved / self.capacity if self.capacity else 0.0
