"""Multi-core sort-reduce: a software merge tree that uses every core.

The paper's hardware keeps flash the bottleneck by running a wire-rate
16-to-1 merge tree on the FPGA; the software implementation (§IV-F) gets the
same effect from worker threads — "up to four concurrent merge operations"
overlapped with chunk sorting.  This module is that worker pool for the
Python reproduction: ``multiprocessing`` workers (true parallelism, no GIL)
fed through ``SharedMemory`` numpy buffers.

Determinism is the design constraint.  Everything *stateful* — the simulated
flash device (per-op crash counters, fault RNG, program-order checks), the
``SimClock`` (a sequential float accumulation, so charge order changes the
bits of ``elapsed_s``) and the run-file bookkeeping — stays on the main
process in exactly the serial order.  Workers only ever execute *pure
functions* of their input arrays:

* **partitioned chunk sort** — the host splits an unsorted chunk at key
  splitters (equal keys always land in one range, original order preserved
  within each range); each worker runs ``sort_reduce_in_memory`` on its
  range; the host concatenates range outputs in key order.
* **range merge** — the reduction-interleaved merge of one disjoint key
  range of an emit batch, partitioned the same way over already-sorted
  parts.

Both rest on the same argument: a stable sort restricted to a key range
equals the restriction of the stable sort, and no reduction group straddles
a range boundary, so the concatenation is bitwise what the serial
single-sort path produces — for any worker count, including non-commutative
FIRST/LAST.

Both entry points are *synchronous*: the host blocks until every range
returns, then performs the store writes and clock charges itself.  The
tempting alternative — submitting a chunk sort and draining it a few chunks
later, overlapping with flash I/O — is functionally safe but breaks
bit-identity of ``SimClock.elapsed_s`` whenever the *caller* charges the
clock between ``add()`` calls (BFS's executor does): float accumulation is
not associative, so reordering charges moves the low bits.  The async
``submit``/``collect`` API therefore exists for callers that own the whole
charge stream (benchmarks, bulk jobs); the reducer path stays in lockstep.

Results therefore satisfy the invariance contract enforced by
``tests/test_perf_invariance.py``: ``--workers N`` is bit-identical to the
serial path for results, stats and simulated time.

This file is host-side orchestration, not simulation: its queue timeouts and
process joins legitimately read the host clock, which is why repro-lint
RL001 allowlists it (see ``repro.lint.rules``).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue
import time
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.core.inmemory import sort_reduce_in_memory
from repro.core.kvstream import KVArray
from repro.core.reduce_ops import ReduceOp, is_builtin_op, op_by_name

#: Tasks below this record count run inline on the host: at small sizes the
#: fork/queue/shared-memory round trip costs more than the sort itself.
#: Thresholds can never change results — inline and worker code paths are
#: the same functions — only where they execute.
DEFAULT_INLINE_RECORDS = 4096


class WorkerTaskError(RuntimeError):
    """A sort-reduce worker failed (raised, or its process died)."""


# ---------------------------------------------------------------- transport
# One shared-memory block per task: the key array followed by the value
# array (values start at ``n * 8``, which keeps any numeric dtype aligned).


def _kv_to_shm(kv: KVArray) -> str:
    """Copy a KVArray into a fresh SharedMemory block; returns its name."""
    key_bytes = kv.keys.nbytes
    shm = shared_memory.SharedMemory(create=True,
                                     size=max(1, key_bytes + kv.values.nbytes))
    try:
        dst_keys = np.ndarray(len(kv), dtype=np.uint64, buffer=shm.buf)
        dst_keys[:] = kv.keys
        dst_values = np.ndarray(len(kv), dtype=kv.values.dtype,
                                buffer=shm.buf, offset=key_bytes)
        dst_values[:] = kv.values
        del dst_keys, dst_values
    finally:
        shm.close()
    return shm.name


def _kv_from_shm(name: str, n: int, dtype_str: str, unlink: bool) -> KVArray:
    """Copy a KVArray out of a SharedMemory block (and optionally free it)."""
    shm = shared_memory.SharedMemory(name=name)
    try:
        keys = np.ndarray(n, dtype=np.uint64, buffer=shm.buf).copy()
        values = np.ndarray(n, dtype=np.dtype(dtype_str),
                            buffer=shm.buf, offset=n * 8).copy()
    finally:
        shm.close()
        if unlink:
            shm.unlink()
    return KVArray._wrap(keys, values)


def _worker_main(tasks, results) -> None:
    """Worker-process loop: pure numpy compute, zero simulated state.

    ``presorted_concat=False`` is a chunk sort (``sort_reduce_in_memory``);
    ``True`` is a range merge (stable sort of concatenated sorted slices,
    then the interleaved reduction) — exactly the expressions the serial
    path runs, so outputs are bitwise identical.
    """
    while True:
        task = tasks.get()
        if task is None:
            return
        ticket, name, n, dtype_str, op_name, presorted_concat = task
        try:
            kv = _kv_from_shm(name, n, dtype_str, unlink=True)
            op = op_by_name(op_name)
            if presorted_concat:
                out = op.reduce_sorted(kv.sorted(presorted_concat=True),
                                       presorted=True)
            else:
                out = sort_reduce_in_memory(kv, op)
            results.put((ticket, _kv_to_shm(out), len(out),
                         out.values.dtype.str, None))
        except Exception as exc:
            results.put((ticket, None, 0, dtype_str,
                         f"{type(exc).__name__}: {exc}"))


# --------------------------------------------------------------------- pool


class SortReducePool:
    """A pool of fork-spawned sort-reduce workers.

    ``sort_reduce_chunk`` and ``merge_reduce`` are the synchronous
    key-range-partitioned entry points the external sorter uses: all
    workers chew on disjoint ranges of one chunk (or one emit batch) while
    the host blocks, which keeps every store write and clock charge in
    exact serial order.  ``submit_chunk_sort``/``collect`` expose the
    underlying async tickets for callers that own their whole charge
    stream and can afford reordering (benchmarks, bulk jobs).  Tasks that
    are too small, or whose operator is not a registry built-in (custom
    ops don't transport across processes), run inline — same functions,
    same bits.
    """

    def __init__(self, workers: int, inline_records: int = DEFAULT_INLINE_RECORDS):
        if workers < 2:
            raise ValueError(f"a pool needs >= 2 workers, got {workers}")
        self.workers = workers
        self.inline_records = inline_records
        # The resource tracker must exist *before* the fork: forked workers
        # inherit its fd, so register/unregister calls from every process
        # reach the same tracker and shared blocks are never reported leaked.
        resource_tracker.ensure_running()
        ctx = multiprocessing.get_context("fork")
        self._tasks = ctx.Queue()
        self._results = ctx.Queue()
        self._procs = [ctx.Process(target=_worker_main,
                                   args=(self._tasks, self._results),
                                   daemon=True, name=f"sortreduce-w{i}")
                       for i in range(workers)]
        for p in self._procs:
            p.start()
        self._next_ticket = 0
        self._arrived: dict[int, KVArray | WorkerTaskError] = {}
        self._discarded: set[int] = set()
        self.closed = False

    # ------------------------------------------------------------- submission

    def _offloadable(self, kv: KVArray, op: ReduceOp) -> bool:
        return (not self.closed
                and len(kv) >= self.inline_records
                and is_builtin_op(op)
                and not kv.values.dtype.hasobject)

    def submit(self, kv: KVArray, op: ReduceOp,
               presorted_concat: bool = False) -> int:
        """Queue one sort-reduce task; returns a ticket for :meth:`collect`."""
        ticket = self._next_ticket
        self._next_ticket += 1
        if not self._offloadable(kv, op):
            if presorted_concat:
                result = op.reduce_sorted(kv.sorted(presorted_concat=True),
                                          presorted=True)
            else:
                result = sort_reduce_in_memory(kv, op)
            self._arrived[ticket] = result
            return ticket
        self._tasks.put((ticket, _kv_to_shm(kv), len(kv),
                         kv.values.dtype.str, op.name, presorted_concat))
        return ticket

    def submit_chunk_sort(self, chunk: KVArray, op: ReduceOp) -> int:
        """Async in-memory sort-reduce of one unsorted chunk."""
        return self.submit(chunk, op, presorted_concat=False)

    # ------------------------------------------------------------- collection

    def collect(self, ticket: int) -> KVArray:
        """Block until ``ticket``'s result is available and return it."""
        if ticket in self._discarded:
            raise ValueError(f"ticket {ticket} was discarded")
        while ticket not in self._arrived:
            self._pump(block=True)
        result = self._arrived.pop(ticket)
        if isinstance(result, WorkerTaskError):
            raise result
        return result

    def discard(self, ticket: int) -> None:
        """Drop a pending ticket (host error path); frees its result shm
        whenever it arrives.  Host-side only — never touches simulated
        state, so it is safe even while a ``PowerLossError`` unwinds."""
        self._discarded.add(ticket)
        self._arrived.pop(ticket, None)

    def _pump(self, block: bool) -> None:
        """Move one arrived worker result into ``_arrived``."""
        try:
            msg = self._results.get(timeout=1.0) if block \
                else self._results.get_nowait()
        except queue.Empty:
            if block and not any(p.is_alive() for p in self._procs):
                raise WorkerTaskError(
                    "all sort-reduce workers died without replying") from None
            return
        ticket, name, n, dtype_str, error = msg
        if ticket in self._discarded:
            self._discarded.discard(ticket)
            if name is not None:
                _kv_from_shm(name, n, dtype_str, unlink=True)
            return
        if error is not None:
            self._arrived[ticket] = WorkerTaskError(
                f"sort-reduce worker failed: {error}")
        else:
            self._arrived[ticket] = _kv_from_shm(name, n, dtype_str,
                                                 unlink=True)

    # --------------------------------------------------- partitioned compute

    def _splitters(self, all_keys: np.ndarray, total: int) -> np.ndarray:
        """Key splitters that cut ``total`` records into worker-sized ranges.

        ``np.partition`` selects the quantile keys without a full sort;
        ``np.unique`` collapses duplicates so a heavily-skewed key never
        appears as two splitters (equal keys must share a range).
        """
        ways = min(self.workers, max(2, total // self.inline_records))
        kth = sorted({len(all_keys) * i // ways for i in range(1, ways)})
        return np.unique(np.partition(all_keys, kth)[kth])

    def sort_reduce_chunk(self, chunk: KVArray, op: ReduceOp) -> KVArray:
        """Sort-reduce one unsorted chunk, key-range-partitioned across
        workers; blocks until done.

        Bitwise-identical to ``sort_reduce_in_memory(chunk, op)``: boolean
        masking preserves each range's original record order, the stable
        sort of a range is the restriction of the stable sort of the chunk,
        and no duplicate-key group crosses a splitter.
        """
        if (len(chunk) < 2 * self.inline_records
                or not self._offloadable(chunk, op)):
            return sort_reduce_in_memory(chunk, op)
        splitters = self._splitters(chunk.keys, len(chunk))
        # Range index per record: range i holds keys in
        # (splitters[i-1], splitters[i]] — any disjoint cover works, as
        # long as equal keys map to the same range.
        sel = np.searchsorted(splitters, chunk.keys, side="right")
        tickets = []
        for i in range(len(splitters) + 1):
            mask = sel == i
            if mask.any():
                tickets.append(self.submit(
                    KVArray._wrap(chunk.keys[mask], chunk.values[mask]), op))
        return self._collect_ranges(tickets)

    def _collect_ranges(self, tickets: list[int]) -> KVArray:
        try:
            outs = [self.collect(t) for t in tickets]
        except BaseException:
            for t in tickets:
                self.discard(t)
            raise
        return KVArray.concat([o for o in outs if len(o)])

    def merge_reduce(self, parts: list[KVArray], op: ReduceOp) -> KVArray:
        """Merge-reduce sorted parts, partitioned by key range across workers.

        Bitwise-identical to the serial
        ``op.reduce_sorted(concat(parts).sorted(presorted_concat=True))``:
        ranges partition the key space, the stable sort of each range is the
        restriction of the stable sort of the whole, and no duplicate-key
        group crosses a splitter, so concatenating range outputs in key
        order reproduces the serial output exactly.
        """
        parts = [p for p in parts if len(p)]
        if not parts:
            raise ValueError("merge_reduce needs at least one non-empty part")
        total = sum(len(p) for p in parts)
        if (total < 2 * self.inline_records
                or not self._offloadable(parts[0], op)):
            return op.reduce_sorted(
                KVArray.concat(parts).sorted(presorted_concat=True),
                presorted=True)
        all_keys = np.concatenate([p.keys for p in parts])
        splitters = self._splitters(all_keys, total)
        tickets = []
        for i in range(len(splitters) + 1):
            slices = []
            for p in parts:
                a = 0 if i == 0 else int(
                    np.searchsorted(p.keys, splitters[i - 1], side="left"))
                b = len(p) if i == len(splitters) else int(
                    np.searchsorted(p.keys, splitters[i], side="left"))
                if b > a:
                    slices.append(p.slice(a, b))
            if slices:
                tickets.append(self.submit(KVArray.concat(slices), op,
                                           presorted_concat=True))
        return self._collect_ranges(tickets)

    # --------------------------------------------------------------- lifecycle

    def shutdown(self, join_timeout_s: float = 5.0) -> None:
        """Stop the workers and free any unclaimed result buffers.

        Escalates until every worker is actually gone: cooperative sentinel
        → ``terminate()`` (SIGTERM) → ``kill()`` (SIGKILL), re-joining after
        each signal.  A worker stuck in uninterruptible state must not leak
        past shutdown — a long-lived serving process would otherwise
        accumulate zombie workers across pool generations.
        """
        if self.closed:
            return
        self.closed = True
        for _ in self._procs:
            self._tasks.put(None)
        deadline = time.monotonic() + join_timeout_s
        for p in self._procs:
            p.join(timeout=max(0.1, deadline - time.monotonic()))
        survivors = [p for p in self._procs if p.is_alive()]
        for p in survivors:
            p.terminate()
        for p in survivors:
            p.join(timeout=1.0)
        for p in survivors:
            if p.is_alive():
                p.kill()
                p.join(timeout=5.0)
        while True:
            try:
                ticket, name, n, dtype_str, _error = self._results.get_nowait()
            except (queue.Empty, OSError, EOFError):
                break
            if name is not None:
                _kv_from_shm(name, n, dtype_str, unlink=True)
        self._tasks.close()
        self._results.close()
        self._arrived.clear()


# ------------------------------------------------------------------ registry


def resolve_workers(workers: int | None) -> int:
    """``None`` defers to ``REPRO_WORKERS`` (default 1 = serial)."""
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        workers = int(env) if env else 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


_POOLS: dict[int, SortReducePool] = {}


def get_pool(workers: int | None = None) -> SortReducePool | None:
    """Shared pool for a worker count; ``None`` for the serial path (N<=1).

    Pools are keyed by worker count and reused across engines — workers are
    stateless, so sharing is free.  On platforms without ``fork`` the pool
    cannot be built and the serial path is used instead.
    """
    n = resolve_workers(workers)
    if n <= 1:
        return None
    pool = _POOLS.get(n)
    if pool is not None and not pool.closed:
        return pool
    try:
        pool = SortReducePool(n)
    except (ValueError, OSError):
        return None  # no fork start method (or no shm): serial fallback
    _POOLS[n] = pool
    return pool


def shutdown_pools() -> None:
    """Stop every shared pool (registered atexit; callable from tests)."""
    for pool in list(_POOLS.values()):
        pool.shutdown()
    _POOLS.clear()


atexit.register(shutdown_pools)
