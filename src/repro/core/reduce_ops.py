"""Associative reduction operators for sort-reduce.

Sort-reduce requires the update function to be *binary associative*
(§III-A): ``f(f(v1, v2), v3) == f(v1, f(v2, v3))``.  That lets any two
entries with matching keys be merged early, at any merge level, without
changing the final result.

A :class:`ReduceOp` bundles a numpy ufunc fast path (``reduceat`` over group
boundaries) with a name and an optional scalar fallback.  The operators the
paper's algorithms use:

* ``SUM`` — PageRank's vertex_update and betweenness-centrality backtracing.
* ``FIRST`` — BFS's vertex_update (keep vertexValue1, i.e. any one parent;
  deterministic here because our sorts are stable).
* ``MIN`` — single-source shortest path.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.kvstream import KVArray


class ReduceOp:
    """A named binary associative reduction over values of equal keys."""

    def __init__(self, name: str, ufunc: np.ufunc | None,
                 scalar: Callable[[object, object], object] | None = None):
        if ufunc is None and scalar is None:
            raise ValueError("a ReduceOp needs a ufunc or a scalar function")
        self.name = name
        self.ufunc = ufunc
        self.scalar = scalar

    def __repr__(self) -> str:
        return f"ReduceOp({self.name})"

    # ------------------------------------------------------------------ apply

    def reduce_sorted(self, run: KVArray, presorted: bool = False) -> KVArray:
        """Collapse duplicate keys of an already-sorted run.

        The result is strictly sorted (unique keys).  This is the operation
        interleaved after every merge step in sort-reduce.  ``presorted``
        skips the sortedness guard for callers that just sorted the run
        themselves.
        """
        if not presorted and not run.is_sorted():
            raise ValueError("reduce_sorted requires a key-sorted run")
        n = len(run)
        if n == 0:
            return run
        starts = group_starts(run.keys)
        if len(starts) == n:
            return run  # all keys already unique
        out_keys = run.keys[starts]
        out_values = self._reduce_groups(run.values, starts)
        return KVArray(out_keys, out_values)

    def _reduce_groups(self, values: np.ndarray, starts: np.ndarray) -> np.ndarray:
        if self.name == "first":
            return values[starts]
        if self.name == "last":
            ends = np.empty_like(starts)
            ends[:-1] = starts[1:]
            ends[-1] = len(values)
            return values[ends - 1]
        if self.ufunc is not None:
            return self.ufunc.reduceat(values, starts)
        return self._reduce_groups_scalar(values, starts)

    def _reduce_groups_scalar(self, values: np.ndarray, starts: np.ndarray) -> np.ndarray:
        out = np.empty(len(starts), dtype=values.dtype)
        bounds = list(starts) + [len(values)]
        for i in range(len(starts)):
            acc = values[bounds[i]]
            for j in range(bounds[i] + 1, bounds[i + 1]):
                acc = self.scalar(acc, values[j])
            out[i] = acc
        return out

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise f(a, b) for aligned arrays of matched keys."""
        if self.name == "first":
            return a.copy()
        if self.name == "last":
            return b.copy()
        if self.ufunc is not None:
            return self.ufunc(a, b)
        return np.array([self.scalar(x, y) for x, y in zip(a, b)], dtype=a.dtype)

    def scatter_into(self, out_values: np.ndarray, touched: np.ndarray,
                     keys: np.ndarray, values: np.ndarray) -> int:
        """Reduce one batch of (key, value) updates into a dense value table.

        ``out_values`` is indexed by key; ``touched`` marks slots that hold a
        previously-scattered value (untouched slots are *assigned*, touched
        slots are *combined*).  Batch-internal duplicates are collapsed with
        a stable sort first, so for the non-commutative operators (FIRST/
        LAST) the earliest/latest update *in stream order* wins — both
        within a batch and across successive batches.  This is the one
        shared dense-aggregation path: the semi-external execution mode and
        the baseline compute kernels all reduce through it, so the ordering
        rules live in exactly one audited place.

        Returns the number of distinct keys in the batch.
        """
        if len(keys) == 0:
            return 0
        kv = KVArray(np.asarray(keys, dtype=np.uint64), np.asarray(values)).sorted()
        reduced = self.reduce_sorted(kv, presorted=True)
        idx = reduced.keys.astype(np.int64)
        seen = touched[idx]
        fresh = ~seen
        out_values[idx[fresh]] = reduced.values[fresh]
        if seen.any():
            hot = idx[seen]
            out_values[hot] = self.combine(out_values[hot], reduced.values[seen])
        touched[idx] = True
        return len(reduced)


def group_starts(sorted_keys: np.ndarray) -> np.ndarray:
    """Indices where each distinct-key group begins in a sorted key array."""
    if len(sorted_keys) == 0:
        return np.empty(0, dtype=np.intp)
    changes = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    return np.concatenate([[0], changes])


SUM = ReduceOp("sum", np.add)
PROD = ReduceOp("prod", np.multiply)
MIN = ReduceOp("min", np.minimum)
MAX = ReduceOp("max", np.maximum)
FIRST = ReduceOp("first", None, scalar=lambda a, b: a)
LAST = ReduceOp("last", None, scalar=lambda a, b: b)

_BUILTIN = {op.name: op for op in (SUM, PROD, MIN, MAX, FIRST, LAST)}


def is_builtin_op(op: ReduceOp) -> bool:
    """True iff ``op`` is one of the registry singletons above.

    The parallel sort-reduce pool ships operators to worker processes *by
    name*; an identity check (not just a name match) keeps a user-defined
    operator that shadows a built-in name on the inline path, where its
    actual function runs.
    """
    return _BUILTIN.get(op.name) is op


def op_by_name(name: str) -> ReduceOp:
    """Look up a built-in reduction operator by name."""
    try:
        return _BUILTIN[name]
    except KeyError:
        known = ", ".join(sorted(_BUILTIN))
        raise KeyError(f"unknown reduce op {name!r}; known: {known}") from None
