"""Sort-reduce: the paper's primary contribution (§III).

Given a stream of ``(key, value)`` update requests and a binary associative
reduction function ``f``, sort-reduce produces the list of keys in sorted
order with all duplicate keys merged through ``f`` — turning fine-grained
random array updates into fully sequential storage traffic, and shrinking the
update list at *every* merge step along the way (Fig 1).

Layers, bottom-up:

* :mod:`repro.core.kvstream` — columnar key-value runs (numpy-backed).
* :mod:`repro.core.reduce_ops` — associative reduction operators.
* :mod:`repro.core.inmemory` — in-memory sort-reduce of one chunk.
* :mod:`repro.core.merger` — streaming k-way merge-reduce of sorted runs.
* :mod:`repro.core.external` — external sort-reduce over flash files with
  per-phase reduction statistics (Fig 14).
* :mod:`repro.core.parallel` — the multi-core worker pool behind
  ``--workers N``: parallel chunk sorts and key-range-partitioned merges
  with bit-identical results and simulated time for any worker count.
* :mod:`repro.core.sorting_network` / :mod:`repro.core.packing` /
  :mod:`repro.core.accelerator` — functional models of the FPGA datapath
  (Fig 9, Fig 7) and its throughput, plus the software backend's cost model.
"""

from repro.core.kvstream import KVArray
from repro.core.reduce_ops import ReduceOp, SUM, MIN, MAX, FIRST, LAST, PROD
from repro.core.inmemory import sort_reduce_in_memory
from repro.core.merger import merge_reduce_arrays, StreamingMergeReducer
from repro.core.external import ExternalSortReducer, SortReduceStats
from repro.core.parallel import (
    SortReducePool,
    WorkerTaskError,
    get_pool,
    resolve_workers,
    shutdown_pools,
)
from repro.core.accelerator import (
    AcceleratorBackend,
    SoftwareBackend,
    backend_for_profile,
)
from repro.core.packing import PackingSpec

__all__ = [
    "KVArray",
    "ReduceOp",
    "SUM",
    "MIN",
    "MAX",
    "FIRST",
    "LAST",
    "PROD",
    "sort_reduce_in_memory",
    "merge_reduce_arrays",
    "StreamingMergeReducer",
    "ExternalSortReducer",
    "SortReduceStats",
    "SortReducePool",
    "WorkerTaskError",
    "get_pool",
    "resolve_workers",
    "shutdown_pools",
    "AcceleratorBackend",
    "SoftwareBackend",
    "backend_for_profile",
    "PackingSpec",
]
