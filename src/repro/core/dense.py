"""Densely encoded sort-reduce output (§III-B).

"The accelerator can use either a sparsely or densely encoded representation
for the output list."  The sparse form is a run of (key, value) records
(16 B-aligned per pair); the dense form stores one value slot per key in the
key space plus a presence bitmap (1 bit per key), which wins once more than
``itemsize / (itemsize + 8)`` of the key space is populated — e.g. beyond
~50 % density for 8-byte values.

:class:`DenseRunHandle` is chunk-iterable exactly like
:class:`~repro.core.external.RunHandle` (it yields sparse
:class:`~repro.core.kvstream.KVArray` chunks reconstructed from the bitmap),
so a densified ``newV`` drops into the engine unchanged.
"""

from __future__ import annotations

import itertools
from typing import Iterator

import numpy as np

from repro.core.kvstream import KVArray

_dense_counter = itertools.count()

#: Keys per chunk when streaming a dense run back as sparse pairs.
DENSE_CHUNK_KEYS = 1 << 16


def dense_bytes(key_space: int, value_itemsize: int) -> int:
    """On-flash size of the dense encoding for a key space."""
    return key_space * value_itemsize + (key_space + 7) // 8


def sparse_bytes(num_records: int, value_itemsize: int) -> int:
    """On-flash size of the sparse (key, value) encoding."""
    return num_records * (8 + value_itemsize)


def dense_wins(num_records: int, key_space: int, value_itemsize: int) -> bool:
    """Whether the dense encoding is smaller for this population."""
    return dense_bytes(key_space, value_itemsize) < sparse_bytes(num_records,
                                                                 value_itemsize)


class DenseRunHandle:
    """A sorted, reduced result stored as value slots + presence bitmap."""

    def __init__(self, store, name: str, key_space: int, num_records: int,
                 value_dtype: np.dtype):
        self.store = store
        self.name = name
        self.key_space = key_space
        self.num_records = num_records
        self.value_dtype = np.dtype(value_dtype)
        self.level = 0
        self.seq = 0

    @property
    def values_file(self) -> str:
        return f"{self.name}:values"

    @property
    def bitmap_file(self) -> str:
        return f"{self.name}:bitmap"

    def __len__(self) -> int:
        return self.num_records

    @property
    def nbytes(self) -> int:
        return dense_bytes(self.key_space, self.value_dtype.itemsize)

    def chunks(self, io_bytes: int | None = None) -> Iterator[KVArray]:
        """Stream the populated (key, value) pairs in key order."""
        item = self.value_dtype.itemsize
        keys_per_chunk = DENSE_CHUNK_KEYS if io_bytes is None else max(
            8, (io_bytes // item) & ~7)
        for start in range(0, self.key_space, keys_per_chunk):
            stop = min(start + keys_per_chunk, self.key_space)
            values = self.store.read_array(self.values_file, self.value_dtype,
                                           start, stop - start)
            bits = self.store.read_array(self.bitmap_file, np.uint8,
                                         start // 8, (stop - start) // 8
                                         + (1 if (stop - start) % 8 else 0))
            mask = np.unpackbits(bits, bitorder="little")[:stop - start].astype(bool)
            if not mask.any():
                continue
            keys = np.flatnonzero(mask).astype(np.uint64) + np.uint64(start)
            yield KVArray(keys, values[mask])

    def read_all(self) -> KVArray:
        chunks = list(self.chunks())
        if not chunks:
            return KVArray.empty(self.value_dtype)
        return KVArray.concat(chunks)

    def delete(self) -> None:
        for name in (self.values_file, self.bitmap_file):
            if self.store.exists(name):
                self.store.delete(name)


def densify_run(run, key_space: int, store=None,
                name: str | None = None) -> DenseRunHandle:
    """Re-encode a sparse sorted run densely (one sequential pass).

    ``run`` is any chunk-iterable sorted run (a :class:`RunHandle`); keys
    must lie in ``[0, key_space)``.  The sparse run is left untouched.
    """
    if key_space < 1:
        raise ValueError(f"key_space must be >= 1, got {key_space}")
    store = store or run.store
    name = name or f"dense-{next(_dense_counter)}"
    dtype = np.dtype(run.value_dtype)
    handle = DenseRunHandle(store, name, key_space, 0, dtype)

    cursor = 0          # next key slot to materialize
    bit_carry = np.zeros(0, dtype=bool)  # bits not yet byte-aligned
    records = 0

    def flush_range(stop_key: int, keys: np.ndarray, values: np.ndarray) -> None:
        """Write value slots and bitmap bits for [cursor, stop_key)."""
        nonlocal cursor, bit_carry
        span = stop_key - cursor
        if span <= 0:
            return
        slot_values = np.zeros(span, dtype=dtype)
        mask = np.zeros(span, dtype=bool)
        if len(keys):
            local = keys.astype(np.int64) - cursor
            slot_values[local] = values
            mask[local] = True
        store.append_array(handle.values_file, slot_values)
        bits = np.concatenate([bit_carry, mask])
        whole = len(bits) & ~7
        if whole:
            store.append(handle.bitmap_file,
                         np.packbits(bits[:whole], bitorder="little").tobytes())
        bit_carry = bits[whole:]
        cursor = stop_key

    for chunk in run.chunks():
        if len(chunk) == 0:
            continue
        if int(chunk.keys[-1]) >= key_space:
            raise ValueError("run key out of the declared key space")
        records += len(chunk)
        flush_range(int(chunk.keys[-1]) + 1, chunk.keys, chunk.values)
    flush_range(key_space, np.empty(0, np.uint64), np.empty(0, dtype))
    if len(bit_carry):
        store.append(handle.bitmap_file,
                     np.packbits(bit_carry, bitorder="little").tobytes())
    if not store.exists(handle.values_file):
        store.append(handle.values_file, b"")
    store.seal(handle.values_file)
    store.seal(handle.bitmap_file)
    handle.num_records = records
    return handle


def choose_encoding(run, key_space: int, store=None):
    """§III-B's internal decision: densify when the dense form is smaller.

    Returns the original run (sparse) or a new :class:`DenseRunHandle`; in
    the latter case the sparse run is deleted.
    """
    dtype = np.dtype(run.value_dtype)
    if not dense_wins(run.num_records, key_space, dtype.itemsize):
        return run
    dense = densify_run(run, key_space, store=store)
    run.delete()
    return dense
