"""In-memory sort-reduce of one chunk (§IV-E.1 first phase / §IV-F).

Both the hardware and software implementations begin by sort-reducing
DRAM-resident chunks (512 MB in the paper) before anything touches flash.
Interleaving the reduction here is where most of the data-volume win comes
from: on the paper's real-world graphs over 80–90% of the intermediate list
disappears *before the first flash write* (Fig 14, §V-C.5).
"""

from __future__ import annotations

from repro.core.kvstream import KVArray
from repro.core.reduce_ops import ReduceOp


def sort_reduce_in_memory(run: KVArray, op: ReduceOp) -> KVArray:
    """Stable-sort a chunk by key and collapse duplicates through ``op``.

    Returns a strictly-sorted run.  Stability makes non-commutative
    operators like FIRST deterministic: ties resolve in arrival order.
    """
    return op.reduce_sorted(run.sorted(), presorted=True)


def sort_only_in_memory(run: KVArray) -> KVArray:
    """Sort without reducing — the strawman of Fig 1(a), kept for the
    interleaving ablation benchmark."""
    return run.sorted()
