"""Bloom filter for custom active-list generation (Algorithm 4).

PageRank's active list is not a subset of ``newV`` — it is the set of
vertices with an edge *into* ``newV`` — so Algorithm 4 marks those sources
in a bloom filter while scanning ``newV``'s in-edges, then sweeps the key
space testing membership.  The paper notes the filter can live inside the
accelerator; here it is a numpy bit array with splitmix64-derived hashes.
"""

from __future__ import annotations

import numpy as np


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer: a cheap, well-mixed 64-bit hash."""
    x = (x + np.uint64(0x9E3779B97F4A7C15)).astype(np.uint64)
    x ^= x >> np.uint64(30)
    x = (x * np.uint64(0xBF58476D1CE4E5B9)).astype(np.uint64)
    x ^= x >> np.uint64(27)
    x = (x * np.uint64(0x94D049BB133111EB)).astype(np.uint64)
    x ^= x >> np.uint64(31)
    return x


class BloomFilter:
    """A fixed-size bloom filter over uint64 keys with vectorized ops."""

    def __init__(self, num_bits: int, num_hashes: int = 3):
        if num_bits < 8:
            raise ValueError(f"num_bits must be >= 8, got {num_bits}")
        if num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
        self.num_bits = int(num_bits)
        self.num_hashes = num_hashes
        self._bits = np.zeros((self.num_bits + 7) // 8, dtype=np.uint8)

    @staticmethod
    def for_expected_items(n: int, false_positive_rate: float = 0.01) -> "BloomFilter":
        """Size the filter for ``n`` items at the target false-positive rate."""
        if n < 1:
            raise ValueError(f"expected item count must be >= 1, got {n}")
        if not 0 < false_positive_rate < 1:
            raise ValueError(f"false_positive_rate must be in (0, 1), got {false_positive_rate}")
        bits = int(-n * np.log(false_positive_rate) / (np.log(2) ** 2)) + 8
        hashes = max(1, round(bits / n * np.log(2)))
        return BloomFilter(bits, hashes)

    @property
    def nbytes(self) -> int:
        return self._bits.nbytes

    def _positions(self, keys: np.ndarray) -> np.ndarray:
        """(num_hashes, len(keys)) bit positions."""
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.empty((self.num_hashes, len(keys)), dtype=np.int64)
        for i in range(self.num_hashes):
            seed = (i * 0x5851F42D4C957F2D) & 0xFFFFFFFFFFFFFFFF
            h = _splitmix64(keys + np.uint64(seed))
            out[i] = (h % np.uint64(self.num_bits)).astype(np.int64)
        return out

    def add(self, keys: np.ndarray) -> None:
        """Insert a batch of keys."""
        if len(keys) == 0:
            return
        pos = self._positions(keys).ravel()
        np.bitwise_or.at(self._bits, pos >> 3, (1 << (pos & 7)).astype(np.uint8))

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Membership mask for a batch of keys (no false negatives)."""
        if len(keys) == 0:
            return np.zeros(0, dtype=bool)
        pos = self._positions(keys)
        hit = np.ones(len(keys), dtype=bool)
        for i in range(self.num_hashes):
            p = pos[i]
            hit &= (self._bits[p >> 3] >> (p & 7).astype(np.uint8)) & 1 == 1
        return hit

    def fill_ratio(self) -> float:
        """Fraction of bits set (saturation indicator)."""
        return float(np.unpackbits(self._bits).sum()) / (len(self._bits) * 8)

    def clear(self) -> None:
        self._bits[:] = 0
