"""Horizontal scale-out of sort-reduce across multiple storage devices (§VI).

The paper's future-work section: "GraFBoost can easily be scaled
horizontally simply by plugging in more accelerated storage devices into the
host server.  The intermediate update list can be transparently partitioned
across devices."

:class:`PartitionedSortReducer` implements exactly that: the key space is
split into contiguous ranges, one per device; every incoming update chunk is
scattered to its range's device, where a private
:class:`~repro.core.external.ExternalSortReducer` sorts and reduces it using
that device's own accelerator and flash.  Because ranges are contiguous,
concatenating the per-device results in range order *is* the globally sorted
reduced output — no cross-device merge is ever needed.

Devices run concurrently; the wall time of the whole operation is the
maximum of the per-device simulated times, which the harness reports via
:meth:`PartitionedSortReducer.elapsed_s`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.external import ExternalSortReducer
from repro.core.kvstream import KVArray
from repro.core.reduce_ops import ReduceOp


class PartitionedRun:
    """The globally sorted result: per-device runs in key-range order."""

    def __init__(self, runs: list, bounds: np.ndarray, value_dtype: np.dtype):
        self.runs = runs
        self.bounds = bounds
        self.value_dtype = np.dtype(value_dtype)

    @property
    def num_records(self) -> int:
        return sum(run.num_records for run in self.runs)

    def __len__(self) -> int:
        return self.num_records

    def chunks(self, io_bytes: int | None = None) -> Iterator[KVArray]:
        """Stream the global result in key order (partition by partition)."""
        for run in self.runs:
            if io_bytes is None:
                yield from run.chunks()
            else:
                yield from run.chunks(io_bytes)

    def read_all(self) -> KVArray:
        parts = [run.read_all() for run in self.runs if run.num_records]
        if not parts:
            return KVArray.empty(self.value_dtype)
        return KVArray.concat(parts)

    def delete(self) -> None:
        for run in self.runs:
            run.delete()


class PartitionedSortReducer:
    """Scatter updates to per-device sort-reducers by contiguous key range.

    ``devices`` is a list of (store, backend) pairs — typically one
    :func:`~repro.engine.config.make_system` stack per storage device.  Each
    store must own its own clock; devices work concurrently and
    :meth:`elapsed_s` reports the slowest one (plus any host scatter time,
    which is negligible: the scatter is a streaming partition by key range).
    """

    def __init__(self, devices: list[tuple], op: ReduceOp, value_dtype: np.dtype,
                 key_space: int, chunk_bytes: int, fanout: int = 16,
                 name_prefix: str = "scaleout",
                 interconnect_bw: float | None = None):
        """``interconnect_bw`` models BlueDBM's inter-controller network
        (§VI: updates are "transparently partitioned across devices" over
        dedicated serial links): when set, every update that lands on a
        device other than the one that produced it is charged transit time
        at that bandwidth on both endpoints.  ``None`` means the host
        scatters in DRAM (the single-server configuration)."""
        if not devices:
            raise ValueError("need at least one device")
        if key_space < len(devices):
            raise ValueError(
                f"key space {key_space} smaller than device count {len(devices)}")
        if interconnect_bw is not None and interconnect_bw <= 0:
            raise ValueError("interconnect_bw must be positive")
        self.interconnect_bw = interconnect_bw
        self.network_bytes = 0
        self.op = op
        self.value_dtype = np.dtype(value_dtype)
        self.key_space = key_space
        # bounds[i] is the first key of partition i; partition i owns
        # [bounds[i], bounds[i+1]).  Integer arithmetic: float64 linspace
        # loses key precision past 2^53 (hundreds of keys at 2^62).
        n = len(devices)
        self.bounds = np.array([key_space * i // n for i in range(n + 1)],
                               dtype=np.uint64)
        self._clocks = [store.device.clock for store, _backend in devices]
        self._start_elapsed = [clock.elapsed_s for clock in self._clocks]
        self.reducers = [
            ExternalSortReducer(store, op, value_dtype, backend, chunk_bytes,
                                fanout=fanout, name_prefix=f"{name_prefix}-p{i}")
            for i, (store, backend) in enumerate(devices)
        ]
        self._finished = False

    @property
    def num_partitions(self) -> int:
        return len(self.reducers)

    def partition_of(self, keys: np.ndarray) -> np.ndarray:
        """Partition index of each key."""
        return np.searchsorted(self.bounds, keys, side="right") - 1

    def add(self, kv: KVArray) -> None:
        """Scatter one unsorted update chunk across the devices."""
        if self._finished:
            raise RuntimeError("add() after finish()")
        if len(kv) == 0:
            return
        if int(kv.keys.max()) >= self.key_space:
            raise ValueError("update key out of the declared key space")
        parts = self.partition_of(kv.keys)
        for index in np.unique(parts):
            mask = parts == index
            piece = kv.take(mask)
            if self.interconnect_bw is not None and self.num_partitions > 1:
                # In the distributed configuration, updates are produced at
                # all devices uniformly: (P-1)/P of each partition's data
                # crossed the inter-controller network to reach its home.
                transit = piece.nbytes * (self.num_partitions - 1) / self.num_partitions
                self.network_bytes += int(transit)
                self._clocks[int(index)].charge(
                    "net", transit / self.interconnect_bw, nbytes=int(transit))
            self.reducers[int(index)].add(piece)

    def finish(self) -> PartitionedRun:
        """Finish every partition; returns the globally sorted result."""
        if self._finished:
            raise RuntimeError("finish() called twice")
        self._finished = True
        runs = [reducer.finish() for reducer in self.reducers]
        return PartitionedRun(runs, self.bounds, self.value_dtype)

    @property
    def elapsed_s(self) -> float:
        """Wall time: devices run concurrently, so the slowest one decides."""
        deltas = [clock.elapsed_s - start
                  for clock, start in zip(self._clocks, self._start_elapsed)]
        return max(deltas)

    @property
    def device_times(self) -> list[float]:
        """Per-device simulated time (load-balance diagnostics)."""
        return [clock.elapsed_s - start
                for clock, start in zip(self._clocks, self._start_elapsed)]

    @property
    def total_input_pairs(self) -> int:
        return sum(r.stats.total_input_pairs for r in self.reducers)
