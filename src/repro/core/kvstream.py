"""Columnar key-value runs: the unit of data sort-reduce operates on.

A :class:`KVArray` is a pair of aligned numpy arrays — ``uint64`` keys and a
caller-chosen value dtype — with helpers for sorting, slicing, serialization
to/from flash bytes, and invariant checks.  Everything in the sort-reduce
pipeline (intermediate update lists, sorted runs, ``newV`` results, vertex
overlays) is a ``KVArray`` or a file full of its serialized records.

Records are serialized interleaved (``key, value, key, value, …``) exactly as
the paper streams them between pipeline stages, so a run file can be read
back in arbitrary record-aligned chunks.
"""

from __future__ import annotations

import numpy as np

KEY_DTYPE = np.dtype("<u8")


class KVArray:
    """An aligned (keys, values) pair; may be sorted or unsorted.

    The constructor validates alignment; use :meth:`empty` for a typed empty
    run and :meth:`from_pairs` for literals in tests.
    """

    __slots__ = ("keys", "values")

    def __init__(self, keys: np.ndarray, values: np.ndarray):
        keys = np.asarray(keys)
        values = np.asarray(values)
        if keys.ndim != 1 or values.ndim != 1:
            raise ValueError("keys and values must be one-dimensional")
        if len(keys) != len(values):
            raise ValueError(f"length mismatch: {len(keys)} keys vs {len(values)} values")
        if keys.dtype != KEY_DTYPE:
            keys = keys.astype(KEY_DTYPE)
        self.keys = keys
        self.values = values

    # -------------------------------------------------------------- factories

    @classmethod
    def _wrap(cls, keys: np.ndarray, values: np.ndarray) -> "KVArray":
        """Internal constructor for arrays already known to be aligned 1-D
        with uint64 keys (slices/permutations of validated runs) — skips the
        per-call validation of ``__init__`` on hot paths."""
        out = object.__new__(cls)
        out.keys = keys
        out.values = values
        return out

    @staticmethod
    def empty(value_dtype: np.dtype) -> "KVArray":
        return KVArray(np.empty(0, KEY_DTYPE), np.empty(0, np.dtype(value_dtype)))

    @staticmethod
    def from_pairs(pairs: list[tuple[int, object]], value_dtype: np.dtype) -> "KVArray":
        """Build from a list of (key, value) tuples (test/demo convenience)."""
        if not pairs:
            return KVArray.empty(value_dtype)
        keys = np.array([k for k, _ in pairs], dtype=KEY_DTYPE)
        values = np.array([v for _, v in pairs], dtype=np.dtype(value_dtype))
        return KVArray(keys, values)

    # -------------------------------------------------------------- properties

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def value_dtype(self) -> np.dtype:
        return self.values.dtype

    @property
    def record_bytes(self) -> int:
        """Serialized size of one (key, value) record."""
        return KEY_DTYPE.itemsize + self.values.dtype.itemsize

    @property
    def nbytes(self) -> int:
        """Serialized size of the whole run."""
        return len(self) * self.record_bytes

    def record_dtype(self) -> np.dtype:
        return record_dtype(self.values.dtype)

    def is_sorted(self) -> bool:
        if len(self.keys) < 2:
            return True
        return bool(np.all(self.keys[:-1] <= self.keys[1:]))

    def is_strictly_sorted(self) -> bool:
        """Sorted with no duplicate keys — the post-reduction invariant."""
        if len(self.keys) < 2:
            return True
        return bool(np.all(self.keys[:-1] < self.keys[1:]))

    # ------------------------------------------------------------- operations

    def sorted(self, presorted_concat: bool = False) -> "KVArray":
        """Stable sort by key; ties keep arrival order (FIRST/LAST correctness).

        When ``max_key * n`` fits in a uint64, the stable order is encoded
        into a composite key (``key * n + position``) whose values are
        unique, letting the much faster unstable default sort produce the
        exact permutation a stable sort would — ~4x faster than timsort on
        random 64-bit keys.

        ``presorted_concat`` hints that the data is a concatenation of a few
        already-sorted runs: there timsort's natural-run merging beats the
        composite-key quicksort, so the stable sort is used directly.
        """
        keys = self.keys
        n = len(keys)
        if not presorted_concat and n > 1 and int(keys.max()) <= (2**64 - n) // n:
            composite = keys * np.uint64(n) + np.arange(n, dtype=np.uint64)
            order = np.argsort(composite)
        else:
            order = np.argsort(keys, kind="stable")
        return KVArray._wrap(keys[order], self.values[order])

    def slice(self, start: int, stop: int) -> "KVArray":
        return KVArray._wrap(self.keys[start:stop], self.values[start:stop])

    def take(self, mask_or_index: np.ndarray) -> "KVArray":
        return KVArray._wrap(self.keys[mask_or_index], self.values[mask_or_index])

    @staticmethod
    def concat(runs: list["KVArray"]) -> "KVArray":
        """Concatenate preserving order (run order matters for FIRST/LAST)."""
        runs = [r for r in runs if len(r)]
        if not runs:
            raise ValueError("concat of zero non-empty runs needs a value dtype; use KVArray.empty")
        return KVArray._wrap(
            np.concatenate([r.keys for r in runs]),
            np.concatenate([r.values for r in runs]),
        )

    # ----------------------------------------------------------- serialization

    def to_bytes(self) -> bytes:
        """Interleaved (key, value) records, little-endian."""
        rec = np.empty(len(self), dtype=self.record_dtype())
        rec["k"] = self.keys
        rec["v"] = self.values
        return rec.tobytes()

    @staticmethod
    def from_bytes(data: bytes, value_dtype: np.dtype) -> "KVArray":
        rec = np.frombuffer(data, dtype=record_dtype(value_dtype))
        return KVArray._wrap(rec["k"].copy(), rec["v"].copy())

    def __repr__(self) -> str:
        preview = ", ".join(
            f"({int(k)}, {v})" for k, v in zip(self.keys[:4], self.values[:4])
        )
        suffix = ", …" if len(self) > 4 else ""
        return f"KVArray(n={len(self)}, vdtype={self.values.dtype}, [{preview}{suffix}])"


def record_dtype(value_dtype: np.dtype) -> np.dtype:
    """The serialized record layout for a given value dtype."""
    return np.dtype([("k", KEY_DTYPE), ("v", np.dtype(value_dtype))])
