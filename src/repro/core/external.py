"""External sort-reduce over flash files (§III-B, §IV-E.2, §IV-F).

The full pipeline of Fig 10:

1. **Chunk phase** — unsorted update pairs stream in (from the edge program)
   and accumulate in a DRAM buffer.  Each full chunk (512 MB in the paper)
   is sort-reduced *in memory* and written to flash as one sorted run.
   Because the reduction happens before the write, the heavy-duplication
   graphs shed 80–90% of their data before flash sees any of it (Fig 14).
2. **Merge phases** — up to ``fanout`` (16) sorted runs at a time are
   stream-merged with the reduction interleaved, producing a new sorted run,
   until a single run remains.

The functional work is shared between backends; the active backend
(:mod:`repro.core.accelerator`) decides what the sorting and merging *cost*.
Flash traffic charges itself through the file store.  Per-phase pair counts
are recorded in :class:`SortReduceStats` — the data behind Fig 14.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.inmemory import sort_reduce_in_memory
from repro.core.kvstream import KVArray, record_dtype
from repro.core.merger import StreamingMergeReducer
from repro.core.reduce_ops import ReduceOp
from repro.flash.device import FlashError

_run_counter = itertools.count()


def next_run_seq() -> int:
    """Next value of the shared run-name counter.

    Every engine-owned run file — sort-reducer prefixes and the execution
    modes' DRAM-aggregated runs — draws from this one sequence, so names
    stay unique within a store and tests that pin the counter (crash
    goldens need stable file-name lengths) cover all of them.
    """
    return next(_run_counter)

#: I/O transfer unit for merge-phase reads, matching the software
#: implementation's "large 4 MB chunks" (§IV-F).
MERGE_IO_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class PhaseStat:
    """Pair counts of one sort-reduce phase (phase 0 = in-memory chunk sort)."""

    phase: int
    pairs_in: int
    pairs_out: int

    @property
    def reduction(self) -> float:
        """Fraction of pairs eliminated by the interleaved reduction."""
        if self.pairs_in == 0:
            return 0.0
        return 1.0 - self.pairs_out / self.pairs_in


class SortReduceStats:
    """Accumulates per-phase reduction statistics across one sort-reduce.

    Phases are indexed by number in a dict, so the per-chunk ``record`` calls
    of phase 0 don't rescan a growing list.
    """

    def __init__(self) -> None:
        self._by_phase: dict[int, PhaseStat] = {}
        self.total_input_pairs = 0

    @property
    def phases(self) -> list[PhaseStat]:
        """Phase stats in phase-number order.

        Sorting here (not insertion order) makes every report a pure
        function of the *aggregate* counts: parallel execution may record
        a later phase before an earlier one finishes draining, and shuffled
        record order must not change ``phases``/``to_dict`` output.
        """
        return [self._by_phase[p] for p in sorted(self._by_phase)]

    def record(self, phase: int, pairs_in: int, pairs_out: int) -> None:
        """Accumulate one (partial) phase observation.

        Addition is commutative, so any interleaving of ``record`` calls —
        per-chunk, per-worker, shuffled — yields identical totals.
        """
        existing = self._by_phase.get(phase)
        if existing is not None:
            pairs_in += existing.pairs_in
            pairs_out += existing.pairs_out
        self._by_phase[phase] = PhaseStat(phase, pairs_in, pairs_out)

    def merge(self, other: "SortReduceStats") -> None:
        """Fold another stats object in (per-worker / per-partition
        aggregation).  Deterministic regardless of merge order."""
        self.total_input_pairs += other.total_input_pairs
        for stat in other.phases:
            self.record(stat.phase, stat.pairs_in, stat.pairs_out)

    def written_fractions(self) -> list[float]:
        """Fig 14's series: data written to storage after each phase, as a
        fraction of what would be written had reduction not been applied
        (i.e. the original intermediate-list size)."""
        if self.total_input_pairs == 0:
            return []
        return [self._by_phase[p].pairs_out / self.total_input_pairs
                for p in sorted(self._by_phase)]

    @property
    def final_pairs(self) -> int:
        if not self._by_phase:
            return 0
        return self._by_phase[max(self._by_phase)].pairs_out

    def to_dict(self) -> dict:
        """JSON-safe form (checkpointed alongside the engine state)."""
        return {"total_input_pairs": self.total_input_pairs,
                "phases": [[s.phase, s.pairs_in, s.pairs_out]
                           for s in self.phases]}

    @classmethod
    def from_dict(cls, d: dict) -> "SortReduceStats":
        stats = cls()
        stats.total_input_pairs = d["total_input_pairs"]
        for phase, pairs_in, pairs_out in d["phases"]:
            stats._by_phase[phase] = PhaseStat(phase, pairs_in, pairs_out)
        return stats


class RunHandle:
    """A sealed, sorted, reduced run file living in a flash file store.

    ``level`` counts how many merge phases produced it (0 = straight from
    an in-memory chunk sort).
    """

    def __init__(self, store, name: str, num_records: int, value_dtype: np.dtype,
                 level: int = 0, seq: int = 0):
        self.store = store
        self.name = name
        self.num_records = num_records
        self.value_dtype = np.dtype(value_dtype)
        self.level = level
        # Age of the oldest data in the run; merges order their sources by
        # this so non-commutative reductions (FIRST/LAST) stay correct.
        self.seq = seq

    def __len__(self) -> int:
        return self.num_records

    @property
    def record_bytes(self) -> int:
        return record_dtype(self.value_dtype).itemsize

    @property
    def nbytes(self) -> int:
        return self.num_records * self.record_bytes

    def read_all(self) -> KVArray:
        """Load the entire run (small runs / tests / result collection)."""
        if self.num_records == 0:
            return KVArray.empty(self.value_dtype)
        raw = self.store.read(self.name, 0, self.nbytes)
        return KVArray.from_bytes(raw, self.value_dtype)

    def chunks(self, io_bytes: int = MERGE_IO_BYTES) -> Iterator[KVArray]:
        """Stream the run in record-aligned chunks of roughly ``io_bytes``."""
        rec = self.record_bytes
        per_chunk = max(1, io_bytes // rec)
        offset = 0
        while offset < self.num_records:
            n = min(per_chunk, self.num_records - offset)
            raw = self.store.read(self.name, offset * rec, n * rec)
            yield KVArray.from_bytes(raw, self.value_dtype)
            offset += n

    def delete(self) -> None:
        if self.num_records and self.store.exists(self.name):
            self.store.delete(self.name)


class ExternalSortReducer:
    """Sort-reduces an unbounded stream of update pairs using bounded DRAM.

    Feed pairs with :meth:`add`; call :meth:`finish` to obtain the single
    sorted+reduced :class:`RunHandle`.  ``chunk_bytes`` is the DRAM sort
    buffer (the paper's 512 MB), registered against ``memory`` if given.
    """

    def __init__(self, store, op: ReduceOp, value_dtype: np.dtype, backend,
                 chunk_bytes: int, fanout: int = 16, name_prefix: str = "sortreduce",
                 memory=None, pool=None):
        if chunk_bytes < 1024:
            raise ValueError(f"chunk_bytes unreasonably small: {chunk_bytes}")
        self.store = store
        self.op = op
        self.value_dtype = np.dtype(value_dtype)
        self.backend = backend
        self.chunk_bytes = chunk_bytes
        self.fanout = fanout
        self.name_prefix = f"{name_prefix}-{next(_run_counter)}"
        self.memory = memory
        #: Optional :class:`repro.core.parallel.SortReducePool`.  With a pool
        #: chunk sorts and merges are key-range-partitioned across worker
        #: processes; all store I/O, clock charges and stats stay on this
        #: process in the exact serial order, so results and simulated time
        #: are bit-identical to ``pool=None``.
        self.pool = pool
        self.stats = SortReduceStats()
        self._buffer: deque[KVArray] = deque()
        self._buffered_bytes = 0
        self._runs: list[RunHandle] = []
        self._run_counter = 0
        self._finished = False
        self._memory_freed = False
        if memory is not None:
            memory.allocate(self._mem_label, chunk_bytes)

    @property
    def _mem_label(self) -> str:
        return f"{self.name_prefix}:chunk-buffer"

    @property
    def clock(self):
        return self.store.device.clock

    # ------------------------------------------------------------------ input

    def add(self, kv: KVArray) -> None:
        """Append unsorted update pairs to the stream."""
        if self._finished:
            raise RuntimeError("add() after finish()")
        if kv.value_dtype != self.value_dtype:
            raise ValueError(f"value dtype {kv.value_dtype} != {self.value_dtype}")
        if len(kv) == 0:
            return
        self._buffer.append(kv)
        self._buffered_bytes += kv.nbytes
        self.stats.total_input_pairs += len(kv)
        while self._buffered_bytes >= self.chunk_bytes:
            self._flush_chunk()

    def _take_chunk(self) -> KVArray:
        """Detach exactly one chunk's worth of buffered pairs."""
        take: list[KVArray] = []
        taken = 0
        while self._buffer and taken < self.chunk_bytes:
            head = self._buffer[0]
            remaining = self.chunk_bytes - taken
            if head.nbytes <= remaining:
                take.append(self._buffer.popleft())
                taken += head.nbytes
            else:
                n = max(1, remaining // head.record_bytes)
                take.append(head.slice(0, n))
                self._buffer[0] = head.slice(n, len(head))
                taken += n * head.record_bytes
        self._buffered_bytes -= taken
        return KVArray.concat(take)

    def _flush_chunk(self) -> None:
        chunk = self._take_chunk()
        if self.pool is not None:
            # Key-range-partitioned across the workers, but *synchronous*:
            # the charges and writes in _finish_chunk happen right here,
            # exactly where the serial path makes them.  (Deferring the
            # drain to overlap with flash I/O would reorder this chunk's
            # charges past any clock charges the caller makes between
            # add() calls, moving the low bits of elapsed_s.)
            reduced = self.pool.sort_reduce_chunk(chunk, self.op)
        else:
            reduced = sort_reduce_in_memory(chunk, self.op)
        self._finish_chunk(reduced, len(chunk), chunk.nbytes)

    def _finish_chunk(self, reduced: KVArray, pairs_in: int,
                      chunk_nbytes: int) -> None:
        """The serial-ordered tail of a chunk flush: charge, record, write."""
        self.backend.charge_chunk_sort(self.clock, chunk_nbytes)
        self.stats.record(0, pairs_in, len(reduced))
        self._write_run(reduced)
        self._merge_full_levels()

    def _write_run(self, run: KVArray) -> None:
        name = f"{self.name_prefix}:run-{self._run_counter}"
        self._run_counter += 1
        self.store.append(name, run.to_bytes())
        self.store.seal(name)
        self._runs.append(RunHandle(self.store, name, len(run), self.value_dtype,
                                    level=0, seq=self._run_counter - 1))

    def _merge_full_levels(self) -> None:
        """Merge eagerly whenever a level fills up with ``fanout`` runs.

        This is how the paper's pipeline behaves — "this process is repeated
        until the full dataset has been sorted" (§IV-E.1) — and it bounds
        the number of coexisting run files to ``fanout`` per level instead
        of letting thousands of chunk-sized runs pile up on flash.
        """
        while True:
            by_level: dict[int, list[RunHandle]] = {}
            for run in self._runs:
                by_level.setdefault(run.level, []).append(run)
            full = [lvl for lvl, runs in by_level.items() if len(runs) >= self.fanout]
            if not full:
                return
            level = min(full)
            # Level merges overlap with ongoing chunk production; the
            # software implementation spawns up to four 16-to-1 mergers.
            self._merge_group(by_level[level][:self.fanout], concurrency=4)

    # ----------------------------------------------------------------- output

    def finish(self) -> RunHandle:
        """Flush the tail chunk and merge all runs down to one.

        Any failure mid-merge cleans up after itself: on an ``Exception``
        every temp run (including the partially-written merge output, see
        :meth:`_merge_group`) is deleted via :meth:`close`.  A
        ``BaseException`` (an injected power loss) propagates untouched —
        the store is dead, and its sealed runs are exactly what crash
        recovery needs; the pool discards its own in-flight tickets.
        """
        if self._finished:
            raise RuntimeError("finish() called twice")
        self._finished = True
        try:
            if self._buffer:
                self._flush_chunk()
            if not self._runs:
                return RunHandle(self.store, f"{self.name_prefix}:empty", 0, self.value_dtype)
            while len(self._runs) > 1:
                self._runs.sort(key=lambda r: r.level)
                # The last merge is done by a single merger instance — "all
                # chunks need to be merged into one by a single merger"
                # (§IV-F); earlier merges pipeline several instances.
                final = len(self._runs) <= self.fanout
                self._merge_group(self._runs[:self.fanout],
                                  concurrency=1 if final else 4)
            return self._runs[0]
        except Exception:
            self.close()
            raise
        finally:
            self._free_memory()

    def _free_memory(self) -> None:
        if self.memory is not None and not self._memory_freed:
            self._memory_freed = True
            self.memory.free(self._mem_label)

    def close(self) -> None:
        """Abandon the sort-reduce: free the DRAM buffer and delete any run
        files still on flash.

        This is the error-path counterpart of :meth:`finish` — a superstep
        that dies on a :class:`~repro.flash.device.FlashError` must not leak
        its chunk buffer or half-merged runs.  Idempotent; calling it after
        a successful :meth:`finish` would discard the result run.
        """
        self._finished = True
        self._free_memory()
        runs, self._runs = self._runs, []
        for run in runs:
            try:
                run.delete()
            except FlashError:
                pass  # best-effort cleanup on an already-failing device
        self._buffer.clear()
        self._buffered_bytes = 0

    def adopt_runs(self, runs: list[RunHandle]) -> None:
        """Seed recovered runs into this sort-reduce (crash recovery).

        The caller owns the bookkeeping of how much of the *input stream*
        the adopted runs already cover — feeding pairs a recovered run
        already holds would double-count them.
        """
        if self._finished:
            raise RuntimeError("adopt_runs() after finish()")
        self._runs.extend(runs)
        self._merge_full_levels()

    def _merge_group(self, group: list[RunHandle], concurrency: int = 1) -> None:
        """Stream-merge one group of runs into a single higher-level run."""
        group = sorted(group, key=lambda r: r.seq)  # oldest data first
        phase = max(r.level for r in group) + 1
        out_name = f"{self.name_prefix}:run-{self._run_counter}"
        self._run_counter += 1
        out_records = 0

        def sink(kv: KVArray) -> None:
            nonlocal out_records
            self.store.append(out_name, kv.to_bytes())
            out_records += len(kv)

        merger = StreamingMergeReducer(self.op, self.value_dtype,
                                       fanout=self.fanout, pool=self.pool)
        try:
            pairs_in, pairs_out = merger.merge([r.chunks() for r in group], sink)
        except Exception:
            # A failed merge (device error, worker death) must not leak its
            # partially-written output: it is not yet in ``self._runs``, so
            # ``close()`` alone would never delete it.
            try:
                if self.store.exists(out_name):
                    self.store.delete(out_name)
            except FlashError:
                pass  # best-effort cleanup on an already-failing device
            raise
        if pairs_out:
            self.store.seal(out_name)
        handle = RunHandle(self.store, out_name, out_records, self.value_dtype,
                           level=phase, seq=min(r.seq for r in group))
        rec = handle.record_bytes
        self.backend.charge_merge_level(self.clock, pairs_in * rec, pairs_out * rec,
                                        groups=concurrency)
        self.stats.record(phase, pairs_in, pairs_out)
        for run in group:
            run.delete()
        self._runs = [r for r in self._runs if r not in group]
        self._runs.append(handle)


def recover_runs(store, prefix: str,
                 value_dtype: np.dtype) -> tuple[list[RunHandle], list[str]]:
    """After a crash, split the run files under ``prefix`` into keep/discard.

    A *sealed* run is complete — the sorter sealed it only after its last
    record hit flash — so it is adopted as a :class:`RunHandle` (level 0;
    age recovered from the run-file counter so non-commutative reductions
    keep their order).  An *unsealed* run died mid-write: mount already
    truncated it to its committed pages, but its logical tail is gone, so
    it is deleted.  Returns ``(recovered, discarded_names)``.
    """
    value_dtype = np.dtype(value_dtype)
    rec = record_dtype(value_dtype).itemsize

    def run_age(name: str) -> int:
        tail = name.rsplit("run-", 1)
        return int(tail[1]) if len(tail) == 2 and tail[1].isdigit() else 0

    recovered: list[RunHandle] = []
    discarded: list[str] = []
    for name in list(store.list_files()):
        if not name.startswith(prefix):
            continue
        if store.is_sealed(name) and store.size(name) % rec == 0:
            recovered.append(RunHandle(store, name, store.size(name) // rec,
                                       value_dtype, level=0, seq=run_age(name)))
        else:
            store.delete(name)
            discarded.append(name)
    recovered.sort(key=lambda r: r.seq)
    return recovered, discarded


def sort_reduce_stream(chunks: Iterator[KVArray], store, op: ReduceOp,
                       value_dtype: np.dtype, backend, chunk_bytes: int,
                       fanout: int = 16, name_prefix: str = "sortreduce",
                       memory=None, pool=None) -> tuple[RunHandle, SortReduceStats]:
    """One-shot convenience: sort-reduce a stream of unsorted KV chunks."""
    reducer = ExternalSortReducer(
        store, op, value_dtype, backend, chunk_bytes,
        fanout=fanout, name_prefix=name_prefix, memory=memory, pool=pool,
    )
    for chunk in chunks:
        reducer.add(chunk)
    return reducer.finish(), reducer.stats
