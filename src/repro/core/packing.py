"""Dense bit-packing of key-value pairs into 256-bit words (Fig 7, §IV-C).

To saturate DRAM and flash bandwidth, the hardware communicates in 256-bit
words and packs as many key-value pairs per word as possible, ignoring byte
and word alignment (a 34-bit key uses exactly 34 bits).  The software
implementation keeps keys and values word-aligned instead (§IV-F) — packing
and unpacking is free in specialized hardware but costly on a CPU.

This module provides both the arithmetic model the accelerator cost model
uses (pairs per word, effective bandwidth saving) and a *functional*
pack/unpack so tests can prove the format round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

WORD_BITS = 256
WORD_BYTES = WORD_BITS // 8


@dataclass(frozen=True)
class PackingSpec:
    """Bit widths of one key-value pair inside the 256-bit datapath."""

    key_bits: int
    value_bits: int

    def __post_init__(self) -> None:
        if not 1 <= self.key_bits <= 64:
            raise ValueError(f"key_bits must be in [1, 64], got {self.key_bits}")
        if not 1 <= self.value_bits <= 128:
            raise ValueError(f"value_bits must be in [1, 128], got {self.value_bits}")
        if self.pair_bits > WORD_BITS:
            raise ValueError(f"a single pair ({self.pair_bits} bits) exceeds the word size")

    @property
    def pair_bits(self) -> int:
        return self.key_bits + self.value_bits

    @property
    def pairs_per_word(self) -> int:
        """Pairs packed per 256-bit word; pairs never straddle words."""
        return WORD_BITS // self.pair_bits

    @property
    def packed_bytes_per_pair(self) -> float:
        """Average bytes of datapath traffic per pair when packed."""
        return WORD_BYTES / self.pairs_per_word

    def aligned_bytes_per_pair(self, key_bytes: int = 8, value_bytes: int = 8) -> int:
        """Bytes per pair in the word-aligned software layout."""
        return key_bytes + value_bytes

    def bandwidth_saving(self, key_bytes: int = 8, value_bytes: int = 8) -> float:
        """Fraction of bandwidth saved by packing vs the aligned layout."""
        aligned = self.aligned_bytes_per_pair(key_bytes, value_bytes)
        return 1.0 - self.packed_bytes_per_pair / aligned

    @staticmethod
    def for_vertex_count(num_vertices: int, value_bits: int = 64) -> "PackingSpec":
        """Spec whose key width is the minimum for ``num_vertices`` keys."""
        if num_vertices < 1:
            raise ValueError(f"num_vertices must be >= 1, got {num_vertices}")
        key_bits = max(1, int(num_vertices - 1).bit_length())
        return PackingSpec(key_bits=key_bits, value_bits=value_bits)

    # ------------------------------------------------------------- functional

    def pack(self, keys: np.ndarray, values: np.ndarray) -> bytes:
        """Pack pairs into consecutive 256-bit words (low bits first)."""
        if len(keys) != len(values):
            raise ValueError("keys and values must be the same length")
        key_mask = (1 << self.key_bits) - 1
        value_mask = (1 << self.value_bits) - 1
        ppw = self.pairs_per_word
        out = bytearray()
        for w0 in range(0, len(keys), ppw):
            word = 0
            shift = 0
            for i in range(w0, min(w0 + ppw, len(keys))):
                k = int(keys[i])
                v = int(values[i])
                if k & ~key_mask:
                    raise ValueError(f"key {k} does not fit in {self.key_bits} bits")
                if v & ~value_mask:
                    raise ValueError(f"value {v} does not fit in {self.value_bits} bits")
                word |= (k | (v << self.key_bits)) << shift
                shift += self.pair_bits
            out.extend(word.to_bytes(WORD_BYTES, "little"))
        return bytes(out)

    def unpack(self, data: bytes, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Inverse of :meth:`pack` for ``count`` pairs."""
        ppw = self.pairs_per_word
        expected_words = -(-count // ppw) if count else 0
        if len(data) != expected_words * WORD_BYTES:
            raise ValueError(
                f"expected {expected_words * WORD_BYTES} bytes for {count} pairs, "
                f"got {len(data)}"
            )
        key_mask = (1 << self.key_bits) - 1
        value_mask = (1 << self.value_bits) - 1
        keys = np.empty(count, dtype=np.uint64)
        values = np.empty(count, dtype=np.uint64)
        for w in range(expected_words):
            word = int.from_bytes(data[w * WORD_BYTES:(w + 1) * WORD_BYTES], "little")
            for j in range(min(ppw, count - w * ppw)):
                pair = (word >> (j * self.pair_bits)) & ((1 << self.pair_bits) - 1)
                keys[w * ppw + j] = pair & key_mask
                values[w * ppw + j] = (pair >> self.key_bits) & value_mask
        return keys, values
