"""Streaming k-way merge-reduce of sorted runs (§IV-E.2, §IV-F).

The hardware implements this as a tree of bitonic tuple mergers fed from
flash through DRAM buffers; the software version is a tree of 2-to-1 merger
threads.  Functionally both compute the same thing: a single sorted run in
which duplicate keys have been collapsed through the reduction operator
*during* the merge — never materializing the unreduced merge result.

:class:`StreamingMergeReducer` is the functional engine used by both
backends.  It consumes chunk iterators (so whole runs never need to be
memory-resident), tracks a safe emission boundary so that a key group is
only reduced once all of its members have arrived, and reports pair counts
for the Fig 14 reduction statistics.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.core.kvstream import KVArray
from repro.core.reduce_ops import ReduceOp


def merge_reduce_arrays(runs: list[KVArray], op: ReduceOp,
                        pool=None) -> KVArray:
    """Merge-reduce fully in-memory runs.

    Because our sorts are stable, concatenating in run order and stable
    sorting is equivalent to an order-preserving k-way merge, so FIRST/LAST
    see values in (run order, position order) — the same order a hardware
    merge tree would present them.  With a
    :class:`~repro.core.parallel.SortReducePool` the work is key-range
    partitioned across workers; the result is bitwise identical.
    """
    runs = [r for r in runs if len(r)]
    if not runs:
        raise ValueError("merge_reduce_arrays needs at least one non-empty run")
    for i, r in enumerate(runs):
        if not r.is_sorted():
            raise ValueError(f"input run {i} is not sorted")
    if pool is not None:
        return pool.merge_reduce(runs, op)
    return op.reduce_sorted(KVArray.concat(runs).sorted(presorted_concat=True),
                            presorted=True)


class _SourceState:
    """Buffer and lifecycle of one input run during a streaming merge.

    The buffer is a *list* of sorted chunks, consolidated lazily only when a
    prefix is cut off — repeatedly concatenating into one array would copy
    the surviving suffix on every pull (quadratic on long runs).
    """

    __slots__ = ("chunks", "parts", "buffered", "exhausted")

    def __init__(self, chunks: Iterator[KVArray], value_dtype: np.dtype):
        self.chunks = iter(chunks)
        self.parts: list[KVArray] = []   # non-empty, in global key order
        self.buffered = 0                # total records across ``parts``
        self.exhausted = False

    def pull(self) -> bool:
        """Fetch the next chunk into the buffer; False if the run ended."""
        if self.exhausted:
            return False
        for chunk in self.chunks:
            if len(chunk) == 0:
                continue
            if self.parts and chunk.keys[0] < self.parts[-1].keys[-1]:
                raise ValueError("run chunks are not globally sorted")
            self.parts.append(chunk)
            self.buffered += len(chunk)
            return True
        self.exhausted = True
        return False

    @property
    def last_key(self) -> int:
        return int(self.parts[-1].keys[-1])

    def take_all(self) -> list[KVArray]:
        """Detach the whole buffer as an ordered chunk list."""
        parts, self.parts, self.buffered = self.parts, [], 0
        return parts

    def cut_below(self, boundary: int) -> list[KVArray]:
        """Detach the buffered prefix with keys strictly below ``boundary``."""
        out: list[KVArray] = []
        while self.parts:
            head = self.parts[0]
            if int(head.keys[-1]) < boundary:
                out.append(head)
                del self.parts[0]
                self.buffered -= len(head)
                continue
            cut = int(np.searchsorted(head.keys, boundary, side="left"))
            if cut:
                out.append(head.slice(0, cut))
                self.parts[0] = head.slice(cut, len(head))
                self.buffered -= cut
            break
        return out


class StreamingMergeReducer:
    """Merges k chunk-streams of sorted runs into one reduced output stream.

    ``fanout`` only caps how many sources one instance accepts — callers
    build multi-level merges (as external sort-reduce does) when they have
    more runs than the fan-in of one merger, exactly like the hardware's
    16-to-1 tree.
    """

    def __init__(self, op: ReduceOp, value_dtype: np.dtype, fanout: int = 16,
                 refill_records: int = 65536, pool=None):
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        if refill_records < 1:
            raise ValueError(f"refill_records must be >= 1, got {refill_records}")
        self.op = op
        self.value_dtype = np.dtype(value_dtype)
        self.fanout = fanout
        self.refill_records = refill_records
        #: Optional :class:`repro.core.parallel.SortReducePool`: emit batches
        #: are then key-range partitioned across worker processes — the leaf
        #: level of the software merge tree — with bitwise-identical output.
        self.pool = pool
        self.pairs_in = 0
        self.pairs_out = 0

    def merge(self, sources: list[Iterator[KVArray]],
              sink: Callable[[KVArray], None]) -> tuple[int, int]:
        """Run the merge; returns (pairs consumed, pairs emitted)."""
        if not sources:
            raise ValueError("merge needs at least one source")
        if len(sources) > self.fanout:
            raise ValueError(f"{len(sources)} sources exceed fanout {self.fanout}")
        states = [_SourceState(src, self.value_dtype) for src in sources]
        pairs_in_start, pairs_out_start = self.pairs_in, self.pairs_out

        while True:
            self._refill(states)
            live = [s for s in states if not s.exhausted]
            pending = [s for s in states if s.buffered]
            if not pending:
                break
            if not live:
                self._emit([p for s in pending for p in s.take_all()], sink)
                break
            boundary = min(s.last_key for s in live)
            cut_parts, made_progress = self._cut(states, boundary)
            if made_progress:
                self._emit(cut_parts, sink)
            else:
                # Every buffered key of the boundary source equals the
                # boundary (a giant duplicate group): pull more data from the
                # sources pinning the boundary until one moves past it.
                self._extend_past(live, boundary)
        return self.pairs_in - pairs_in_start, self.pairs_out - pairs_out_start

    # ---------------------------------------------------------------- helpers

    def _refill(self, states: list[_SourceState]) -> None:
        for s in states:
            while not s.exhausted and s.buffered < self.refill_records:
                if not s.pull():
                    break

    def _cut(self, states: list[_SourceState], boundary: int) -> tuple[list[KVArray], bool]:
        """Split off the per-source prefixes with keys strictly below the
        boundary — those groups can never receive more members."""
        parts: list[KVArray] = []
        progress = False
        for s in states:
            got = s.cut_below(boundary)
            if got:
                parts.extend(got)
                progress = True
        return parts, progress

    def _extend_past(self, live: list[_SourceState], boundary: int) -> None:
        for s in live:
            if s.last_key == boundary:
                s.pull()

    def _emit(self, parts: list[KVArray], sink: Callable[[KVArray], None]) -> None:
        parts = [p for p in parts if len(p)]
        if not parts:
            return
        if self.pool is not None:
            merged = self.pool.merge_reduce(parts, self.op)
        else:
            merged = self.op.reduce_sorted(
                KVArray.concat(parts).sorted(presorted_concat=True),
                presorted=True)
        self.pairs_in += sum(len(p) for p in parts)
        self.pairs_out += len(merged)
        sink(merged)
