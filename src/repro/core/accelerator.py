"""Cost models of the hardware and software sort-reduce engines (§IV-E/F, §V-C.3).

The *functional* work — the actual sorting and reducing of key-value data —
is identical for both implementations and lives in
:mod:`repro.core.inmemory` / :mod:`repro.core.merger`.  The backends here
answer only "how long did that take, on which resource":

**Hardware** (:class:`AcceleratorBackend`): the in-memory sorter streams
256-bit packed words at one word per cycle (4 GB/s at 125 MHz), bounded by
the on-board DRAM.  Sorting a chunk takes ``1 + ceil(log_fanout(pages))``
passes over DRAM (on-chip page sort, then 16-to-1 merge levels), each pass
reading and writing the chunk once: 512 MB in just over 0.5 s at 10 GB/s,
and half that for GraFBoost2's 20 GB/s DRAM — the paper's own numbers.
Merge levels stream at accelerator line rate, overlapped with flash.

**Software** (:class:`SoftwareBackend`): a pool of in-memory sorter threads,
then 16-to-1 merge-reducers built as trees of 2-to-1 merger threads, each
tree emitting up to ~800 MB/s with at most four instances (§IV-F).  CPU busy
time accrues in thread-seconds so utilization reports look like Table II.
"""

from __future__ import annotations

import math

from repro.core.packing import PackingSpec
from repro.perf.clock import SimClock
from repro.perf.profiles import HardwareProfile, MB

#: Number of worker threads one software 16-to-1 merge tree occupies
#: (15 two-to-one mergers plus coordination, §IV-F / Fig 11).
SOFT_MERGER_THREADS = 16
#: Maximum concurrent software 16-to-1 merger instances (§V-C.3).
SOFT_MERGER_INSTANCES = 4
#: Effective throughput of GraFSoft's intermediate-list generation pipeline
#: (edge program feeding the in-memory sorter pool): Table II reports
#: 500 MB/s of flash traffic during this phase while the CPUs run at 1800%.
SOFT_INGEST_BW = 500 * MB
SOFT_INGEST_THREADS = 18


class AcceleratorBackend:
    """Timing model of the FPGA sort-reduce accelerator."""

    name = "hardware"
    is_hardware = True

    def __init__(self, profile: HardwareProfile, packing: PackingSpec | None = None):
        if not profile.has_accelerator:
            raise ValueError(f"profile {profile.name!r} has no accelerator")
        self.profile = profile
        self.packing = packing or PackingSpec(key_bits=64, value_bits=64)

    def traffic_scale(self) -> float:
        """Bytes on the accelerator datapath per aligned byte (packing win)."""
        return self.packing.packed_bytes_per_pair / self.packing.aligned_bytes_per_pair()

    def sort_passes(self, chunk_bytes: int) -> int:
        """DRAM passes to sort one chunk: on-chip page sort + merge levels."""
        pages = max(1, -(-chunk_bytes // self.profile.flash_page_bytes))
        levels = math.ceil(math.log(pages, self.profile.merge_fanout)) if pages > 1 else 0
        return 1 + levels

    def chunk_sort_seconds(self, chunk_bytes: int) -> float:
        """Wall time to in-memory sort-reduce one chunk on the accelerator.

        Each pass reads and writes the chunk through on-board DRAM; the
        datapath itself (one word/cycle) never falls behind DRAM in the
        prototype, so DRAM bandwidth is the binding resource (§V-C.3).
        """
        nbytes = chunk_bytes * self.traffic_scale()
        passes = self.sort_passes(chunk_bytes)
        dram_time = passes * 2 * nbytes / self.profile.dram_bw
        pipeline_time = nbytes / self.profile.accel_bw
        return max(dram_time, pipeline_time)

    def charge_chunk_sort(self, clock: SimClock, chunk_bytes: int) -> None:
        """In-memory sort cannot overlap graph access in the prototype
        (DRAM barely fits one chunk, §V-C.3), so it charges serially; the
        DRAM busy time rides along in the background."""
        seconds = self.chunk_sort_seconds(chunk_bytes)
        clock.charge("accel", seconds, nbytes=int(chunk_bytes * self.traffic_scale()))
        clock.charge_background("dram", seconds)

    def merge_compute_seconds(self, bytes_in: int, groups: int = 1) -> float:
        """Datapath time for one merge level (overlapped with flash by caller)."""
        return bytes_in * self.traffic_scale() / self.profile.accel_bw

    def charge_merge_level(self, clock: SimClock, bytes_in: int, bytes_out: int,
                           groups: int = 1) -> None:
        """Merge compute overlaps flash I/O; only non-hidden time is elapsed.

        Flash transfer time was already charged serially by the file store,
        so here the accelerator accrues busy time in the background and only
        stalls the clock when it is the bottleneck (it is not, at 4 GB/s vs
        2.4 GB/s flash read).
        """
        compute = self.merge_compute_seconds(bytes_in, groups)
        io_floor = bytes_in * self.traffic_scale() / self.profile.flash_read_bw             + bytes_out * self.traffic_scale() / self.profile.flash_write_bw
        extra = max(0.0, compute - io_floor)
        if extra:
            clock.charge("accel", extra)
        clock.charge_background("accel", compute - extra)

    def charge_edge_stream(self, clock: SimClock, nbytes: int) -> None:
        """Edge-program execution: an array of parallel instances keeps up
        with the flash interface (§IV-D), so it hides fully under I/O."""
        clock.charge_background("accel", nbytes * self.traffic_scale() / self.profile.accel_bw)


class SoftwareBackend:
    """Timing model of the multithreaded software sort-reduce (GraFSoft)."""

    name = "software"
    is_hardware = False

    def __init__(self, profile: HardwareProfile):
        self.profile = profile

    def traffic_scale(self) -> float:
        """Software keeps keys and values word-aligned (§IV-F): no packing."""
        return 1.0

    def sorter_threads(self) -> int:
        """Threads available to the in-memory sorter pool."""
        return max(1, self.profile.cpu_threads - 2)

    def chunk_sort_seconds(self, chunk_bytes: int) -> float:
        """Wall time to ingest and in-memory sort-reduce one chunk.

        The edge-program + sorter-pool pipeline sustains ~500 MB/s end to
        end (Table II's GraFSoft intermediate-generation rate), far below
        the raw per-thread sort bandwidth, because sorting competes with
        parsing, allocation and NUMA traffic.
        """
        return chunk_bytes / SOFT_INGEST_BW

    def charge_chunk_sort(self, clock: SimClock, chunk_bytes: int) -> None:
        elapsed = self.chunk_sort_seconds(chunk_bytes)
        clock.charge_pool("cpu", elapsed * SOFT_INGEST_THREADS, SOFT_INGEST_THREADS,
                          nbytes=chunk_bytes)

    def merger_rate(self, groups: int = 1) -> float:
        """Aggregate merge-reduce output rate with ``groups`` concurrent trees."""
        instances = max(1, min(SOFT_MERGER_INSTANCES, groups))
        return 800 * MB * instances

    def charge_merge_level(self, clock: SimClock, bytes_in: int, bytes_out: int,
                           groups: int = 1) -> None:
        """One merge level: trees emit ~800 MB/s each, overlapped with the
        flash transfers the store already charged; only the non-hidden part
        stalls the clock.  CPU busy time accrues for every occupied merger
        thread — this is what makes GraFSoft's 1800% CPU in Table II."""
        instances = max(1, min(SOFT_MERGER_INSTANCES, groups))
        elapsed = bytes_out / self.merger_rate(groups) if bytes_out else 0.0
        io_floor = bytes_in / self.profile.flash_read_bw + bytes_out / self.profile.flash_write_bw
        busy = elapsed * instances * SOFT_MERGER_THREADS
        extra = max(0.0, elapsed - io_floor)
        if extra:
            clock.charge("cpu", extra)
        if busy > extra:
            clock.charge_background("cpu", busy - extra)

    def charge_edge_stream(self, clock: SimClock, nbytes: int) -> None:
        """Streaming edges through the edge program on the CPU pool."""
        work = nbytes / self.profile.cpu_stream_bw_per_thread
        clock.charge_pool("cpu", work, self.sorter_threads(), nbytes=0)


def backend_for_profile(profile: HardwareProfile, packing: PackingSpec | None = None):
    """The natural backend for a profile: hardware iff it has an accelerator."""
    if profile.has_accelerator:
        return AcceleratorBackend(profile, packing)
    return SoftwareBackend(profile)
