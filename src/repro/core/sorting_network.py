"""Functional models of the FPGA sorting-network datapath (Fig 9).

The hardware sorts streams of 256-bit tuples (each holding several key-value
pairs) with three kinds of components:

* a small **bitonic sorting network** that sorts the pairs inside one tuple
  (Fig 9a's first stage),
* a **tuple merger** — a bitonic half-cleaner plus sorter that merges two
  sorted M-tuples streams into one (Fig 9b),
* a **merge tree** of tuple mergers that turns N sorted streams into one
  (Fig 9c's 8-to-1 tree; 16-to-1 in the real design).

These are *functional* models: they execute the exact compare-exchange
schedules the hardware wires up, so the property tests prove the datapath
design is correct (a zero-one-principle workout), while the accelerator cost
model separately accounts for its throughput.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np


def bitonic_sort_schedule(n: int) -> list[tuple[int, int]]:
    """Compare-exchange schedule of a bitonic sorting network for ``n = 2^k``.

    Returns (i, j) pairs in execution order; applying
    ``if a[i] > a[j]: swap`` for each yields a sorted array — for *any*
    input, by the zero-one principle.
    """
    if n < 1 or n & (n - 1):
        raise ValueError(f"bitonic network size must be a power of two, got {n}")
    schedule: list[tuple[int, int]] = []
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            for i in range(n):
                partner = i ^ j
                if partner > i:
                    # Direction: ascending iff the k-block index is even.
                    if (i & k) == 0:
                        schedule.append((i, partner))
                    else:
                        schedule.append((partner, i))
            j //= 2
        k *= 2
    return schedule


def apply_schedule(values: Sequence[float], schedule: list[tuple[int, int]]) -> list:
    """Run a compare-exchange schedule over a copy of ``values``."""
    out = list(values)
    for lo, hi in schedule:
        if out[lo] > out[hi]:
            out[lo], out[hi] = out[hi], out[lo]
    return out


def bitonic_merge_schedule(n: int) -> list[tuple[int, int]]:
    """Schedule of a bitonic *merger*: sorts any bitonic sequence of length n.

    Fed with an ascending half followed by a descending half, this is the
    half-cleaner + sorter of Fig 9b.
    """
    if n < 1 or n & (n - 1):
        raise ValueError(f"bitonic merger size must be a power of two, got {n}")
    schedule: list[tuple[int, int]] = []
    j = n // 2
    while j >= 1:
        for i in range(n):
            partner = i ^ j
            if partner > i:
                schedule.append((i, partner))
        j //= 2
    return schedule


class TupleSorter:
    """Sorts the M pairs inside one hardware tuple (Fig 9a, small network)."""

    def __init__(self, tuple_size: int):
        self.tuple_size = tuple_size
        self._schedule = bitonic_sort_schedule(tuple_size)

    def sort(self, tup: Sequence[float]) -> list:
        if len(tup) != self.tuple_size:
            raise ValueError(f"expected a {self.tuple_size}-tuple, got {len(tup)}")
        return apply_schedule(tup, self._schedule)


class TupleMerger:
    """Streaming 2-to-1 merger of sorted-M-tuple streams (Fig 9b).

    The classic hardware loop: keep M registers holding the smallest pending
    elements; each step, pull a tuple from whichever input's head is
    smaller, run registers+input through a 2M bitonic merger, emit the low
    half, keep the high half.
    """

    def __init__(self, tuple_size: int):
        self.tuple_size = tuple_size
        self._merge2m = bitonic_merge_schedule(2 * tuple_size)

    def merge(self, a: Iterator[Sequence[float]], b: Iterator[Sequence[float]]) -> Iterator[list]:
        """Yield sorted M-tuples forming the merge of streams ``a`` and ``b``."""
        a, b = iter(a), iter(b)
        head_a = next(a, None)
        head_b = next(b, None)
        registers: list | None = None
        while head_a is not None or head_b is not None:
            if head_b is None or (head_a is not None and head_a[0] <= head_b[0]):
                incoming, head_a = list(head_a), next(a, None)
            else:
                incoming, head_b = list(head_b), next(b, None)
            if registers is None:
                registers = incoming
                continue
            # registers ascending + incoming reversed = a bitonic sequence.
            merged = apply_schedule(registers + incoming[::-1], self._merge2m)
            yield merged[:self.tuple_size]
            registers = merged[self.tuple_size:]
        if registers is not None:
            yield registers


class MergeTree:
    """An N-to-1 merge tree built from 2-to-1 tuple mergers (Fig 9c)."""

    def __init__(self, fanin: int, tuple_size: int):
        if fanin < 1 or fanin & (fanin - 1):
            raise ValueError(f"merge tree fan-in must be a power of two, got {fanin}")
        self.fanin = fanin
        self.tuple_size = tuple_size
        self._merger = TupleMerger(tuple_size)

    def merge(self, streams: list[Iterator[Sequence[float]]]) -> Iterator[list]:
        """Merge up to ``fanin`` sorted tuple streams into one."""
        if len(streams) > self.fanin:
            raise ValueError(f"{len(streams)} streams exceed fan-in {self.fanin}")
        level = list(streams)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self._merger.merge(level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return iter(level[0]) if level else iter(())


def stream_to_tuples(values: Sequence[float], tuple_size: int,
                     pad: float = np.inf) -> list[list]:
    """Chop a sorted sequence into M-tuples, padding the last with ``pad``."""
    out = []
    for i in range(0, len(values), tuple_size):
        chunk = list(values[i:i + tuple_size])
        while len(chunk) < tuple_size:
            chunk.append(pad)
        out.append(chunk)
    return out


def tuples_to_stream(tuples: Iterator[Sequence[float]], pad: float = np.inf) -> list:
    """Flatten M-tuples back into one list, dropping padding."""
    out = []
    for tup in tuples:
        out.extend(v for v in tup if v != pad)
    return out
