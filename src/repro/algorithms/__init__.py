"""Graph algorithms expressed as vertex programs (§V-A).

The paper evaluates breadth-first search, PageRank and betweenness
centrality; BFS "forms the basis and shares the characteristics of many
other algorithms such as Single-Source Shortest Path and Label Propagation",
so those are provided as well.

* :mod:`repro.algorithms.bfs` — BFS parent tree (FIRST reduction).
* :mod:`repro.algorithms.pagerank` — PageRank, both the paper's measured
  all-active iteration and Algorithm 4's bloom-filter custom-active driver.
* :mod:`repro.algorithms.bc` — betweenness centrality via BFS traversal plus
  per-level backtracing sort-reduces (§V-A).
* :mod:`repro.algorithms.sssp` — single-source shortest paths (MIN).
* :mod:`repro.algorithms.cc` — connected components / label propagation.
* :mod:`repro.algorithms.reference` — trusted in-memory implementations used
  for cross-validation in tests.
"""

from repro.algorithms.bfs import BFSProgram, run_bfs
from repro.algorithms.pagerank import (
    PageRankProgram,
    WeightedPageRankProgram,
    run_pagerank,
    run_pagerank_alg4,
    run_weighted_pagerank,
)
from repro.algorithms.bc import (
    run_betweenness_centrality,
    run_betweenness_centrality_multi,
)
from repro.algorithms.ppr import run_personalized_pagerank
from repro.algorithms.sssp import SSSPProgram, run_sssp
from repro.algorithms.cc import LabelPropagationProgram, run_label_propagation

__all__ = [
    "BFSProgram",
    "run_bfs",
    "PageRankProgram",
    "WeightedPageRankProgram",
    "run_pagerank",
    "run_pagerank_alg4",
    "run_weighted_pagerank",
    "run_betweenness_centrality",
    "run_betweenness_centrality_multi",
    "run_personalized_pagerank",
    "SSSPProgram",
    "run_sssp",
    "LabelPropagationProgram",
    "run_label_propagation",
]
