"""Connected components via label propagation.

The paper groups Label Propagation with BFS as algorithms "sharing the
characteristics" of sparse-frontier traversal (§V-A).  Every vertex starts
with its own id as its label and repeatedly adopts the minimum label pushed
by any in-neighbour; MIN is associative, so sort-reduce applies directly.

On a directed graph this computes forward label closure; pass a symmetrized
graph (both edge directions) to get weakly connected components.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.kvstream import KVArray
from repro.core.reduce_ops import MIN
from repro.engine.api import VertexProgram
from repro.engine.engine import GraFBoostEngine, RunResult

#: Label of a vertex that never received any update.
NO_LABEL = np.uint64(0xFFFFFFFFFFFFFFFF)


class LabelPropagationProgram(VertexProgram):
    """Minimum-label propagation; converges to per-component minima."""

    name = "label-propagation"
    value_dtype = np.dtype("<u8")
    reduce_op = MIN
    default_value = NO_LABEL

    def edge_program(self, src_values: np.ndarray, src_ids: np.ndarray,
                     edge_weights: np.ndarray | None,
                     src_degrees: np.ndarray) -> np.ndarray:
        return src_values

    def vertex_messages(self, values: np.ndarray, ids: np.ndarray,
                        degrees: np.ndarray) -> np.ndarray:
        return values

    def finalize(self, new_values: np.ndarray, old_values: np.ndarray) -> np.ndarray:
        return np.minimum(new_values, old_values)

    def is_active(self, finalized: np.ndarray, old_values: np.ndarray,
                  old_steps: np.ndarray, superstep: int) -> np.ndarray:
        return finalized < old_values

    def initial_updates(self, num_vertices: int) -> Iterator[KVArray]:
        """Every vertex seeds its own id (key-dependent, unlike the uniform
        generator)."""
        chunk = 1 << 16
        for start in range(0, num_vertices, chunk):
            keys = np.arange(start, min(start + chunk, num_vertices), dtype=np.uint64)
            yield KVArray(keys, keys.copy())


def run_label_propagation(engine: GraFBoostEngine,
                          max_supersteps: int | None = None) -> RunResult:
    """Run to convergence; ``result.final_values()`` maps each vertex to the
    minimum vertex id it can be reached from (its component id on a
    symmetrized graph)."""
    return engine.run(LabelPropagationProgram(), max_supersteps=max_supersteps)
