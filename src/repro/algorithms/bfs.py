"""Breadth-first search as a vertex program (§V-A).

BFS maintains a parent id per visited vertex so every vertex can be traced
back to the root.  The paper's program is exactly two lines:

* ``edge_program(vertexValue, edgeValue, vertexID) = vertexID`` — push your
  own id to your neighbours;
* ``vertex_update(v1, v2) = v1`` — keep any one parent (FIRST; associative).

A vertex is active when its old value is still UNVISITED.  BFS is the
paper's example of an algorithm with *sparse* active lists — thousands of
near-empty supersteps on the WDC graph's tail, the workload that breaks
edge-centric systems.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.kvstream import KVArray
from repro.core.reduce_ops import FIRST
from repro.engine.api import VertexProgram, single_seed
from repro.engine.engine import GraFBoostEngine, RunResult

#: Parent value of a vertex no BFS wave has reached.
UNVISITED = np.uint64(0xFFFFFFFFFFFFFFFF)


class BFSProgram(VertexProgram):
    """BFS from a single root; vertex values are parent ids."""

    name = "bfs"
    value_dtype = np.dtype("<u8")
    reduce_op = FIRST
    default_value = UNVISITED

    def __init__(self, root: int):
        if root < 0:
            raise ValueError(f"root must be non-negative, got {root}")
        self.root = int(root)

    def edge_program(self, src_values: np.ndarray, src_ids: np.ndarray,
                     edge_weights: np.ndarray | None,
                     src_degrees: np.ndarray) -> np.ndarray:
        return src_ids

    def vertex_messages(self, values: np.ndarray, ids: np.ndarray,
                        degrees: np.ndarray) -> np.ndarray:
        return ids

    def is_active(self, finalized: np.ndarray, old_values: np.ndarray,
                  old_steps: np.ndarray, superstep: int) -> np.ndarray:
        return old_values == UNVISITED

    def initial_updates(self, num_vertices: int) -> Iterator[KVArray]:
        if self.root >= num_vertices:
            raise ValueError(f"root {self.root} out of range [0, {num_vertices})")
        # The root's recorded parent is itself, as in Graph500 outputs.
        return single_seed(self.root, np.uint64(self.root), self.value_dtype)

    def initial_frontier_hint(self, num_vertices: int) -> int:
        return 1  # single-root seed


def run_bfs(engine: GraFBoostEngine, root: int,
            max_supersteps: int | None = None) -> RunResult:
    """Run BFS from ``root``; ``result.final_values()`` is the parent array
    (UNVISITED where unreachable)."""
    return engine.run(BFSProgram(root), max_supersteps=max_supersteps)


def parents_to_levels(parents: np.ndarray, root: int) -> np.ndarray:
    """Convert a parent array into BFS levels (-1 where unreachable).

    Used by tests to check a parent tree against reference levels without
    fixing which of several valid parents was chosen.
    """
    n = len(parents)
    levels = np.full(n, -1, dtype=np.int64)
    levels[root] = 0
    visited = parents != UNVISITED
    order = [root]
    # Children of already-levelled vertices get levelled in rounds.
    children: dict[int, list[int]] = {}
    for v in np.flatnonzero(visited):
        v = int(v)
        if v == root:
            continue
        children.setdefault(int(parents[v]), []).append(v)
    frontier = order
    level = 0
    while frontier:
        level += 1
        nxt: list[int] = []
        for p in frontier:
            for c in children.get(p, ()):
                if levels[c] == -1:
                    levels[c] = level
                    nxt.append(c)
        frontier = nxt
    return levels
