"""Single-source shortest path (Bellman-Ford-style label correcting).

The paper's example for edge programs (§IV-D): "the edge program adds the
vertex and edge values and produces it as a vertex value", with MIN as the
vertex update.  A vertex is active when its distance improved.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.kvstream import KVArray
from repro.core.reduce_ops import MIN
from repro.engine.api import VertexProgram, single_seed
from repro.engine.engine import GraFBoostEngine, RunResult

#: Distance of an unreached vertex.
UNREACHED = np.float64(np.inf)


class SSSPProgram(VertexProgram):
    """Shortest path distances from one root over weighted out-edges."""

    name = "sssp"
    value_dtype = np.dtype("<f8")
    reduce_op = MIN
    default_value = UNREACHED
    uses_weights = True

    def __init__(self, root: int):
        if root < 0:
            raise ValueError(f"root must be non-negative, got {root}")
        self.root = int(root)

    def edge_program(self, src_values: np.ndarray, src_ids: np.ndarray,
                     edge_weights: np.ndarray | None,
                     src_degrees: np.ndarray) -> np.ndarray:
        if edge_weights is None:
            raise ValueError("SSSP requires a weighted graph")
        return src_values + edge_weights.astype(np.float64)

    def finalize(self, new_values: np.ndarray, old_values: np.ndarray) -> np.ndarray:
        return np.minimum(new_values, old_values)

    def is_active(self, finalized: np.ndarray, old_values: np.ndarray,
                  old_steps: np.ndarray, superstep: int) -> np.ndarray:
        return finalized < old_values

    def initial_updates(self, num_vertices: int) -> Iterator[KVArray]:
        if self.root >= num_vertices:
            raise ValueError(f"root {self.root} out of range [0, {num_vertices})")
        return single_seed(self.root, np.float64(0.0), self.value_dtype)

    def initial_frontier_hint(self, num_vertices: int) -> int:
        return 1  # single-root seed


def run_sssp(engine: GraFBoostEngine, root: int,
             max_supersteps: int | None = None) -> RunResult:
    """Run SSSP; ``result.final_values()`` holds distances (inf = unreached)."""
    return engine.run(SSSPProgram(root), max_supersteps=max_supersteps)
