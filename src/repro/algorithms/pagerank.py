"""PageRank as a vertex program, plus Algorithm 4's custom active lists.

The push-style program (§V-A):

* ``edge_program(vertexValue, edgeValue, numNeighbors) = vertexValue / numNeighbors``
* ``vertex_update(v1, v2) = v1 + v2`` (SUM)
* ``finalize(v) = 0.15 / NumVertices + 0.85 * v`` (dampening)

PageRank's active set is *dense*: in the paper's measured configuration all
vertices are active, seeded by the hardware vertex list generator.  The
initial value is ``1/N`` — the fixed point of the dampening, so the seed
passes through ``finalize`` unchanged and superstep ``k`` holds the rank
after ``k`` iterations.

For convergence runs the active list is not a subset of ``newV`` (a vertex
must push when any of its *out*-neighbours changed), so the paper's
Algorithm 4 marks the sources of edges into changed vertices in a bloom
filter while scanning ``newV``'s in-edges, then sweeps the key space pushing
from every marked vertex.  :func:`run_pagerank_alg4` implements that driver.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.external import ExternalSortReducer
from repro.core.kvstream import KVArray
from repro.core.reduce_ops import SUM
from repro.engine.api import VertexProgram, all_active_chunks
from repro.engine.bloom import BloomFilter
from repro.engine.engine import GraFBoostEngine, RunResult, SuperstepMetrics
from repro.graph.formats import FlashCSR
from repro.graph.vertexdata import VertexArray


class PageRankProgram(VertexProgram):
    """Push-style PageRank over out-edges."""

    name = "pagerank"
    value_dtype = np.dtype("<f8")
    reduce_op = SUM

    def __init__(self, num_vertices: int, damping: float = 0.85):
        if num_vertices < 1:
            raise ValueError(f"num_vertices must be >= 1, got {num_vertices}")
        if not 0 < damping < 1:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        self.num_vertices = num_vertices
        self.damping = damping
        self.default_value = 1.0 / num_vertices

    def edge_program(self, src_values: np.ndarray, src_ids: np.ndarray,
                     edge_weights: np.ndarray | None,
                     src_degrees: np.ndarray) -> np.ndarray:
        return src_values / src_degrees.astype(np.float64)

    def vertex_messages(self, values: np.ndarray, ids: np.ndarray,
                        degrees: np.ndarray) -> np.ndarray:
        # Zero-degree vertices produce no edges, so their (inf/nan) quotient
        # is dropped by the engine's repeat; suppress the warning only.
        with np.errstate(divide="ignore", invalid="ignore"):
            return values / degrees.astype(np.float64)

    def finalize(self, new_values: np.ndarray, old_values: np.ndarray) -> np.ndarray:
        return (1.0 - self.damping) / self.num_vertices + self.damping * new_values

    def initial_updates(self, num_vertices: int) -> Iterator[KVArray]:
        return all_active_chunks(num_vertices, self.value_dtype, self.default_value)


class WeightedPageRankProgram(PageRankProgram):
    """PageRank over weighted edges: rank flows proportionally to edge
    weight instead of uniformly across out-edges.

    ``out_weight_sums`` is the per-vertex total outgoing weight, computed
    once at graph load (the weighted analogue of the system-provided
    ``numNeighbors``); it lives in host memory like FlashGraph's vertex
    metadata, one float per vertex.
    """

    name = "pagerank-weighted"
    uses_weights = True

    def __init__(self, num_vertices: int, out_weight_sums: np.ndarray,
                 damping: float = 0.85):
        super().__init__(num_vertices, damping)
        if len(out_weight_sums) != num_vertices:
            raise ValueError(
                f"out_weight_sums length {len(out_weight_sums)} != "
                f"num_vertices {num_vertices}")
        self.out_weight_sums = np.asarray(out_weight_sums, dtype=np.float64)

    def edge_program(self, src_values: np.ndarray, src_ids: np.ndarray,
                     edge_weights: np.ndarray | None,
                     src_degrees: np.ndarray) -> np.ndarray:
        if edge_weights is None:
            raise ValueError("weighted PageRank requires a weighted graph")
        sums = self.out_weight_sums[src_ids.astype(np.int64)]
        return src_values * edge_weights.astype(np.float64) / sums


def out_weight_sums(graph) -> np.ndarray:
    """Per-vertex total outgoing edge weight of a weighted CSR graph."""
    if not graph.has_weights:
        raise ValueError("graph has no edge weights")
    src, _dst = graph.edge_list()
    sums = np.zeros(graph.num_vertices)
    np.add.at(sums, src.astype(np.int64), graph.weights.astype(np.float64))
    return sums


def run_weighted_pagerank(engine: GraFBoostEngine, graph, iterations: int = 1,
                          damping: float = 0.85) -> RunResult:
    """Weighted PageRank; ``graph`` is the in-memory CSR (for weight sums)."""
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    program = WeightedPageRankProgram(graph.num_vertices, out_weight_sums(graph),
                                      damping)
    return engine.run(program, max_supersteps=iterations)


def run_pagerank(engine: GraFBoostEngine, num_vertices: int,
                 iterations: int = 1, damping: float = 0.85) -> RunResult:
    """The paper's measured configuration: ``iterations`` all-active passes.

    ``iterations=1`` reproduces §V's "very first iteration of PageRank, when
    all vertices are active".
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    program = PageRankProgram(num_vertices, damping)
    return engine.run(program, max_supersteps=iterations)


def run_pagerank_alg4(store, backend, out_graph: FlashCSR, in_graph: FlashCSR,
                      num_vertices: int, chunk_bytes: int, iterations: int = 10,
                      tol: float = 1e-9, damping: float = 0.85, memory=None,
                      fanout: int = 16, pool=None) -> RunResult:
    """Algorithm 4: PageRank with bloom-filter custom active-list generation.

    Each iteration: scan ``newV``, finalize against ``V``; for every vertex
    whose rank moved more than ``tol``, mark all sources of its in-edges in
    the bloom filter and stage the new value; then sweep the whole key space
    and push rank from every marked vertex's current value over its
    out-edges into the next sort-reduce.  Stops early when nothing moves.
    """
    program = PageRankProgram(num_vertices, damping)
    clock = store.device.clock
    vertices = VertexArray(store, num_vertices, program.value_dtype,
                           program.default_value)
    result = RunResult(algorithm="pagerank-alg4", vertices=vertices)
    run_start = clock.elapsed_s

    # One byte of filter per eight vertices: coarse, but false positives only
    # cost extra pushes, never correctness (§III-C).
    bloom = BloomFilter(max(64, num_vertices), num_hashes=2)
    if memory is not None:
        memory.allocate("pagerank:bloom", bloom.nbytes)

    newv_chunks: Iterator[KVArray] = all_active_chunks(
        num_vertices, program.value_dtype, program.default_value)
    prev_run = None
    try:
        for iteration in range(iterations):
            step_start = clock.elapsed_s
            bloom.clear()
            cursor = vertices.cursor()
            overlay = vertices.overlay_writer(iteration)
            changed = 0
            for chunk in newv_chunks:
                old_values, old_steps = cursor.lookup(chunk.keys)
                finalized = program.finalize(chunk.values, old_values)
                if iteration == 0:
                    mask = np.ones(len(chunk), dtype=bool)
                else:
                    # The step index stored with V (§III-C): a vertex's
                    # incoming sum is only complete if the vertex changed
                    # last iteration (then *all* its in-edge sources were
                    # marked); sort-reduced values for vertices not in the
                    # previous superstep's newV are ignored.
                    fresh = old_steps == iteration - 1
                    # ``>=`` keeps tol=0 an *exact* mode: every fresh vertex
                    # stays active, so every receiver's sum stays complete.
                    mask = fresh & (np.abs(finalized - old_values) >= tol)
                active_keys = chunk.keys[mask]
                if len(active_keys) == 0:
                    continue
                overlay.add(KVArray(active_keys, finalized[mask]))
                changed += len(active_keys)
                starts, ends = in_graph.index_lookup(active_keys)
                bloom.add(in_graph.edges_for(starts, ends))
            overlay.close()
            if prev_run is not None:
                prev_run.delete()
                prev_run = None
            if changed == 0:
                break

            reducer = ExternalSortReducer(
                store, SUM, program.value_dtype, backend, chunk_bytes,
                fanout=fanout, name_prefix=f"pagerank-alg4-i{iteration}",
                memory=memory, pool=pool,
            )
            push_cursor = vertices.cursor()
            pushed = 0
            traversed = 0
            for start in range(0, num_vertices, 1 << 16):
                keys = np.arange(start, min(start + (1 << 16), num_vertices),
                                 dtype=np.uint64)
                values, _steps = push_cursor.lookup(keys)
                mask = bloom.contains(keys)
                active_keys = keys[mask]
                if len(active_keys) == 0:
                    continue
                starts, ends = out_graph.index_lookup(active_keys)
                degrees = ends - starts
                nonzero = degrees > 0
                active_keys = active_keys[nonzero]
                active_values = values[mask][nonzero]
                starts, ends, degrees = starts[nonzero], ends[nonzero], degrees[nonzero]
                targets = out_graph.edges_for(starts, ends)
                if len(targets) == 0:
                    continue
                messages = np.repeat(active_values / degrees, degrees)
                update = KVArray(targets, messages)
                reducer.add(update)
                backend.charge_edge_stream(clock, update.nbytes)
                pushed += len(active_keys)
                traversed += len(targets)
            prev_run = reducer.finish()
            result.sort_stats.append(reducer.stats)
            result.supersteps.append(SuperstepMetrics(
                superstep=iteration,
                activated=pushed,
                traversed_edges=traversed,
                update_pairs=reducer.stats.total_input_pairs,
                reduced_pairs=prev_run.num_records,
                elapsed_s=clock.elapsed_s - step_start,
            ))
            vertices.maybe_compact()
            if prev_run.num_records == 0:
                break
            newv_chunks = prev_run.chunks()

        if prev_run is not None and prev_run.num_records:
            _fold_final(program, vertices, prev_run, len(result.supersteps))
    finally:
        if prev_run is not None:
            prev_run.delete()
        if memory is not None:
            memory.free("pagerank:bloom")
    result.elapsed_s = clock.elapsed_s - run_start
    return result


def _fold_final(program: PageRankProgram, vertices: VertexArray, run,
                step: int) -> None:
    """Fold the last unconsumed ``newV`` into ``V``.

    Applies the same step-index freshness filter as the iteration scan:
    entries for vertices that did not change in the final iteration carry
    partial sums and are ignored.
    """
    cursor = vertices.cursor()
    overlay = vertices.overlay_writer(step)
    for chunk in run.chunks():
        old_values, old_steps = cursor.lookup(chunk.keys)
        finalized = program.finalize(chunk.values, old_values)
        fresh = old_steps == step - 1 if step > 0 else np.ones(len(chunk), dtype=bool)
        if np.any(fresh):
            overlay.add(KVArray(chunk.keys[fresh], finalized[fresh]))
    overlay.close()
