"""Trusted in-memory reference implementations for cross-validation.

Every engine in this reproduction — GraFBoost, GraFSoft and the four
baseline strategies — must produce answers that agree with these simple,
obviously-correct implementations on the same graphs.  They operate on
:class:`~repro.graph.csr.CSRGraph` directly with no storage simulation.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph


def bfs_levels(graph: CSRGraph, root: int) -> np.ndarray:
    """BFS level per vertex (-1 = unreachable)."""
    levels = np.full(graph.num_vertices, -1, dtype=np.int64)
    levels[root] = 0
    frontier = np.array([root], dtype=np.int64)
    level = 0
    while len(frontier):
        level += 1
        starts = graph.offsets[frontier].astype(np.int64)
        ends = graph.offsets[frontier + 1].astype(np.int64)
        neighbors = np.concatenate(
            [graph.targets[s:e] for s, e in zip(starts, ends)]
        ).astype(np.int64) if len(frontier) else np.empty(0, np.int64)
        if len(neighbors) == 0:
            break
        fresh = np.unique(neighbors[levels[neighbors] == -1])
        levels[fresh] = level
        frontier = fresh
    return levels


def validate_parents(graph: CSRGraph, root: int, parents: np.ndarray,
                     unvisited) -> bool:
    """A parent array is valid iff visited set matches reachability, the
    root parents itself, and every parent is one BFS level shallower with a
    real edge to its child (the Graph500 validation conditions)."""
    levels = bfs_levels(graph, root)
    visited = parents != unvisited
    if not np.array_equal(visited, levels >= 0):
        return False
    if parents[root] != root:
        return False
    for v in np.flatnonzero(visited):
        v = int(v)
        if v == root:
            continue
        p = int(parents[v])
        if levels[p] != levels[v] - 1:
            return False
        if v not in graph.neighbors(p):
            return False
    return True


def pagerank_push(graph: CSRGraph, iterations: int, damping: float = 0.85) -> np.ndarray:
    """Push-semantics PageRank matching the vertex-program formulation.

    Every vertex pushes ``rank/out_degree`` along its out-edges; receivers
    dampen the sum.  Vertices with no in-edges keep their previous rank (no
    update ever reaches them) — the same semantics as the push-style engines
    being validated, which differs from textbook PageRank for such vertices.
    """
    n = graph.num_vertices
    rank = np.full(n, 1.0 / n)
    degrees = graph.out_degrees().astype(np.float64)
    src, dst = graph.edge_list()
    src_i = src.astype(np.int64)
    dst_i = dst.astype(np.int64)
    has_inbound = np.zeros(n, dtype=bool)
    has_inbound[dst_i] = True
    for _ in range(iterations):
        contributions = np.zeros(n)
        pushing = degrees[src_i] > 0
        np.add.at(contributions, dst_i[pushing], rank[src_i[pushing]] / degrees[src_i[pushing]])
        new_rank = (1 - damping) / n + damping * contributions
        rank = np.where(has_inbound, new_rank, rank)
    return rank


def sssp_distances(graph: CSRGraph, root: int) -> np.ndarray:
    """Dijkstra via scipy (weighted; inf = unreachable)."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra

    if not graph.has_weights:
        raise ValueError("reference SSSP needs a weighted graph")
    n = graph.num_vertices
    src, dst = graph.edge_list()
    src_i = src.astype(np.int64)
    dst_i = dst.astype(np.int64)
    weights = graph.weights.astype(np.float64)
    # csr_matrix sums duplicate entries; parallel edges must keep the
    # minimum weight instead, matching multigraph shortest-path semantics.
    pair = src_i * n + dst_i
    order = np.lexsort((weights, pair))
    pair, weights = pair[order], weights[order]
    first = np.concatenate([[True], pair[1:] != pair[:-1]]) if len(pair) else np.empty(0, bool)
    pair, weights = pair[first], weights[first]
    matrix = csr_matrix((weights, (pair // n, pair % n)), shape=(n, n))
    return dijkstra(matrix, directed=True, indices=root)


def min_reachable_label(graph: CSRGraph, max_rounds: int | None = None) -> np.ndarray:
    """For each vertex: the minimum vertex id that can reach it (label
    propagation's fixed point on the directed graph)."""
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.int64)
    src, dst = graph.edge_list()
    src_i, dst_i = src.astype(np.int64), dst.astype(np.int64)
    rounds = 0
    while True:
        pushed = np.full(n, n, dtype=np.int64)
        np.minimum.at(pushed, dst_i, labels[src_i])
        new_labels = np.minimum(labels, pushed)
        rounds += 1
        if np.array_equal(new_labels, labels):
            return labels
        labels = new_labels
        if max_rounds is not None and rounds >= max_rounds:
            return labels


def bfs_tree_descendants(graph: CSRGraph, root: int, parents: np.ndarray,
                         unvisited) -> np.ndarray:
    """Number of BFS-parent-tree descendants per vertex — the score the
    sort-reduce backtrace computes."""
    levels = bfs_levels(graph, root)
    counts = np.zeros(graph.num_vertices, dtype=np.float64)
    order = np.argsort(levels)  # -1 (unreachable) first, then by depth
    for v in order[::-1]:
        v = int(v)
        if levels[v] <= 0:
            continue  # unreachable or root: root pushes to nobody
        p = int(parents[v])
        counts[p] += 1.0 + counts[v]
    return counts
