"""Betweenness centrality via BFS traversal plus sort-reduced backtracing.

The paper's BC (§V-A) runs BFS programs forward, keeping each superstep's
generated vertex list (vertex → parent id).  Backtracing then walks the
levels deepest-first: each list is "made ready for backtracing by taking the
vertex values as keys and initializing vertex values to 1, and sort-reducing
them" — i.e. every vertex sends ``1 + credit`` to its parent, and a
sort-reduce with SUM accumulates per-parent credit.  Each backtrack step is
"another execution of sort-reduce", with the random updates to parent data
sequentialized exactly like forward updates.

The resulting score of a vertex is the number of BFS-tree descendants it
has — the path-counting surrogate this traversal computes (the paper's exact
union-cascade combination is described only loosely; tests pin this
definition against an independent reference).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.bfs import BFSProgram
from repro.core.external import ExternalSortReducer, SortReduceStats
from repro.core.kvstream import KVArray
from repro.core.reduce_ops import SUM
from repro.engine.engine import GraFBoostEngine, RunResult


@dataclass
class BCResult:
    """Forward traversal plus backtraced centrality scores."""

    forward: RunResult
    centrality: np.ndarray
    backtrace_elapsed_s: float
    backtrace_stats: list[SortReduceStats] = field(default_factory=list)
    #: Execution mode of each backtracing pass (one per BFS-tree level,
    #: deepest first) — always a sort-reduce, recorded so reports can show
    #: the full two-phase mode trace instead of silently dropping the
    #: backward half.
    backtrace_modes: list[str] = field(default_factory=list)

    @property
    def elapsed_s(self) -> float:
        return self.forward.elapsed_s + self.backtrace_elapsed_s

    @property
    def num_supersteps(self) -> int:
        return self.forward.num_supersteps

    @property
    def total_traversed_edges(self) -> int:
        return self.forward.total_traversed_edges


def run_betweenness_centrality(engine: GraFBoostEngine, root: int) -> BCResult:
    """BFS forward from ``root``, then per-level backtracing sort-reduces."""
    saved_max_overlays = engine.max_overlays
    engine.max_overlays = 1 << 30  # keep every level's list for backtracing
    try:
        forward = engine.run(BFSProgram(root))
    finally:
        engine.max_overlays = saved_max_overlays

    store = engine.store
    clock = engine.clock
    backtrace_start = clock.elapsed_s
    levels = forward.vertices.overlays()
    centrality = np.zeros(engine.num_vertices, dtype=np.float64)
    stats: list[SortReduceStats] = []
    modes: list[str] = []

    credit = KVArray.empty(np.dtype("<f8"))  # per-vertex descendant counts
    for level_index in range(len(levels) - 1, -1, -1):
        vertices_k, parents = _read_level(forward.vertices, levels[level_index])
        # Credits computed for this level by the previous (deeper) pass.
        level_credit = _join_credit(vertices_k, credit)
        centrality[vertices_k.astype(np.int64)] = level_credit
        if level_index == 0:
            break
        push_mask = parents != vertices_k  # the root parents itself; stop there
        updates = KVArray(parents[push_mask], 1.0 + level_credit[push_mask])
        reducer = ExternalSortReducer(
            store, SUM, np.dtype("<f8"), engine.backend, engine.chunk_bytes,
            fanout=engine.fanout, name_prefix=f"bc-back-{level_index}",
            memory=engine.memory, pool=engine.pool,
        )
        reducer.add(updates)
        run = reducer.finish()
        stats.append(reducer.stats)
        modes.append("sortreduce")
        credit = run.read_all()
        run.delete()

    return BCResult(
        forward=forward,
        centrality=centrality,
        backtrace_elapsed_s=clock.elapsed_s - backtrace_start,
        backtrace_stats=stats,
        backtrace_modes=modes,
    )


def run_betweenness_centrality_multi(engine: GraFBoostEngine,
                                     roots: list[int]) -> BCResult:
    """Accumulated centrality over several sources.

    Exact betweenness sums single-source contributions over all sources;
    sampling a handful of roots is the standard approximation.  Each
    source's traversal and backtrace run through the same engine
    (sequentially, like repeated supersteps of one job).
    """
    if not roots:
        raise ValueError("need at least one root")
    total = None
    forwards = []
    backtrace_time = 0.0
    stats = []
    modes = []
    for root in roots:
        single = run_betweenness_centrality(engine, root)
        total = single.centrality if total is None else total + single.centrality
        forwards.append(single.forward)
        backtrace_time += single.backtrace_elapsed_s
        stats.extend(single.backtrace_stats)
        modes.extend(single.backtrace_modes)
    return BCResult(
        forward=forwards[-1],
        centrality=total,
        backtrace_elapsed_s=backtrace_time,
        backtrace_stats=stats,
        backtrace_modes=modes,
    )


def _read_level(vertex_array, overlay) -> tuple[np.ndarray, np.ndarray]:
    """Read one superstep's (vertex, parent) list from its overlay file."""
    from repro.graph.vertexdata import _overlay_dtype

    dtype = _overlay_dtype(vertex_array.value_dtype)
    raw = vertex_array.store.read(overlay.name, 0, overlay.count * dtype.itemsize)
    records = np.frombuffer(raw, dtype=dtype)
    return records["k"].copy(), records["v"].copy()


def _join_credit(keys: np.ndarray, credit: KVArray) -> np.ndarray:
    """Per-key credit values (0 where absent); both inputs key-sorted."""
    out = np.zeros(len(keys), dtype=np.float64)
    if len(credit) == 0 or len(keys) == 0:
        return out
    idx = np.searchsorted(credit.keys, keys)
    valid = idx < len(credit)
    hit = np.zeros(len(keys), dtype=bool)
    hit[valid] = credit.keys[idx[valid]] == keys[valid]
    out[hit] = credit.values[idx[hit]]
    return out
