"""Personalized PageRank through external sort-reduce.

Personalized PageRank replaces PageRank's uniform teleport with a jump back
to a single source vertex: ``r = (1-d)·e_s + d·AᵀD⁻¹r``.  It is the standard
similarity/recommendation primitive on the paper's motivating social-network
workloads, and it exercises sort-reduce with a *growing* sparse active set —
mass spreads outward from the source superstep by superstep, unlike
PageRank's dense all-active iterations.

The driver mirrors the engine's lazy superstep: scan ``newV`` (the reduced
incoming mass), finalize with the source-teleport, stage into ``V``, and
push ``d·mass/degree`` over out-edges into the next sort-reduce.  A zero
seed update for the source rides along in every superstep so the teleport
mass is always applied, even when no edge points back at the source.
"""

from __future__ import annotations

import numpy as np

from repro.core.external import ExternalSortReducer
from repro.core.kvstream import KVArray
from repro.core.reduce_ops import SUM
from repro.engine.engine import GraFBoostEngine, RunResult, SuperstepMetrics
from repro.graph.vertexdata import VertexArray


def run_personalized_pagerank(engine: GraFBoostEngine, source: int,
                              iterations: int = 20, damping: float = 0.85,
                              tol: float = 1e-10) -> RunResult:
    """Personalized PageRank from ``source``; stops early once no vertex's
    rank moves by more than ``tol`` in an iteration."""
    if not 0 <= source < engine.num_vertices:
        raise ValueError(f"source {source} out of range [0, {engine.num_vertices})")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if not 0 < damping < 1:
        raise ValueError(f"damping must be in (0, 1), got {damping}")

    store = engine.store
    clock = engine.clock
    graph = engine.graph
    vertices = VertexArray(store, engine.num_vertices, np.dtype("<f8"), 0.0)
    result = RunResult(algorithm="personalized-pagerank", vertices=vertices)
    run_start = clock.elapsed_s

    source_key = np.array([source], dtype=np.uint64)
    # Iteration 0's "incoming mass": the full unit of teleport probability.
    prev_run = None
    prev_chunks = iter([KVArray(source_key,
                                np.array([1.0 / damping - (1.0 - damping) / damping],
                                         dtype=np.float64))])
    # Chosen so finalize() below yields exactly 1.0 at the source initially.

    for iteration in range(iterations):
        checkpoint = clock.checkpoint()
        reducer = ExternalSortReducer(
            store, SUM, np.float64, engine.backend, engine.chunk_bytes,
            fanout=engine.fanout, name_prefix=f"ppr-i{iteration}",
            memory=engine.memory, pool=engine.pool)
        cursor = vertices.cursor()
        overlay = vertices.overlay_writer(iteration)
        max_change = 0.0
        traversed = 0
        activated = 0
        for chunk in prev_chunks:
            if len(chunk) == 0:
                continue
            old_values, _steps = cursor.lookup(chunk.keys)
            teleport = np.where(chunk.keys == np.uint64(source),
                                1.0 - damping, 0.0)
            ranks = teleport + damping * chunk.values
            max_change = max(max_change, float(np.abs(ranks - old_values).max()))
            overlay.add(KVArray(chunk.keys, ranks))
            activated += len(chunk)
            starts, ends = graph.index_lookup(chunk.keys)
            degrees = ends - starts
            pushing = degrees > 0
            if not pushing.any():
                continue
            targets = graph.edges_for(starts[pushing], ends[pushing])
            messages = np.repeat(ranks[pushing] / degrees[pushing],
                                 degrees[pushing])
            reducer.add(KVArray(targets, messages))
            engine.backend.charge_edge_stream(clock, len(targets) * 16)
            traversed += len(targets)
        overlay.close()
        # The source's teleport must apply every iteration even when no edge
        # reaches back: a zero-mass seed keeps it in the next newV.
        reducer.add(KVArray(source_key, np.zeros(1)))
        if prev_run is not None:
            prev_run.delete()
        prev_run = reducer.finish()
        result.sort_stats.append(reducer.stats)
        result.supersteps.append(SuperstepMetrics(
            superstep=iteration, activated=activated,
            traversed_edges=traversed,
            update_pairs=reducer.stats.total_input_pairs,
            reduced_pairs=prev_run.num_records,
            elapsed_s=checkpoint.elapsed_s,
            flash_busy_s=checkpoint.busy_s("flash"),
        ))
        vertices.maybe_compact()
        prev_chunks = prev_run.chunks()
        if iteration > 0 and max_change < tol:
            break

    # Fold the final newV into V.
    cursor = vertices.cursor()
    overlay = vertices.overlay_writer(len(result.supersteps))
    for chunk in prev_run.chunks():
        teleport = np.where(chunk.keys == np.uint64(source), 1.0 - damping, 0.0)
        overlay.add(KVArray(chunk.keys, teleport + damping * chunk.values))
    overlay.close()
    prev_run.delete()
    result.elapsed_s = clock.elapsed_s - run_start
    return result
