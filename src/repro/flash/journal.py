"""Page-framed metadata journal records shared by the durable stores.

Both durable metadata paths — AOFFS's append-only journal (host-managed
raw flash) and the SSD file store's reserved-LPN metadata log — write the
same on-flash frame format, one frame per flash page:

``[magic 4B][seq <u8][length <u4][crc32 <u4][JSON record list]``

* ``magic`` distinguishes stream kinds (superblock vs. journal) so a stale
  page from another life of the block can never be replayed.
* ``seq`` is a monotonically increasing frame number; replay sorts by it,
  which makes journal-chain discovery order-insensitive.
* ``crc32`` covers the payload.  A frame whose CRC fails is a *torn write*
  — power was cut mid-program — and is simply discarded: the journal
  protocol only ever writes a frame after the data it describes is already
  on flash, so dropping a torn frame loses an uncommitted operation, never
  committed state.

The payload is a JSON list of record dicts, so one page can batch every
metadata record of one public file-store call (create + commit + seal of a
small file is one frame).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass

from repro.flash.device import FlashError

#: Frame header: magic, sequence number, payload length, payload CRC-32.
FRAME_HEADER = struct.Struct("<4sQII")

#: Stream magics.
JOURNAL_MAGIC = b"AOJL"
SUPERBLOCK_MAGIC = b"AOSB"
METALOG_MAGIC = b"SSML"


def frame_capacity(page_bytes: int) -> int:
    """Payload bytes available in one page-sized frame."""
    return page_bytes - FRAME_HEADER.size


def encode_frame(magic: bytes, seq: int, records: list[dict],
                 page_bytes: int) -> bytes:
    """One frame holding ``records``; raises if they exceed a page."""
    payload = json.dumps(records, separators=(",", ":")).encode()
    if len(payload) > frame_capacity(page_bytes):
        raise FlashError(
            f"journal frame of {len(payload)} B exceeds page capacity "
            f"{frame_capacity(page_bytes)} B")
    return FRAME_HEADER.pack(magic, seq, len(payload),
                             zlib.crc32(payload)) + payload


def encode_frames(magic: bytes, seq_start: int, records: list[dict],
                  page_bytes: int) -> list[bytes]:
    """Greedily pack ``records`` into consecutive frames.

    Each record must individually fit a page (callers chunk oversized
    record bodies — see the snapshot ``blocks``/``crcs`` continuation
    records); consecutive frames get consecutive sequence numbers starting
    at ``seq_start``.
    """
    capacity = frame_capacity(page_bytes)
    frames: list[bytes] = []
    group: list[dict] = []
    group_len = 2  # the enclosing "[]"
    for record in records:
        blob = json.dumps(record, separators=(",", ":"))
        added = len(blob) + (1 if group else 0)
        if group and group_len + added > capacity:
            frames.append(encode_frame(magic, seq_start + len(frames),
                                       group, page_bytes))
            group, group_len = [], 2
            added = len(blob)
        group.append(record)
        group_len += added
    if group:
        frames.append(encode_frame(magic, seq_start + len(frames),
                                   group, page_bytes))
    return frames


def decode_frame(magic: bytes, data: bytes) -> tuple[int, list[dict]] | None:
    """Parse one frame; ``None`` for torn/foreign/garbage pages."""
    if len(data) < FRAME_HEADER.size:
        return None
    got_magic, seq, length, crc = FRAME_HEADER.unpack_from(data)
    if got_magic != magic:
        return None
    payload = data[FRAME_HEADER.size:FRAME_HEADER.size + length]
    if len(payload) != length or zlib.crc32(payload) != crc:
        return None
    try:
        records = json.loads(payload)
    except ValueError:
        return None
    if not isinstance(records, list):
        return None
    return int(seq), records


def chunked_file_records(name: str, size: int, flushed: int, sealed: bool,
                         blocks: list[int], crcs: list[int],
                         chunk: int = 128) -> list[dict]:
    """Snapshot records for one file, split so each fits a journal frame.

    The head ``file`` record carries the scalars plus the first chunk of
    block ids and page CRCs; ``filex`` continuations carry the rest.
    """
    records = [{"op": "file", "name": name, "size": size, "flushed": flushed,
                "sealed": sealed, "blocks": blocks[:chunk],
                "crcs": crcs[:chunk]}]
    b, c = chunk, chunk
    while b < len(blocks) or c < len(crcs):
        records.append({"op": "filex", "name": name,
                        "blocks": blocks[b:b + chunk],
                        "crcs": crcs[c:c + chunk]})
        b += chunk
        c += chunk
    return records


@dataclass
class RecoveryStats:
    """What one mount found and fixed."""

    mounts: int = 0
    replayed_frames: int = 0
    replayed_records: int = 0
    torn_frames: int = 0
    recovered_files: int = 0
    truncated_files: int = 0     # unsealed files cut back to committed pages
    discarded_pages: int = 0     # uncommitted/torn data pages dropped
    relocated_pages: int = 0     # committed pages copied off dirty blocks
    scrubbed_blocks: int = 0     # unreferenced non-erased blocks re-erased
