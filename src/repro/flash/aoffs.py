"""Append-Only Flash File System (AOFFS), §IV-A of the paper.

AOFFS manages the logical-to-physical flash mapping in the host instead of an
FTL.  Its one restriction — every file only ever grows by appending — is all
sort-reduce needs, and it makes flash management trivial:

* Files own whole erase blocks, allocated from a free pool as they grow, so
  deleting a file erases exactly its own blocks and no garbage collection or
  relocation ever happens (write amplification is exactly 1.0).
* Writes stream page-by-page in program order, so the erase-before-write and
  program-order constraints of NAND are satisfied by construction.
* No translation layer sits on the data path, which removes the FTL latency
  overhead — the reason hardware GraFBoost keeps its lookahead buffers small
  and "almost removes unused flash reads" (§V-C.3).

A file being written keeps its partial tail page in host memory.  Calling
:meth:`AppendOnlyFlashFS.seal` flushes the tail and makes the file immutable;
sort-reduce writes each run fully and then seals it before merging.

Because the host owns the mapping, wear leveling (§II-B) is a one-line
policy instead of an FTL: block allocation always picks the least-erased
free block, spreading program/erase cycles evenly across the device.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.flash.device import (
    FlashDevice,
    FlashEraseError,
    FlashError,
    FlashOutOfSpaceError,
    FlashProgramError,
    FlashWearOutError,
)
from repro.flash.faults import page_crc, verify_pages
from repro.flash.journal import (
    JOURNAL_MAGIC,
    SUPERBLOCK_MAGIC,
    RecoveryStats,
    chunked_file_records,
    decode_frame,
    encode_frame,
    encode_frames,
)

#: Durable mode reserves these two blocks as the superblock ping-pong pair.
SUPERBLOCK_BLOCKS = (0, 1)
#: Pages per journal commit record: bounds the record's JSON size so it
#: always fits one journal frame, whatever the append size.
COMMIT_CHUNK_PAGES = 128


class FlashFile:
    """Metadata for one append-only file: its blocks and logical size."""

    def __init__(self, name: str, page_bytes: int):
        self.name = name
        self.page_bytes = page_bytes
        self.blocks: list[int] = []
        self.size = 0              # logical bytes, including the tail buffer
        # Partial last page, not yet on flash, kept as a fragment list so
        # appends never recopy the accumulated tail; a flush joins once.
        self.tail_parts: list[bytes] = []
        self.tail_len = 0
        self.flushed_pages = 0     # pages already programmed to flash
        self.sealed = False
        # Per-flushed-page CRC-32, recorded only under fault injection: the
        # end-to-end integrity check that catches ECC miscorrections.
        self.page_crcs: list[int] = []

    def tail_bytes(self) -> bytes:
        """The unflushed tail as one bytes object (consolidates in place)."""
        if len(self.tail_parts) != 1:
            joined = b"".join(self.tail_parts)
            self.tail_parts = [joined] if joined else []
            return joined
        return self.tail_parts[0]


class AppendOnlyFlashFS:
    """Host-managed append-only file system over a raw :class:`FlashDevice`.

    ``prefetch_pages`` is the lookahead buffer applied to small reads.  The
    low access latency of raw flash lets GraFBoost keep it tiny, "which
    almost removes unused flash reads" (§V-C.3); the commodity-SSD file
    system needs a much deeper one (see
    :class:`~repro.flash.filestore.SSDFileSystem`).  Reads shorter than the
    buffer still transfer the full buffer; the overshoot is charged and
    tracked in ``prefetch_waste_bytes``.
    """

    def __init__(self, device: FlashDevice, prefetch_pages: int = 2,
                 durable: bool = False, journal_limit_blocks: int = 8):
        """``durable=True`` turns on crash-consistent metadata: blocks 0/1
        become a superblock ping-pong pair, file-table mutations are logged
        to an append-only journal chain written through the same device,
        and construction either formats a blank device or *mounts* it —
        replaying the journal, discarding torn tails, and rebuilding the
        file table and free pool.  The default (``False``) keeps the
        historical all-in-host-memory behaviour, bit-identical in timing.
        """
        self.device = device
        self.geometry = device.geometry
        if device.sanitizer is not None:
            # FlashSan audits every erase against the live file table,
            # journal chain and active superblock of the registered owner.
            device.sanitizer.track_owner(self)
        self.prefetch_pages = prefetch_pages
        self.prefetch_waste_bytes = 0
        self.durable = durable
        self.journal_limit_blocks = journal_limit_blocks
        self.recovery = RecoveryStats()
        self._files: dict[str, FlashFile] = {}
        self._free_blocks: list[tuple[int, int]] = []
        self.total_appended_bytes = 0
        if durable:
            if self.geometry.num_blocks < 4:
                raise FlashError("durable AOFFS needs at least 4 blocks")
            self._pending_records: list[dict] = []
            self._journal_blocks: list[int] = []
            self._journal_seq = 0
            self._generation = 0
            self._sb_active: int | None = None
            found = self._read_superblock()
            if found is None:
                self._format()
            else:
                self._mount(found)
        else:
            # Min-heap of (erase count at release time, block): wear-leveled
            # allocation without FTL machinery.
            self._free_blocks = [
                (0, block) for block in range(self.geometry.num_blocks)]
            heapq.heapify(self._free_blocks)

    def _charge_prefetch(self, f: FlashFile, first_page: int, pages_read: int) -> None:
        """Charge the unused tail of the lookahead buffer on a small read.

        Readahead stops at end-of-file, so reading a small file whole wastes
        nothing; the waste appears on short reads *inside* large files —
        exactly the "unused flash reads" of §V-C.3.
        """
        effective = min(self.prefetch_pages, f.flushed_pages - first_page)
        shortfall = effective - pages_read
        if shortfall <= 0:
            return
        nbytes = shortfall * self.geometry.page_bytes
        profile = self.device.profile
        self.device.clock.charge("flash", nbytes / profile.flash_read_bw, nbytes=nbytes)
        self.prefetch_waste_bytes += nbytes

    # ---------------------------------------------------------------- queries

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def size(self, name: str) -> int:
        return self._file(name).size

    def is_sealed(self, name: str) -> bool:
        return self._file(name).sealed

    @property
    def free_bytes(self) -> int:
        return len(self._free_blocks) * self.geometry.block_bytes

    def _allocate_block(self, why: str = "data") -> int:
        """Wear-leveled allocation: the least-erased free block wins."""
        if not self._free_blocks:
            raise FlashOutOfSpaceError(
                f"AOFFS out of space allocating a {why} block: free pool "
                f"exhausted (bad blocks: {self.device.bad_block_count})")
        _wear, block = heapq.heappop(self._free_blocks)
        return block

    def _release_block(self, block: int) -> None:
        heapq.heappush(self._free_blocks,
                       (self.device.erase_counts[block], block))

    @property
    def used_bytes(self) -> int:
        return sum(len(f.blocks) for f in self._files.values()) * self.geometry.block_bytes

    def _file(self, name: str) -> FlashFile:
        if name not in self._files:
            raise FileNotFoundError(f"no AOFFS file named {name!r}")
        return self._files[name]

    # ---------------------------------------------------------------- writing

    def create(self, name: str) -> None:
        """Create an empty file; the name must be unused."""
        if name in self._files:
            raise FileExistsError(f"AOFFS file {name!r} already exists")
        self._files[name] = FlashFile(name, self.geometry.page_bytes)
        self._log({"op": "create", "name": name})
        self._commit_log()

    def append(self, name: str, data: bytes) -> None:
        """Append bytes to a file, creating it if needed.

        Complete pages are streamed to flash immediately (batched, so device
        latency is amortized over the whole call); the final partial page
        stays in the host tail buffer until more data arrives or the file is
        sealed.  In durable mode the journal commit record is written *after*
        the data pages land (write-ahead for deletes, write-behind for data):
        a crash in between leaves fully-programmed but unreferenced pages
        that mount discards.
        """
        if name not in self._files:
            self._files[name] = FlashFile(name, self.geometry.page_bytes)
            self._log({"op": "create", "name": name})
        f = self._files[name]
        if f.sealed:
            raise FlashError(f"append to sealed AOFFS file {name!r}")
        if data:
            f.tail_parts.append(bytes(data))
            f.tail_len += len(data)
        f.size += len(data)
        self.total_appended_bytes += len(data)
        self._flush_full_pages(f)
        self._commit_log()

    def _flush_full_pages(self, f: FlashFile) -> None:
        page_bytes = self.geometry.page_bytes
        n_full = f.tail_len // page_bytes
        if n_full == 0:
            return
        pages_per_block = self.geometry.pages_per_block
        first = f.flushed_pages
        # Claim every block the batch will touch, in ascending page order —
        # the identical wear-leveled allocation sequence the per-page path
        # produced.
        last_block_index = (first + n_full - 1) // pages_per_block
        prior_blocks = len(f.blocks)
        while len(f.blocks) <= last_block_index:
            f.blocks.append(self._allocate_block())
        flush_bytes = n_full * page_bytes
        blob = f.tail_bytes()
        page_index = np.arange(first, first + n_full)
        blocks = np.asarray(f.blocks, dtype=np.int64)[page_index // pages_per_block].tolist()
        pages = (page_index % pages_per_block).tolist()
        # Zero-copy page views into the joined tail; the device stores them
        # as-is, and every consumer goes through the buffer protocol.
        view = memoryview(blob)
        writes = [
            (block, page, view[start:start + page_bytes])
            for block, page, start in zip(blocks, pages, range(0, flush_bytes, page_bytes))
        ]
        self._program_pages(f, writes)
        remainder = blob[flush_bytes:]
        f.tail_parts = [remainder] if remainder else []
        f.tail_len -= flush_bytes
        f.flushed_pages += n_full
        if self.durable:
            # Bounded commit records: a multi-megabyte append would list
            # thousands of pages, which no single journal frame can hold.
            # ``flushed`` is absolute and blocks/crcs extend on replay, so
            # a chunk sequence is equivalent — and a crash mid-sequence
            # recovers a consistent prefix of the flush.
            next_block = prior_blocks
            for cs in range(first, first + n_full, COMMIT_CHUNK_PAGES):
                ce = min(cs + COMMIT_CHUNK_PAGES, first + n_full)
                hi_block = (ce - 1) // pages_per_block + 1
                self._log({"op": "commit", "name": f.name, "flushed": ce,
                           "blocks": f.blocks[next_block:hi_block],
                           "crcs": f.page_crcs[cs:ce]})
                next_block = hi_block

    def seal(self, name: str) -> None:
        """Flush the tail (padded to a page) and make the file immutable."""
        f = self._file(name)
        if f.sealed:
            return
        if f.tail_len:
            tail = f.tail_bytes()
            padded = tail + b"\x00" * (self.geometry.page_bytes - len(tail))
            prior_blocks = len(f.blocks)
            prior_crcs = len(f.page_crcs)
            block, page = self._physical_addr(f, f.flushed_pages, allocate=True)
            self._program_pages(f, [(block, page, padded)])
            f.tail_parts = []
            f.tail_len = 0
            f.flushed_pages += 1
            if self.durable:
                self._log({"op": "commit", "name": f.name,
                           "flushed": f.flushed_pages,
                           "blocks": f.blocks[prior_blocks:],
                           "crcs": f.page_crcs[prior_crcs:]})
        f.sealed = True
        self._log({"op": "seal", "name": name, "size": f.size})
        self._commit_log()

    def _program_pages(self, f: FlashFile, writes: list[tuple[int, int, bytes]]) -> None:
        """Program pages, surviving program failures by block remapping.

        A failed program retires the block; the pages it already holds are
        copied to a fresh block which takes over the retired block's slot in
        ``f.blocks`` (file addressing never changes), and the remaining
        writes retarget it.  Single-page lists use the scalar device call so
        the charged time is identical to the historical per-page path.
        """
        pending = writes
        while True:
            try:
                if len(pending) == 1:
                    self.device.write_page(*pending[0])
                else:
                    self.device.write_pages(pending)
                break
            except FlashProgramError as e:
                committed = getattr(e, "batch_committed", 0)
                bad = e.block
                fresh = self._remap_bad_block(f, bad)
                pending = [(fresh if b == bad else b, p, d)
                           for b, p, d in pending[committed:]]
        if self.device.faults is not None or self.durable:
            f.page_crcs.extend(page_crc(d) for _b, _p, d in writes)

    def _remap_bad_block(self, f: FlashFile, bad: int) -> int:
        """Copy a retired block's programmed pages onto a fresh block and
        swap it into the file's block list."""
        count = self.device.programmed_pages(bad)
        while True:
            if not self._free_blocks:
                raise FlashWearOutError(
                    f"no spare block left to remap retired block {bad} "
                    f"of AOFFS file {f.name!r}")
            fresh = self._allocate_block()
            try:
                if count:
                    pages = self.device.read_pages(
                        [(bad, p) for p in range(count)])
                    self.device.write_pages(
                        [(fresh, p, d) for p, d in enumerate(pages)])
                break
            except FlashProgramError:
                continue  # the replacement died too; try another spare
        f.blocks[f.blocks.index(bad)] = fresh
        self._log({"op": "remap", "name": f.name, "bad": bad, "fresh": fresh})
        return fresh

    def _physical_addr(self, f: FlashFile, page_index: int, allocate: bool = False) -> tuple[int, int]:
        pages_per_block = self.geometry.pages_per_block
        block_index, page = divmod(page_index, pages_per_block)
        if block_index >= len(f.blocks):
            if not allocate:
                raise FlashError(f"page {page_index} beyond end of file {f.name!r}")
            f.blocks.append(self._allocate_block())
        return f.blocks[block_index], page

    # ---------------------------------------------------------------- reading

    def read(self, name: str, offset: int = 0, nbytes: int | None = None) -> bytes:
        """Read a byte range; one device access latency per call.

        Streaming readers should read in large chunks; a caller doing many
        small reads pays the per-access latency each time, exactly like a
        real host doing fine-grained random flash I/O.
        """
        f = self._file(name)
        if nbytes is None:
            nbytes = f.size - offset
        if offset < 0 or nbytes < 0 or offset + nbytes > f.size:
            raise ValueError(
                f"read [{offset}, {offset + nbytes}) out of range for "
                f"{name!r} of size {f.size}"
            )
        if nbytes == 0:
            return b""
        page_bytes = self.geometry.page_bytes
        flushed_bytes = f.flushed_pages * page_bytes

        parts: list[bytes] = []
        flash_end = min(offset + nbytes, flushed_bytes)
        if offset < flushed_bytes:
            first_page = offset // page_bytes
            last_page = (flash_end - 1) // page_bytes
            if last_page - first_page > 8:
                ppb = self.geometry.pages_per_block
                idx = np.arange(first_page, last_page + 1)
                blk = np.asarray(f.blocks, dtype=np.int64)[idx // ppb]
                addresses = list(zip(blk.tolist(), (idx % ppb).tolist()))
            else:
                addresses = [self._physical_addr(f, i) for i in range(first_page, last_page + 1)]
            pages = self.device.read_pages(addresses)
            if self.device.faults is not None:
                pages = verify_pages(
                    pages, f.page_crcs, first_page,
                    lambda i: self.device.read_page(*self._physical_addr(f, i)),
                    self.device.faults, f"aoffs:{f.name}")
            self._charge_prefetch(f, first_page, len(addresses))
            blob = b"".join(pages)
            start = offset - first_page * page_bytes
            parts.append(blob[start:start + (flash_end - offset)])
        if offset + nbytes > flushed_bytes:
            tail_start = max(0, offset - flushed_bytes)
            tail_end = offset + nbytes - flushed_bytes
            parts.append(f.tail_bytes()[tail_start:tail_end])
        return b"".join(parts)

    def stream(self, name: str, chunk_bytes: int):
        """Yield the file's contents in ``chunk_bytes`` pieces (sequential scan)."""
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        size = self._file(name).size
        offset = 0
        while offset < size:
            n = min(chunk_bytes, size - offset)
            yield self.read(name, offset, n)
            offset += n

    # ----------------------------------------------------------- numpy helpers

    def append_array(self, name: str, array: np.ndarray) -> None:
        """Append a numpy array's raw bytes to a file."""
        self.append(name, np.ascontiguousarray(array).tobytes())

    def read_array(self, name: str, dtype: np.dtype, start_item: int = 0,
                   count: int | None = None) -> np.ndarray:
        """Read ``count`` items of ``dtype`` starting at item ``start_item``."""
        dtype = np.dtype(dtype)
        if count is None:
            count = self.size(name) // dtype.itemsize - start_item
        raw = self.read(name, start_item * dtype.itemsize, count * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype)

    # --------------------------------------------------------------- deletion

    def delete(self, name: str) -> None:
        """Delete a file and erase its blocks back into the free pool.

        Erases run in the background: with block-per-file allocation there
        is never data to relocate, so the device pipelines reclamation
        behind foreground traffic (unlike FTL garbage collection).  In
        durable mode the journal records the delete *before* the erases: a
        crash mid-reclamation leaves unreferenced blocks that mount scrubs.
        """
        f = self._file(name)
        # The table mutation precedes the commit so a compaction fired
        # inside it snapshots the post-delete state.
        self._log({"op": "delete", "name": name})
        del self._files[name]
        self._commit_log()
        self._erase_into_pool(f.blocks)

    def _erase_into_pool(self, blocks: list[int]) -> None:
        for block in blocks:
            try:
                if not self.device.block_is_erased(block):
                    self.device.erase_block(block, background=True)
            except FlashEraseError:
                continue  # block retired: it never rejoins the free pool
            self._release_block(block)

    def rename(self, old: str, new: str, overwrite: bool = False) -> None:
        """Rename a file (metadata only, no flash traffic).

        With ``overwrite=True`` an existing target is atomically replaced:
        the delete and the rename land in one journal commit, so after any
        crash the target is either entirely the old file or entirely the
        new one — the primitive checkpoint publication relies on.
        """
        f = self._file(old)
        victim = None
        if new in self._files and new != old:
            if not overwrite:
                raise FileExistsError(f"AOFFS file {new!r} already exists")
            victim = self._files[new]
            self._log({"op": "delete", "name": new})
        elif new in self._files:
            raise FileExistsError(f"AOFFS file {new!r} already exists")
        self._log({"op": "rename", "old": old, "new": new})
        f.name = new
        del self._files[old]
        self._files[new] = f
        self._commit_log()
        if victim is not None:
            self._erase_into_pool(victim.blocks)

    # ----------------------------------------------------- durable metadata

    def _log(self, *records: dict) -> None:
        """Buffer journal records for the current public call (no-op unless
        durable)."""
        if self.durable:
            self._pending_records.extend(records)

    def _commit_log(self) -> None:
        """Flush buffered records as journal frames, then maybe compact."""
        if not self.durable or not self._pending_records:
            return
        records, self._pending_records = self._pending_records, []
        frames = encode_frames(JOURNAL_MAGIC, self._journal_seq, records,
                               self.geometry.page_bytes)
        self._journal_seq += len(frames)
        for frame in frames:
            self._journal_write(frame)
        if len(self._journal_blocks) > self.journal_limit_blocks:
            self._compact_journal()

    def _journal_write(self, frame: bytes) -> None:
        while True:
            block = self._journal_blocks[-1]
            page = self.device.programmed_pages(block)
            if page >= self.geometry.pages_per_block - 1:
                # The last page of every journal block is reserved for the
                # chain-extension record.
                self._journal_extend()
                continue
            try:
                self.device.write_page(block, page, frame)
                return
            except FlashProgramError:
                # The journal block went bad mid-write; its surviving frames
                # stay readable but nothing more can be appended (including
                # an extend record), so start a fresh tail and re-point the
                # superblock at the full chain.
                self._journal_blocks.append(self._allocate_block("journal"))
                self._write_superblock()

    def _journal_extend(self) -> None:
        block = self._journal_blocks[-1]
        fresh = self._allocate_block("journal")
        if self.device.programmed_pages(block) >= self.geometry.pages_per_block:
            # A power loss tore a previous extend attempt: the reserved
            # last page is consumed by garbage no replay can read, so the
            # chain can only continue through a fresh superblock generation.
            self._journal_blocks.append(fresh)
            self._write_superblock()
            return
        frame = encode_frame(JOURNAL_MAGIC, self._journal_seq,
                             [{"op": "extend", "block": fresh}],
                             self.geometry.page_bytes)
        self._journal_seq += 1
        try:
            self.device.write_page(
                block, self.geometry.pages_per_block - 1, frame)
            self._journal_blocks.append(fresh)
        except FlashProgramError:
            self._journal_blocks.append(fresh)
            self._write_superblock()

    def _compact_journal(self) -> None:
        """Snapshot the file table into a fresh journal chain.

        Crash-safe by construction: the old chain stays intact until the
        new superblock generation lands, so a crash at any point replays
        either the old chain or the new snapshot — both describe the same
        durable state (unflushed host tails are never journaled).
        """
        old_chain = self._journal_blocks
        records: list[dict] = []
        for name in sorted(self._files):
            f = self._files[name]
            records.extend(chunked_file_records(
                name, f.size, f.flushed_pages, f.sealed, f.blocks,
                f.page_crcs))
        self._journal_blocks = [self._allocate_block("journal")]
        frames = encode_frames(JOURNAL_MAGIC, self._journal_seq, records,
                               self.geometry.page_bytes)
        self._journal_seq += len(frames)
        for frame in frames:
            self._journal_write(frame)
        self._write_superblock()
        self._erase_into_pool([b for b in old_chain
                               if b not in self._journal_blocks])

    # -------------------------------------------------- superblock handling

    def _read_superblock(self) -> dict | None:
        """Latest valid superblock record across the ping-pong pair."""
        best = None
        for block in SUPERBLOCK_BLOCKS:
            if self.device.is_bad(block):
                continue
            for page in range(self.device.programmed_pages(block)):
                if self.device.page_state(block, page) != 1:  # PAGE_VALID
                    continue
                try:
                    raw = self.device.read_page(block, page)
                except FlashError:
                    continue
                decoded = decode_frame(SUPERBLOCK_MAGIC, raw)
                if decoded is None:
                    continue
                generation, records = decoded
                if records and (best is None or generation > best[0]):
                    best = (generation, records[0], block)
        if best is None:
            return None
        self._generation = best[0]
        self._sb_active = best[2]
        return best[1]

    def _write_superblock(self) -> None:
        self._generation += 1
        frame = encode_frame(SUPERBLOCK_MAGIC, self._generation,
                             [{"journal": self._journal_blocks}],
                             self.geometry.page_bytes)
        first = (1 - self._sb_active) if self._sb_active is not None \
            else SUPERBLOCK_BLOCKS[0]
        for target in (first, 1 - first):
            if self.device.is_bad(target):
                continue
            try:
                if self.device.programmed_pages(target) >= \
                        self.geometry.pages_per_block:
                    if target == self._sb_active:
                        continue  # never erase the only valid copy
                    self.device.erase_block(target)
                self.device.write_page(
                    target, self.device.programmed_pages(target), frame)
                self._sb_active = target
                return
            except (FlashProgramError, FlashEraseError):
                continue
        raise FlashWearOutError("both AOFFS superblock slots have failed")

    # -------------------------------------------------------- format / mount

    def _format(self) -> None:
        """Initialize a blank (or crashed-before-first-superblock) device."""
        for block in SUPERBLOCK_BLOCKS:
            if not self.device.is_bad(block) and \
                    not self.device.block_is_erased(block):
                self.device.erase_block(block)
        self._free_blocks = []
        for block in range(len(SUPERBLOCK_BLOCKS), self.geometry.num_blocks):
            if self.device.is_bad(block):
                continue
            if not self.device.block_is_erased(block):
                self.device.erase_block(block)
            self._free_blocks.append(
                (self.device.erase_counts[block], block))
        heapq.heapify(self._free_blocks)
        self._journal_blocks = [self._allocate_block("journal")]
        self._write_superblock()

    def _mount(self, superblock: dict) -> None:
        """Rebuild the file table and free pool from the on-flash journal.

        The free pool must exist before :meth:`_fix_tails` runs — relocating
        committed pages off a dirty block allocates fresh blocks.  Dirty
        blocks still belong to their files at rebuild time, so the pool
        complement never hands one out early.
        """
        self.recovery.mounts += 1
        self._replay_journal(list(superblock.get("journal", [])))
        self._rebuild_free_pool()
        self._fix_tails()
        if not self._journal_blocks:
            self._journal_blocks = [self._allocate_block("journal")]
            self._write_superblock()

    def _replay_journal(self, chain: list[int]) -> None:
        frames: list[tuple[int, list[dict]]] = []
        seen = set(chain)
        i = 0
        while i < len(chain):
            block = chain[i]
            i += 1
            if not 0 <= block < self.geometry.num_blocks:
                continue
            for page in range(self.device.programmed_pages(block)):
                if self.device.page_state(block, page) != 1:  # PAGE_VALID
                    continue
                try:
                    raw = self.device.read_page(block, page)
                except FlashError:
                    self.recovery.torn_frames += 1
                    continue
                decoded = decode_frame(JOURNAL_MAGIC, raw)
                if decoded is None:
                    self.recovery.torn_frames += 1
                    continue
                frames.append(decoded)
                for record in decoded[1]:
                    if record.get("op") == "extend" and \
                            record["block"] not in seen:
                        seen.add(record["block"])
                        chain.append(record["block"])
        self._journal_blocks = chain
        frames.sort(key=lambda item: item[0])
        applied = set()
        for seq, records in frames:
            if seq in applied:
                continue
            applied.add(seq)
            self.recovery.replayed_frames += 1
            for record in records:
                self._apply_record(record)
                self.recovery.replayed_records += 1
        self._journal_seq = (max(applied) + 1) if applied else 0
        self.recovery.recovered_files += len(self._files)

    def _apply_record(self, r: dict) -> None:
        op = r.get("op")
        files = self._files
        if op == "create":
            files.setdefault(r["name"],
                             FlashFile(r["name"], self.geometry.page_bytes))
        elif op == "commit":
            f = files.setdefault(r["name"],
                                 FlashFile(r["name"], self.geometry.page_bytes))
            f.blocks.extend(r["blocks"])
            f.flushed_pages = r["flushed"]
            f.size = r["flushed"] * self.geometry.page_bytes
            f.page_crcs.extend(r["crcs"])
        elif op == "seal":
            if r["name"] in files:
                f = files[r["name"]]
                f.sealed = True
                f.size = r["size"]
        elif op == "delete":
            files.pop(r["name"], None)
        elif op == "rename":
            if r["old"] in files:
                f = files.pop(r["old"])
                f.name = r["new"]
                files[r["new"]] = f
        elif op == "remap":
            f = files.get(r["name"])
            if f is not None and r["bad"] in f.blocks:
                f.blocks[f.blocks.index(r["bad"])] = r["fresh"]
        elif op == "file":
            f = FlashFile(r["name"], self.geometry.page_bytes)
            f.blocks = list(r["blocks"])
            f.page_crcs = list(r["crcs"])
            f.flushed_pages = r["flushed"]
            f.size = r["size"]
            f.sealed = r["sealed"]
            files[r["name"]] = f
        elif op == "filex":
            if r["name"] in files:
                f = files[r["name"]]
                f.blocks.extend(r["blocks"])
                f.page_crcs.extend(r["crcs"])
        # "extend" records steer chain discovery and are no-ops here.

    def _fix_tails(self) -> None:
        """Discard uncommitted state the crash left behind.

        Unsealed files lose their host tail buffer by definition (size
        snaps back to the committed page count).  A file's last block may
        additionally hold pages programmed by an append whose commit record
        never landed — including a torn page — so any pages beyond the
        committed count make the block *dirty*: the committed pages are
        relocated onto a fresh block (verified against their journaled
        CRCs) and the dirty block is scrubbed.
        """
        ppb = self.geometry.pages_per_block
        for f in list(self._files.values()):
            if not f.sealed:
                committed = f.flushed_pages * self.geometry.page_bytes
                if f.size != committed:
                    f.size = committed
                    self.recovery.truncated_files += 1
                f.tail_parts = []
                f.tail_len = 0
            if not f.blocks:
                continue
            last = f.blocks[-1]
            expected = f.flushed_pages - (len(f.blocks) - 1) * ppb
            actual = self.device.programmed_pages(last)
            if actual <= expected:
                continue
            self.recovery.discarded_pages += actual - expected
            if expected == 0:
                f.blocks.pop()
            else:
                f.blocks[-1] = self._relocate_committed(f, last, expected)
            try:
                if not self.device.block_is_erased(last):
                    self.device.erase_block(last)
                    self.recovery.scrubbed_blocks += 1
                self._release_block(last)
            except FlashEraseError:
                pass

    def _relocate_committed(self, f: FlashFile, dirty: int,
                            count: int) -> int:
        """Copy the committed prefix of a dirty block onto a fresh one."""
        pages = self.device.read_pages([(dirty, p) for p in range(count)])
        base = (len(f.blocks) - 1) * self.geometry.pages_per_block
        if f.page_crcs:
            for offset, data in enumerate(pages):
                index = base + offset
                if index < len(f.page_crcs) and \
                        page_crc(data) != f.page_crcs[index]:
                    raise FlashError(
                        f"journaled CRC mismatch on committed page {index} "
                        f"of {f.name!r} during recovery")
        while True:
            fresh = self._allocate_block("relocation")
            try:
                self.device.write_pages(
                    [(fresh, p, d) for p, d in enumerate(pages)])
                break
            except FlashProgramError:
                continue
        self.recovery.relocated_pages += count
        return fresh

    def _rebuild_free_pool(self) -> None:
        """Free pool = everything not owned by a file, the journal, the
        superblocks, or the bad-block list — scrubbed back to erased."""
        owned: set[int] = set()
        for f in self._files.values():
            owned.update(f.blocks)
        owned.update(self._journal_blocks)
        owned.update(SUPERBLOCK_BLOCKS)
        pool = []
        for block in range(self.geometry.num_blocks):
            if block in owned or self.device.is_bad(block):
                continue
            if not self.device.block_is_erased(block):
                try:
                    self.device.erase_block(block)
                except FlashEraseError:
                    continue
                self.recovery.scrubbed_blocks += 1
            pool.append((self.device.erase_counts[block], block))
        # Merge with anything _fix_tails already released.
        pool.extend(self._free_blocks)
        self._free_blocks = sorted(set(pool))
        heapq.heapify(self._free_blocks)
