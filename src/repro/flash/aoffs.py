"""Append-Only Flash File System (AOFFS), §IV-A of the paper.

AOFFS manages the logical-to-physical flash mapping in the host instead of an
FTL.  Its one restriction — every file only ever grows by appending — is all
sort-reduce needs, and it makes flash management trivial:

* Files own whole erase blocks, allocated from a free pool as they grow, so
  deleting a file erases exactly its own blocks and no garbage collection or
  relocation ever happens (write amplification is exactly 1.0).
* Writes stream page-by-page in program order, so the erase-before-write and
  program-order constraints of NAND are satisfied by construction.
* No translation layer sits on the data path, which removes the FTL latency
  overhead — the reason hardware GraFBoost keeps its lookahead buffers small
  and "almost removes unused flash reads" (§V-C.3).

A file being written keeps its partial tail page in host memory.  Calling
:meth:`AppendOnlyFlashFS.seal` flushes the tail and makes the file immutable;
sort-reduce writes each run fully and then seals it before merging.

Because the host owns the mapping, wear leveling (§II-B) is a one-line
policy instead of an FTL: block allocation always picks the least-erased
free block, spreading program/erase cycles evenly across the device.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.flash.device import (
    FlashDevice,
    FlashEraseError,
    FlashError,
    FlashProgramError,
    FlashWearOutError,
)
from repro.flash.faults import page_crc, verify_pages


class FlashFile:
    """Metadata for one append-only file: its blocks and logical size."""

    def __init__(self, name: str, page_bytes: int):
        self.name = name
        self.page_bytes = page_bytes
        self.blocks: list[int] = []
        self.size = 0              # logical bytes, including the tail buffer
        # Partial last page, not yet on flash, kept as a fragment list so
        # appends never recopy the accumulated tail; a flush joins once.
        self.tail_parts: list[bytes] = []
        self.tail_len = 0
        self.flushed_pages = 0     # pages already programmed to flash
        self.sealed = False
        # Per-flushed-page CRC-32, recorded only under fault injection: the
        # end-to-end integrity check that catches ECC miscorrections.
        self.page_crcs: list[int] = []

    def tail_bytes(self) -> bytes:
        """The unflushed tail as one bytes object (consolidates in place)."""
        if len(self.tail_parts) != 1:
            joined = b"".join(self.tail_parts)
            self.tail_parts = [joined] if joined else []
            return joined
        return self.tail_parts[0]


class AppendOnlyFlashFS:
    """Host-managed append-only file system over a raw :class:`FlashDevice`.

    ``prefetch_pages`` is the lookahead buffer applied to small reads.  The
    low access latency of raw flash lets GraFBoost keep it tiny, "which
    almost removes unused flash reads" (§V-C.3); the commodity-SSD file
    system needs a much deeper one (see
    :class:`~repro.flash.filestore.SSDFileSystem`).  Reads shorter than the
    buffer still transfer the full buffer; the overshoot is charged and
    tracked in ``prefetch_waste_bytes``.
    """

    def __init__(self, device: FlashDevice, prefetch_pages: int = 2):
        self.device = device
        self.geometry = device.geometry
        self.prefetch_pages = prefetch_pages
        self.prefetch_waste_bytes = 0
        self._files: dict[str, FlashFile] = {}
        # Min-heap of (erase count at release time, block): wear-leveled
        # allocation without FTL machinery.
        self._free_blocks: list[tuple[int, int]] = [
            (0, block) for block in range(self.geometry.num_blocks)]
        heapq.heapify(self._free_blocks)
        self.total_appended_bytes = 0

    def _charge_prefetch(self, f: FlashFile, first_page: int, pages_read: int) -> None:
        """Charge the unused tail of the lookahead buffer on a small read.

        Readahead stops at end-of-file, so reading a small file whole wastes
        nothing; the waste appears on short reads *inside* large files —
        exactly the "unused flash reads" of §V-C.3.
        """
        effective = min(self.prefetch_pages, f.flushed_pages - first_page)
        shortfall = effective - pages_read
        if shortfall <= 0:
            return
        nbytes = shortfall * self.geometry.page_bytes
        profile = self.device.profile
        self.device.clock.charge("flash", nbytes / profile.flash_read_bw, nbytes=nbytes)
        self.prefetch_waste_bytes += nbytes

    # ---------------------------------------------------------------- queries

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def size(self, name: str) -> int:
        return self._file(name).size

    @property
    def free_bytes(self) -> int:
        return len(self._free_blocks) * self.geometry.block_bytes

    def _allocate_block(self) -> int:
        """Wear-leveled allocation: the least-erased free block wins."""
        _wear, block = heapq.heappop(self._free_blocks)
        return block

    def _release_block(self, block: int) -> None:
        heapq.heappush(self._free_blocks,
                       (self.device.erase_counts[block], block))

    @property
    def used_bytes(self) -> int:
        return sum(len(f.blocks) for f in self._files.values()) * self.geometry.block_bytes

    def _file(self, name: str) -> FlashFile:
        if name not in self._files:
            raise FileNotFoundError(f"no AOFFS file named {name!r}")
        return self._files[name]

    # ---------------------------------------------------------------- writing

    def create(self, name: str) -> None:
        """Create an empty file; the name must be unused."""
        if name in self._files:
            raise FileExistsError(f"AOFFS file {name!r} already exists")
        self._files[name] = FlashFile(name, self.geometry.page_bytes)

    def append(self, name: str, data: bytes) -> None:
        """Append bytes to a file, creating it if needed.

        Complete pages are streamed to flash immediately (batched, so device
        latency is amortized over the whole call); the final partial page
        stays in the host tail buffer until more data arrives or the file is
        sealed.
        """
        if name not in self._files:
            self.create(name)
        f = self._files[name]
        if f.sealed:
            raise FlashError(f"append to sealed AOFFS file {name!r}")
        if data:
            f.tail_parts.append(bytes(data))
            f.tail_len += len(data)
        f.size += len(data)
        self.total_appended_bytes += len(data)
        self._flush_full_pages(f)

    def _flush_full_pages(self, f: FlashFile) -> None:
        page_bytes = self.geometry.page_bytes
        n_full = f.tail_len // page_bytes
        if n_full == 0:
            return
        pages_per_block = self.geometry.pages_per_block
        first = f.flushed_pages
        # Claim every block the batch will touch, in ascending page order —
        # the identical wear-leveled allocation sequence the per-page path
        # produced.
        last_block_index = (first + n_full - 1) // pages_per_block
        while len(f.blocks) <= last_block_index:
            if not self._free_blocks:
                raise FlashError(f"AOFFS out of space appending to {f.name!r}")
            f.blocks.append(self._allocate_block())
        flush_bytes = n_full * page_bytes
        blob = f.tail_bytes()
        page_index = np.arange(first, first + n_full)
        blocks = np.asarray(f.blocks, dtype=np.int64)[page_index // pages_per_block].tolist()
        pages = (page_index % pages_per_block).tolist()
        # Zero-copy page views into the joined tail; the device stores them
        # as-is, and every consumer goes through the buffer protocol.
        view = memoryview(blob)
        writes = [
            (block, page, view[start:start + page_bytes])
            for block, page, start in zip(blocks, pages, range(0, flush_bytes, page_bytes))
        ]
        self._program_pages(f, writes)
        remainder = blob[flush_bytes:]
        f.tail_parts = [remainder] if remainder else []
        f.tail_len -= flush_bytes
        f.flushed_pages += n_full

    def seal(self, name: str) -> None:
        """Flush the tail (padded to a page) and make the file immutable."""
        f = self._file(name)
        if f.sealed:
            return
        if f.tail_len:
            tail = f.tail_bytes()
            padded = tail + b"\x00" * (self.geometry.page_bytes - len(tail))
            block, page = self._physical_addr(f, f.flushed_pages, allocate=True)
            self._program_pages(f, [(block, page, padded)])
            f.tail_parts = []
            f.tail_len = 0
            f.flushed_pages += 1
        f.sealed = True

    def _program_pages(self, f: FlashFile, writes: list[tuple[int, int, bytes]]) -> None:
        """Program pages, surviving program failures by block remapping.

        A failed program retires the block; the pages it already holds are
        copied to a fresh block which takes over the retired block's slot in
        ``f.blocks`` (file addressing never changes), and the remaining
        writes retarget it.  Single-page lists use the scalar device call so
        the charged time is identical to the historical per-page path.
        """
        pending = writes
        while True:
            try:
                if len(pending) == 1:
                    self.device.write_page(*pending[0])
                else:
                    self.device.write_pages(pending)
                break
            except FlashProgramError as e:
                committed = getattr(e, "batch_committed", 0)
                bad = e.block
                fresh = self._remap_bad_block(f, bad)
                pending = [(fresh if b == bad else b, p, d)
                           for b, p, d in pending[committed:]]
        if self.device.faults is not None:
            f.page_crcs.extend(page_crc(d) for _b, _p, d in writes)

    def _remap_bad_block(self, f: FlashFile, bad: int) -> int:
        """Copy a retired block's programmed pages onto a fresh block and
        swap it into the file's block list."""
        count = self.device.programmed_pages(bad)
        while True:
            if not self._free_blocks:
                raise FlashWearOutError(
                    f"no spare block left to remap retired block {bad} "
                    f"of AOFFS file {f.name!r}")
            fresh = self._allocate_block()
            try:
                if count:
                    pages = self.device.read_pages(
                        [(bad, p) for p in range(count)])
                    self.device.write_pages(
                        [(fresh, p, d) for p, d in enumerate(pages)])
                break
            except FlashProgramError:
                continue  # the replacement died too; try another spare
        f.blocks[f.blocks.index(bad)] = fresh
        return fresh

    def _physical_addr(self, f: FlashFile, page_index: int, allocate: bool = False) -> tuple[int, int]:
        pages_per_block = self.geometry.pages_per_block
        block_index, page = divmod(page_index, pages_per_block)
        if block_index >= len(f.blocks):
            if not allocate:
                raise FlashError(f"page {page_index} beyond end of file {f.name!r}")
            if not self._free_blocks:
                raise FlashError(f"AOFFS out of space appending to {f.name!r}")
            f.blocks.append(self._allocate_block())
        return f.blocks[block_index], page

    # ---------------------------------------------------------------- reading

    def read(self, name: str, offset: int = 0, nbytes: int | None = None) -> bytes:
        """Read a byte range; one device access latency per call.

        Streaming readers should read in large chunks; a caller doing many
        small reads pays the per-access latency each time, exactly like a
        real host doing fine-grained random flash I/O.
        """
        f = self._file(name)
        if nbytes is None:
            nbytes = f.size - offset
        if offset < 0 or nbytes < 0 or offset + nbytes > f.size:
            raise ValueError(
                f"read [{offset}, {offset + nbytes}) out of range for "
                f"{name!r} of size {f.size}"
            )
        if nbytes == 0:
            return b""
        page_bytes = self.geometry.page_bytes
        flushed_bytes = f.flushed_pages * page_bytes

        parts: list[bytes] = []
        flash_end = min(offset + nbytes, flushed_bytes)
        if offset < flushed_bytes:
            first_page = offset // page_bytes
            last_page = (flash_end - 1) // page_bytes
            if last_page - first_page > 8:
                ppb = self.geometry.pages_per_block
                idx = np.arange(first_page, last_page + 1)
                blk = np.asarray(f.blocks, dtype=np.int64)[idx // ppb]
                addresses = list(zip(blk.tolist(), (idx % ppb).tolist()))
            else:
                addresses = [self._physical_addr(f, i) for i in range(first_page, last_page + 1)]
            pages = self.device.read_pages(addresses)
            if self.device.faults is not None:
                pages = verify_pages(
                    pages, f.page_crcs, first_page,
                    lambda i: self.device.read_page(*self._physical_addr(f, i)),
                    self.device.faults, f"aoffs:{f.name}")
            self._charge_prefetch(f, first_page, len(addresses))
            blob = b"".join(pages)
            start = offset - first_page * page_bytes
            parts.append(blob[start:start + (flash_end - offset)])
        if offset + nbytes > flushed_bytes:
            tail_start = max(0, offset - flushed_bytes)
            tail_end = offset + nbytes - flushed_bytes
            parts.append(f.tail_bytes()[tail_start:tail_end])
        return b"".join(parts)

    def stream(self, name: str, chunk_bytes: int):
        """Yield the file's contents in ``chunk_bytes`` pieces (sequential scan)."""
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        size = self._file(name).size
        offset = 0
        while offset < size:
            n = min(chunk_bytes, size - offset)
            yield self.read(name, offset, n)
            offset += n

    # ----------------------------------------------------------- numpy helpers

    def append_array(self, name: str, array: np.ndarray) -> None:
        """Append a numpy array's raw bytes to a file."""
        self.append(name, np.ascontiguousarray(array).tobytes())

    def read_array(self, name: str, dtype: np.dtype, start_item: int = 0,
                   count: int | None = None) -> np.ndarray:
        """Read ``count`` items of ``dtype`` starting at item ``start_item``."""
        dtype = np.dtype(dtype)
        if count is None:
            count = self.size(name) // dtype.itemsize - start_item
        raw = self.read(name, start_item * dtype.itemsize, count * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype)

    # --------------------------------------------------------------- deletion

    def delete(self, name: str) -> None:
        """Delete a file and erase its blocks back into the free pool.

        Erases run in the background: with block-per-file allocation there
        is never data to relocate, so the device pipelines reclamation
        behind foreground traffic (unlike FTL garbage collection).
        """
        f = self._file(name)
        for block in f.blocks:
            try:
                if not self.device.block_is_erased(block):
                    self.device.erase_block(block, background=True)
            except FlashEraseError:
                continue  # block retired: it never rejoins the free pool
            self._release_block(block)
        del self._files[name]

    def rename(self, old: str, new: str) -> None:
        """Rename a file (metadata only, no flash traffic)."""
        if new in self._files:
            raise FileExistsError(f"AOFFS file {new!r} already exists")
        f = self._file(old)
        f.name = new
        self._files[new] = f
        del self._files[old]
