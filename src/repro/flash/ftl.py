"""Page-mapped Flash Translation Layer and the commodity-SSD wrapper.

This is the "off-the-shelf SSD" the baseline systems run on, and the foil for
AOFFS: a page-level logical-to-physical map, an over-provisioned block pool,
greedy garbage collection (victim = fewest valid pages) for wear management,
and a per-operation translation-layer latency overhead.  Random updates are
legal here — at the cost of write amplification from GC relocations, which
the ablation benchmark measures directly.
"""

from __future__ import annotations

import struct
import zlib

from repro.flash.device import (
    FlashDevice,
    FlashEraseError,
    FlashError,
    FlashOutOfSpaceError,
    FlashProgramError,
    FlashWearOutError,
)

#: Extra latency a commodity FTL adds to every host-visible operation
#: (mapping lookup, queueing, internal scheduling).  Removing this overhead
#: is one of the stated benefits of AOFFS (§IV-A, §V-C.3).
DEFAULT_FTL_OVERHEAD_S = 40e-6

#: Per-page spare-area record in durable mode: logical page number, global
#: write sequence number (newest copy wins at mount), payload CRC-32.
OOB_RECORD = struct.Struct("<QQI")


class PageMappedFTL:
    """Logical-page to physical-page translation with greedy GC.

    ``overprovision`` reserves a fraction of physical blocks so GC always has
    somewhere to relocate valid pages; the usable logical capacity shrinks
    accordingly, like a real SSD.

    ``durable=True`` tags every programmed page with an OOB record
    (:data:`OOB_RECORD`) so the logical-to-physical map — which lives in
    controller RAM and dies with power — can be rebuilt by
    :meth:`mount`: scan valid pages' spare areas, keep the highest write
    sequence number per logical page, and drop torn pages (their spare area
    never finished programming).
    """

    def __init__(self, device: FlashDevice, overprovision: float = 0.08,
                 gc_reserve_blocks: int = 2, durable: bool = False):
        if not 0 < overprovision < 1:
            raise ValueError(f"overprovision must be in (0, 1), got {overprovision}")
        self.device = device
        self.durable = durable
        geometry = device.geometry
        usable_blocks = int(geometry.num_blocks * (1 - overprovision))
        if usable_blocks < 1:
            raise ValueError("device too small for requested over-provisioning")
        self.logical_pages = usable_blocks * geometry.pages_per_block
        self.gc_reserve_blocks = max(1, gc_reserve_blocks)
        # The over-provisioned region doubles as the bad-block spare pool:
        # each retired block consumes one spare, and running out means the
        # drive can no longer guarantee its logical capacity.
        self.spare_blocks_remaining = geometry.num_blocks - usable_blocks
        self.blocks_retired = 0

        self._map: dict[int, tuple[int, int]] = {}
        self._reverse: dict[tuple[int, int], int] = {}
        self._free_blocks: list[int] = list(range(geometry.num_blocks - 1, -1, -1))
        # Write cursor: the block currently accepting programs, and the next
        # page to program within it.
        self._active_block: int | None = None
        self._active_page = 0
        self._in_gc = False
        self._write_seq = 0
        self.user_pages_written = 0
        self.gc_relocations = 0
        self.gc_runs = 0
        if device.sanitizer is not None:
            device.sanitizer.track_ftl(self)

    def _sanity_check(self, mutated: int | None = None) -> None:
        """FlashSan bookkeeping audit after batched mutations (write_many,
        GC, mount).  The audit is O(map size), so single-page write/trim
        skip it entirely and ``write_many`` passes its batch size to run it
        on an amortized schedule; drift those paths introduce is still
        caught at the next scheduled audit or at erase time."""
        sanitizer = self.device.sanitizer
        if sanitizer is None:
            return
        if mutated is None:
            sanitizer.check_ftl(self)
        else:
            sanitizer.maybe_check_ftl(self, mutated)

    def _make_oob(self, lpn: int, data) -> bytes | None:
        if not self.durable:
            return None
        seq = self._write_seq
        self._write_seq += 1
        return OOB_RECORD.pack(lpn, seq, zlib.crc32(data))

    @classmethod
    def mount(cls, device: FlashDevice, overprovision: float = 0.08,
              gc_reserve_blocks: int = 2) -> "PageMappedFTL":
        """Rebuild the mapping table from per-page OOB records after power
        loss.

        The newest write sequence number wins per logical page — which
        resolves the crash window between programming a page's new copy and
        invalidating its old one (both copies are valid on flash; real FTLs
        face exactly this at every update).  Pages without a parseable OOB
        record (torn programs) and superseded old copies are invalidated so
        GC can reclaim them.
        """
        ftl = cls(device, overprovision=overprovision,
                  gc_reserve_blocks=gc_reserve_blocks, durable=True)
        best: dict[int, tuple[int, tuple[int, int]]] = {}
        stale: list[tuple[int, int]] = []
        max_seq = -1
        for block, page, oob in device.mount_scan():
            if oob is None or len(oob) != OOB_RECORD.size:
                stale.append((block, page))
                continue
            lpn, seq, _crc = OOB_RECORD.unpack(oob)
            if not 0 <= lpn < ftl.logical_pages:
                stale.append((block, page))
                continue
            max_seq = max(max_seq, seq)
            prev = best.get(lpn)
            if prev is None or seq > prev[0]:
                if prev is not None:
                    stale.append(prev[1])
                best[lpn] = (seq, (block, page))
            else:
                stale.append((block, page))
        for block, page in stale:
            device.invalidate_page(block, page)
        for lpn, (_seq, addr) in best.items():
            ftl._map[lpn] = addr
            ftl._reverse[addr] = lpn
        ftl._write_seq = max_seq + 1
        ftl._free_blocks = [
            block for block in range(device.geometry.num_blocks - 1, -1, -1)
            if device.block_is_erased(block) and not device.is_bad(block)]
        ftl._active_block = None
        ftl._active_page = 0
        ftl.blocks_retired = device.bad_block_count
        ftl.spare_blocks_remaining = (
            device.geometry.num_blocks -
            ftl.logical_pages // device.geometry.pages_per_block -
            device.bad_block_count)
        if ftl.spare_blocks_remaining < 0:
            raise FlashWearOutError(
                "mounted device has more retired blocks than spare capacity")
        ftl.user_pages_written = len(best)
        ftl._sanity_check()
        return ftl

    # ----------------------------------------------------------------- lookup

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise FlashError(f"logical page {lpn} out of range [0, {self.logical_pages})")

    def is_mapped(self, lpn: int) -> bool:
        self._check_lpn(lpn)
        return lpn in self._map

    def translate(self, lpn: int) -> tuple[int, int]:
        """Physical (block, page) address of a mapped logical page."""
        self._check_lpn(lpn)
        if lpn not in self._map:
            raise FlashError(f"translate of unwritten logical page {lpn}")
        return self._map[lpn]

    @property
    def write_amplification(self) -> float:
        """Physical pages programmed per user page written (>= 1.0)."""
        if self.user_pages_written == 0:
            return 1.0
        return self.device.total_pages_written / self.user_pages_written

    # ------------------------------------------------------------------- I/O

    def read(self, lpn: int) -> bytes:
        block, page = self.translate(lpn)
        return self.device.read_page(block, page)

    def write(self, lpn: int, data: bytes) -> None:
        """Write/overwrite a logical page; the old physical copy becomes garbage.

        A program failure retires the block and transparently retries on a
        fresh one; pages already written to the retired block stay readable
        in place (grown defects), so no data moves.
        """
        self._check_lpn(lpn)
        while True:
            block, page = self._allocate_page()
            try:
                self.device.write_page(block, page, data,
                                       oob=self._make_oob(lpn, data))
            except FlashProgramError:
                self._on_block_retired(block)
                continue
            self._commit_mapping(lpn, block, page)
            return

    def write_many(self, writes: list[tuple[int, bytes]]) -> None:
        """Batched sequential write: device latency is paid once per block batch.

        Pending allocations are flushed to the device before any garbage
        collection can run, so GC never erases a block that holds allocated
        but not-yet-programmed pages.  GC relocations are charged as the
        individual (random) operations they physically are.
        """
        pages_per_block = self.device.geometry.pages_per_block
        for lpn, _data in writes:
            self._check_lpn(lpn)
        i, n = 0, len(writes)
        while i < n:
            if self._active_block is None or self._active_page >= pages_per_block:
                self._active_block = self._take_free_block()
                self._active_page = 0
            take = min(n - i, pages_per_block - self._active_page)
            block, page0 = self._active_block, self._active_page
            self._active_page += take
            batch = writes[i:i + take]
            oobs = None
            if self.durable:
                oobs = [self._make_oob(lpn, data) for lpn, data in batch]
            try:
                self.device.write_pages(
                    [(block, page0 + j, data) for j, (_lpn, data) in enumerate(batch)],
                    oobs=oobs)
            except FlashProgramError as e:
                # Pages before the failure landed and stay readable in the
                # retired block; map them, then retry the rest elsewhere.
                take = getattr(e, "batch_committed", 0)
                batch = batch[:take]
                self._on_block_retired(block)
            lpn_map, reverse = self._map, self._reverse
            invalidate = self.device.invalidate_page
            for j, (lpn, _data) in enumerate(batch):
                old = lpn_map.get(lpn)
                if old is not None:
                    invalidate(old[0], old[1])
                    del reverse[old]
                addr = (block, page0 + j)
                lpn_map[lpn] = addr
                reverse[addr] = lpn
            self.user_pages_written += take
            i += take
        self._sanity_check(mutated=n)

    def _commit_mapping(self, lpn: int, block: int, page: int) -> None:
        old = self._map.get(lpn)
        if old is not None:
            self.device.invalidate_page(*old)
            del self._reverse[old]
        self._map[lpn] = (block, page)
        self._reverse[(block, page)] = lpn
        self.user_pages_written += 1

    def trim(self, lpn: int) -> None:
        """Discard a logical page (TRIM), making its physical copy garbage."""
        self._check_lpn(lpn)
        old = self._map.pop(lpn, None)
        if old is not None:
            self.device.invalidate_page(*old)
            del self._reverse[old]

    # ------------------------------------------------------------- allocation

    def _allocate_page(self) -> tuple[int, int]:
        geometry = self.device.geometry
        if self._active_block is None or self._active_page >= geometry.pages_per_block:
            self._active_block = self._take_free_block()
            self._active_page = 0
        block, page = self._active_block, self._active_page
        self._active_page += 1
        return block, page

    def _take_free_block(self) -> int:
        if len(self._free_blocks) <= self.gc_reserve_blocks and not self._in_gc:
            self._collect_garbage()
        if not self._free_blocks:
            raise FlashOutOfSpaceError(
                "SSD full: garbage collection found no reclaimable space "
                f"({self.blocks_retired} blocks retired)")
        return self._free_blocks.pop()

    def _on_block_retired(self, block: int) -> None:
        """Account for a block the device just retired (program/erase failure).

        The retired block leaves the writable pool; its slot is covered by
        the over-provisioned spares until those run out, at which point the
        drive can no longer back its logical capacity.
        """
        if block in self._free_blocks:
            self._free_blocks.remove(block)
        if self._active_block == block:
            self._active_block = None
        self.blocks_retired += 1
        self.spare_blocks_remaining -= 1
        if self.spare_blocks_remaining < 0:
            raise FlashWearOutError(
                f"spare pool exhausted: {self.blocks_retired} retired blocks "
                f"exceed the over-provisioned spare capacity")

    def _collect_garbage(self) -> None:
        """Greedy GC: relocate the blocks with the fewest valid pages."""
        geometry = self.device.geometry
        self._in_gc = True
        try:
            candidates = [
                b for b in range(geometry.num_blocks)
                if b != self._active_block and b not in self._free_blocks
                and not self.device.is_bad(b)
            ]
            while len(self._free_blocks) <= self.gc_reserve_blocks and candidates:
                victim = min(candidates, key=self.device.valid_pages)
                if self.device.valid_pages(victim) >= geometry.pages_per_block:
                    break  # every page valid: erasing gains nothing
                candidates.remove(victim)
                self._relocate_and_erase(victim)
                self.gc_runs += 1
        finally:
            self._in_gc = False
        self._sanity_check()

    def _relocate_and_erase(self, victim: int) -> None:
        geometry = self.device.geometry
        for page in range(geometry.pages_per_block):
            addr = (victim, page)
            lpn = self._reverse.get(addr)
            if lpn is None:
                continue
            data = self.device.read_page(victim, page)
            while True:
                new_block, new_page = self._allocate_page()
                try:
                    # Relocations re-tag the page with a fresh sequence number
                    # so the moved copy wins over the stale one at mount time.
                    self.device.write_page(new_block, new_page, data,
                                           oob=self._make_oob(lpn, data))
                except FlashProgramError:
                    self._on_block_retired(new_block)
                    continue
                break
            self._map[lpn] = (new_block, new_page)
            self._reverse[(new_block, new_page)] = lpn
            del self._reverse[addr]
            self.gc_relocations += 1
        try:
            self.device.erase_block(victim)
        except FlashEraseError:
            # Every valid page was already relocated; the block just never
            # rejoins the free pool.
            self._on_block_retired(victim)
            return
        self._free_blocks.insert(0, victim)


class SSD:
    """A commodity SSD: FTL plus per-op translation overhead charged as time."""

    def __init__(self, device: FlashDevice, overprovision: float = 0.08,
                 ftl_overhead_s: float = DEFAULT_FTL_OVERHEAD_S,
                 durable: bool = False):
        self.device = device
        self.ftl = PageMappedFTL(device, overprovision=overprovision,
                                 durable=durable)
        self.ftl_overhead_s = ftl_overhead_s

    @classmethod
    def mount(cls, device: FlashDevice, overprovision: float = 0.08,
              ftl_overhead_s: float = DEFAULT_FTL_OVERHEAD_S) -> "SSD":
        """Remount after power loss: rebuild the FTL map from OOB records."""
        ssd = cls.__new__(cls)
        ssd.device = device
        ssd.ftl = PageMappedFTL.mount(device, overprovision=overprovision)
        ssd.ftl_overhead_s = ftl_overhead_s
        return ssd

    @property
    def page_bytes(self) -> int:
        return self.device.geometry.page_bytes

    @property
    def logical_pages(self) -> int:
        return self.ftl.logical_pages

    def read_page(self, lpn: int) -> bytes:
        self.device.clock.charge("flash", self.ftl_overhead_s)
        return self.ftl.read(lpn)

    def write_page(self, lpn: int, data: bytes) -> None:
        self.device.clock.charge("flash", self.ftl_overhead_s)
        self.ftl.write(lpn, data)

    def read_pages(self, lpns: list[int]) -> list[bytes]:
        """Sequential/batched read: one FTL overhead for the whole batch."""
        if not lpns:
            return []
        self.device.clock.charge("flash", self.ftl_overhead_s)
        lpn_map = self.ftl._map
        try:
            addresses = [lpn_map[lpn] for lpn in lpns]
        except KeyError:
            # Fall back for the exact range/unmapped error of translate().
            addresses = [self.ftl.translate(lpn) for lpn in lpns]
        return self.device.read_pages(addresses)

    def write_pages(self, writes: list[tuple[int, bytes]]) -> None:
        """Sequential/batched write: one FTL overhead for the whole batch."""
        if not writes:
            return
        self.device.clock.charge("flash", self.ftl_overhead_s)
        self.ftl.write_many(writes)

    def trim(self, lpn: int) -> None:
        self.ftl.trim(lpn)
