"""Simulated NAND flash substrate.

The paper's storage device exposes raw ``read``/``write``/``erase`` flash
interfaces to the accelerator and host instead of hiding them behind a Flash
Translation Layer (§IV).  This package builds that stack in simulation:

* :class:`FlashDevice` — page/block-granular NAND with program-order and
  erase-before-write constraints, per-op latency and bandwidth charging, and
  wear tracking.
* :class:`PageMappedFTL` / :class:`SSD` — the "off-the-shelf SSD" baseline: a
  page-mapped FTL with greedy garbage collection and wear leveling, used by
  the competing systems and by the AOFFS-vs-FTL ablation.
* :class:`AppendOnlyFlashFS` — the paper's AOFFS (§IV-A): host-managed
  logical-to-physical mapping where files only ever grow by appending, which
  is all sort-reduce needs and removes FTL latency overhead.
* :class:`FaultPlan` / :class:`FaultInjector` — deterministic seeded fault
  injection with an ECC/read-retry recovery model, plus the ``FlashError``
  exception taxonomy every layer above reacts to.
"""

from repro.flash.device import (
    FlashDevice,
    FlashEraseError,
    FlashError,
    FlashGeometry,
    FlashProgramError,
    FlashTransientError,
    FlashUncorrectableError,
    FlashWearOutError,
)
from repro.flash.faults import FaultInjector, FaultPlan, FaultStats
from repro.flash.ftl import PageMappedFTL, SSD
from repro.flash.aoffs import AppendOnlyFlashFS, FlashFile
from repro.flash.filestore import SSDFileSystem
from repro.flash.wear import WearReport

__all__ = [
    "FlashDevice",
    "FlashGeometry",
    "FlashError",
    "FlashTransientError",
    "FlashUncorrectableError",
    "FlashProgramError",
    "FlashEraseError",
    "FlashWearOutError",
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "PageMappedFTL",
    "SSD",
    "AppendOnlyFlashFS",
    "FlashFile",
    "SSDFileSystem",
    "WearReport",
]
