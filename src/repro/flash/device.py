"""Page/block-granular NAND flash device simulator.

The device enforces the three physical constraints that shape every flash
system design (§II-B of the paper):

1. **Erase-before-write** — a page can only be programmed if its block has
   been erased since the page was last written.
2. **Program order** — pages within a block must be written in order.
3. **Coarse erase granularity** — erasing is per block (megabytes), not per
   page, and physically wears the cells (tracked per block).

Timing is charged to a :class:`~repro.perf.clock.SimClock` under the
``flash`` resource.  Batched operations (:meth:`FlashDevice.read_pages`)
model a deep command queue: one access latency is paid for the whole batch
plus bandwidth time for every byte.  Single-page calls pay the full latency
each time — which is exactly why fine-grained random access destroys
effective flash bandwidth (the paper's factor-of-2048 example), and why
sort-reduce's sequentialization wins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.sanitizer import FlashSanitizer, sanitizer_enabled
from repro.perf.clock import SimClock
from repro.perf.profiles import HardwareProfile

PAGE_ERASED = 0
PAGE_VALID = 1
PAGE_INVALID = 2  # written, then superseded; space reclaimable by erase


class FlashError(RuntimeError):
    """Base of the flash error taxonomy.

    Raised directly for logic errors against the device's state machine
    (write to un-erased page, read of erased/invalidated page, bad address).
    Physical failures raise the typed subclasses below so every layer above
    — FTL, AOFFS, file stores, sort-reduce, engine — can react precisely:

    * :class:`FlashTransientError` — one read attempt failed recoverably;
      internal retry machinery (ECC read-retry, checksum re-reads) catches
      it, so callers only observe it when retries are disabled.
    * :class:`FlashUncorrectableError` — data loss: bit errors exceeded ECC
      strength after every read-retry, or a checksum mismatch persisted.
    * :class:`FlashProgramError` — a page program reported failure; the
      device retires the block, the owning layer must remap.
    * :class:`FlashEraseError` — an erase reported failure (including
      endurance-limit failures); also retires the block.
    * :class:`FlashWearOutError` — the device can no longer provide spare
      capacity (spare pool exhausted / no free block to remap onto).
    """


class FlashTransientError(FlashError):
    """A single read attempt failed but is retryable."""


class FlashUncorrectableError(FlashError):
    """Data is lost: ECC plus every read-retry (or checksum re-read) failed."""

    def __init__(self, message: str, block: int | None = None,
                 page: int | None = None):
        super().__init__(message)
        self.block = block
        self.page = page


class FlashProgramError(FlashError):
    """A page program failed; the containing block has been retired."""

    def __init__(self, message: str, block: int | None = None,
                 page: int | None = None):
        super().__init__(message)
        self.block = block
        self.page = page


class FlashEraseError(FlashProgramError):
    """A block erase failed; the block has been retired."""


class FlashWearOutError(FlashError):
    """No spare capacity remains to remap around failed blocks."""


class FlashOutOfSpaceError(FlashError):
    """The free block/page pool is exhausted (including shrinkage from
    retired bad blocks).  Raised by AOFFS and FTL allocation so callers can
    distinguish "device is full" from device logic errors."""


class FlashRecoveryExhaustedError(FlashError):
    """Crash recovery made no forward progress: the remount retry loop hit
    its give-up bound.  Raised by the crash harness and the service
    scheduler instead of a bare ``RuntimeError`` so callers can react inside
    the taxonomy; carries the exhausted :class:`~repro.flash.faults.CrashPlan`
    for diagnosis."""

    def __init__(self, message: str, plan=None):
        super().__init__(message)
        self.plan = plan


class PowerLossError(BaseException):
    """Simulated whole-system power loss at a flash operation boundary.

    Deliberately derives from :class:`BaseException`, *not*
    :class:`FlashError` (nor even :class:`Exception`): when power is cut the
    host dies instantly, so no error-recovery or cleanup handler in the
    stack may observe, swallow, or react to it.  Only the crash harness
    (:func:`repro.harness.run_with_crashes`) catches it, then remounts the
    device and resumes from durable state.
    """

    def __init__(self, message: str, op_index: int | None = None):
        super().__init__(message)
        self.op_index = op_index


@dataclass(frozen=True)
class FlashGeometry:
    """Physical layout of the simulated device.

    ``channels`` models the parallel NAND buses of a real card (BlueDBM's
    flash boards have 8 per card): aggregate bandwidth is only reachable
    when transfers stripe across channels; a single-page access runs at one
    channel's share.  The default of 1 keeps the aggregate-bandwidth model
    used by the calibrated experiments.
    """

    page_bytes: int
    pages_per_block: int
    num_blocks: int
    channels: int = 1

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ValueError(f"channels must be >= 1, got {self.channels}")
        if self.channels > self.num_blocks:
            raise ValueError("more channels than blocks")

    def channel_of(self, block: int) -> int:
        """Blocks stripe round-robin across channels."""
        return block % self.channels

    @property
    def block_bytes(self) -> int:
        return self.page_bytes * self.pages_per_block

    @property
    def capacity_bytes(self) -> int:
        return self.block_bytes * self.num_blocks

    @staticmethod
    def from_profile(profile: HardwareProfile, capacity: int | None = None) -> "FlashGeometry":
        """Geometry for ``capacity`` bytes using the profile's page/block sizes."""
        capacity = profile.flash_capacity if capacity is None else capacity
        block_bytes = profile.flash_page_bytes * profile.flash_block_pages
        num_blocks = max(4, -(-capacity // block_bytes))
        return FlashGeometry(
            page_bytes=profile.flash_page_bytes,
            pages_per_block=profile.flash_block_pages,
            num_blocks=num_blocks,
        )


class FlashDevice:
    """A raw NAND device: data integrity plus timing/wear accounting.

    Page contents are stored as ``bytes``; the simulator is *functional*, so
    anything an engine writes really does round-trip through the device.
    """

    def __init__(self, geometry: FlashGeometry, profile: HardwareProfile, clock: SimClock,
                 traffic_scale: float = 1.0, faults=None, crashes=None,
                 sanitize: bool | None = None):
        """``traffic_scale`` discounts charged transfer volume for devices
        whose datapath stores records densely bit-packed (Fig 7): GraFBoost
        packs key-value pairs into 256-bit words, so each aligned byte the
        functional layer moves costs only ``traffic_scale`` bytes of
        physical flash traffic.

        ``faults`` is an optional :class:`~repro.flash.faults.FaultPlan`;
        when given, every read/program/erase runs through the plan's
        seeded :class:`~repro.flash.faults.FaultInjector` (ECC, read-retry,
        program/erase failures, latency jitter).  ``None`` — and a plan with
        all rates zero — leave the device's behaviour and timing untouched.

        ``crashes`` is an optional :class:`~repro.flash.faults.CrashPlan`:
        a seeded schedule of power-loss points expressed as global flash
        operation indices.  When the device reaches a scheduled op it kills
        the host mid-operation — possibly leaving a *torn* page — by
        raising :class:`PowerLossError`.  The op counter is device-lifetime
        global, so it keeps advancing across remounts and a finite schedule
        always drains.  ``None`` adds zero overhead and zero RNG draws.

        ``sanitize`` attaches a :class:`~repro.flash.sanitizer.FlashSanitizer`
        (FlashSan) that shadows every committed page and raises
        :class:`~repro.flash.sanitizer.SanitizerError` on invariant
        violations.  ``None`` defers to the ``REPRO_SANITIZE`` environment
        variable; the sanitizer charges no time and draws no randomness, so
        sanitized runs stay bit-identical.
        """
        if not 0 < traffic_scale <= 1:
            raise ValueError(f"traffic_scale must be in (0, 1], got {traffic_scale}")
        self.geometry = geometry
        self.profile = profile
        self.clock = clock
        self.traffic_scale = traffic_scale
        if faults is not None and not hasattr(faults, "filter_read"):
            from repro.flash.faults import FaultInjector  # avoid import cycle
            faults = FaultInjector(faults, self)
        self.faults = faults
        if crashes is None and faults is not None:
            crashes = getattr(faults.plan, "crash", None)
        if crashes is not None and not hasattr(crashes, "advance"):
            from repro.flash.faults import PowerLossInjector
            crashes = PowerLossInjector(crashes, self)
        self.crashes = crashes
        n = geometry.num_blocks
        self._bad_blocks: set[int] = set()
        self._data: dict[tuple[int, int], bytes] = {}
        # Per-page out-of-band (spare-area) metadata: real NAND pages carry a
        # few dozen spare bytes the controller uses for logical-address tags
        # and checksums; recovery paths scan it to rebuild mappings.
        self._oob: dict[tuple[int, int], bytes] = {}
        # Page states live in one int8 matrix so batched writes/reads can
        # validate and update whole program-order runs with array slices.
        self._page_state = np.full((n, geometry.pages_per_block), PAGE_ERASED, dtype=np.int8)
        self._next_program_page = [0] * n
        self.erase_counts = [0] * n
        self.total_pages_written = 0
        self.total_pages_read = 0
        self.total_blocks_erased = 0
        if sanitize is None:
            sanitize = sanitizer_enabled()
        self.sanitizer: FlashSanitizer | None = (
            FlashSanitizer(self) if sanitize else None)

    # ------------------------------------------------------------------ checks

    def _retire(self, block: int) -> None:
        if block not in self._bad_blocks:
            self._bad_blocks.add(block)
            if self.faults is not None:
                self.faults.stats.blocks_retired += 1

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.geometry.num_blocks:
            raise FlashError(f"block {block} out of range [0, {self.geometry.num_blocks})")

    def _check_page(self, block: int, page: int) -> None:
        self._check_block(block)
        if not 0 <= page < self.geometry.pages_per_block:
            raise FlashError(f"page {page} out of range [0, {self.geometry.pages_per_block})")

    # ------------------------------------------------------------------- reads

    @property
    def _channel_read_bw(self) -> float:
        return self.profile.flash_read_bw / self.geometry.channels

    @property
    def _channel_write_bw(self) -> float:
        return self.profile.flash_write_bw / self.geometry.channels

    def read_page(self, block: int, page: int) -> bytes:
        """Random single-page read: full access latency, one channel's share
        of the bandwidth."""
        sanitizer = self.sanitizer
        op_start = sanitizer.op_begin() if sanitizer is not None else 0.0
        if self.crashes is not None and self.crashes.advance(1) is not None:
            self.crashes.fire(f"read ({block}, {page})")
        data = self._read_silent(block, page)
        nbytes = int(len(data) * self.traffic_scale)
        seconds = self.profile.flash_read_latency_s + nbytes / self._channel_read_bw
        if self.faults is not None:
            seconds += self.faults.jitter_s(self.profile.flash_read_latency_s)
        self.clock.charge("flash", seconds, nbytes=nbytes)
        self.total_pages_read += 1
        if sanitizer is not None:
            sanitizer.op_end("read_page", op_start)
        if self.faults is not None:
            data = self.faults.filter_read(block, page, data)
        return data

    def read_pages(self, addresses: list[tuple[int, int]]) -> list[bytes]:
        """Batched/streamed read: one latency for the batch, bandwidth for all bytes."""
        if not addresses:
            return []
        sanitizer = self.sanitizer
        op_start = sanitizer.op_begin() if sanitizer is not None else 0.0
        if self.crashes is not None and \
                self.crashes.advance(len(addresses)) is not None:
            self.crashes.fire(f"batched read of {len(addresses)} pages")
        # Group the batch into program-order runs so state validation is one
        # array-slice check per run instead of per page.
        out: list[bytes] = []
        data = self._data
        i, n = 0, len(addresses)
        while i < n:
            block, page0 = addresses[i]
            j, p = i + 1, page0
            while j < n and addresses[j][0] == block and addresses[j][1] == p + 1:
                p += 1
                j += 1
            if j - i == 1:
                out.append(self._read_silent(block, page0))
            else:
                self._check_page(block, page0)
                self._check_page(block, p)
                states = self._page_state[block, page0:p + 1]
                if (states == PAGE_VALID).sum() != len(states):
                    offset = int(np.flatnonzero(states != PAGE_VALID)[0])
                    kind = ("erased" if states[offset] == PAGE_ERASED
                            else "invalidated")
                    raise FlashError(
                        f"read of {kind} page ({block}, {page0 + offset})")
                if sanitizer is not None:
                    for q in range(page0, p + 1):
                        sanitizer.on_read(block, q, data[(block, q)])
                out.extend(data[(block, q)] for q in range(page0, p + 1))
            i = j
        nbytes = int(sum(len(d) for d in out) * self.traffic_scale)
        transfer = self._striped_seconds(
            ((b, len(d)) for (b, _p), d in zip(addresses, out)),
            self._channel_read_bw)
        seconds = self.profile.flash_read_latency_s + transfer
        if self.faults is not None:
            seconds += self.faults.jitter_s(self.profile.flash_read_latency_s)
        self.clock.charge("flash", seconds, nbytes=nbytes, ops=len(addresses))
        self.total_pages_read += len(addresses)
        if sanitizer is not None:
            sanitizer.op_end("read_pages", op_start)
        if self.faults is not None:
            out = self.faults.filter_read_batch(addresses, out)
        return out

    def _striped_seconds(self, block_sizes, channel_bw: float) -> float:
        """Transfer time of a batch: channels run in parallel, so the busiest
        channel decides.  With one channel this is exactly bytes/bandwidth."""
        channels = self.geometry.channels
        if channels == 1:
            total = sum(size for _block, size in block_sizes)
            return total * self.traffic_scale / (channel_bw * 1)
        per_channel = [0] * channels
        for block, size in block_sizes:
            per_channel[self.geometry.channel_of(block)] += size
        return max(per_channel) * self.traffic_scale / channel_bw

    def _read_silent(self, block: int, page: int) -> bytes:
        self._check_page(block, page)
        state = self._page_state[block, page]
        if state != PAGE_VALID:
            # Reading an erased page returns all-ones in real NAND, and an
            # invalidated page's contents are host/FTL garbage; engines must
            # not depend on either, so both are logic errors (never a bare
            # KeyError out of the backing dict).
            kind = "erased" if state == PAGE_ERASED else "invalidated"
            raise FlashError(f"read of {kind} page ({block}, {page})")
        data = self._data[(block, page)]
        if self.sanitizer is not None:
            self.sanitizer.on_read(block, page, data)
        return data

    # ------------------------------------------------------------------ writes

    def write_page(self, block: int, page: int, data: bytes,
                   oob: bytes | None = None) -> None:
        """Program one page; enforces erase-before-write and program order.

        ``oob`` is optional spare-area metadata programmed atomically with
        the page (no extra time: real controllers transfer data+spare in one
        page program).
        """
        sanitizer = self.sanitizer
        op_start = sanitizer.op_begin() if sanitizer is not None else 0.0
        if self.crashes is not None and self.crashes.advance(1) is not None:
            self._crash_during_program(block, page, data)
        try:
            self._write_silent(block, page, data, oob)
        except FlashProgramError:
            # A failed program is only discovered after tProg elapses.
            self.clock.charge("flash", self.profile.flash_write_latency_s)
            raise
        nbytes = int(len(data) * self.traffic_scale)
        seconds = self.profile.flash_write_latency_s + nbytes / self._channel_write_bw
        if self.faults is not None:
            seconds += self.faults.jitter_s(self.profile.flash_write_latency_s)
        self.clock.charge("flash", seconds, nbytes=nbytes)
        if sanitizer is not None:
            sanitizer.op_end("write_page", op_start)

    def write_pages(self, writes: list[tuple[int, int, bytes]],
                    oobs: list[bytes | None] | None = None) -> None:
        """Batched sequential program: one latency for the batch.

        ``oobs``, when given, must parallel ``writes``: spare-area metadata
        programmed with each page.
        """
        if not writes:
            return
        sanitizer = self.sanitizer
        op_start = sanitizer.op_begin() if sanitizer is not None else 0.0
        if self.crashes is not None:
            hit = self.crashes.advance(len(writes))
            if hit is not None:
                self._crash_during_batch(writes, oobs, hit)
        # Group into program-order runs; each run is validated and committed
        # with one array-slice state update instead of per-page bookkeeping.
        i, n = 0, len(writes)
        done = 0
        try:
            while i < n:
                block, page0, _ = writes[i]
                j, p = i + 1, page0
                while j < n and writes[j][0] == block and writes[j][1] == p + 1:
                    p += 1
                    j += 1
                if j - i == 1:
                    self._write_silent(block, page0, writes[i][2],
                                       oobs[i] if oobs else None)
                else:
                    self._program_run(block, page0, writes[i:j],
                                      oobs[i:j] if oobs else None)
                i = j
                done = j
        except FlashProgramError as e:
            # Charge the pages that really landed plus tProg of the failure;
            # callers resume from ``batch_committed`` after remapping.
            e.batch_committed = done + getattr(e, "committed", 0)
            committed = writes[:e.batch_committed]
            nbytes = int(sum(len(d) for _, _, d in committed) * self.traffic_scale)
            transfer = self._striped_seconds(
                ((b, len(d)) for b, _page, d in committed),
                self._channel_write_bw)
            self.clock.charge(
                "flash", self.profile.flash_write_latency_s + transfer,
                nbytes=nbytes, ops=max(1, len(committed)))
            raise
        nbytes = int(sum(len(d) for _, _, d in writes) * self.traffic_scale)
        transfer = self._striped_seconds(
            ((block, len(d)) for block, _page, d in writes),
            self._channel_write_bw)
        seconds = self.profile.flash_write_latency_s + transfer
        if self.faults is not None:
            seconds += self.faults.jitter_s(self.profile.flash_write_latency_s)
        self.clock.charge("flash", seconds, nbytes=nbytes, ops=len(writes))
        if sanitizer is not None:
            sanitizer.op_end("write_pages", op_start)

    def _crash_during_program(self, block: int, page: int, data: bytes) -> None:
        """Power loss hit a single-page program: maybe commit a torn page."""
        if self._can_tear(block, page, data) and self.crashes.tears_page():
            self._commit_torn(block, page, data)
        self.crashes.fire(f"program ({block}, {page})")

    def _crash_during_batch(self, writes, oobs, hit: int) -> None:
        """Power loss hit page ``hit`` of a batched program.

        Pages before the hit landed completely (deep-queued programs ahead
        of the cut had already reported status); the hit page itself may be
        committed *torn* — partially-programmed cells that read back as
        garbage — which is exactly what per-page CRCs and OOB records exist
        to detect at mount.  No time is charged: the host never observes
        the operation completing.
        """
        for k in range(hit):
            block, page, data = writes[k]
            self._commit_unchecked(block, page, data,
                                   oobs[k] if oobs else None)
        block, page, data = writes[hit]
        if self._can_tear(block, page, data) and self.crashes.tears_page():
            self._commit_torn(block, page, data)
        self.crashes.fire(f"batched program ({block}, {page})")

    def _can_tear(self, block: int, page: int, data: bytes) -> bool:
        """A torn commit only makes sense where the program would have been
        legal; otherwise the cut simply precedes an invalid operation."""
        return (0 <= block < self.geometry.num_blocks
                and 0 <= page < self.geometry.pages_per_block
                and block not in self._bad_blocks
                and len(data) <= self.geometry.page_bytes
                and page == self._next_program_page[block]
                and self._page_state[block, page] == PAGE_ERASED)

    def _commit_unchecked(self, block: int, page: int, data: bytes,
                          oob: bytes | None) -> None:
        """Commit one page of a crash-interrupted batch prefix.

        The batch would have passed the normal validation; power loss skips
        fault injection (the dead host draws nothing)."""
        if self.sanitizer is not None:
            self.sanitizer.on_program(block, page, data, oob)
        self._data[(block, page)] = data
        if oob is not None:
            self._oob[(block, page)] = oob
        self._page_state[block, page] = PAGE_VALID
        self._next_program_page[block] = page + 1
        self.total_pages_written += 1

    def _commit_torn(self, block: int, page: int, data: bytes) -> None:
        """Commit a torn page: a corrupted prefix of the intended data with
        garbage beyond it, no OOB (the spare area never finished)."""
        torn = self.crashes.torn_data(data)
        if self.sanitizer is not None:
            self.sanitizer.on_program(block, page, torn, None, torn=True)
        self._data[(block, page)] = torn
        self._page_state[block, page] = PAGE_VALID
        self._next_program_page[block] = page + 1
        self.total_pages_written += 1

    def _program_run(self, block: int, page0: int, run: list[tuple[int, int, bytes]],
                     oobs: list[bytes | None] | None = None) -> None:
        """Program a contiguous in-order run of pages within one block.

        Enforces exactly the constraints of :meth:`_write_silent` — erased
        state, program order, page-size bound — then commits the whole run
        with one state-slice assignment and one dict update.
        """
        count = len(run)
        last = page0 + count - 1
        self._check_page(block, page0)
        self._check_page(block, last)
        if block in self._bad_blocks:
            raise FlashProgramError(
                f"program to retired bad block {block}", block=block, page=page0)
        page_bytes = self.geometry.page_bytes
        if any(len(d) > page_bytes for _, _, d in run):
            oversize = next(len(d) for _, _, d in run if len(d) > page_bytes)
            raise FlashError(f"write of {oversize} B exceeds page size {page_bytes}")
        if page0 != self._next_program_page[block]:
            raise FlashError(
                f"out-of-order program of page {page0} in block {block}; "
                f"next programmable page is {self._next_program_page[block]}"
            )
        states = self._page_state[block, page0:last + 1]
        if states.any():  # PAGE_ERASED == 0
            bad = page0 + int(np.flatnonzero(states)[0])
            raise FlashError(f"write to un-erased page ({block}, {bad})")
        failed = (self.faults.first_program_failure(block, page0, count)
                  if self.faults is not None else None)
        if failed is not None:
            # Pages before the failure landed; the block is retired at the
            # first program-status failure (the controller policy).
            if failed:
                if self.sanitizer is not None:
                    for k, (_, p, d) in enumerate(run[:failed]):
                        self.sanitizer.on_program(
                            block, p, d, oobs[k] if oobs is not None else None)
                self._data.update(((block, p), d) for _, p, d in run[:failed])
                if oobs is not None:
                    self._oob.update(
                        ((block, p), o) for (_, p, _), o in
                        zip(run[:failed], oobs[:failed]) if o is not None)
                self._page_state[block, page0:page0 + failed] = PAGE_VALID
                self.total_pages_written += failed
            self._next_program_page[block] = page0 + failed
            self._retire(block)
            error = FlashProgramError(
                f"program failure at ({block}, {page0 + failed}); block retired",
                block=block, page=page0 + failed)
            error.committed = failed
            raise error
        if self.sanitizer is not None:
            for k, (_, p, d) in enumerate(run):
                self.sanitizer.on_program(
                    block, p, d, oobs[k] if oobs is not None else None)
        self._data.update(((block, p), d) for _, p, d in run)
        if oobs is not None:
            self._oob.update(((block, p), o) for (_, p, _), o in zip(run, oobs)
                             if o is not None)
        self._page_state[block, page0:last + 1] = PAGE_VALID
        self._next_program_page[block] = last + 1
        self.total_pages_written += count

    def _write_silent(self, block: int, page: int, data: bytes,
                      oob: bytes | None = None) -> None:
        self._check_page(block, page)
        if block in self._bad_blocks:
            raise FlashProgramError(
                f"program to retired bad block {block}", block=block, page=page)
        if len(data) > self.geometry.page_bytes:
            raise FlashError(f"write of {len(data)} B exceeds page size {self.geometry.page_bytes}")
        if self._page_state[block, page] != PAGE_ERASED:
            raise FlashError(f"write to un-erased page ({block}, {page})")
        if page != self._next_program_page[block]:
            raise FlashError(
                f"out-of-order program of page {page} in block {block}; "
                f"next programmable page is {self._next_program_page[block]}"
            )
        if self.faults is not None and \
                self.faults.first_program_failure(block, page, 1) is not None:
            self._retire(block)
            raise FlashProgramError(
                f"program failure at ({block}, {page}); block retired",
                block=block, page=page)
        if self.sanitizer is not None:
            self.sanitizer.on_program(block, page, data, oob)
        self._data[(block, page)] = data
        if oob is not None:
            self._oob[(block, page)] = oob
        self._page_state[block, page] = PAGE_VALID
        self._next_program_page[block] = page + 1
        self.total_pages_written += 1

    # ------------------------------------------------------------ invalidation

    # Free by design: invalidation flips host/FTL metadata, no flash command
    # is issued, so there is no time to charge.
    def invalidate_page(self, block: int, page: int) -> None:  # repro-lint: disable=RL006
        """Mark a written page's contents dead (host/FTL metadata, no flash op)."""
        self._check_page(block, page)
        if self._page_state[block, page] != PAGE_VALID:
            raise FlashError(f"invalidate of non-valid page ({block}, {page})")
        if self.sanitizer is not None:
            self.sanitizer.on_invalidate(block, page)
        self._page_state[block, page] = PAGE_INVALID
        self._data.pop((block, page), None)
        self._oob.pop((block, page), None)

    # ------------------------------------------------------------------ erases

    def erase_block(self, block: int, background: bool = False) -> None:
        """Erase a whole block; any valid pages in it are destroyed.

        ``background=True`` models an erase pipelined by the device behind
        other work (AOFFS reclaiming deleted files): wear and busy time are
        still accounted, but the foreground clock does not stall.  GC-driven
        erases inside an FTL stay foreground — they really do block writes.
        """
        self._check_block(block)
        if block in self._bad_blocks:
            raise FlashEraseError(f"erase of retired bad block {block}", block=block)
        sanitizer = self.sanitizer
        op_start, busy_start = 0.0, 0.0
        if sanitizer is not None:
            sanitizer.on_erase(block)
            op_start = sanitizer.op_begin()
            busy_start = self.clock.busy_s("flash")
        if self.crashes is not None and self.crashes.advance(1) is not None:
            # Power loss during the erase pulse: the cells either finished
            # clearing or kept their (now half-stressed) contents; the host
            # never saw status either way, so no time is charged.
            if self.crashes.erase_completes():
                if sanitizer is not None:
                    sanitizer.on_erased(block)
                self._page_state[block, :] = PAGE_ERASED
                for page in range(self.geometry.pages_per_block):
                    self._data.pop((block, page), None)
                    self._oob.pop((block, page), None)
                self._next_program_page[block] = 0
                self.erase_counts[block] += 1
                self.total_blocks_erased += 1
            self.crashes.fire(f"erase of block {block}")
        if self.faults is not None:
            reason = self.faults.erase_fails(block)
            if reason is not None:
                # The failed erase still cycles (and stresses) the cells
                # before status comes back; data in the block stays readable.
                self.erase_counts[block] += 1
                self._retire(block)
                if background:
                    self.clock.charge_background("flash", self.profile.flash_erase_latency_s)
                else:
                    self.clock.charge("flash", self.profile.flash_erase_latency_s)
                detail = ("endurance limit reached" if reason == "wear"
                          else "erase-status failure")
                raise FlashEraseError(
                    f"erase failure on block {block} ({detail}); block retired",
                    block=block)
        if sanitizer is not None:
            sanitizer.on_erased(block)
        self._page_state[block, :] = PAGE_ERASED
        for page in range(self.geometry.pages_per_block):
            self._data.pop((block, page), None)
            self._oob.pop((block, page), None)
        self._next_program_page[block] = 0
        self.erase_counts[block] += 1
        self.total_blocks_erased += 1
        seconds = self.profile.flash_erase_latency_s
        if self.faults is not None:
            seconds += self.faults.jitter_s(self.profile.flash_erase_latency_s)
        if background:
            self.clock.charge_background("flash", seconds)
            if sanitizer is not None:
                sanitizer.op_end_background("erase_block", busy_start)
        else:
            self.clock.charge("flash", seconds)
            if sanitizer is not None:
                sanitizer.op_end("erase_block", op_start)

    # --------------------------------------------------------------- recovery

    # Free by design: OOB bytes ride along with every page transfer, and
    # recovery-time sweeps charge their latency via mount_scan().
    def read_oob(self, block: int, page: int) -> bytes | None:  # repro-lint: disable=RL006
        """Spare-area metadata of a valid page (``None`` if none was ever
        programmed — e.g. a torn page).  Free: OOB rides along with every
        page transfer, and recovery scans charge via :meth:`mount_scan`."""
        self._check_page(block, page)
        if self._page_state[block, page] != PAGE_VALID:
            raise FlashError(f"OOB read of non-valid page ({block}, {page})")
        oob = self._oob.get((block, page))
        if self.sanitizer is not None:
            self.sanitizer.on_read_oob(block, page, oob)
        return oob

    def mount_scan(self) -> list[tuple[int, int, bytes | None]]:
        """Recovery-time sweep: every valid page's ``(block, page, oob)``.

        Models the controller's mount scan reading just the spare areas of
        non-erased blocks — charged as one page-read latency per scanned
        block (the OOB bytes themselves are noise next to the latency).
        Retired bad blocks are included: they may still hold the only valid
        copy of data whose relocation a crash interrupted.
        """
        sanitizer = self.sanitizer
        op_start = sanitizer.op_begin() if sanitizer is not None else 0.0
        results: list[tuple[int, int, bytes | None]] = []
        scanned = 0
        for block in range(self.geometry.num_blocks):
            if not self._page_state[block].any():  # fully erased
                continue
            if self.crashes is not None and self.crashes.advance(1) is not None:
                self.crashes.fire(f"mount scan of block {block}")
            scanned += 1
            valid = np.flatnonzero(self._page_state[block] == PAGE_VALID)
            results.extend((block, int(p), self._oob.get((block, int(p))))
                           for p in valid)
        if scanned:
            self.clock.charge("flash",
                              scanned * self.profile.flash_read_latency_s,
                              ops=scanned)
            if sanitizer is not None:
                for block, page, oob in results:
                    sanitizer.on_read_oob(block, page, oob)
                sanitizer.op_end("mount_scan", op_start)
        return results

    # ------------------------------------------------------------------- state

    def page_state(self, block: int, page: int) -> int:
        self._check_page(block, page)
        return int(self._page_state[block, page])

    def valid_pages(self, block: int) -> int:
        self._check_block(block)
        return int(np.count_nonzero(self._page_state[block] == PAGE_VALID))

    def block_is_erased(self, block: int) -> bool:
        self._check_block(block)
        return not self._page_state[block].any()  # PAGE_ERASED == 0

    def programmed_pages(self, block: int) -> int:
        """Pages of ``block`` already programmed (valid or invalidated)."""
        self._check_block(block)
        return self._next_program_page[block]

    def is_bad(self, block: int) -> bool:
        self._check_block(block)
        return block in self._bad_blocks

    def mark_bad(self, block: int) -> None:
        """Retire a block administratively (host-side grown-defect list)."""
        self._check_block(block)
        self._bad_blocks.add(block)

    @property
    def bad_block_count(self) -> int:
        return len(self._bad_blocks)
