"""File stores: one interface, two storage stacks.

Everything above the storage layer (sort-reduce runs, graph files, vertex
data) talks to a *file store* with an append/seal/read/delete interface.
Two implementations exist:

* :class:`~repro.flash.aoffs.AppendOnlyFlashFS` — the paper's AOFFS on raw
  flash (used by GraFBoost's storage device).
* :class:`SSDFileSystem` (here) — a conventional file system on a commodity
  SSD: every operation goes through the page-mapped FTL and pays its
  translation overhead.  This is what GraFSoft and the baseline systems run
  on, and the AOFFS-vs-FTL ablation compares the two directly.

The SSD store also supports in-place page updates (:meth:`write_at`), which
AOFFS deliberately cannot do — baselines that random-update their state
exercise the FTL's garbage collector exactly as they would a real SSD.
"""

from __future__ import annotations

import numpy as np

from repro.flash.device import FlashDevice, FlashError, FlashOutOfSpaceError
from repro.flash.faults import page_crc, verify_pages
from repro.flash.ftl import SSD
from repro.flash.journal import (
    METALOG_MAGIC,
    RecoveryStats,
    chunked_file_records,
    decode_frame,
    encode_frame,
    encode_frames,
)

#: Pages per metadata-log commit record: bounds the record's JSON size so
#: it always fits one log frame, whatever the append size.
COMMIT_CHUNK_PAGES = 128


class _SSDFile:
    __slots__ = ("name", "lpns", "size", "tail_parts", "tail_len",
                 "flushed_pages", "sealed", "page_crcs")

    def __init__(self, name: str):
        self.name = name
        self.lpns: list[int] = []
        self.size = 0
        # Unflushed bytes as a fragment list: appending never recopies the
        # accumulated tail, and a flush joins the fragments exactly once.
        self.tail_parts: list[bytes] = []
        self.tail_len = 0
        self.flushed_pages = 0
        self.sealed = False
        # Per-flushed-page CRC-32, recorded only under fault injection.
        self.page_crcs: list[int] = []

    def tail_bytes(self) -> bytes:
        """The unflushed tail as one bytes object (consolidates in place)."""
        if len(self.tail_parts) != 1:
            joined = b"".join(self.tail_parts)
            self.tail_parts = [joined] if joined else []
            return joined
        return self.tail_parts[0]


class SSDFileSystem:
    """A minimal extent-per-page file system over an FTL-backed SSD.

    ``prefetch_pages`` models the deep lookahead/readahead a software stack
    runs on a commodity SSD to hide its access latency (§V-C.3's lookahead
    buffers, §IV-F's 4 MB transfer chunks): reads shorter than the buffer
    still transfer the whole buffer, and the overshoot is charged and
    tracked in ``prefetch_waste_bytes``.
    """

    def __init__(self, ssd: SSD, prefetch_pages: int = 64,
                 durable: bool = False, meta_lpns: int | None = None):
        self.ssd = ssd
        self.prefetch_pages = prefetch_pages
        self.prefetch_waste_bytes = 0
        self.durable = durable
        self.recovery = RecoveryStats()
        self._files: dict[str, _SSDFile] = {}
        if not durable:
            self._free_lpns: list[int] = list(
                range(ssd.logical_pages - 1, -1, -1))
            return
        # Durable mode reserves the low logical pages as a metadata log:
        # two ping-pong halves, each large enough for a full snapshot, so a
        # crash mid-compaction never destroys the only copy of the table.
        # Below that sits the FTL's own OOB recovery, so the log's physical
        # placement is itself crash-safe.
        if not ssd.ftl.durable:
            raise FlashError(
                "durable SSDFileSystem needs a durable SSD (OOB records)")
        if meta_lpns is None:
            meta_lpns = max(8, min(64, ssd.logical_pages // 8))
        meta_lpns -= meta_lpns % 2
        if ssd.logical_pages <= 2 * meta_lpns or meta_lpns < 4:
            raise FlashError(
                f"device too small for a {meta_lpns}-page metadata log")
        self.meta_lpns = meta_lpns
        self._half_lpns = meta_lpns // 2
        self._free_lpns = list(range(ssd.logical_pages - 1, meta_lpns - 1, -1))
        self._pending_records: list[dict] = []
        self._meta_seq = 0
        self._meta_half = 0
        self._meta_cursor = 0
        if any(lpn in ssd.ftl._map for lpn in range(meta_lpns)):
            self._mount()
        else:
            self._write_snapshot()

    @classmethod
    def mount(cls, ssd: SSD, prefetch_pages: int = 64,
              meta_lpns: int | None = None) -> "SSDFileSystem":
        """Remount a durable store after power loss (replays the metadata log)."""
        return cls(ssd, prefetch_pages=prefetch_pages, durable=True,
                   meta_lpns=meta_lpns)

    def _charge_prefetch(self, f: _SSDFile, first_page: int, pages_read: int) -> None:
        """Charge the unused tail of the readahead buffer on a small read.

        Readahead stops at end-of-file, so reading a small file whole wastes
        nothing; the waste appears on short reads inside large files.
        """
        effective = min(self.prefetch_pages, f.flushed_pages - first_page)
        shortfall = effective - pages_read
        if shortfall <= 0:
            return
        nbytes = shortfall * self.page_bytes
        profile = self.device.profile
        self.device.clock.charge("flash", nbytes / profile.flash_read_bw, nbytes=nbytes)
        self.prefetch_waste_bytes += nbytes

    @property
    def device(self) -> FlashDevice:
        return self.ssd.device

    @property
    def page_bytes(self) -> int:
        return self.ssd.page_bytes

    # ---------------------------------------------------------------- queries

    def exists(self, name: str) -> bool:
        return name in self._files

    def is_sealed(self, name: str) -> bool:
        return self._file(name).sealed

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def size(self, name: str) -> int:
        return self._file(name).size

    @property
    def free_bytes(self) -> int:
        return len(self._free_lpns) * self.page_bytes

    def _file(self, name: str) -> _SSDFile:
        if name not in self._files:
            raise FileNotFoundError(f"no SSD file named {name!r}")
        return self._files[name]

    # ---------------------------------------------------------------- writing

    def create(self, name: str) -> None:
        if name in self._files:
            raise FileExistsError(f"SSD file {name!r} already exists")
        self._files[name] = _SSDFile(name)
        self._log({"op": "create", "name": name})
        self._commit_log()

    def append(self, name: str, data: bytes) -> None:
        if name not in self._files:
            self._files[name] = _SSDFile(name)
            self._log({"op": "create", "name": name})
        f = self._files[name]
        if f.sealed:
            raise FlashError(f"append to sealed SSD file {name!r}")
        if data:
            f.tail_parts.append(bytes(data))
            f.tail_len += len(data)
        f.size += len(data)
        self._flush_full_pages(f)
        self._commit_log()

    def _allocate_lpn(self, f: _SSDFile) -> int:
        return self._allocate_lpns(f, 1)[0]

    def _allocate_lpns(self, f: _SSDFile, n: int) -> list[int]:
        """Batch allocation, in the same order as ``n`` single pops."""
        if len(self._free_lpns) < n:
            raise FlashOutOfSpaceError(
                f"SSD file system out of space appending to {f.name!r}: "
                f"{n} pages needed, {len(self._free_lpns)} free")
        lpns = self._free_lpns[-n:][::-1]
        del self._free_lpns[len(self._free_lpns) - n:]
        f.lpns.extend(lpns)
        return lpns

    def _flush_full_pages(self, f: _SSDFile) -> None:
        page_bytes = self.page_bytes
        n_full = f.tail_len // page_bytes
        if n_full == 0:
            return
        flush_bytes = n_full * page_bytes
        blob = f.tail_bytes()
        lpns = self._allocate_lpns(f, n_full)
        # Zero-copy page views into the joined tail; the device stores them
        # as-is, and every consumer goes through the buffer protocol.
        view = memoryview(blob)
        writes = [(lpn, view[start:start + page_bytes])
                  for lpn, start in zip(lpns, range(0, flush_bytes, page_bytes))]
        self.ssd.write_pages(writes)
        if self.device.faults is not None or self.durable:
            f.page_crcs.extend(page_crc(d) for _lpn, d in writes)
        remainder = blob[flush_bytes:]
        f.tail_parts = [remainder] if remainder else []
        f.tail_len -= flush_bytes
        first = f.flushed_pages
        f.flushed_pages += n_full
        # Commit records written only after the data pages are on flash:
        # a crash in between leaves unreferenced pages, never torn files.
        # Chunked so a multi-megabyte append's page list always fits one
        # metadata-log frame; ``flushed`` is absolute and lpns/crcs extend
        # on replay, so a crash mid-sequence recovers a consistent prefix.
        if self.durable:
            crcs = f.page_crcs[-n_full:]
            for cs in range(0, n_full, COMMIT_CHUNK_PAGES):
                ce = min(cs + COMMIT_CHUNK_PAGES, n_full)
                self._log({"op": "commit", "name": f.name,
                           "flushed": first + ce, "blocks": lpns[cs:ce],
                           "crcs": crcs[cs:ce]})

    def seal(self, name: str) -> None:
        f = self._file(name)
        if f.sealed:
            return
        if f.tail_len:
            tail = f.tail_bytes()
            padded = tail + b"\x00" * (self.page_bytes - len(tail))
            lpn = self._allocate_lpn(f)
            self.ssd.write_page(lpn, padded)
            if self.device.faults is not None or self.durable:
                f.page_crcs.append(page_crc(padded))
            f.tail_parts = []
            f.tail_len = 0
            f.flushed_pages += 1
            self._log({"op": "commit", "name": f.name,
                       "flushed": f.flushed_pages, "blocks": [lpn],
                       "crcs": f.page_crcs[-1:]})
        f.sealed = True
        self._log({"op": "seal", "name": f.name, "size": f.size})
        self._commit_log()

    def write_at(self, name: str, offset: int, data: bytes) -> None:
        """In-place update of already-flushed bytes (page-aligned regions may
        span pages).  This is the random-update path AOFFS refuses to offer;
        it reads, modifies and rewrites every touched page through the FTL.
        """
        f = self._file(name)
        flushed_bytes = f.flushed_pages * self.page_bytes
        if offset < 0 or offset + len(data) > flushed_bytes:
            raise ValueError(
                f"write_at [{offset}, {offset + len(data)}) outside flushed "
                f"region [0, {flushed_bytes}) of {name!r}"
            )
        page_bytes = self.page_bytes
        pos = 0
        while pos < len(data):
            page_index, in_page = divmod(offset + pos, page_bytes)
            n = min(page_bytes - in_page, len(data) - pos)
            lpn = f.lpns[page_index]
            page = bytearray(self.ssd.read_page(lpn))
            page[in_page:in_page + n] = data[pos:pos + n]
            updated = bytes(page)
            self.ssd.write_page(lpn, updated)
            if page_index < len(f.page_crcs):
                f.page_crcs[page_index] = page_crc(updated)
                self._log({"op": "patch", "name": f.name, "index": page_index,
                           "crc": f.page_crcs[page_index]})
            pos += n
        self._commit_log()

    # ---------------------------------------------------------------- reading

    def read(self, name: str, offset: int = 0, nbytes: int | None = None) -> bytes:
        f = self._file(name)
        if nbytes is None:
            nbytes = f.size - offset
        if offset < 0 or nbytes < 0 or offset + nbytes > f.size:
            raise ValueError(
                f"read [{offset}, {offset + nbytes}) out of range for "
                f"{name!r} of size {f.size}"
            )
        if nbytes == 0:
            return b""
        page_bytes = self.page_bytes
        flushed_bytes = f.flushed_pages * page_bytes
        parts: list[bytes] = []
        flash_end = min(offset + nbytes, flushed_bytes)
        if offset < flushed_bytes:
            first_page = offset // page_bytes
            last_page = (flash_end - 1) // page_bytes
            pages = self.ssd.read_pages(f.lpns[first_page:last_page + 1])
            if self.device.faults is not None:
                pages = verify_pages(
                    pages, f.page_crcs, first_page,
                    lambda i: self.ssd.read_page(f.lpns[i]),
                    self.device.faults, f"ssd:{f.name}")
            self._charge_prefetch(f, first_page, last_page + 1 - first_page)
            blob = b"".join(pages)
            start = offset - first_page * page_bytes
            parts.append(blob[start:start + (flash_end - offset)])
        if offset + nbytes > flushed_bytes:
            tail_start = max(0, offset - flushed_bytes)
            tail_end = offset + nbytes - flushed_bytes
            parts.append(f.tail_bytes()[tail_start:tail_end])
        return b"".join(parts)

    def stream(self, name: str, chunk_bytes: int):
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        size = self._file(name).size
        offset = 0
        while offset < size:
            n = min(chunk_bytes, size - offset)
            yield self.read(name, offset, n)
            offset += n

    # ----------------------------------------------------------- numpy helpers

    def append_array(self, name: str, array: np.ndarray) -> None:
        self.append(name, np.ascontiguousarray(array).tobytes())

    def read_array(self, name: str, dtype: np.dtype, start_item: int = 0,
                   count: int | None = None) -> np.ndarray:
        dtype = np.dtype(dtype)
        if count is None:
            count = self.size(name) // dtype.itemsize - start_item
        raw = self.read(name, start_item * dtype.itemsize, count * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype)

    # --------------------------------------------------------------- deletion

    def delete(self, name: str) -> None:
        f = self._file(name)
        # Metadata before trims: a crash mid-trim then leaves orphaned pages
        # (which mount reclaims), never a file referencing trimmed pages.
        # The table mutation must precede the commit so a compaction fired
        # inside it snapshots the post-delete state.
        self._log({"op": "delete", "name": name})
        del self._files[name]
        self._commit_log()
        for lpn in f.lpns:
            self.ssd.trim(lpn)
            self._free_lpns.append(lpn)

    def rename(self, old: str, new: str, overwrite: bool = False) -> None:
        f = self._file(old)
        victim = None
        if new in self._files:
            if not overwrite or new == old:
                raise FileExistsError(f"SSD file {new!r} already exists")
            # Atomic replace: delete + rename land in one journal commit, so
            # a crash shows either the old target or the renamed file, never
            # neither.
            victim = self._files[new]
            self._log({"op": "delete", "name": new})
        self._log({"op": "rename", "old": old, "new": new})
        f.name = new
        del self._files[old]
        self._files[new] = f
        self._commit_log()
        if victim is not None:
            for lpn in victim.lpns:
                self.ssd.trim(lpn)
                self._free_lpns.append(lpn)

    # ----------------------------------------------------- durable metadata log
    #
    # The log lives in logical pages [0, meta_lpns), split into two halves.
    # Incremental frames append at a cursor inside the active half; when the
    # half fills, a snapshot of the whole file table is written to the OTHER
    # half (first frame: a "reset" record naming the snapshot's frame count)
    # and the cursor moves there.  Replay picks the newest reset whose
    # snapshot is complete, so a crash mid-compaction falls back to the
    # previous generation, which is still intact in the other half.

    def _log(self, *records: dict) -> None:
        if self.durable:
            self._pending_records.extend(records)

    def _commit_log(self) -> None:
        if not self.durable or not self._pending_records:
            return
        records = self._pending_records
        self._pending_records = []
        frames = encode_frames(METALOG_MAGIC, self._meta_seq, records,
                               self.page_bytes)
        if self._meta_cursor + len(frames) > self._half_lpns:
            # Compact instead: the snapshot is built from the live file
            # table, which already reflects every pending record, so
            # re-logging them after it would double-apply on replay.
            self._write_snapshot()
            return
        self._meta_seq += len(frames)
        base = self._meta_half * self._half_lpns
        for frame in frames:
            self.ssd.write_page(base + self._meta_cursor, frame)
            self._meta_cursor += 1

    def _write_snapshot(self) -> None:
        """Compact: snapshot the file table into the other half."""
        records: list[dict] = []
        for name in sorted(self._files):
            f = self._files[name]
            records.extend(chunked_file_records(
                name, f.size, f.flushed_pages, f.sealed, f.lpns, f.page_crcs))
        body = encode_frames(METALOG_MAGIC, self._meta_seq + 1, records,
                             self.page_bytes)
        total = 1 + len(body)
        if total > self._half_lpns:
            raise FlashOutOfSpaceError(
                f"metadata snapshot of {total} frames exceeds the "
                f"{self._half_lpns}-page log half")
        head = encode_frame(METALOG_MAGIC, self._meta_seq,
                            [{"op": "reset", "frames": total}],
                            self.page_bytes)
        target = 1 - self._meta_half if self._meta_cursor else self._meta_half
        base = target * self._half_lpns
        for i, frame in enumerate([head] + body):
            self.ssd.write_page(base + i, frame)
        self._meta_half = target
        self._meta_cursor = total
        self._meta_seq += total

    def _mount(self) -> None:
        stats = self.recovery
        stats.mounts += 1
        ftl_map = self.ssd.ftl._map
        frames: dict[int, tuple[int, list[dict]]] = {}
        for lpn in range(self.meta_lpns):
            if lpn not in ftl_map:
                continue
            decoded = decode_frame(METALOG_MAGIC, self.ssd.read_page(lpn))
            if decoded is None:
                stats.torn_frames += 1
                continue
            seq, records = decoded
            frames[seq] = (lpn, records)
        # Newest complete snapshot wins; an incomplete one (crash mid-
        # compaction) is skipped in favour of the previous generation.
        start_seq = None
        for seq in sorted(frames, reverse=True):
            records = frames[seq][1]
            if records and records[0].get("op") == "reset":
                total = int(records[0]["frames"])
                if all(seq + k in frames for k in range(total)):
                    start_seq = seq
                    break
        self._files = {}
        applied_lpns = [-1]
        if start_seq is not None:
            seq = start_seq
            while seq in frames:
                lpn, records = frames[seq]
                applied_lpns.append(lpn)
                for record in records:
                    self._apply_record(record)
                    stats.replayed_records += 1
                stats.replayed_frames += 1
                seq += 1
            self._meta_seq = seq
        else:
            # Nothing replayable (all frames torn): start a fresh generation
            # above every sequence number ever seen.
            self._meta_seq = max(frames, default=-1) + 1
        stats.recovered_files = len(self._files)
        self._fix_tails()
        self._rebuild_free_lpns()
        last = max(applied_lpns)
        if last >= 0:
            self._meta_half = last // self._half_lpns
            self._meta_cursor = last % self._half_lpns + 1
        else:
            self._meta_half = 0
            self._meta_cursor = 0
            self._write_snapshot()

    def _apply_record(self, r: dict) -> None:
        op = r["op"]
        if op == "reset":
            self._files = {}
        elif op == "create":
            self._files[r["name"]] = _SSDFile(r["name"])
        elif op == "commit":
            f = self._files[r["name"]]
            f.lpns.extend(r["blocks"])
            f.flushed_pages = int(r["flushed"])
            f.size = f.flushed_pages * self.page_bytes
            f.page_crcs.extend(r["crcs"])
        elif op == "seal":
            f = self._files[r["name"]]
            f.sealed = True
            f.size = int(r["size"])
        elif op == "delete":
            self._files.pop(r["name"], None)
        elif op == "rename":
            f = self._files.pop(r["old"])
            f.name = r["new"]
            self._files[r["new"]] = f
        elif op == "patch":
            f = self._files[r["name"]]
            f.page_crcs[int(r["index"])] = int(r["crc"])
        elif op == "file":
            f = _SSDFile(r["name"])
            f.size = int(r["size"])
            f.flushed_pages = int(r["flushed"])
            f.sealed = bool(r["sealed"])
            f.lpns = list(r["blocks"])
            f.page_crcs = list(r["crcs"])
            self._files[r["name"]] = f
        elif op == "filex":
            f = self._files[r["name"]]
            f.lpns.extend(r["blocks"])
            f.page_crcs.extend(r["crcs"])

    def _fix_tails(self) -> None:
        """Snap recovered files back to their last committed page."""
        stats = self.recovery
        ftl_map = self.ssd.ftl._map
        for f in self._files.values():
            mapped = len(f.lpns)
            for i, lpn in enumerate(f.lpns):
                if lpn not in ftl_map:
                    mapped = i
                    break
            if mapped < len(f.lpns):
                if f.sealed:
                    raise FlashError(
                        f"sealed SSD file {f.name!r} lost page {mapped}: "
                        f"lpn {f.lpns[mapped]} is unmapped after recovery")
                stats.discarded_pages += len(f.lpns) - mapped
                stats.truncated_files += 1
                del f.lpns[mapped:]
                del f.page_crcs[mapped:]
                f.flushed_pages = mapped
                f.size = mapped * self.page_bytes
            elif not f.sealed and f.size != f.flushed_pages * self.page_bytes:
                # The unflushed RAM tail died with power.
                stats.truncated_files += 1
                f.size = f.flushed_pages * self.page_bytes

    def _rebuild_free_lpns(self) -> None:
        """Free = everything above the log not owned by a file; orphaned
        mapped pages (committed data whose metadata commit never landed) are
        trimmed back to the FTL."""
        stats = self.recovery
        used = {lpn for f in self._files.values() for lpn in f.lpns}
        for lpn in list(self.ssd.ftl._map):
            if lpn >= self.meta_lpns and lpn not in used:
                self.ssd.trim(lpn)
                stats.discarded_pages += 1
        self._free_lpns = [lpn for lpn
                           in range(self.ssd.logical_pages - 1,
                                    self.meta_lpns - 1, -1)
                           if lpn not in used]
