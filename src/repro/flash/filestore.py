"""File stores: one interface, two storage stacks.

Everything above the storage layer (sort-reduce runs, graph files, vertex
data) talks to a *file store* with an append/seal/read/delete interface.
Two implementations exist:

* :class:`~repro.flash.aoffs.AppendOnlyFlashFS` — the paper's AOFFS on raw
  flash (used by GraFBoost's storage device).
* :class:`SSDFileSystem` (here) — a conventional file system on a commodity
  SSD: every operation goes through the page-mapped FTL and pays its
  translation overhead.  This is what GraFSoft and the baseline systems run
  on, and the AOFFS-vs-FTL ablation compares the two directly.

The SSD store also supports in-place page updates (:meth:`write_at`), which
AOFFS deliberately cannot do — baselines that random-update their state
exercise the FTL's garbage collector exactly as they would a real SSD.
"""

from __future__ import annotations

import numpy as np

from repro.flash.device import FlashDevice, FlashError
from repro.flash.faults import page_crc, verify_pages
from repro.flash.ftl import SSD


class _SSDFile:
    __slots__ = ("name", "lpns", "size", "tail_parts", "tail_len",
                 "flushed_pages", "sealed", "page_crcs")

    def __init__(self, name: str):
        self.name = name
        self.lpns: list[int] = []
        self.size = 0
        # Unflushed bytes as a fragment list: appending never recopies the
        # accumulated tail, and a flush joins the fragments exactly once.
        self.tail_parts: list[bytes] = []
        self.tail_len = 0
        self.flushed_pages = 0
        self.sealed = False
        # Per-flushed-page CRC-32, recorded only under fault injection.
        self.page_crcs: list[int] = []

    def tail_bytes(self) -> bytes:
        """The unflushed tail as one bytes object (consolidates in place)."""
        if len(self.tail_parts) != 1:
            joined = b"".join(self.tail_parts)
            self.tail_parts = [joined] if joined else []
            return joined
        return self.tail_parts[0]


class SSDFileSystem:
    """A minimal extent-per-page file system over an FTL-backed SSD.

    ``prefetch_pages`` models the deep lookahead/readahead a software stack
    runs on a commodity SSD to hide its access latency (§V-C.3's lookahead
    buffers, §IV-F's 4 MB transfer chunks): reads shorter than the buffer
    still transfer the whole buffer, and the overshoot is charged and
    tracked in ``prefetch_waste_bytes``.
    """

    def __init__(self, ssd: SSD, prefetch_pages: int = 64):
        self.ssd = ssd
        self.prefetch_pages = prefetch_pages
        self.prefetch_waste_bytes = 0
        self._files: dict[str, _SSDFile] = {}
        self._free_lpns: list[int] = list(range(ssd.logical_pages - 1, -1, -1))

    def _charge_prefetch(self, f: _SSDFile, first_page: int, pages_read: int) -> None:
        """Charge the unused tail of the readahead buffer on a small read.

        Readahead stops at end-of-file, so reading a small file whole wastes
        nothing; the waste appears on short reads inside large files.
        """
        effective = min(self.prefetch_pages, f.flushed_pages - first_page)
        shortfall = effective - pages_read
        if shortfall <= 0:
            return
        nbytes = shortfall * self.page_bytes
        profile = self.device.profile
        self.device.clock.charge("flash", nbytes / profile.flash_read_bw, nbytes=nbytes)
        self.prefetch_waste_bytes += nbytes

    @property
    def device(self) -> FlashDevice:
        return self.ssd.device

    @property
    def page_bytes(self) -> int:
        return self.ssd.page_bytes

    # ---------------------------------------------------------------- queries

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def size(self, name: str) -> int:
        return self._file(name).size

    @property
    def free_bytes(self) -> int:
        return len(self._free_lpns) * self.page_bytes

    def _file(self, name: str) -> _SSDFile:
        if name not in self._files:
            raise FileNotFoundError(f"no SSD file named {name!r}")
        return self._files[name]

    # ---------------------------------------------------------------- writing

    def create(self, name: str) -> None:
        if name in self._files:
            raise FileExistsError(f"SSD file {name!r} already exists")
        self._files[name] = _SSDFile(name)

    def append(self, name: str, data: bytes) -> None:
        if name not in self._files:
            self.create(name)
        f = self._files[name]
        if f.sealed:
            raise FlashError(f"append to sealed SSD file {name!r}")
        if data:
            f.tail_parts.append(bytes(data))
            f.tail_len += len(data)
        f.size += len(data)
        self._flush_full_pages(f)

    def _allocate_lpn(self, f: _SSDFile) -> int:
        return self._allocate_lpns(f, 1)[0]

    def _allocate_lpns(self, f: _SSDFile, n: int) -> list[int]:
        """Batch allocation, in the same order as ``n`` single pops."""
        if len(self._free_lpns) < n:
            raise FlashError(f"SSD file system out of space appending to {f.name!r}")
        lpns = self._free_lpns[-n:][::-1]
        del self._free_lpns[len(self._free_lpns) - n:]
        f.lpns.extend(lpns)
        return lpns

    def _flush_full_pages(self, f: _SSDFile) -> None:
        page_bytes = self.page_bytes
        n_full = f.tail_len // page_bytes
        if n_full == 0:
            return
        flush_bytes = n_full * page_bytes
        blob = f.tail_bytes()
        lpns = self._allocate_lpns(f, n_full)
        # Zero-copy page views into the joined tail; the device stores them
        # as-is, and every consumer goes through the buffer protocol.
        view = memoryview(blob)
        writes = [(lpn, view[start:start + page_bytes])
                  for lpn, start in zip(lpns, range(0, flush_bytes, page_bytes))]
        self.ssd.write_pages(writes)
        if self.device.faults is not None:
            f.page_crcs.extend(page_crc(d) for _lpn, d in writes)
        remainder = blob[flush_bytes:]
        f.tail_parts = [remainder] if remainder else []
        f.tail_len -= flush_bytes
        f.flushed_pages += n_full

    def seal(self, name: str) -> None:
        f = self._file(name)
        if f.sealed:
            return
        if f.tail_len:
            tail = f.tail_bytes()
            padded = tail + b"\x00" * (self.page_bytes - len(tail))
            self.ssd.write_page(self._allocate_lpn(f), padded)
            if self.device.faults is not None:
                f.page_crcs.append(page_crc(padded))
            f.tail_parts = []
            f.tail_len = 0
            f.flushed_pages += 1
        f.sealed = True

    def write_at(self, name: str, offset: int, data: bytes) -> None:
        """In-place update of already-flushed bytes (page-aligned regions may
        span pages).  This is the random-update path AOFFS refuses to offer;
        it reads, modifies and rewrites every touched page through the FTL.
        """
        f = self._file(name)
        flushed_bytes = f.flushed_pages * self.page_bytes
        if offset < 0 or offset + len(data) > flushed_bytes:
            raise ValueError(
                f"write_at [{offset}, {offset + len(data)}) outside flushed "
                f"region [0, {flushed_bytes}) of {name!r}"
            )
        page_bytes = self.page_bytes
        pos = 0
        while pos < len(data):
            page_index, in_page = divmod(offset + pos, page_bytes)
            n = min(page_bytes - in_page, len(data) - pos)
            lpn = f.lpns[page_index]
            page = bytearray(self.ssd.read_page(lpn))
            page[in_page:in_page + n] = data[pos:pos + n]
            updated = bytes(page)
            self.ssd.write_page(lpn, updated)
            if page_index < len(f.page_crcs):
                f.page_crcs[page_index] = page_crc(updated)
            pos += n

    # ---------------------------------------------------------------- reading

    def read(self, name: str, offset: int = 0, nbytes: int | None = None) -> bytes:
        f = self._file(name)
        if nbytes is None:
            nbytes = f.size - offset
        if offset < 0 or nbytes < 0 or offset + nbytes > f.size:
            raise ValueError(
                f"read [{offset}, {offset + nbytes}) out of range for "
                f"{name!r} of size {f.size}"
            )
        if nbytes == 0:
            return b""
        page_bytes = self.page_bytes
        flushed_bytes = f.flushed_pages * page_bytes
        parts: list[bytes] = []
        flash_end = min(offset + nbytes, flushed_bytes)
        if offset < flushed_bytes:
            first_page = offset // page_bytes
            last_page = (flash_end - 1) // page_bytes
            pages = self.ssd.read_pages(f.lpns[first_page:last_page + 1])
            if self.device.faults is not None:
                pages = verify_pages(
                    pages, f.page_crcs, first_page,
                    lambda i: self.ssd.read_page(f.lpns[i]),
                    self.device.faults, f"ssd:{f.name}")
            self._charge_prefetch(f, first_page, last_page + 1 - first_page)
            blob = b"".join(pages)
            start = offset - first_page * page_bytes
            parts.append(blob[start:start + (flash_end - offset)])
        if offset + nbytes > flushed_bytes:
            tail_start = max(0, offset - flushed_bytes)
            tail_end = offset + nbytes - flushed_bytes
            parts.append(f.tail_bytes()[tail_start:tail_end])
        return b"".join(parts)

    def stream(self, name: str, chunk_bytes: int):
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        size = self._file(name).size
        offset = 0
        while offset < size:
            n = min(chunk_bytes, size - offset)
            yield self.read(name, offset, n)
            offset += n

    # ----------------------------------------------------------- numpy helpers

    def append_array(self, name: str, array: np.ndarray) -> None:
        self.append(name, np.ascontiguousarray(array).tobytes())

    def read_array(self, name: str, dtype: np.dtype, start_item: int = 0,
                   count: int | None = None) -> np.ndarray:
        dtype = np.dtype(dtype)
        if count is None:
            count = self.size(name) // dtype.itemsize - start_item
        raw = self.read(name, start_item * dtype.itemsize, count * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype)

    # --------------------------------------------------------------- deletion

    def delete(self, name: str) -> None:
        f = self._file(name)
        for lpn in f.lpns:
            self.ssd.trim(lpn)
            self._free_lpns.append(lpn)
        del self._files[name]

    def rename(self, old: str, new: str) -> None:
        if new in self._files:
            raise FileExistsError(f"SSD file {new!r} already exists")
        f = self._file(old)
        f.name = new
        self._files[new] = f
        del self._files[old]
