"""Deterministic fault injection and ECC/read-retry recovery (§II-B).

Real NAND is not the reliable byte store the rest of the stack pretends it
is: cells suffer read-disturb and retention bit errors, programs and erases
fail outright, and every program/erase cycle makes all of it worse.
Controllers hide the physics behind per-page ECC, read-retry voltage
escalation, and bad-block remapping — machinery the paper's raw-flash design
(and any commodity SSD under the baselines) depends on being present.

This module makes that machinery explicit and *deterministic*:

* :class:`FaultPlan` — a seeded, declarative description of how unreliable
  the simulated device should be: per-read raw bit-error rate (BER),
  program/erase failure probabilities, latency jitter, and optional
  wear-acceleration that scales all of it with each block's erase count.
* :class:`FaultInjector` — the per-device runtime built from a plan.  It
  draws from one seeded generator in operation order, so the same plan on
  the same workload injects byte-for-byte the same faults — a chaos test is
  just another reproducible benchmark.
* The **ECC model**: each page read draws its raw bit-error count from
  ``Binomial(page_bits, BER)``.  Up to ``ecc_correctable_bits`` errors are
  corrected inline (real controllers run BCH/LDPC in the datapath, so a
  corrected read costs nothing extra).  Beyond that the controller
  *read-retries* with tuned reference voltages: every retry re-reads the
  page — charging a full access latency plus the page transfer to the
  :class:`~repro.perf.clock.SimClock` — at ``retry_ber_scale`` times the
  previous BER.  A page that stays uncorrectable after
  ``read_retry_limit`` retries raises
  :class:`~repro.flash.device.FlashUncorrectableError` (or, with
  ``silent_corruption_p``, escapes as corrupted data for the file-store
  checksum layer to catch).

A plan with every rate at zero is free: no generator draws, no extra
charges, bit-identical sim-clock accounting — the invariance goldens pin
this.

RNG audit (repro-lint RL001): all randomness flows through generators
seeded from the plan's explicit ``seed`` field — ``FaultInjector`` uses
``default_rng(plan.seed)`` and ``PowerLossInjector`` derives its stream
from ``SeedSequence([plan.seed, 0x51A5])`` so fault and crash draws never
alias.  Nothing reads the global numpy state or host entropy.

The exception taxonomy itself lives in :mod:`repro.flash.device` (the layer
that raises it) and is re-exported here for convenience.
"""

from __future__ import annotations

import dataclasses
import zlib
from dataclasses import dataclass

import numpy as np

from repro.flash.device import (
    FlashError,
    FlashEraseError,
    FlashOutOfSpaceError,
    FlashProgramError,
    FlashTransientError,
    FlashUncorrectableError,
    FlashWearOutError,
    PowerLossError,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "CrashPlan",
    "CrashStats",
    "PowerLossInjector",
    "verify_pages",
    "FlashError",
    "FlashTransientError",
    "FlashUncorrectableError",
    "FlashProgramError",
    "FlashEraseError",
    "FlashWearOutError",
    "FlashOutOfSpaceError",
    "PowerLossError",
]


#: CLI spec keys (``--faults seed=3,ber=5e-5``) mapped to field name + type.
_SPEC_KEYS: dict[str, tuple[str, type]] = {
    "seed": ("seed", int),
    "ber": ("read_ber", float),
    "pfail": ("program_fail_p", float),
    "efail": ("erase_fail_p", float),
    "jitter": ("latency_jitter", float),
    "wear_ber": ("wear_ber_scale", float),
    "wear_fail": ("wear_fail_scale", float),
    "pe_limit": ("pe_cycle_limit", int),
    "ecc": ("ecc_correctable_bits", int),
    "retries": ("read_retry_limit", int),
    "retry_scale": ("retry_ber_scale", float),
    "silent": ("silent_corruption_p", float),
}


#: CLI spec keys for ``--crash seed=3,ops=5`` mapped to field name + parser.
_CRASH_SPEC_KEYS: dict[str, tuple[str, str]] = {
    "seed": ("seed", "int"),
    "ops": ("crashes", "int"),
    "first": ("first_op", "int"),
    "gap": ("mean_gap", "float"),
    "torn": ("torn_write_p", "float"),
    "at": ("at_ops", "ops"),
}


@dataclass(frozen=True)
class CrashPlan:
    """Seeded schedule of power-loss injection points.

    Crash points are *global flash operation indices*: every page read,
    page program, block erase, and mount-scan block counts as one op, so
    the schedule is deterministic for a fixed workload and keeps advancing
    across remounts (recovery itself can be crashed).  A drained schedule
    injects nothing, which guarantees :func:`repro.harness.run_with_crashes`
    terminates.
    """

    seed: int = 0
    #: Number of power losses to inject (ignored when ``at_ops`` is given).
    crashes: int = 5
    #: Earliest eligible op index (lets the schedule skip formatting).
    first_op: int = 50
    #: Mean ops between consecutive losses (exponential gaps).
    mean_gap: float = 2000.0
    #: Probability an interrupted page program leaves a *torn* page —
    #: partially-programmed cells committed as garbage — rather than
    #: nothing at all.
    torn_write_p: float = 0.5
    #: Explicit absolute op indices; overrides the seeded drawing.
    at_ops: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.crashes < 0:
            raise ValueError(f"crashes must be >= 0, got {self.crashes}")
        if self.mean_gap <= 0:
            raise ValueError(f"mean_gap must be > 0, got {self.mean_gap}")
        if not 0.0 <= self.torn_write_p <= 1.0:
            raise ValueError(
                f"torn_write_p must be in [0, 1], got {self.torn_write_p}")
        if any(op < 0 for op in self.at_ops):
            raise ValueError("at_ops indices must be >= 0")

    def schedule(self) -> list[int]:
        """Sorted absolute op indices at which power is cut."""
        if self.at_ops:
            return sorted({int(op) for op in self.at_ops})
        if self.crashes == 0:
            return []
        rng = np.random.default_rng(self.seed)
        gaps = 1.0 + rng.exponential(self.mean_gap, size=self.crashes)
        return sorted({int(op) for op in self.first_op + np.cumsum(gaps)})

    @staticmethod
    def parse(spec: str) -> "CrashPlan":
        """Build a plan from a ``key=value,...`` CLI spec.

        Keys: ``seed``, ``ops`` (number of losses), ``first``, ``gap``,
        ``torn``, and ``at`` (explicit ``/``-separated op indices).

        >>> CrashPlan.parse("seed=3,ops=7").crashes
        7
        >>> CrashPlan.parse("at=10/250/9000").at_ops
        (10, 250, 9000)
        """
        kwargs: dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"crash spec entry {part!r} is not key=value")
            key, _, raw = part.partition("=")
            key = key.strip()
            if key not in _CRASH_SPEC_KEYS:
                known = ", ".join(sorted(_CRASH_SPEC_KEYS))
                raise ValueError(f"unknown crash spec key {key!r}; known: {known}")
            field, kind = _CRASH_SPEC_KEYS[key]
            try:
                if kind == "ops":
                    kwargs[field] = tuple(int(float(x)) for x in raw.split("/"))
                elif kind == "int":
                    kwargs[field] = int(float(raw))
                else:
                    kwargs[field] = float(raw)
            except ValueError as exc:
                raise ValueError(f"bad value {raw!r} for crash key {key!r}") from exc
        return CrashPlan(**kwargs)


@dataclass
class CrashStats:
    """Observable outcome counters of one device's power-loss injector."""

    power_losses: int = 0
    torn_writes: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


class PowerLossInjector:
    """Runtime crash state for one :class:`~repro.flash.device.FlashDevice`.

    Lives on the *device* (the hardware), so it survives every host
    remount: the op counter and remaining schedule are global across the
    crash → mount → resume loop.  The torn-write generator is separate from
    the fault injector's so attaching a crash plan never perturbs fault
    determinism.
    """

    def __init__(self, plan: CrashPlan, device) -> None:
        self.plan = plan
        self.device = device
        self.stats = CrashStats()
        self._pending = list(plan.schedule())  # sorted; consumed from front
        self._rng = np.random.default_rng(np.random.SeedSequence([plan.seed, 0x51A5]))
        self.op_index = 0

    @property
    def exhausted(self) -> bool:
        """No losses remain: the system is guaranteed to run to completion."""
        return not self._pending

    def advance(self, count: int = 1) -> int | None:
        """Advance the global op counter by ``count`` ops.

        Returns the offset within ``[0, count)`` of a scheduled power loss,
        or ``None``.  The caller applies partial effects up to the offset
        and then :meth:`fire`\\ s.  On a hit the counter stops at the
        interrupted op — the rest of the batch never executed — so every
        later scheduled point stays in the future and fires on its own.
        """
        start = self.op_index
        self.op_index += count
        if self._pending and self._pending[0] < self.op_index:
            offset = max(0, self._pending[0] - start)
            self.op_index = start + offset + 1
            return offset
        return None

    def fire(self, where: str) -> None:
        """Cut power: consume the due crash point(s) and kill the host."""
        while self._pending and self._pending[0] < self.op_index:
            self._pending.pop(0)
        self.stats.power_losses += 1
        raise PowerLossError(
            f"simulated power loss during {where} "
            f"(flash op #{self.op_index - 1})", op_index=self.op_index - 1)

    # The interrupted-operation physics below draw from the injector's own
    # seeded generator, in schedule order — deterministic per (plan, workload).

    def tears_page(self) -> bool:
        """Does the interrupted program leave a torn (committed-garbage) page?"""
        return float(self._rng.random()) < self.plan.torn_write_p

    def torn_data(self, data: bytes) -> bytes:
        """A torn page: an intact prefix, then garbage where programming
        stopped mid-cell."""
        keep = int(len(data) * float(self._rng.random()))
        tail = self._rng.integers(0, 256, size=len(data) - keep, dtype=np.uint8)
        self.stats.torn_writes += 1
        return bytes(data[:keep]) + tail.tobytes()

    def erase_completes(self) -> bool:
        """Did an interrupted erase pulse finish clearing the cells?"""
        return bool(self._rng.random() < 0.5)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, declarative fault model for one simulated device.

    All probabilities are per-operation; a plan with every rate at zero
    injects nothing and perturbs nothing (including the sim clock).
    """

    seed: int = 0
    #: Raw bit-error rate per stored bit on every page read.
    read_ber: float = 0.0
    #: Probability any single page program fails (block is then retired).
    program_fail_p: float = 0.0
    #: Probability a block erase fails (block is then retired).
    erase_fail_p: float = 0.0
    #: Uniform extra latency per device op, as a fraction of the op latency.
    latency_jitter: float = 0.0
    #: Wear acceleration: effective BER = read_ber * (1 + scale * erases).
    wear_ber_scale: float = 0.0
    #: Same acceleration applied to program/erase failure probabilities.
    wear_fail_scale: float = 0.0
    #: Endurance limit: erases of a block at/beyond this count always fail
    #: (0 disables the limit).
    pe_cycle_limit: int = 0
    #: ECC strength: bit errors per page correctable without a retry.
    ecc_correctable_bits: int = 8
    #: Read-retry escalation budget once ECC is exceeded.
    read_retry_limit: int = 4
    #: Each retry re-reads at this multiple of the previous BER (tuned read
    #: voltages recover most of the signal; 1.0 models a device whose
    #: retries never help).
    retry_ber_scale: float = 0.25
    #: Probability an uncorrectable read escapes as silently corrupted data
    #: (ECC miscorrection) instead of an error — the case the file-store
    #: checksums exist to catch.
    silent_corruption_p: float = 0.0
    #: Optional power-loss schedule riding along with the fault plan; the
    #: device builds a :class:`PowerLossInjector` from it exactly as if it
    #: were passed as ``crashes=`` directly.  ``None`` adds nothing.
    crash: CrashPlan | None = None

    def __post_init__(self) -> None:
        for field in ("read_ber", "program_fail_p", "erase_fail_p",
                      "silent_corruption_p"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field} must be in [0, 1], got {value}")
        for field in ("latency_jitter", "wear_ber_scale", "wear_fail_scale",
                      "retry_ber_scale"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be >= 0")
        for field in ("pe_cycle_limit", "ecc_correctable_bits",
                      "read_retry_limit"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be >= 0")

    @property
    def injects_read_faults(self) -> bool:
        return self.read_ber > 0.0

    @staticmethod
    def parse(spec: str) -> "FaultPlan":
        """Build a plan from a ``key=value,key=value`` CLI spec.

        Keys are the short names of :data:`_SPEC_KEYS` (``seed``, ``ber``,
        ``pfail``, ``efail``, ``jitter``, ``wear_ber``, ``wear_fail``,
        ``pe_limit``, ``ecc``, ``retries``, ``retry_scale``, ``silent``) or
        full field names.

        >>> FaultPlan.parse("seed=3,ber=5e-5").read_ber
        5e-05
        """
        field_names = {f.name for f in dataclasses.fields(FaultPlan)}
        kwargs: dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"fault spec entry {part!r} is not key=value")
            key, _, raw = part.partition("=")
            key = key.strip()
            if key in _SPEC_KEYS:
                field, cast = _SPEC_KEYS[key]
            elif key in field_names:
                field = key
                cast = int if key in ("seed", "pe_cycle_limit",
                                      "ecc_correctable_bits",
                                      "read_retry_limit") else float
            else:
                known = ", ".join(sorted(_SPEC_KEYS))
                raise ValueError(f"unknown fault spec key {key!r}; known: {known}")
            try:
                kwargs[field] = cast(float(raw)) if cast is int else cast(raw)
            except ValueError as exc:
                raise ValueError(f"bad value {raw!r} for fault key {key!r}") from exc
        return FaultPlan(**kwargs)


@dataclass
class FaultStats:
    """Observable outcome counters of one device's fault injector."""

    bit_errors_injected: int = 0
    bits_corrected: int = 0
    pages_corrected: int = 0
    read_retries: int = 0
    retry_recoveries: int = 0
    uncorrectable_reads: int = 0
    silent_corruptions: int = 0
    checksum_mismatches: int = 0
    checksum_recoveries: int = 0
    program_failures: int = 0
    erase_failures: int = 0
    blocks_retired: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)

    @property
    def corrected_errors(self) -> int:
        """Bit errors the device absorbed without the host noticing."""
        return self.bits_corrected


class FaultInjector:
    """Runtime fault state for one :class:`~repro.flash.device.FlashDevice`.

    All randomness flows through one seeded generator consumed in operation
    order, so a fixed (plan, workload) pair replays identically.  Zero-rate
    paths never touch the generator, which keeps a zero plan bit-identical
    to no plan at all.
    """

    def __init__(self, plan: FaultPlan, device) -> None:
        self.plan = plan
        self.device = device
        self.stats = FaultStats()
        self._rng = np.random.default_rng(plan.seed)

    # -------------------------------------------------------------- read path

    def _effective_ber(self, block: int) -> float:
        ber = self.plan.read_ber
        if self.plan.wear_ber_scale:
            ber *= 1.0 + self.plan.wear_ber_scale * self.device.erase_counts[block]
        return min(ber, 0.5)

    def filter_read(self, block: int, page: int, data) -> bytes:
        """Inject bit errors into one page read; recover via ECC/retries.

        Returns the (functionally intact) data on recovery, possibly
        corrupted data under ``silent_corruption_p``, or raises
        :class:`FlashUncorrectableError`.
        """
        if not self.plan.injects_read_faults:
            return data
        nbits = len(data) * 8
        if nbits == 0:
            return data
        p = self._effective_ber(block)
        n = int(self._rng.binomial(nbits, p))
        self.stats.bit_errors_injected += n
        if n <= self.plan.ecc_correctable_bits:
            if n:
                self.stats.bits_corrected += n
                self.stats.pages_corrected += 1
            return data
        return self._retry_page(block, page, data, p, n)

    def filter_read_batch(self, addresses, pages: list) -> list:
        """Vectorized :meth:`filter_read` over one batched read."""
        if not self.plan.injects_read_faults or not pages:
            return pages
        nbits = np.fromiter((len(d) * 8 for d in pages), dtype=np.int64,
                            count=len(pages))
        if self.plan.wear_ber_scale:
            blocks = np.fromiter((a[0] for a in addresses), dtype=np.int64,
                                 count=len(addresses))
            erases = np.asarray(self.device.erase_counts, dtype=np.float64)[blocks]
            p = np.minimum(self.plan.read_ber * (1.0 + self.plan.wear_ber_scale * erases), 0.5)
        else:
            p = np.full(len(pages), min(self.plan.read_ber, 0.5))
        errs = self._rng.binomial(nbits, p)
        self.stats.bit_errors_injected += int(errs.sum())
        t = self.plan.ecc_correctable_bits
        corrected = (errs > 0) & (errs <= t)
        self.stats.bits_corrected += int(errs[corrected].sum())
        self.stats.pages_corrected += int(corrected.sum())
        bad = np.flatnonzero(errs > t)
        if len(bad) == 0:
            return pages
        out = list(pages)
        for i in bad:
            block, page = addresses[int(i)]
            out[int(i)] = self._retry_page(block, page, pages[int(i)],
                                           float(p[int(i)]), int(errs[int(i)]))
        return out

    def _retry_page(self, block: int, page: int, data, base_p: float, n: int):
        """Read-retry escalation after ECC is exceeded on a page read."""
        plan = self.plan
        nbits = len(data) * 8
        for attempt in range(1, plan.read_retry_limit + 1):
            self.stats.read_retries += 1
            self._charge_retry(len(data))
            retry_p = min(base_p * plan.retry_ber_scale ** attempt, 0.5)
            n = int(self._rng.binomial(nbits, retry_p))
            self.stats.bit_errors_injected += n
            if n <= plan.ecc_correctable_bits:
                self.stats.retry_recoveries += 1
                if n:
                    self.stats.bits_corrected += n
                    self.stats.pages_corrected += 1
                return data
        if plan.silent_corruption_p > 0 and \
                float(self._rng.random()) < plan.silent_corruption_p:
            self.stats.silent_corruptions += 1
            return self._corrupt(data, n)
        self.stats.uncorrectable_reads += 1
        raise FlashUncorrectableError(
            f"uncorrectable read at ({block}, {page}): {n} bit errors exceed "
            f"ECC t={plan.ecc_correctable_bits} after {plan.read_retry_limit} "
            f"read-retries", block=block, page=page)

    def _charge_retry(self, raw_bytes: int) -> None:
        """One read-retry is a full extra page access: latency + transfer."""
        device = self.device
        nbytes = int(raw_bytes * device.traffic_scale)
        bw = device.profile.flash_read_bw / device.geometry.channels
        device.clock.charge(
            "flash", device.profile.flash_read_latency_s + nbytes / bw,
            nbytes=nbytes)

    def _corrupt(self, data, n_errors: int) -> bytes:
        """Flip ``n_errors`` (capped) bits — an ECC miscorrection escaping."""
        corrupted = bytearray(data)
        flips = self._rng.integers(0, len(corrupted) * 8,
                                   size=min(max(n_errors, 1), 64))
        for position in flips:
            corrupted[int(position) // 8] ^= 1 << (int(position) % 8)
        return bytes(corrupted)

    # ------------------------------------------------------------- write path

    def first_program_failure(self, block: int, page0: int, count: int) -> int | None:
        """Index (within a program run) of the first injected failure."""
        p = self.plan.program_fail_p
        if p <= 0.0:
            return None
        if self.plan.wear_fail_scale:
            p *= 1.0 + self.plan.wear_fail_scale * self.device.erase_counts[block]
        draws = self._rng.random(count) < min(p, 1.0)
        failed = np.flatnonzero(draws)
        if len(failed) == 0:
            return None
        self.stats.program_failures += 1
        return int(failed[0])

    def erase_fails(self, block: int) -> str | None:
        """Why this erase fails (``"wear"``/``"fault"``), or None."""
        plan = self.plan
        if plan.pe_cycle_limit and \
                self.device.erase_counts[block] >= plan.pe_cycle_limit:
            self.stats.erase_failures += 1
            return "wear"
        p = plan.erase_fail_p
        if p <= 0.0:
            return None
        if plan.wear_fail_scale:
            p *= 1.0 + plan.wear_fail_scale * self.device.erase_counts[block]
        if float(self._rng.random()) < min(p, 1.0):
            self.stats.erase_failures += 1
            return "fault"
        return None

    # ----------------------------------------------------------------- timing

    def jitter_s(self, base_latency_s: float) -> float:
        """Uniform extra latency for one op (0.0 when jitter is disabled)."""
        if self.plan.latency_jitter <= 0.0 or base_latency_s <= 0.0:
            return 0.0
        return base_latency_s * self.plan.latency_jitter * float(self._rng.random())


# --------------------------------------------------------------------------
# file-store checksum verification
# --------------------------------------------------------------------------


def page_crc(data) -> int:
    """CRC-32 of one flushed page (the file stores record this at write)."""
    return zlib.crc32(data)


def verify_pages(pages: list, crcs: list[int], first_page: int, reread,
                 injector: FaultInjector | None, label: str) -> list:
    """Verify freshly-read pages against stored CRCs; re-read mismatches.

    ``reread(page_index)`` must perform a real single-page re-read (charging
    the clock and re-running ECC).  Each failed attempt raises
    :class:`FlashTransientError` internally; the bounded retry loop either
    recovers the page or escalates to :class:`FlashUncorrectableError`.
    Returns the (possibly repaired) page list.
    """
    if injector is None or not crcs:
        return pages
    out = pages
    for offset, data in enumerate(pages):
        index = first_page + offset
        if index >= len(crcs) or zlib.crc32(data) == crcs[index]:
            continue
        injector.stats.checksum_mismatches += 1
        if out is pages:
            out = list(pages)
        out[offset] = _repair_page(reread, index, crcs[index], injector, label)
    return out


def _repair_page(reread, index: int, expected_crc: int,
                 injector: FaultInjector, label: str) -> bytes:
    retries = max(1, injector.plan.read_retry_limit)
    for _attempt in range(retries):
        try:
            data = reread(index)
            if zlib.crc32(data) != expected_crc:
                raise FlashTransientError(
                    f"checksum mismatch on re-read of {label} page {index}")
        except FlashTransientError:
            continue
        injector.stats.checksum_recoveries += 1
        return data
    raise FlashUncorrectableError(
        f"persistent checksum mismatch on {label} page {index} after "
        f"{retries} re-reads")


def error_context(exc: BaseException) -> dict:
    """JSON-safe flash-op context of a taxonomy error.

    Collects whatever structured attributes the raising layer attached —
    device-level block/page addresses, the power-loss op index, the engine's
    superstep and (namespaced) algorithm name — into a plain dict for
    durable failure records (:class:`repro.service.jobs.JobFailure`).
    Absent attributes are simply omitted, so the helper is total over the
    whole taxonomy.
    """
    context: dict = {}
    for attr in ("block", "page", "op_index", "superstep", "algorithm"):
        value = getattr(exc, attr, None)
        if value is not None:
            context[attr] = value
    notes = getattr(exc, "__notes__", None)
    if notes:
        context["notes"] = [str(n) for n in notes]
    return context
