"""Flash wear and lifetime accounting.

Flash cells wear out with program/erase cycles (§II-B).  The paper argues
sort-reduce improves flash lifetime by cutting total writes by over 90%
(§V-C.5); this module turns the device's erase/write counters into the
numbers that claim is made of: total bytes written, erase-count distribution,
and write amplification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flash.device import FlashDevice

#: Device health levels the admission controller reacts to (see
#: :class:`DegradePolicy` and :mod:`repro.service.admission`).
HEALTHY = "healthy"
DEGRADED = "degraded"
CRITICAL = "critical"


@dataclass(frozen=True)
class WearReport:
    """Snapshot of device wear at one point in time."""

    pages_written: int
    blocks_erased: int
    bytes_written: int
    max_erase_count: int
    mean_erase_count: float
    erase_count_stddev: float
    bad_blocks: int = 0

    @staticmethod
    def from_device(device: FlashDevice) -> "WearReport":
        counts = device.erase_counts
        n = len(counts)
        mean = sum(counts) / n if n else 0.0
        var = sum((c - mean) ** 2 for c in counts) / n if n else 0.0
        return WearReport(
            pages_written=device.total_pages_written,
            blocks_erased=device.total_blocks_erased,
            bytes_written=device.total_pages_written * device.geometry.page_bytes,
            max_erase_count=max(counts) if counts else 0,
            mean_erase_count=mean,
            erase_count_stddev=var ** 0.5,
            bad_blocks=device.bad_block_count,
        )

    def wear_evenness(self) -> float:
        """0..1 score: 1.0 means perfectly even wear across blocks.

        Defined as ``1 - stddev / (mean + 1)`` floored at 0, so a device with
        no erases scores 1.0 and heavily skewed wear approaches 0.
        """
        return max(0.0, 1.0 - self.erase_count_stddev / (self.mean_erase_count + 1.0))

    def as_dict(self) -> dict:
        """JSON-safe form for result payloads and bench artifacts."""
        return {
            "pages_written": self.pages_written,
            "blocks_erased": self.blocks_erased,
            "bytes_written": self.bytes_written,
            "max_erase_count": self.max_erase_count,
            "mean_erase_count": self.mean_erase_count,
            "erase_count_stddev": self.erase_count_stddev,
            "bad_blocks": self.bad_blocks,
            "wear_evenness": self.wear_evenness(),
        }


def lifetime_writes_remaining(device: FlashDevice, rated_pe_cycles: int = 3000) -> float:
    """Fraction of the device's rated program/erase budget still unused."""
    if rated_pe_cycles <= 0:
        raise ValueError(f"rated_pe_cycles must be positive, got {rated_pe_cycles}")
    worst = max(device.erase_counts) if device.erase_counts else 0
    return max(0.0, 1.0 - worst / rated_pe_cycles)


@dataclass(frozen=True)
class DegradePolicy:
    """Thresholds mapping device wear onto a service health level.

    The admission controller consults :meth:`classify` before every
    analytics decision: ``degraded`` shrinks the bandwidth capacity it
    reserves against (fewer concurrent runs fit) and sheds queued load,
    ``critical`` stops admitting analytics entirely.  Thresholds are
    deliberately coarse — classification must be stable under the small
    wear differences crash re-execution introduces, or scheduler traces
    would stop being bit-identical across crash schedules.
    """

    #: ``lifetime_writes_remaining`` at or below this is degraded.
    degraded_lifetime: float = 0.5
    #: ...and at or below this is critical (device nearly worn out).
    critical_lifetime: float = 0.1
    #: Retired bad blocks at or above this count the device as degraded.
    degraded_bad_blocks: int = 16
    #: ...and at or above this as critical.
    critical_bad_blocks: int = 64
    #: Fraction of nominal bandwidth capacity usable while degraded —
    #: reservations shrink with the device instead of overcommitting it.
    degraded_capacity_fraction: float = 0.5

    def classify(self, lifetime_remaining: float, bad_blocks: int) -> str:
        """Map (lifetime fraction, bad-block count) to a health level."""
        if (lifetime_remaining <= self.critical_lifetime
                or bad_blocks >= self.critical_bad_blocks):
            return CRITICAL
        if (lifetime_remaining <= self.degraded_lifetime
                or bad_blocks >= self.degraded_bad_blocks):
            return DEGRADED
        return HEALTHY
