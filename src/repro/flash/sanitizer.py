"""FlashSan: a runtime sanitizer for the flash invariants.

The device model *enforces* NAND's physical rules (erase-before-program,
program order, per-block erase) and the layers above it maintain their own
bookkeeping (FTL map, AOFFS file table, free pools, sim-clock charges).
FlashSan mirrors every committed page in independent *shadow state* and
cross-checks each operation against it, so a bookkeeping bug in any layer
— device state corruption, an FTL map that drifted from flash, an erase of
pages a file still owns, a device op that forgot to charge the clock —
raises :class:`SanitizerError` at the first operation that proves it,
instead of surfacing runs later as silent data loss or a wrong golden.

Enabled with ``REPRO_SANITIZE=1`` in the environment (picked up by every
newly built :class:`~repro.flash.device.FlashDevice`) or per-run via the
CLI ``--sanitize`` flag.  The sanitizer never charges the clock and never
draws randomness, so a sanitized run is bit-identical to an unsanitized
one — ``tests/test_perf_invariance.py`` pins that.

:class:`SanitizerError` deliberately derives from :class:`Exception`
directly, *not* from ``FlashError``: the recovery machinery (ECC retries,
block remapping, crash remounts) must never be able to swallow a report
that the simulation itself is broken.
"""

from __future__ import annotations

import os
import zlib

import numpy as np

#: Shadow page states (independent of the device's constants by design:
#: the sanitizer must not trust the code it checks).
SH_ERASED = 0
SH_VALID = 1
SH_INVALID = 2


class SanitizerError(Exception):
    """A flash invariant was violated — a bug in the stack, not modeled
    physics.  Never caught by any recovery path."""


def sanitizer_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` asks for sanitized devices."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
        "1", "true", "yes", "on")


class FlashSanitizer:
    """Shadow state plus invariant checks for one :class:`FlashDevice`.

    The device calls the ``on_*`` hooks at every commit point; the FTL and
    AOFFS register themselves via :meth:`track_ftl` / :meth:`track_owner`
    so erase-time liveness and free-pool accounting can be checked against
    the layer that owns the blocks.

    Checks (each named for the bug class it catches):

    * **program-to-non-erased / double-program** — shadow state says the
      target page was already written or invalidated, i.e. the device's own
      state matrix was corrupted or bypassed.
    * **out-of-order program** — the commit does not match the shadow
      program cursor for the block.
    * **read-of-never-written** — a read returned data for a page the
      shadow never saw programmed (the uncorrectable-loss path corrupts
      *returned* data after this check, so it is exempt by construction).
    * **content/OOB divergence** — CRC of the data (or spare area) handed
      back differs from what was programmed.
    * **erase-of-live-pages** — an erase would destroy pages still mapped
      by the FTL, owned by a live AOFFS file, or part of the AOFFS journal
      chain / active superblock.
    * **free-pool drift** — the FTL's free list disagrees with the shadow
      (non-erased or bad blocks in the pool, map/reverse inconsistency,
      spare-accounting identity broken).
    * **zero-cost / non-monotonic device ops** — a foreground device op
      that did not advance the sim clock, or a clock that moved backwards
      between ops.
    """

    def __init__(self, device) -> None:
        self.device = device
        geometry = device.geometry
        self._state = np.full(
            (geometry.num_blocks, geometry.pages_per_block), SH_ERASED,
            dtype=np.int8)
        self._next_page = [0] * geometry.num_blocks
        self._crc: dict[tuple[int, int], int] = {}
        self._oob_crc: dict[tuple[int, int], int | None] = {}
        self._ftl = None
        self._owner = None
        self._clock_high = device.clock.elapsed_s
        self._audit_debt = 0
        self.pages_checked = 0
        self.ftl_checks = 0

    # ------------------------------------------------------------ registration

    def track_ftl(self, ftl) -> None:
        """Register the FTL owning this device (replaces any previous one,
        e.g. across a crash remount)."""
        self._ftl = ftl
        self._owner = None

    def track_owner(self, fs) -> None:
        """Register the AOFFS instance owning this device's blocks."""
        self._owner = fs
        self._ftl = None

    # ----------------------------------------------------------- commit hooks

    def on_program(self, block: int, page: int, data: bytes,
                   oob: bytes | None, torn: bool = False) -> None:
        state = int(self._state[block, page])
        if state == SH_VALID:
            raise SanitizerError(
                f"double program of page ({block}, {page}): the shadow "
                "already holds data the device never saw erased")
        if state == SH_INVALID:
            raise SanitizerError(
                f"program to non-erased page ({block}, {page}): the page "
                "was invalidated but its block was never erased")
        if page != self._next_page[block]:
            raise SanitizerError(
                f"out-of-order program of page ({block}, {page}); shadow "
                f"program cursor is at page {self._next_page[block]}")
        self._state[block, page] = SH_VALID
        self._next_page[block] = page + 1
        self._crc[(block, page)] = zlib.crc32(data)
        # A torn page's spare area never finished programming; None means
        # "no OOB on flash" and read_oob must agree.
        self._oob_crc[(block, page)] = (
            None if torn or oob is None else zlib.crc32(oob))

    def on_invalidate(self, block: int, page: int) -> None:
        if self._state[block, page] != SH_VALID:
            raise SanitizerError(
                f"invalidate of page ({block}, {page}) the shadow never "
                "saw programmed")
        self._state[block, page] = SH_INVALID
        self._crc.pop((block, page), None)
        self._oob_crc.pop((block, page), None)

    # ------------------------------------------------------------ erase hooks

    def on_erase(self, block: int) -> None:
        """Pre-erase liveness audit against the registered owning layer."""
        ftl = self._ftl
        if ftl is not None:
            for page in range(self.device.geometry.pages_per_block):
                if self._state[block, page] == SH_VALID and \
                        (block, page) in ftl._reverse:
                    raise SanitizerError(
                        f"erase of block {block} would destroy page "
                        f"({block}, {page}) still mapped to logical page "
                        f"{ftl._reverse[(block, page)]} by the FTL")
        fs = self._owner
        if fs is not None:
            for f in getattr(fs, "_files", {}).values():
                if block in f.blocks:
                    raise SanitizerError(
                        f"erase of block {block} still owned by live AOFFS "
                        f"file {f.name!r}")
            if block in getattr(fs, "_journal_blocks", ()):
                raise SanitizerError(
                    f"erase of block {block}: it is part of the live AOFFS "
                    "journal chain")
            if block == getattr(fs, "_sb_active", None):
                raise SanitizerError(
                    f"erase of block {block}: it holds the only valid AOFFS "
                    "superblock")

    def on_erased(self, block: int) -> None:
        """The cells actually cleared (normal erase or crash-completed)."""
        self._state[block, :] = SH_ERASED
        self._next_page[block] = 0
        for page in range(self.device.geometry.pages_per_block):
            self._crc.pop((block, page), None)
            self._oob_crc.pop((block, page), None)

    # ------------------------------------------------------------- read hooks

    def on_read(self, block: int, page: int, data: bytes) -> None:
        """Called with the *stored* bytes, before fault injection corrupts
        the returned copy — so the uncorrectable path is naturally exempt."""
        if self._state[block, page] != SH_VALID:
            raise SanitizerError(
                f"read of never-written page ({block}, {page}): the device "
                "returned data for a page the shadow saw erased/invalidated")
        if zlib.crc32(data) != self._crc[(block, page)]:
            raise SanitizerError(
                f"content of page ({block}, {page}) diverged from what was "
                "programmed")
        self.pages_checked += 1

    def on_read_oob(self, block: int, page: int, oob: bytes | None) -> None:
        if self._state[block, page] != SH_VALID:
            raise SanitizerError(
                f"OOB read of never-written page ({block}, {page})")
        expected = self._oob_crc.get((block, page))
        got = None if oob is None else zlib.crc32(oob)
        if got != expected:
            raise SanitizerError(
                f"OOB of page ({block}, {page}) diverged from what was "
                "programmed")

    # ------------------------------------------------------------ clock hooks

    def op_begin(self) -> float:
        elapsed = self.device.clock.elapsed_s
        if elapsed < self._clock_high:
            raise SanitizerError(
                f"sim clock moved backwards: {elapsed} s after having "
                f"reached {self._clock_high} s")
        return elapsed

    def op_end(self, name: str, start_elapsed: float) -> None:
        elapsed = self.device.clock.elapsed_s
        if elapsed <= start_elapsed:
            raise SanitizerError(
                f"zero-cost device op: {name} completed without advancing "
                "the sim clock")
        self._clock_high = elapsed

    def op_end_background(self, name: str, start_busy: float) -> None:
        if self.device.clock.busy_s("flash") <= start_busy:
            raise SanitizerError(
                f"zero-cost background device op: {name} accrued no flash "
                "busy time")

    # ------------------------------------------------------- layer-wide audit

    def maybe_check_ftl(self, ftl, mutated: int) -> None:
        """Amortized audit: run :meth:`check_ftl` once enough mutations have
        accumulated to pay for its O(map) cost.

        ``write_many`` calls this with the batch size; auditing every batch
        would make long append workloads quadratic (the audit walks the
        whole map).  Auditing once per ~quarter-map of mutations keeps total
        audit work linear in pages written while still catching drift within
        a bounded window.
        """
        self._audit_debt += mutated
        if self._audit_debt >= max(64, len(ftl._map) // 4):
            self.check_ftl(ftl)

    def check_ftl(self, ftl) -> None:
        """Full FTL bookkeeping audit (map/reverse/free-pool/spares).

        Called unconditionally after garbage collection and mount recovery,
        and on an amortized schedule from the batched write path.
        """
        self._audit_debt = 0
        self.ftl_checks += 1
        if len(ftl._map) != len(ftl._reverse):
            raise SanitizerError(
                f"FTL map ({len(ftl._map)} entries) and reverse map "
                f"({len(ftl._reverse)} entries) disagree")
        for lpn, addr in ftl._map.items():
            if ftl._reverse.get(addr) != lpn:
                raise SanitizerError(
                    f"FTL reverse map of {addr} is {ftl._reverse.get(addr)}, "
                    f"expected logical page {lpn}")
            block, page = addr
            if self._state[block, page] != SH_VALID:
                raise SanitizerError(
                    f"FTL maps logical page {lpn} to ({block}, {page}) but "
                    "the shadow never saw that page programmed")
        free = ftl._free_blocks
        if len(set(free)) != len(free):
            raise SanitizerError("duplicate block in the FTL free pool")
        for block in free:
            if self.device.is_bad(block):
                raise SanitizerError(
                    f"retired bad block {block} sits in the FTL free pool")
            if self._state[block].any():
                raise SanitizerError(
                    f"free-pool drift: block {block} is in the FTL free "
                    "pool but holds programmed pages")
        geometry = self.device.geometry
        expected_spares = (geometry.num_blocks -
                           ftl.logical_pages // geometry.pages_per_block -
                           ftl.blocks_retired)
        if ftl.spare_blocks_remaining != expected_spares:
            raise SanitizerError(
                f"FTL spare accounting drift: {ftl.spare_blocks_remaining} "
                f"spares recorded, identity requires {expected_spares}")
