"""Module-level call graph over ``src/repro/`` for the det-flow analysis.

The graph is built purely from the ASTs the lint engine already parses:
every module is indexed (top-level functions, classes, methods, nested
defs), imports are resolved through the same alias machinery the per-file
rules use — extended here with relative-import support — and call
expressions are resolved to fully-qualified function names
(``repro.core.external.ExternalSortReducer.add``).

Resolution is deliberately best-effort: Python is dynamic, so a call that
cannot be resolved simply contributes no interprocedural edge (the taint
analysis then treats it as an opaque call).  Four strategies are tried in
order:

1. **Lexical**: a bare name that is a nested ``def`` of the enclosing
   function, or a top-level function/class of the current module.
2. **Imports**: ``from m import f`` / ``import m as alias`` chains,
   including relative imports resolved against the module's package.
3. **self/cls methods**: ``self.m()`` resolves to the enclosing class's
   method (walking locally-resolvable base classes in definition order).
4. **Unique method name**: an attribute call ``obj.m()`` whose method
   name is defined by exactly one indexed function anywhere resolves to
   it — in a repo this size that is reliable for distinctive names
   (``charge_parallel``, ``reduce_sorted``) and a deliberate no-op for
   generic ones (``add``, ``get``), which stay opaque.

Everything is keyed and iterated in sorted order so downstream analyses
(and their JSON reports) are byte-deterministic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


def module_name_for_path(path: str) -> str:
    """``src/repro/core/external.py`` -> ``repro.core.external``."""
    p = path.replace("\\", "/")
    if p.endswith(".py"):
        p = p[:-3]
    parts = [seg for seg in p.split("/") if seg not in ("", ".", "..")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return ".".join(parts)


class ImportMap(ast.NodeVisitor):
    """Alias-resolving import tracker (module- and from-imports).

    Same contract as the per-file rules' ``_ImportMap`` plus relative
    imports: ``from .foo import bar`` inside ``repro.core.external``
    resolves against the module's package (``repro.core``).
    """

    def __init__(self, package: str = "") -> None:
        #: local alias -> canonical dotted module ("np" -> "numpy")
        self.modules: dict[str, str] = {}
        #: local name -> (canonical module, attr) for from-imports
        self.names: dict[str, tuple[str, str]] = {}
        self._package = package

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.modules[alias.asname or alias.name.split(".")[0]] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            base = self._package.split(".") if self._package else []
            up = node.level - 1
            if up:
                base = base[:-up] if up < len(base) else []
            mod = ".".join(base + ([node.module] if node.module else []))
        else:
            mod = node.module or ""
        if not mod:
            return
        for alias in node.names:
            self.names[alias.asname or alias.name] = (mod, alias.name)

    def resolve_module_attr(self, chain: list[str]) -> tuple[str, str] | None:
        """Resolve a dotted chain to ``(canonical_module, attr_chain)``."""
        head = chain[0]
        if len(chain) == 1:
            if head in self.names:
                return self.names[head]
            return None
        if head in self.modules:
            return self.modules[head], ".".join(chain[1:])
        if head in self.names:
            mod, attr = self.names[head]
            return f"{mod}.{attr}", ".".join(chain[1:])
        return None


def dotted(node: ast.AST) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    qualname: str
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None
    #: positional parameter names, including ``self``/``cls`` for methods.
    params: list[str] = field(default_factory=list)
    #: nested ``def`` name -> qualname, for lexical resolution.
    local_defs: dict[str, str] = field(default_factory=dict)
    decorators: list[str] = field(default_factory=list)
    #: lazy cache: local variable name -> class qualname, from
    #: ``var = SomeClass(...)`` assignments in this body.
    local_types: dict[str, str] | None = None


@dataclass
class ClassInfo:
    qualname: str
    module: str
    name: str
    #: raw (possibly dotted) base-class expressions, definition order.
    bases: list[str] = field(default_factory=list)
    #: method name -> qualname.
    methods: dict[str, str] = field(default_factory=dict)
    #: instance attributes assigned/annotated as sets anywhere in the class.
    set_attrs: set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    name: str
    path: str
    tree: ast.Module
    imports: ImportMap
    #: top-level function name -> qualname.
    functions: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    a = node.args
    return [p.arg for p in a.posonlyargs + a.args]


def _is_set_expr(value: ast.AST) -> bool:
    if isinstance(value, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
            and value.func.id in ("set", "frozenset"))


def _is_set_annotation(ann: ast.AST) -> bool:
    target = ann.value if isinstance(ann, ast.Subscript) else ann
    if isinstance(target, ast.Name):
        return target.id in ("set", "frozenset", "Set", "FrozenSet")
    if isinstance(target, ast.Attribute):
        return target.attr in ("Set", "FrozenSet")
    return False


class CallGraph:
    """Whole-program function index plus resolved call edges."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: bare function/method name -> sorted list of qualnames.
        self._by_name: dict[str, list[str]] = {}
        #: caller qualname -> sorted list of (lineno, callee qualname).
        self.edges: dict[str, list[tuple[int, str]]] = {}

    # ------------------------------------------------------------ indexing

    @classmethod
    def build(cls, files: list[tuple[str, ast.Module]]) -> "CallGraph":
        """Build from ``[(path, parsed module), ...]``."""
        graph = cls()
        for path, tree in sorted(files, key=lambda pt: pt[0]):
            graph._index_module(path, tree)
        for name, quals in graph._by_name.items():
            quals.sort()
        graph._build_edges()
        return graph

    def _index_module(self, path: str, tree: ast.Module) -> None:
        name = module_name_for_path(path)
        package = ".".join(name.split(".")[:-1])
        imports = ImportMap(package)
        imports.visit(tree)
        mod = ModuleInfo(name, path, tree, imports)
        self.modules[name] = mod
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(mod, stmt, prefix=name, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(mod, stmt)

    def _index_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        qual = f"{mod.name}.{node.name}"
        info = ClassInfo(qual, mod.name, node.name)
        for base in node.bases:
            chain = dotted(base)
            if chain:
                info.bases.append(".".join(chain))
        mod.classes[node.name] = info
        self.classes[qual] = info
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._index_function(mod, item, prefix=qual,
                                          class_name=node.name)
                info.methods[item.name] = fn.qualname
        # Instance attributes that are sets: ``self.x: set[int] = ...`` or
        # ``self.x = set()`` anywhere in the class body's methods.
        for sub in ast.walk(node):
            target = None
            if isinstance(sub, ast.AnnAssign) and _is_set_annotation(sub.annotation):
                target = sub.target
            elif isinstance(sub, ast.Assign) and _is_set_expr(sub.value):
                target = sub.targets[0] if len(sub.targets) == 1 else None
            if (isinstance(target, ast.Attribute) and
                    isinstance(target.value, ast.Name) and
                    target.value.id == "self"):
                info.set_attrs.add(target.attr)

    def _index_function(self, mod: ModuleInfo,
                        node: ast.FunctionDef | ast.AsyncFunctionDef,
                        prefix: str, class_name: str | None) -> FunctionInfo:
        qual = f"{prefix}.{node.name}"
        decorators = []
        for dec in node.decorator_list:
            expr = dec.func if isinstance(dec, ast.Call) else dec
            chain = dotted(expr)
            if chain:
                decorators.append(".".join(chain))
        info = FunctionInfo(qual, mod.name, mod.path, node,
                            class_name=class_name,
                            params=_param_names(node), decorators=decorators)
        self.functions[qual] = info
        self._by_name.setdefault(node.name, []).append(qual)
        if class_name is None:
            mod.functions.setdefault(node.name, qual)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = self._index_function(mod, stmt, prefix=qual,
                                              class_name=None)
                info.local_defs[stmt.name] = nested.qualname
        return info

    # ---------------------------------------------------------- resolution

    #: attribute names too generic for the unique-name fallback: resolving
    #: ``anything.get()`` to the one indexed ``get`` would be noise.
    _GENERIC = {"get", "put", "add", "append", "close", "read", "write",
                "run", "update", "pop", "items", "keys", "values", "copy",
                "sort", "join", "start", "open", "next", "send", "result",
                "name", "reset", "clear", "delete", "create", "rename"}

    def resolve_class(self, mod: ModuleInfo, name: str) -> ClassInfo | None:
        """Resolve a (possibly dotted/imported) class name in ``mod``."""
        if name in mod.classes:
            return mod.classes[name]
        chain = name.split(".")
        resolved = mod.imports.resolve_module_attr(chain)
        if resolved is not None:
            target_mod, attr = resolved
            target = self.modules.get(target_mod)
            if target is not None and attr in target.classes:
                return target.classes[attr]
            # ``from repro.flash import device`` + ``device.FlashError``.
            sub = self.modules.get(f"{target_mod}.{chain[0]}") if len(chain) > 1 else None
            if sub is not None and attr in sub.classes:
                return sub.classes[attr]
        return self.classes.get(name)

    def _method_on(self, cls: ClassInfo, name: str,
                   seen: frozenset[str] = frozenset()) -> str | None:
        if name in cls.methods:
            return cls.methods[name]
        if cls.qualname in seen:
            return None
        mod = self.modules.get(cls.module)
        for base in cls.bases:
            base_cls = self.resolve_class(mod, base) if mod else self.classes.get(base)
            if base_cls is not None:
                found = self._method_on(base_cls, name,
                                        seen | {cls.qualname})
                if found:
                    return found
        return None

    def resolve_call(self, caller: FunctionInfo,
                     func: ast.AST) -> str | None:
        """Resolve a ``Call.func`` expression to a callee qualname."""
        mod = self.modules.get(caller.module)
        if mod is None:
            return None
        if isinstance(func, ast.Name):
            name = func.id
            if name in caller.local_defs:
                return caller.local_defs[name]
            if name in mod.functions:
                return mod.functions[name]
            if name in mod.classes:
                return mod.classes[name].methods.get("__init__")
            resolved = mod.imports.resolve_module_attr([name])
            if resolved is not None:
                target_mod, attr = resolved
                target = self.modules.get(target_mod)
                if target is not None:
                    if attr in target.functions:
                        return target.functions[attr]
                    if attr in target.classes:
                        return target.classes[attr].methods.get("__init__")
            return None
        chain = dotted(func)
        if chain is None:
            return None
        head, leaf = chain[0], chain[-1]
        if head in ("self", "cls") and caller.class_name is not None:
            cls = mod.classes.get(caller.class_name)
            if cls is not None and len(chain) == 2:
                found = self._method_on(cls, leaf)
                if found:
                    return found
        # ``c = Clock(); c.tick()``: flow-insensitive local constructor
        # types — last assignment wins, which is right often enough.
        if len(chain) == 2:
            cls_qual = self._local_types(caller, mod).get(head)
            cls = self.classes.get(cls_qual) if cls_qual else None
            if cls is not None:
                found = self._method_on(cls, leaf)
                if found:
                    return found
        resolved = mod.imports.resolve_module_attr(chain)
        if resolved is not None:
            target_mod, attr = resolved
            target = self.modules.get(target_mod)
            if target is not None:
                parts = attr.split(".")
                if len(parts) == 1:
                    if attr in target.functions:
                        return target.functions[attr]
                    if attr in target.classes:
                        return target.classes[attr].methods.get("__init__")
                elif len(parts) == 2 and parts[0] in target.classes:
                    return target.classes[parts[0]].methods.get(parts[1])
        # Unique-name fallback for distinctive method names.
        if leaf not in self._GENERIC and not leaf.startswith("__"):
            candidates = self._by_name.get(leaf, [])
            if len(candidates) == 1:
                return candidates[0]
        return None

    def _local_types(self, caller: FunctionInfo,
                     mod: ModuleInfo) -> dict[str, str]:
        if caller.local_types is None:
            types: dict[str, str] = {}
            for sub in ast.walk(caller.node):
                if not (isinstance(sub, ast.Assign) and
                        len(sub.targets) == 1 and
                        isinstance(sub.targets[0], ast.Name) and
                        isinstance(sub.value, ast.Call)):
                    continue
                chain = dotted(sub.value.func)
                if chain is None:
                    continue
                cls = self.resolve_class(mod, ".".join(chain))
                if cls is not None:
                    types[sub.targets[0].id] = cls.qualname
            caller.local_types = types
        return caller.local_types

    # -------------------------------------------------------------- edges

    def _build_edges(self) -> None:
        for qual in sorted(self.functions):
            info = self.functions[qual]
            out: list[tuple[int, str]] = []
            for sub in ast.walk(info.node):
                if isinstance(sub, ast.Call):
                    callee = self.resolve_call(info, sub.func)
                    if callee is not None:
                        out.append((sub.lineno, callee))
                # ``Process(target=fn)`` / callbacks: a function passed by
                # reference is an edge too (it will run with these inputs).
                elif isinstance(sub, ast.keyword) and sub.arg == "target":
                    callee = self.resolve_call(info, sub.value)
                    if callee is not None:
                        out.append((getattr(sub.value, "lineno", 0), callee))
            self.edges[qual] = sorted(set(out))

    def callers_of(self) -> dict[str, list[str]]:
        """Reverse edges: callee qualname -> sorted caller qualnames."""
        rev: dict[str, set[str]] = {}
        for caller, outs in self.edges.items():
            for _line, callee in outs:
                rev.setdefault(callee, set()).add(caller)
        return {k: sorted(v) for k, v in sorted(rev.items())}

    def reachable_from(self, roots: list[str]) -> set[str]:
        """All functions transitively reachable from ``roots`` (inclusive)."""
        seen: set[str] = set()
        stack = sorted(set(roots))
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            for _line, callee in self.edges.get(qual, ()):
                if callee not in seen:
                    stack.append(callee)
        return seen
