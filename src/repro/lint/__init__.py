"""repro-lint: repo-specific static analysis for the GraFBoost reproduction.

The reproduction rests on invariants that no generic linter knows about:

* simulated time is deterministic, so wall-clock reads and unseeded RNG in
  sim paths silently break bit-exact goldens (RL001);
* ``PowerLossError`` derives from ``BaseException`` precisely so cleanup
  code cannot swallow it — a bare ``except`` that fails to re-raise defeats
  the crash-injection machinery (RL002);
* the flash stack has its own error taxonomy (RL003) and everything below
  the store layer must talk to ``FlashDevice``, never the host filesystem
  (RL004);
* keys/LPNs/offsets are integers up to 2^64 — float-producing arithmetic
  on them loses precision past 2^53, a regression class this repo has
  already shipped once (RL005);
* every public device operation must charge the ``SimClock``, or the
  performance model silently under-counts (RL006).

Run with ``python -m repro.lint src tests``.  Suppress a finding on one
line with ``# repro-lint: disable=RL001`` (comma-separate several ids,
or ``disable=all``).
"""

from repro.lint.engine import Violation, lint_paths, lint_source, main
from repro.lint.rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "Rule",
    "Violation",
    "lint_paths",
    "lint_source",
    "main",
]
