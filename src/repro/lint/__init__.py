"""repro-lint: repo-specific static analysis for the GraFBoost reproduction.

The reproduction rests on invariants that no generic linter knows about:

* simulated time is deterministic, so wall-clock reads and unseeded RNG in
  sim paths silently break bit-exact goldens (RL001);
* ``PowerLossError`` derives from ``BaseException`` precisely so cleanup
  code cannot swallow it — a bare ``except`` that fails to re-raise defeats
  the crash-injection machinery (RL002);
* the flash stack has its own error taxonomy (RL003) and everything below
  the store layer must talk to ``FlashDevice``, never the host filesystem
  (RL004);
* keys/LPNs/offsets are integers up to 2^64 — float-producing arithmetic
  on them loses precision past 2^53, a regression class this repo has
  already shipped once (RL005);
* every public device operation must charge the ``SimClock``, or the
  performance model silently under-counts (RL006).

On top of the per-file rules, the whole-program **det-flow** pass
(``detflow.py`` + ``callgraph.py``) taints nondeterminism sources —
unsorted filesystem listings (RL007), set/dict iteration order and
``id()``/``hash()`` keys (RL008), pool completion order (RL009), and
wall-clock/unseeded RNG reached *transitively* through calls (RL010) —
and reports when taint reaches a determinism sink: ``SimClock.charge*``,
journal/checkpoint writes, trace/report/checksum construction, sort-reduce
key material, or run naming.  RL100 flags suppression comments that no
longer suppress anything.

Run with ``python -m repro.lint src tests --format json``.  Suppress a
finding on one line with ``# repro-lint: disable=RL001`` (comma-separate
several ids, or ``disable=all``); accepted pre-existing findings live in
the committed baseline (``--baseline`` / ``--write-baseline``), and
``--explain RLxxx`` prints a rule's full rationale.
"""

from repro.lint.engine import (
    Violation,
    lint_paths,
    lint_source,
    lint_sources,
    main,
)
from repro.lint.rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "Rule",
    "Violation",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "main",
]
