"""Driver: walk files, run per-file and whole-program rules, honor inline
suppressions, diff against a baseline, report.

Suppressions are line-scoped comments (real comments — a suppression
string inside a string literal is ignored)::

    page = device.read_oob(b, p)  # repro-lint: disable=RL006
    risky()                       # repro-lint: disable=RL001,RL005
    anything()                    # repro-lint: disable=all

A finding is suppressed when the comment sits on the line the finding is
reported at (for multi-line statements that is the line of the offending
node, usually the first line of the statement).  A suppression that
suppresses nothing is itself reported (RL100, ruff unused-noqa style)
unless ``--ignore-unused-suppressions`` is given or the comment also
disables RL100.

The CLI supports ``--format json`` (byte-deterministic, CI-diffable
output), ``--baseline FILE`` (only findings *not* in the committed
baseline fail the run), ``--write-baseline FILE`` to accept the current
findings, ``--explain RLxxx`` to print a rule's full rationale, and
``--cache DIR`` to reuse per-file rule results keyed by content hash.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import inspect
import io
import json
import os
import re
import sys
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.lint.rules import ALL_RULES, Rule, Violation

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


class RuleUnusedSuppression(Rule):
    """RL100: a ``# repro-lint: disable=RLxxx`` that suppresses nothing.

    Stale suppressions are worse than useless: they read as "this line is
    known-dangerous but accepted" while actually hiding nothing today and
    potentially hiding a real regression tomorrow.  When the code a
    suppression guarded is fixed or deleted, the comment must go too.
    Escape hatches: run with ``--ignore-unused-suppressions`` (e.g. while
    bisecting), or add RL100 itself to the comment's id list to mark a
    suppression that is only needed under some configurations.
    """

    id = "RL100"
    summary = "suppression comment that suppresses nothing"

    def applies(self, path: str) -> bool:  # handled by the engine itself
        return False

    def check(self, tree: ast.Module, path: str):
        return iter(())


def _parse_ids(raw: str) -> set[str]:
    ids = {tok.strip() for tok in raw.split(",") if tok.strip()}
    return {i.lower() if i.lower() == "all" else i.upper() for i in ids}


def _suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> set of suppressed rule ids (or {"all"}).

    Tokenize-based so only *real* comments count: a disable-string inside
    a string literal (docs, test fixtures) is not a suppression.  Files
    that fail to tokenize (syntax errors) fall back to the line regex.
    """
    out: dict[int, set[str]] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                m = _SUPPRESS_RE.search(tok.string)
                if m:
                    out[tok.start[0]] = _parse_ids(m.group(1))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        out = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            m = _SUPPRESS_RE.search(line)
            if m:
                out[lineno] = _parse_ids(m.group(1))
    return out


# ------------------------------------------------------------------ pipeline


@dataclass
class FileEntry:
    """One parsed file, shared by the per-file and whole-program passes."""

    path: str
    source: str
    tree: ast.Module | None
    suppressions: dict[int, set[str]]
    syntax_error: Violation | None = None


def _load_entry(path: str, source: str) -> FileEntry:
    try:
        tree = ast.parse(source, filename=path)
        error = None
    except SyntaxError as err:
        tree = None
        error = Violation(path, err.lineno or 1, err.offset or 0, "RL000",
                          f"syntax error: {err.msg}")
    return FileEntry(path, source, tree, _suppressions(source), error)


def _file_violations(entry: FileEntry,
                     rules: Sequence[Rule]) -> list[Violation]:
    if entry.tree is None:
        return [entry.syntax_error] if entry.syntax_error else []
    active = [r for r in rules if r.applies(entry.path)]
    found: list[Violation] = []
    for rule in active:
        found.extend(rule.check(entry.tree, entry.path))
    return found


@dataclass
class LintResult:
    """Outcome of linting a set of entries, pre-suppression bookkeeping."""

    violations: list[Violation] = field(default_factory=list)
    #: (path, line) -> suppressed rule ids that actually matched a finding.
    used_suppressions: dict[tuple[str, int], set[str]] = field(
        default_factory=dict)


def _apply_suppressions(entries: dict[str, FileEntry],
                        raw: Iterable[Violation]) -> LintResult:
    result = LintResult()
    for violation in raw:
        entry = entries.get(violation.path)
        ids = entry.suppressions.get(violation.line, set()) if entry else set()
        if "all" in ids or violation.rule_id in ids:
            used = result.used_suppressions.setdefault(
                (violation.path, violation.line), set())
            used.add("all" if "all" in ids and violation.rule_id not in ids
                     else violation.rule_id)
            continue
        result.violations.append(violation)
    return result


def _unused_suppressions(entries: dict[str, FileEntry],
                         result: LintResult) -> list[Violation]:
    found: list[Violation] = []
    for path in sorted(entries):
        entry = entries[path]
        if entry.tree is None:
            continue  # a syntax error hides what the comments guard
        for line in sorted(entry.suppressions):
            ids = entry.suppressions[line]
            if "RL100" in ids:
                continue  # explicit per-line escape hatch
            used = result.used_suppressions.get((path, line), set())
            if "all" in ids:
                if not used:
                    found.append(Violation(
                        path, line, 0, "RL100",
                        "unused suppression: disable=all suppresses "
                        "nothing on this line — remove it"))
                continue
            for rule_id in sorted(ids - used):
                found.append(Violation(
                    path, line, 0, "RL100",
                    f"unused suppression: disable={rule_id} suppresses "
                    "nothing on this line — remove it"))
    return found


def _sorted(violations: list[Violation]) -> list[Violation]:
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id,
                                   v.message))
    return violations


def lint_entries(entries: dict[str, FileEntry],
                 rules: Sequence[Rule] | None = None,
                 program: bool = True,
                 report_unused: bool = True,
                 cache: "_RuleCache | None" = None) -> list[Violation]:
    """Lint parsed entries: per-file rules, det-flow, suppressions, RL100."""
    file_rules = list(rules) if rules is not None else list(ALL_RULES)
    raw: list[Violation] = []
    for path in sorted(entries):
        entry = entries[path]
        if cache is not None:
            cached = cache.get(entry)
            if cached is not None:
                raw.extend(cached)
                continue
            found = _file_violations(entry, file_rules)
            cache.put(entry, found)
            raw.extend(found)
        else:
            raw.extend(_file_violations(entry, file_rules))
    if program:
        from repro.lint.detflow import analyze_program
        trees = [(e.path, e.tree) for e in
                 sorted(entries.values(), key=lambda e: e.path)
                 if e.tree is not None]
        raw.extend(analyze_program(trees))
    result = _apply_suppressions(entries, raw)
    violations = result.violations
    if report_unused:
        violations.extend(_unused_suppressions(entries, result))
    return _sorted(violations)


def lint_source(source: str, path: str,
                rules: Sequence[Rule] | None = None) -> list[Violation]:
    """Lint one file's text; ``path`` decides which rules apply.

    Runs the whole-program det-flow pass over the single module too (a
    one-module program), but not unused-suppression detection — that only
    makes sense over a full tree run (``lint_paths``).
    """
    entry = _load_entry(path, source)
    return lint_entries({path: entry}, rules=rules,
                        program=rules is None, report_unused=False)


def lint_sources(sources: dict[str, str],
                 rules: Sequence[Rule] | None = None,
                 report_unused: bool = False) -> list[Violation]:
    """Lint a multi-file program given as ``{path: source}`` — the det-flow
    pass sees all modules at once, so cross-module taint flows resolve."""
    entries = {path: _load_entry(path, src)
               for path, src in sorted(sources.items())}
    return lint_entries(entries, rules=rules, program=rules is None,
                        report_unused=report_unused)


def iter_python_files(paths: Iterable[str]) -> list[str]:
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        # dirnames is sorted in place, so the traversal order (and with it
        # every report and baseline diff) is deterministic.
        for dirpath, dirnames, filenames in os.walk(path):  # repro-lint: disable=RL007
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in ("__pycache__", ".git"))
            files.extend(os.path.join(dirpath, name)
                         for name in sorted(filenames)
                         if name.endswith(".py"))
    return files


def lint_paths(paths: Iterable[str],
               rules: Sequence[Rule] | None = None,
               program: bool | None = None,
               report_unused: bool = True,
               cache: "_RuleCache | None" = None) -> list[Violation]:
    entries: dict[str, FileEntry] = {}
    for file_path in iter_python_files(paths):
        with open(file_path, encoding="utf-8") as fh:
            entries[file_path] = _load_entry(file_path, fh.read())
    if program is None:
        program = rules is None
    return lint_entries(entries, rules=rules, program=program,
                        report_unused=report_unused, cache=cache)


# ------------------------------------------------------------------ baseline
# The committed baseline records *accepted* findings as (path, rule,
# message) triples — line-free, so unrelated edits above a finding do not
# churn it.  CI fails on any finding not in the baseline; stale entries
# (in the baseline but no longer firing) are reported so they get pruned.

BASELINE_VERSION = 1


def load_baseline(path: str) -> list[dict]:
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline version in {path}: "
                         f"{data.get('version')!r}")
    return data["findings"]

def baseline_key(violation: Violation) -> tuple[str, str, str]:
    return (violation.path.replace("\\", "/"), violation.rule_id,
            violation.message)


def apply_baseline(violations: list[Violation],
                   entries: list[dict]) -> tuple[list[Violation], list[dict]]:
    """Split into (new findings, stale baseline entries).

    Multiset semantics: each baseline entry absorbs one matching finding,
    so a *second* instance of an accepted pattern still fails.
    """
    budget: dict[tuple[str, str, str], int] = {}
    for item in entries:
        key = (item["path"], item["rule"], item["message"])
        budget[key] = budget.get(key, 0) + 1
    new: list[Violation] = []
    for violation in violations:
        key = baseline_key(violation)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            new.append(violation)
    stale = [{"path": path, "rule": rule, "message": message}
             for (path, rule, message), count in sorted(budget.items())
             for _ in range(count)]
    return new, stale


def render_baseline(violations: list[Violation]) -> str:
    findings = sorted(
        ({"path": p, "rule": r, "message": m}
         for p, r, m in (baseline_key(v) for v in violations)),
        key=lambda d: (d["path"], d["rule"], d["message"]))
    return json.dumps({"version": BASELINE_VERSION, "findings": findings},
                      indent=2, sort_keys=True) + "\n"


def render_json(violations: list[Violation],
                stale_baseline: list[dict] | None = None) -> str:
    """Machine-readable output; byte-identical across runs on one tree."""
    payload = {
        "version": 1,
        "findings": [
            {"path": v.path.replace("\\", "/"), "line": v.line,
             "col": v.col, "rule": v.rule_id, "message": v.message}
            for v in violations
        ],
    }
    if stale_baseline is not None:
        payload["stale_baseline"] = stale_baseline
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# --------------------------------------------------------------------- cache


class _RuleCache:
    """Per-file rule-result cache keyed by content hash.

    Only the per-file rules are cached — they are pure functions of one
    file's text.  The det-flow pass is whole-program and always runs (it
    is the cheap part: one AST walk per function over an already-parsed
    tree).  The cache key folds in the lint package's own sources, so
    editing a rule invalidates everything.
    """

    def __init__(self, directory: str) -> None:
        self.path = os.path.join(directory, "repro-lint-cache.json")
        self._salt = self._package_hash()
        try:
            with open(self.path, encoding="utf-8") as fh:
                self._data = json.load(fh)
        except (OSError, ValueError):
            self._data = {}
        if self._data.get("salt") != self._salt:
            self._data = {"salt": self._salt, "files": {}}
        self._dirty = False

    @staticmethod
    def _package_hash() -> str:
        digest = hashlib.sha256()
        package_dir = os.path.dirname(os.path.abspath(__file__))
        for name in sorted(os.listdir(package_dir)):
            if name.endswith(".py"):
                with open(os.path.join(package_dir, name), "rb") as fh:
                    digest.update(fh.read())

        return digest.hexdigest()

    def _key(self, entry: FileEntry) -> str:
        content = hashlib.sha256(entry.source.encode("utf-8")).hexdigest()
        return f"{entry.path}:{content}"

    def get(self, entry: FileEntry) -> list[Violation] | None:
        item = self._data["files"].get(self._key(entry))
        if item is None:
            return None
        return [Violation(d["path"], d["line"], d["col"], d["rule"],
                          d["message"]) for d in item]

    def put(self, entry: FileEntry, found: list[Violation]) -> None:
        self._data["files"][self._key(entry)] = [
            {"path": v.path, "line": v.line, "col": v.col,
             "rule": v.rule_id, "message": v.message} for v in found]
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self._data, fh)
        os.replace(tmp, self.path)


# ----------------------------------------------------------------------- CLI


def all_rules() -> list[Rule]:
    from repro.lint.detflow import PROGRAM_RULES
    return list(ALL_RULES) + list(PROGRAM_RULES) + [RuleUnusedSuppression()]


def explain(rule_id: str) -> str | None:
    for rule in all_rules():
        if rule.id == rule_id.upper():
            doc = inspect.getdoc(rule.__class__) or rule.summary
            return doc
    return None


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="repro-lint: repo-specific static analysis "
                    "(per-file rules RL001-RL006, whole-program "
                    "determinism-flow RL007-RL010, RL100).")
    parser.add_argument("paths", nargs="*", metavar="PATH")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule ids with one-line summaries")
    parser.add_argument("--explain", metavar="RLxxx",
                        help="print a rule's full rationale and exit")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="output format (json is byte-deterministic)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="accepted-findings file: only findings not in "
                             "it fail the run; stale entries are reported")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write the current findings as the new "
                             "baseline and exit 0")
    parser.add_argument("--ignore-unused-suppressions", action="store_true",
                        help="do not report RL100 for stale disable= "
                             "comments")
    parser.add_argument("--no-detflow", action="store_true",
                        help="skip the whole-program determinism-flow pass")
    parser.add_argument("--cache", metavar="DIR",
                        help="cache per-file rule results in DIR (keyed by "
                             "content hash; det-flow always runs)")
    args = parser.parse_args(list(sys.argv[1:] if argv is None else argv))

    if args.list_rules:
        for rule in all_rules():
            doc = (rule.__class__.__doc__ or "").strip().splitlines()[0]
            print(f"{rule.id}  {doc}")
        return 0
    if args.explain:
        doc = explain(args.explain)
        if doc is None:
            known = ", ".join(r.id for r in all_rules())
            print(f"unknown rule {args.explain!r} (known: {known})",
                  file=sys.stderr)
            return 2
        print(doc)
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        return 2

    cache = _RuleCache(args.cache) if args.cache else None
    violations = lint_paths(
        args.paths,
        program=not args.no_detflow,
        report_unused=not args.ignore_unused_suppressions,
        cache=cache)
    if cache is not None:
        cache.save()

    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as fh:
            fh.write(render_baseline(violations))
        print(f"wrote {len(violations)} finding(s) to "
              f"{args.write_baseline}", file=sys.stderr)
        return 0

    stale: list[dict] | None = None
    if args.baseline:
        try:
            entries = load_baseline(args.baseline)
        except (OSError, ValueError) as err:
            print(f"cannot read baseline {args.baseline}: {err}",
                  file=sys.stderr)
            return 2
        violations, stale = apply_baseline(violations, entries)

    if args.fmt == "json":
        sys.stdout.write(render_json(violations, stale))
    else:
        for violation in violations:
            print(violation.render())
        if stale:
            print(f"repro-lint: {len(stale)} stale baseline entr"
                  f"{'y' if len(stale) == 1 else 'ies'} — regenerate with "
                  "--write-baseline", file=sys.stderr)
    if violations:
        if args.fmt == "text":
            print(f"repro-lint: {len(violations)} violation(s) in "
                  f"{len({v.path for v in violations})} file(s)",
                  file=sys.stderr)
        return 1
    return 0
