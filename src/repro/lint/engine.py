"""Driver: walk files, run rules, honor inline suppressions, report.

Suppressions are line-scoped comments::

    page = device.read_oob(b, p)  # repro-lint: disable=RL006
    risky()  # repro-lint: disable=RL001,RL005
    anything()  # repro-lint: disable=all

A finding is suppressed when the comment sits on the line the finding is
reported at (for multi-line statements that is the line of the offending
node, usually the first line of the statement).
"""

from __future__ import annotations

import ast
import os
import re
import sys
from typing import Iterable, Sequence

from repro.lint.rules import ALL_RULES, Rule, Violation

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


def _suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> set of suppressed rule ids (or {"all"})."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            ids = {tok.strip() for tok in m.group(1).split(",") if tok.strip()}
            out[lineno] = {i.lower() if i.lower() == "all" else i.upper()
                           for i in ids}
    return out


def lint_source(source: str, path: str,
                rules: Sequence[Rule] | None = None) -> list[Violation]:
    """Lint one file's text; ``path`` decides which rules apply."""
    active = [r for r in (rules if rules is not None else ALL_RULES)
              if r.applies(path)]
    if not active:
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [Violation(path, err.lineno or 1, err.offset or 0, "RL000",
                          f"syntax error: {err.msg}")]
    suppressed = _suppressions(source)
    found: list[Violation] = []
    for rule in active:
        for violation in rule.check(tree, path):
            ids = suppressed.get(violation.line, set())
            if "all" in ids or violation.rule_id in ids:
                continue
            found.append(violation)
    found.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return found


def iter_python_files(paths: Iterable[str]) -> list[str]:
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in ("__pycache__", ".git"))
            files.extend(os.path.join(dirpath, name)
                         for name in sorted(filenames)
                         if name.endswith(".py"))
    return files


def lint_paths(paths: Iterable[str],
               rules: Sequence[Rule] | None = None) -> list[Violation]:
    found: list[Violation] = []
    for file_path in iter_python_files(paths):
        with open(file_path, encoding="utf-8") as fh:
            source = fh.read()
        found.extend(lint_source(source, file_path, rules))
    return found


def main(argv: Sequence[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if "--list-rules" in args:
        for rule in ALL_RULES:
            doc = (rule.__class__.__doc__ or "").strip().splitlines()[0]
            print(f"{rule.id}  {doc}")
        return 0
    if not args:
        print("usage: python -m repro.lint [--list-rules] PATH [PATH ...]",
              file=sys.stderr)
        return 2
    violations = lint_paths(args)
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"repro-lint: {len(violations)} violation(s) in "
              f"{len({v.path for v in violations})} file(s)", file=sys.stderr)
        return 1
    return 0
