"""The repro-lint rules (RL001–RL006).

Each rule is a small AST pass scoped to the part of the tree where its
invariant holds.  Paths are matched with normalized forward slashes, so
the rules behave identically on every platform and regardless of whether
the linter was pointed at ``src``, ``src/repro`` or a single file.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class Violation:
    """One finding: ``path:line:col: rule_id message``."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


def _norm(path: str) -> str:
    return path.replace("\\", "/")


def _in_sim_src(path: str) -> bool:
    """True for simulator source files (``src/repro/...``), not tests."""
    p = _norm(path)
    return "repro/" in p and "/tests/" not in p and not p.startswith("tests/")


def _dotted(node: ast.AST) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class Rule:
    """Base class: subclasses set ``id``/``summary`` and implement check()."""

    id: str = ""
    summary: str = ""

    def applies(self, path: str) -> bool:
        raise NotImplementedError

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        raise NotImplementedError

    def _v(self, path: str, node: ast.AST, message: str) -> Violation:
        return Violation(path, getattr(node, "lineno", 1),
                         getattr(node, "col_offset", 0), self.id, message)


class _ImportMap(ast.NodeVisitor):
    """Track module/function aliases so rules resolve calls through imports."""

    def __init__(self) -> None:
        #: local alias -> canonical dotted module ("np" -> "numpy")
        self.modules: dict[str, str] = {}
        #: local name -> (canonical module, attr) for from-imports
        self.names: dict[str, tuple[str, str]] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.modules[alias.asname or alias.name.split(".")[0]] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            self.names[alias.asname or alias.name] = (node.module, alias.name)

    def resolve_call(self, func: ast.AST) -> tuple[str, str] | None:
        """Resolve a Call.func to ``(canonical_module, attr_chain)``."""
        chain = _dotted(func)
        if chain is None:
            return None
        head = chain[0]
        if len(chain) == 1:
            if head in self.names:
                mod, attr = self.names[head]
                return mod, attr
            return None
        if head in self.modules:
            return self.modules[head], ".".join(chain[1:])
        if head in self.names:
            mod, attr = self.names[head]
            return f"{mod}.{attr}", ".".join(chain[1:])
        return None


class RuleWallClock(Rule):
    """RL001: no wall-clock reads or unseeded RNG in simulator paths.

    Simulated time comes from ``SimClock`` and every random draw threads an
    explicit seed; ``time.time()``, ``datetime.now()``, the stdlib ``random``
    module and legacy ``numpy.random.*`` globals all smuggle host entropy
    into what must be a bit-reproducible simulation.  ``harness.py`` (report
    timestamps), ``benchmarks/`` and ``core/parallel.py`` are allowlisted:
    the worker pool's queue timeouts and process joins are host-side
    orchestration that legitimately reads the host clock — by design it
    carries no simulated state, so wall-clock there cannot leak into
    results or ``SimClock`` accounting (the bit-identity goldens enforce
    exactly that).
    """

    id = "RL001"
    summary = "wall-clock read or unseeded RNG in a sim path"

    _TIME_FNS = {"time", "time_ns", "perf_counter", "perf_counter_ns",
                 "monotonic", "monotonic_ns", "process_time",
                 "process_time_ns", "clock"}
    _DATETIME_FNS = {"now", "utcnow", "today"}
    #: numpy.random attributes that are fine: seeded constructors and types.
    _SAFE_NP_RANDOM = {"default_rng", "Generator", "SeedSequence",
                       "BitGenerator", "RandomState", "MT19937", "PCG64",
                       "PCG64DXSM", "Philox", "SFC64"}
    _SEEDED_CTORS = {"default_rng", "RandomState", "SeedSequence"}

    def applies(self, path: str) -> bool:
        p = _norm(path)
        if (p.endswith("repro/harness.py") or "benchmarks/" in p
                or p.endswith("repro/core/parallel.py")):
            return False
        return _in_sim_src(p)

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        imports = _ImportMap()
        imports.visit(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve_call(node.func)
            if resolved is None:
                continue
            mod, attr = resolved
            leaf = attr.split(".")[-1]
            if mod == "time" and leaf in self._TIME_FNS:
                yield self._v(path, node,
                              f"wall-clock read time.{leaf}() — use SimClock")
            elif (mod in ("datetime", "datetime.datetime")
                  and leaf in self._DATETIME_FNS):
                yield self._v(path, node,
                              f"wall-clock read datetime {leaf}() — use SimClock")
            elif mod == "random":
                yield self._v(path, node,
                              f"stdlib random.{leaf}() draws unseeded host "
                              "entropy — use numpy.random.default_rng(seed)")
            elif (mod in ("numpy.random", "numpy") and
                  attr.startswith("random.")) or mod == "numpy.random":
                np_leaf = leaf
                if np_leaf not in self._SAFE_NP_RANDOM:
                    yield self._v(path, node,
                                  f"legacy numpy.random.{np_leaf}() uses the "
                                  "unseeded global state — use default_rng(seed)")
                elif np_leaf in self._SEEDED_CTORS and not node.args:
                    yield self._v(path, node,
                                  f"{np_leaf}() without a seed is "
                                  "OS-entropy-seeded — pass an explicit seed")


class RuleBareExcept(Rule):
    """RL002: a bare ``except``/``except BaseException`` must re-raise.

    ``PowerLossError`` subclasses ``BaseException`` (not ``Exception``)
    exactly so normal error handling cannot absorb an injected power cut.
    A handler broad enough to catch it must contain a bare ``raise`` on
    every path, or crash injection silently stops working.
    """

    id = "RL002"
    summary = "bare except that can swallow PowerLossError"

    def applies(self, path: str) -> bool:
        return _norm(path).endswith(".py")

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = node.type is None or (
                isinstance(node.type, ast.Name) and
                node.type.id == "BaseException")
            if broad and not any(
                    isinstance(n, ast.Raise) and n.exc is None
                    for n in ast.walk(node)):
                yield self._v(path, node,
                              "bare except swallows PowerLossError — "
                              "re-raise, or catch Exception instead")


class RuleFlashErrors(Rule):
    """RL003: ``raise`` inside ``src/repro/flash/`` uses the flash taxonomy.

    Callers of the flash stack handle ``FlashError`` subclasses (transient
    retry, ECC, wear-out, out-of-space); an ad-hoc ``RuntimeError`` escapes
    every recovery path.  ``TypeError``/``ValueError`` are allowed for
    argument validation, ``FileNotFoundError``/``FileExistsError`` for the
    POSIX-shaped file-store namespace, and ``SanitizerError`` is deliberate:
    it must *not* be catchable as a FlashError.
    """

    id = "RL003"
    summary = "raise of a non-FlashError inside the flash stack"

    _ALLOWED = {"FlashError", "FlashTransientError", "FlashUncorrectableError",
                "FlashProgramError", "FlashEraseError", "FlashWearOutError",
                "FlashOutOfSpaceError", "PowerLossError", "SanitizerError",
                "TypeError", "ValueError", "FileNotFoundError",
                "FileExistsError", "NotImplementedError"}

    def applies(self, path: str) -> bool:
        return "repro/flash/" in _norm(path)

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        allowed = set(self._ALLOWED)
        # Classes defined in this file that subclass an allowed name are
        # allowed too (the taxonomy itself lives in flash/device.py).
        grew = True
        while grew:
            grew = False
            for node in ast.walk(tree):
                if (isinstance(node, ast.ClassDef) and
                        node.name not in allowed and
                        any(isinstance(b, ast.Name) and b.id in allowed
                            for b in node.bases)):
                    allowed.add(node.name)
                    grew = True
        # Local variables bound to an allowed constructor may be raised
        # later (the partial-commit path builds the error, annotates it
        # with what committed, then raises).
        bound: set[str] = set()
        for node in ast.walk(tree):
            if (isinstance(node, ast.Assign) and
                    isinstance(node.value, ast.Call) and
                    isinstance(node.value.func, ast.Name) and
                    node.value.func.id in allowed):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        bound.add(tgt.id)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = exc.id if isinstance(exc, ast.Name) else None
            if name is None and isinstance(exc, ast.Attribute):
                name = exc.attr
            if name is None or name in allowed or name in bound:
                continue
            yield self._v(path, node,
                          f"raise {name}: flash-stack errors must be "
                          "FlashError subclasses (or TypeError/ValueError "
                          "for argument validation)")


class RuleHostIO(Rule):
    """RL004: no host-filesystem I/O in ``engine/``, ``core/`` or ``flash/``.

    All storage traffic must flow through ``FlashDevice`` and the file
    stores so the access pattern is observable and charged to the sim
    clock; an ``open()`` or ``np.save()`` in those layers is invisible
    I/O.  The dataset cache (``graph/datasets.py``) and benchmark/report
    output live outside these layers and are the sanctioned escape hatch.
    """

    id = "RL004"
    summary = "host file I/O below the store layer"

    _OS_IO = {"open", "remove", "unlink", "rename", "replace", "mkdir",
              "makedirs", "rmdir", "removedirs", "link", "symlink",
              "truncate", "fdopen", "listdir", "scandir", "stat"}
    _NP_IO = {"load", "save", "savez", "savez_compressed", "loadtxt",
              "savetxt", "fromfile", "tofile", "memmap", "genfromtxt"}
    _MODULES = {"shutil", "tempfile", "io", "pathlib"}

    def applies(self, path: str) -> bool:
        p = _norm(path)
        return any(part in p for part in
                   ("repro/engine/", "repro/core/", "repro/flash/"))

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        imports = _ImportMap()
        imports.visit(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                yield self._v(path, node,
                              "open(): storage below the engine goes through "
                              "FlashDevice / the file stores")
                continue
            resolved = imports.resolve_call(node.func)
            if resolved is None:
                continue
            mod, attr = resolved
            leaf = attr.split(".")[-1]
            root = mod.split(".")[0]
            if root == "os" and leaf in self._OS_IO:
                yield self._v(path, node,
                              f"os.{leaf}(): host filesystem access below "
                              "the store layer")
            elif root == "numpy" and leaf in self._NP_IO and "random" not in attr:
                yield self._v(path, node,
                              f"numpy {leaf}(): host file I/O below the "
                              "store layer")
            elif root in self._MODULES:
                yield self._v(path, node,
                              f"{root}.{leaf}(): host filesystem access "
                              "below the store layer")


class RuleFloatKeys(Rule):
    """RL005: no float-producing arithmetic on key/LPN/offset values.

    Keys, logical page numbers and byte offsets are integers up to 2^64.
    ``np.linspace`` and true division produce float64, which cannot
    represent integers past 2^53 — PR 2 shipped exactly this bug in the
    scale-out partition bounds.  Use ``//`` and integer ranges.
    """

    id = "RL005"
    summary = "float-producing arithmetic on key/lpn/offset values"

    _KEYLIKE = re.compile(
        r"(^|_)(key|keys|key_space|lpn|lpns|lba|offset|offsets|bound|bounds)"
        r"(_|$)|^(lo|hi)$", re.IGNORECASE)

    def applies(self, path: str) -> bool:
        return _in_sim_src(path)

    def _keylike_names(self, node: ast.AST) -> list[str]:
        found = []
        for sub in ast.walk(node):
            name = None
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            if name is not None and self._KEYLIKE.search(name):
                found.append(name)
        return found

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        imports = _ImportMap()
        imports.visit(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                resolved = imports.resolve_call(node.func)
                if resolved is None:
                    continue
                mod, attr = resolved
                if (mod.split(".")[0] == "numpy" and
                        attr.split(".")[-1] == "linspace"):
                    hits = [h for a in node.args + [kw.value for kw in node.keywords]
                            for h in self._keylike_names(a)]
                    if hits:
                        yield self._v(
                            path, node,
                            f"np.linspace over {hits[0]!r} yields float64 — "
                            "integer keys past 2^53 lose precision; use "
                            "integer arithmetic (key_space * i // n)")
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                hits = (self._keylike_names(node.left) +
                        self._keylike_names(node.right))
                if hits:
                    yield self._v(
                        path, node,
                        f"true division on {hits[0]!r} produces float64 — "
                        "use // to keep key/lpn/offset arithmetic exact")


class RuleChargeClock(Rule):
    """RL006: device-touching code must charge the ``SimClock``.

    Two shapes are checked inside ``src/repro/flash/``: (a) public
    ``FlashDevice`` methods that read or mutate the flash arrays
    (``_data``/``_oob``, or stores into ``_page_state``) must call a
    ``charge*`` method, and (b) any function elsewhere in the flash stack
    that calls a raw device primitive (``_read_silent``,
    ``_write_silent``, ``_program_run``, ``_commit_unchecked``,
    ``_commit_torn``) must charge.  Free-by-design operations carry an
    explicit ``# repro-lint: disable=RL006`` with the justification.
    """

    id = "RL006"
    summary = "device operation without a SimClock charge"

    _PRIMITIVES = {"_read_silent", "_write_silent", "_program_run",
                   "_commit_unchecked", "_commit_torn"}

    def applies(self, path: str) -> bool:
        return "repro/flash/" in _norm(path)

    @staticmethod
    def _charges(fn: ast.AST) -> bool:
        for sub in ast.walk(fn):
            if (isinstance(sub, ast.Call) and
                    isinstance(sub.func, ast.Attribute) and
                    sub.func.attr.startswith("charge")):
                return True
        return False

    def _touches_flash(self, fn: ast.AST) -> bool:
        for sub in ast.walk(fn):
            if not (isinstance(sub, ast.Attribute) and
                    isinstance(sub.value, ast.Name) and
                    sub.value.id == "self"):
                continue
            if sub.attr in ("_data", "_oob"):
                return True
            if sub.attr == "_page_state" and isinstance(
                    sub.ctx, (ast.Store, ast.Del)):
                return True
            # Slice-assignment ``self._page_state[...] = x`` loads the
            # attribute and stores into the subscript; catch it via parent
            # handling below (the Subscript is the Store).
        for sub in ast.walk(fn):
            if (isinstance(sub, ast.Subscript) and
                    isinstance(sub.ctx, (ast.Store, ast.Del)) and
                    isinstance(sub.value, ast.Attribute) and
                    isinstance(sub.value.value, ast.Name) and
                    sub.value.value.id == "self" and
                    sub.value.attr == "_page_state"):
                return True
        return False

    def check(self, tree: ast.Module, path: str) -> Iterator[Violation]:
        device_classes = [n for n in tree.body
                          if isinstance(n, ast.ClassDef) and
                          n.name == "FlashDevice"]
        device_fns: set[ast.AST] = set()
        for cls in device_classes:
            for item in cls.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    device_fns.add(item)
                    if item.name.startswith("_"):
                        continue
                    if self._touches_flash(item) and not self._charges(item):
                        yield self._v(
                            path, item,
                            f"FlashDevice.{item.name}() touches flash "
                            "state but never charges the SimClock")
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node in device_fns:
                continue
            calls_primitive = any(
                isinstance(sub, ast.Call) and
                isinstance(sub.func, ast.Attribute) and
                sub.func.attr in self._PRIMITIVES
                for sub in ast.walk(node))
            if calls_primitive and not self._charges(node):
                yield self._v(
                    path, node,
                    f"{node.name}() drives raw device primitives but "
                    "never charges the SimClock")


ALL_RULES: list[Rule] = [
    RuleWallClock(),
    RuleBareExcept(),
    RuleFlashErrors(),
    RuleHostIO(),
    RuleFloatKeys(),
    RuleChargeClock(),
]
