"""det-flow: interprocedural determinism-flow analysis (RL007-RL010).

The repo's central promise — results, Fig-14 stats and simulated time are
bit-identical across ``--workers N``, execution modes, crash plans and
service chaos — is enforced at runtime by golden checksums.  This pass
enforces it at analysis time: a whole-program taint analysis over the
``src/repro/`` call graph that marks **nondeterminism sources**, propagates
the taint through calls, returns, assignments and container membership,
and reports when it reaches a **determinism sink**.

Sources (what makes a value nondeterministic):

===========  ==============================================================
kind         produced by
===========  ==============================================================
fs-order     unsorted ``os.listdir``/``os.scandir``/``os.walk``,
             ``glob.glob``/``glob.iglob``, ``Path.iterdir/glob/rglob``
set-order    iteration over a ``set``/``frozenset`` (literal, constructor,
             comprehension, set-typed local or ``self`` attribute)
id-hash      ``id()``/``hash()`` results; iteration over a dict subscripted
             with ``id()``/``hash()`` keys; ``id``/``hash`` in a sort key
pool-order   completion-order collection: ``as_completed``,
             ``imap_unordered``
wall-clock   ``time.time()``-family, ``datetime.now()``-family (RL001's
             tables, applied transitively)
rng          stdlib ``random``, legacy ``numpy.random`` globals, seedless
             ``default_rng()`` (RL001's tables, applied transitively)
===========  ==============================================================

Sinks (where nondeterminism becomes a broken golden):

* ``SimClock.charge*`` — float accumulation, so *order* changes the bits
  of ``elapsed_s``;
* journal/checkpoint writes (``_write_journal``/``_write_checkpoint``/
  frame encoding) — durable state replayed on recovery;
* trace/report/checksum construction (``checksum()``, appends to
  ``*trace*``/``*timeline*``/``*history*``/``*events*`` collections);
* sort-reduce key material (``sort_reduce_in_memory``/
  ``sort_reduce_stream``);
* run-file naming (store ``create``/``rename``).

Rules:

* **RL007** — fs-order taint escapes (into a list, loop-carried
  accumulation, stored state or an opaque call) or reaches a sink.
* **RL008** — set-order / id-hash taint escapes or reaches a sink.
* **RL009** — pool-order taint reaches a sink or feeds a float
  accumulation, or a ``SimClock`` charge / stateful float accumulation is
  reachable from a worker entry point (``Process(target=...)``) — the
  PR 5 parallel-merge regression class.
* **RL010** — wall-clock/rng taint reaches a determinism sink, possibly
  through intermediate calls in other modules — the interprocedural
  generalization of RL001.

Propagation is summary-based: each function gets a fixpoint summary
(taints returned, parameters that flow to the return value, parameters
that flow into sinks) and callers compose summaries at call sites, so a
``time.time()`` buried two helpers deep in ``harness.py`` is still seen
when an engine path charges it to the clock.  ``sorted()``, ``set()``,
``frozenset()`` launder *order* taints (value taints like wall-clock pass
through ``sorted``); ``len``/``bool``/``any``/``all`` launder everything.

Every set is iterated in sorted order and all worklists are deterministic,
so two runs over the same tree produce byte-identical findings (and
byte-identical ``--format json`` output).
"""

from __future__ import annotations

import ast
import re
from collections import deque
from dataclasses import dataclass
from typing import Iterable, NamedTuple

from repro.lint.callgraph import (CallGraph, FunctionInfo, dotted,
                                  module_name_for_path)
from repro.lint.rules import Rule, RuleWallClock, Violation, _in_sim_src

# --------------------------------------------------------------- taint model

FSORDER = "fs-order"
SETORDER = "set-order"
IDHASH = "id-hash"
POOLORDER = "pool-order"
WALLCLOCK = "wall-clock"
RNG = "rng"
PARAM = "param"

ORDER_KINDS = frozenset({FSORDER, SETORDER, IDHASH, POOLORDER})

RULE_FOR_KIND = {
    FSORDER: "RL007",
    SETORDER: "RL008",
    IDHASH: "RL008",
    POOLORDER: "RL009",
    WALLCLOCK: "RL010",
    RNG: "RL010",
}

#: call-chain length cap: keeps messages readable and fixpoints finite.
MAX_VIA = 6


class Taint(NamedTuple):
    """One tainted value: its source kind, site, and the call chain it
    travelled (callee qualnames, outermost last)."""

    kind: str
    desc: str
    path: str
    line: int
    via: tuple[str, ...] = ()

    def key(self) -> tuple[str, str, str, int]:
        return (self.kind, self.desc, self.path, self.line)


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


def _extend_via(taint: Taint, callee: str) -> Taint:
    if len(taint.via) >= MAX_VIA:
        return taint
    return taint._replace(via=taint.via + (_short(callee),))


def _canon(taints: Iterable[Taint]) -> frozenset[Taint]:
    """Canonicalize: one taint per source key, shortest (then lexicographic
    smallest) via chain — makes summary fixpoints order-independent."""
    best: dict[tuple, Taint] = {}
    for t in taints:
        k = t.key()
        cur = best.get(k)
        if cur is None or (len(t.via), t.via) < (len(cur.via), cur.via):
            best[k] = t
    return frozenset(best.values())


class Summary(NamedTuple):
    """Interprocedural summary of one function."""

    returns: frozenset[Taint]
    param_to_return: frozenset[int]
    param_sinks: frozenset[tuple[int, str]]


EMPTY_SUMMARY = Summary(frozenset(), frozenset(), frozenset())


# ------------------------------------------------------------------- tables

_FS_MODULE_FNS = {("os", "listdir"), ("os", "scandir"), ("os", "walk"),
                  ("glob", "glob"), ("glob", "iglob")}
_FS_PATH_METHODS = {"iterdir", "rglob"}
_POOL_FNS = {"as_completed", "imap_unordered"}

#: order-laundering builtins: result order is defined (or there is none).
_ORDER_SANCTIONERS = {"sorted", "set", "frozenset", "min", "max", "sum",
                      "any", "all", "len", "bool"}
#: cardinality-only builtins: nothing about the value survives.
_FULL_SANCTIONERS = {"len", "bool", "any", "all"}

#: container mutators: ``recv.append(x)`` makes ``recv`` carry x's taint.
_CONTAINER_ADDERS = {"append", "extend", "insert", "add", "appendleft",
                     "push", "put", "put_nowait"}

_SINKS_BY_NAME = {
    "_write_journal": "journal write",
    "_journal_write": "journal write",
    "write_journal": "journal write",
    "_write_checkpoint": "checkpoint write",
    "write_checkpoint": "checkpoint write",
    "encode_frame": "journal frame encoding",
    "encode_frames": "journal frame encoding",
    "checksum": "checksum construction",
    "sort_reduce_in_memory": "sort-reduce key material",
    "sort_reduce_stream": "sort-reduce key material",
}
_STORE_NAMESPACE = {"create", "rename"}
_TRACE_NAME = re.compile(r"trace|timeline|history|events", re.IGNORECASE)
_JOURNAL_NAME = re.compile(r"journal|checkpoint|wal|manifest", re.IGNORECASE)
_FLOATACC_NAME = re.compile(
    r"(^|_)(s|secs|seconds|elapsed|busy|time|total|sum|acc|credit|score|"
    r"weight)(_|$)", re.IGNORECASE)


# ------------------------------------------------------- per-function pass


class _FunctionAnalyzer:
    """One abstract-interpretation pass over a function body.

    Runs the body repeatedly (loops carry taint backwards) until the
    variable environment stabilizes, then optionally a collecting pass
    that records findings.
    """

    def __init__(self, flow: "DetFlow", info: FunctionInfo) -> None:
        self.flow = flow
        self.info = info
        self.module = flow.graph.modules[info.module]
        self.env: dict[str, set[Taint]] = {}
        self.set_vars: set[str] = set()
        self.idkey_vars: set[str] = set()
        self.returns: set[Taint] = set()
        self.param_to_return: set[int] = set()
        self.param_sinks: set[tuple[int, str]] = set()
        self.findings: dict[tuple, Violation] = {}
        #: source-key -> sink hit happened (suppresses weaker escape report)
        self._sunk: set[tuple] = set()
        #: source-key -> pending escape finding
        self._escapes: dict[tuple, Violation] = {}
        self.collecting = False
        for i, name in enumerate(info.params):
            self.env[name] = {Taint(PARAM, str(i), "", 0)}
        for arg in (info.node.args.posonlyargs + info.node.args.args +
                    info.node.args.kwonlyargs):
            ann = arg.annotation
            if ann is not None and _ann_is_set(ann):
                self.set_vars.add(arg.arg)

    # ------------------------------------------------------------ driving

    def run(self, collect: bool) -> None:
        for _ in range(3):
            before = ({k: frozenset(v) for k, v in self.env.items()},
                      frozenset(self.set_vars), frozenset(self.idkey_vars))
            self._exec_block(self.info.node.body)
            after = ({k: frozenset(v) for k, v in self.env.items()},
                     frozenset(self.set_vars), frozenset(self.idkey_vars))
            if before == after:
                break
        if collect:
            self.collecting = True
            self._exec_block(self.info.node.body)
            for key, violation in sorted(self._escapes.items()):
                if key[:4] not in self._sunk:
                    self.findings.setdefault(key, violation)

    def summary(self) -> Summary:
        return Summary(_canon(self.returns),
                       frozenset(self.param_to_return),
                       frozenset(self.param_sinks))

    # --------------------------------------------------------- statements

    def _exec_block(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taints = self._eval(stmt.value)
            is_set = _expr_is_set(stmt.value)
            for target in stmt.targets:
                self._assign(target, taints, is_set=is_set)
        elif isinstance(stmt, ast.AnnAssign):
            taints = self._eval(stmt.value) if stmt.value is not None else set()
            is_set = _ann_is_set(stmt.annotation) or (
                stmt.value is not None and _expr_is_set(stmt.value))
            self._assign(stmt.target, taints, is_set=is_set)
        elif isinstance(stmt, ast.AugAssign):
            taints = self._eval(stmt.value)
            if isinstance(stmt.op, ast.Add):
                self._check_accumulation(stmt, taints)
            name = self._target_name(stmt.target)
            if name is not None:
                self.env.setdefault(name, set()).update(taints)
        elif isinstance(stmt, (ast.Return,)):
            if stmt.value is not None:
                self._record_return(self._eval(stmt.value))
        elif isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, (ast.Yield, ast.YieldFrom)):
                inner = value.value
                if inner is not None:
                    self._record_return(self._eval(inner))
            else:
                self._eval(value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taints = self._iter_taints(stmt.iter)
            self._assign(stmt.target, taints, is_set=False)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taints, is_set=False)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        elif isinstance(stmt, (ast.Assert, ast.Delete)):
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.expr):
                    self._eval(sub)
        # nested defs/classes are indexed and analyzed as their own nodes.

    def _record_return(self, taints: set[Taint]) -> None:
        for t in sorted(taints):
            if t.kind == PARAM:
                self.param_to_return.add(int(t.desc))
            else:
                self.returns.add(t)

    def _target_name(self, target: ast.AST) -> str | None:
        if isinstance(target, ast.Name):
            return target.id
        if (isinstance(target, ast.Attribute) and
                isinstance(target.value, ast.Name) and
                target.value.id == "self"):
            return f"self.{target.attr}"
        return None

    def _assign(self, target: ast.AST, taints: set[Taint],
                is_set: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, taints, is_set=False)
            return
        if isinstance(target, ast.Starred):
            self._assign(target.value, taints, is_set=False)
            return
        if isinstance(target, ast.Subscript):
            # ``d[id(x)] = v``: dict keyed by addresses — iterating it later
            # is id-hash-ordered.  A tainted *key* is an order escape; a
            # tainted value taints the container.
            if _is_id_hash_call(target.slice):
                base = self._target_name(target.value)
                if base is not None:
                    self.idkey_vars.add(base)
            for t in self._eval(target.slice):
                if t.kind in ORDER_KINDS:
                    self._escape(t, "used as a container key")
            base = self._target_name(target.value)
            if base is not None:
                self.env.setdefault(base, set()).update(taints)
            return
        name = self._target_name(target)
        if name is None:
            return
        if name.startswith("self."):
            for t in taints:
                if t.kind in ORDER_KINDS:
                    self._escape(t, f"stored into {name}")
        self.env[name] = set(taints)
        if is_set:
            self.set_vars.add(name)
        else:
            self.set_vars.discard(name)

    def _check_accumulation(self, stmt: ast.AugAssign,
                            taints: set[Taint]) -> None:
        """``acc += tainted``: loop-carried order escape; for pool-order it
        is the PR 5 regression shape (completion order moves float bits)."""
        if not self.collecting:
            return
        target_name = self._target_name(stmt.target) or "<target>"
        for t in sorted(taints):
            if t.kind == POOLORDER:
                self._finding(
                    "RL009", stmt,
                    f"completion-order value from {t.desc} feeds the "
                    f"accumulation '{target_name} +='"
                    f"{_via_str(t)} — float accumulation is "
                    "order-sensitive; collect in submission order")
            elif t.kind in ORDER_KINDS:
                self._escape(t, f"loop-carried accumulation into "
                                f"'{target_name}'")

    # -------------------------------------------------------- expressions

    def _eval(self, node: ast.AST | None,
              sanctioned: bool = False) -> set[Taint]:
        if node is None:
            return set()
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return set(self.env.get(f"self.{node.attr}", ()))
            return self._eval(node.value, sanctioned)
        if isinstance(node, ast.Call):
            return self._eval_call(node, sanctioned)
        if isinstance(node, ast.BinOp):
            return (self._eval(node.left, sanctioned) |
                    self._eval(node.right, sanctioned))
        if isinstance(node, ast.BoolOp):
            out: set[Taint] = set()
            for value in node.values:
                out |= self._eval(value, sanctioned)
            return out
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, sanctioned)
        if isinstance(node, ast.Compare):
            # ``x in s`` / ``a < b``: a boolean — order cannot survive, but
            # entropy in the operands still decides the branch value.
            out = self._eval(node.left, sanctioned)
            for comp in node.comparators:
                out |= self._eval(comp, sanctioned)
            return {t for t in out if t.kind not in ORDER_KINDS}
        if isinstance(node, ast.Subscript):
            return (self._eval(node.value, sanctioned) |
                    self._eval(node.slice, sanctioned))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for elt in node.elts:
                out |= self._eval(elt, sanctioned)
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for key in node.keys:
                if key is not None:
                    out |= self._eval(key, sanctioned)
            for value in node.values:
                out |= self._eval(value, sanctioned)
            return out
        if isinstance(node, ast.JoinedStr):
            out = set()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self._eval(value.value, sanctioned)
            return out
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp,
                             ast.DictComp)):
            return self._eval_comprehension(node, sanctioned)
        if isinstance(node, ast.IfExp):
            return (self._eval(node.test, sanctioned) |
                    self._eval(node.body, sanctioned) |
                    self._eval(node.orelse, sanctioned))
        if isinstance(node, ast.Await):
            return self._eval(node.value, sanctioned)
        if isinstance(node, ast.Starred):
            return self._eval(node.value, sanctioned)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self._record_return(self._eval(node.value, sanctioned))
            return set()
        if isinstance(node, ast.NamedExpr):
            taints = self._eval(node.value, sanctioned)
            self._assign(node.target, taints, is_set=_expr_is_set(node.value))
            return taints
        return set()

    def _eval_comprehension(self, node: ast.AST,
                            sanctioned: bool) -> set[Taint]:
        order: set[Taint] = set()
        for gen in node.generators:
            taints = self._iter_taints(gen.iter)
            self._assign(gen.target, taints, is_set=False)
            order |= {t for t in taints if t.kind in ORDER_KINDS}
            for cond in gen.ifs:
                self._eval(cond, sanctioned)
        if isinstance(node, ast.DictComp):
            elt_taints = (self._eval(node.key, sanctioned) |
                          self._eval(node.value, sanctioned))
        else:
            elt_taints = self._eval(node.elt, sanctioned)
        if isinstance(node, (ast.SetComp, ast.DictComp)):
            # Landing in a set/dict erases the *iteration order*; the
            # contents are deterministic.
            return {t for t in elt_taints | order
                    if t.kind not in ORDER_KINDS}
        if isinstance(node, ast.ListComp) and not sanctioned:
            for t in sorted(order):
                self._escape(t, "materialized into a list")
        return elt_taints | order

    def _iter_taints(self, iter_node: ast.AST) -> set[Taint]:
        """Taints produced by iterating ``iter_node`` — includes set-order
        and id-hash *sources* when the iterable is set-typed/id-keyed."""
        taints = self._eval(iter_node)
        source: Taint | None = None
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            source = self._source(SETORDER, "set iteration", iter_node)
        elif (isinstance(iter_node, ast.Call) and
              isinstance(iter_node.func, ast.Name) and
              iter_node.func.id in ("set", "frozenset")):
            source = self._source(SETORDER, f"{iter_node.func.id}() iteration",
                                  iter_node)
        elif isinstance(iter_node, ast.Name):
            if iter_node.id in self.set_vars:
                source = self._source(
                    SETORDER, f"iteration over set {iter_node.id!r}",
                    iter_node)
            elif iter_node.id in self.idkey_vars:
                source = self._source(
                    IDHASH, f"iteration over id()/hash()-keyed "
                            f"{iter_node.id!r}", iter_node)
        elif (isinstance(iter_node, ast.Attribute) and
              isinstance(iter_node.value, ast.Name) and
              iter_node.value.id == "self" and self.info.class_name):
            cls = self.module.classes.get(self.info.class_name)
            if cls is not None and iter_node.attr in cls.set_attrs:
                source = self._source(
                    SETORDER, f"iteration over set self.{iter_node.attr}",
                    iter_node)
        elif (isinstance(iter_node, ast.Call) and
              isinstance(iter_node.func, ast.Attribute) and
              iter_node.func.attr in ("keys", "values", "items")):
            recv = iter_node.func.value
            if isinstance(recv, ast.Name) and recv.id in self.idkey_vars:
                source = self._source(
                    IDHASH, f"iteration over id()/hash()-keyed "
                            f"{recv.id!r}", iter_node)
        if source is not None:
            taints = taints | {source}
        return taints

    def _source(self, kind: str, desc: str, node: ast.AST) -> Taint:
        return Taint(kind, desc, self.info.path,
                     getattr(node, "lineno", 1))

    # -------------------------------------------------------------- calls

    def _eval_call(self, node: ast.Call, sanctioned: bool) -> set[Taint]:
        func = node.func
        # Builtin sanctioners first: sorted() launders order, len() all.
        if isinstance(func, ast.Name) and func.id in _ORDER_SANCTIONERS:
            self._check_sort_key(node)
            inner: set[Taint] = set()
            for arg in node.args:
                inner |= self._iter_taints(arg) if func.id == "sorted" \
                    else self._eval(arg, sanctioned=True)
            for kw in node.keywords:
                inner |= self._eval(kw.value, sanctioned=True)
            if func.id in _FULL_SANCTIONERS:
                return set()
            return {t for t in inner if t.kind not in ORDER_KINDS}
        # ``x.sort()`` sorts in place: clears order taint on x.
        if (isinstance(func, ast.Attribute) and func.attr == "sort" and
                isinstance(func.value, ast.Name)):
            self._check_sort_key(node)
            name = func.value.id
            self.env[name] = {t for t in self.env.get(name, set())
                              if t.kind not in ORDER_KINDS}
            return set()

        arg_taints: list[set[Taint]] = [self._eval(a) for a in node.args]
        kw_taints: dict[str, set[Taint]] = {
            kw.arg: self._eval(kw.value) for kw in node.keywords
            if kw.arg is not None}
        for kw in node.keywords:
            if kw.arg is None:  # **kwargs splat
                self._eval(kw.value)
        recv_taints: set[Taint] = set()
        if isinstance(func, ast.Attribute):
            recv_taints = self._eval(func.value)

        taints: set[Taint] = set()
        source = self._match_source(node)
        if source is not None:
            taints.add(source)

        callee = self.flow.graph.resolve_call(self.info, func)
        resolved = callee is not None and callee in self.flow.summaries
        if resolved:
            summary = self.flow.summaries[callee]
            offset = self._param_offset(callee, func)
            taints |= {_extend_via(t, callee) for t in summary.returns}
            callee_params = self.flow.graph.functions[callee].params

            def taints_for_param(index: int) -> set[Taint]:
                pos = index - offset
                if 0 <= pos < len(arg_taints):
                    return arg_taints[pos]
                if 0 <= index < len(callee_params):
                    return kw_taints.get(callee_params[index], set())
                return set()

            for index in sorted(summary.param_to_return):
                taints |= taints_for_param(index)
            for index, sink in sorted(summary.param_sinks):
                composed = sink if sink.count(" via ") >= 3 \
                    else f"{sink} via {_short(callee)}"
                self._hit(taints_for_param(index), composed, node)
        else:
            # Opaque call: the result inherits the receiver's and the
            # arguments' taints (str(x), fut.result(), os.path.join(d, f)).
            taints |= recv_taints
            for ts in arg_taints:
                taints |= ts
            for ts in kw_taints.values():
                taints |= ts
            # Container mutators taint the receiver instead of escaping.
            if (isinstance(func, ast.Attribute) and
                    func.attr in _CONTAINER_ADDERS):
                base = self._target_name(func.value)
                added: set[Taint] = set()
                for ts in arg_taints:
                    added |= ts
                if base is not None:
                    self.env.setdefault(base, set()).update(added)
                for t in sorted(added):
                    if t.kind in ORDER_KINDS:
                        self._escape(t, f"collected via "
                                        f".{func.attr}()")
            elif self.collecting and not sanctioned:
                flat: set[Taint] = set()
                for ts in arg_taints:
                    flat |= ts
                for _name, ts in sorted(kw_taints.items()):
                    flat |= ts
                for t in sorted(flat):
                    if t.kind in ORDER_KINDS:
                        self._escape(t, f"passed to opaque call "
                                        f"{_call_name(func)}()")

        sink = self._match_sink(node)
        if sink is not None:
            all_args: set[Taint] = set()
            for ts in arg_taints:
                all_args |= ts
            for ts in kw_taints.values():
                all_args |= ts
            self._hit(all_args, sink, node)
        return taints

    def _param_offset(self, callee: str, func: ast.AST) -> int:
        info = self.flow.graph.functions[callee]
        if info.class_name is None:
            return 0
        if "staticmethod" in info.decorators:
            return 0
        return 1

    def _match_source(self, node: ast.Call) -> Taint | None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("id", "hash"):
            return self._source(IDHASH, f"{func.id}()", node)
        chain = dotted(func)
        resolved = (self.module.imports.resolve_module_attr(chain)
                    if chain else None)
        if resolved is not None:
            mod, attr = resolved
            leaf = attr.split(".")[-1]
            root = mod.split(".")[0]
            if (root, leaf) in _FS_MODULE_FNS or \
                    (root == "glob" and leaf in ("glob", "iglob")):
                return self._source(FSORDER, f"{root}.{leaf}()", node)
            if mod == "concurrent.futures" and leaf == "as_completed":
                return self._source(POOLORDER, "as_completed()", node)
            if mod == "time" and leaf in RuleWallClock._TIME_FNS:
                return self._source(WALLCLOCK, f"time.{leaf}()", node)
            if (mod in ("datetime", "datetime.datetime") and
                    leaf in RuleWallClock._DATETIME_FNS):
                return self._source(WALLCLOCK, f"datetime {leaf}()", node)
            if mod == "random":
                return self._source(RNG, f"random.{leaf}()", node)
            if ((mod in ("numpy.random", "numpy") and
                 attr.startswith("random.")) or mod == "numpy.random"):
                if leaf not in RuleWallClock._SAFE_NP_RANDOM:
                    return self._source(RNG, f"numpy.random.{leaf}()", node)
                if leaf in RuleWallClock._SEEDED_CTORS and not node.args:
                    return self._source(RNG, f"seedless {leaf}()", node)
        if isinstance(func, ast.Attribute):
            leaf = func.attr
            if leaf in _FS_PATH_METHODS and resolved is None:
                return self._source(FSORDER, f".{leaf}()", node)
            if leaf == "glob" and resolved is None:
                return self._source(FSORDER, ".glob()", node)
            if leaf in _POOL_FNS and resolved is None:
                return self._source(POOLORDER, f".{leaf}()", node)
        return None

    def _match_sink(self, node: ast.Call) -> str | None:
        func = node.func
        leaf = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if leaf is None:
            return None
        if isinstance(func, ast.Attribute) and leaf.startswith("charge"):
            return f"SimClock {leaf}()"
        if leaf in _SINKS_BY_NAME:
            return _SINKS_BY_NAME[leaf]
        if (isinstance(func, ast.Attribute) and
                leaf in _STORE_NAMESPACE):
            return "store namespace write (run naming)"
        if isinstance(func, ast.Attribute):
            recv_chain = dotted(func.value)
            recv_leaf = recv_chain[-1] if recv_chain else None
            if (recv_leaf is not None and leaf in ("append", "extend") and
                    _TRACE_NAME.search(recv_leaf)):
                return f"trace construction ({recv_leaf}.{leaf})"
            # ``journal.write_entry(...)``: any write-ish method on a
            # journal/checkpoint-named receiver is durable-state material.
            if (recv_leaf is not None and _JOURNAL_NAME.search(recv_leaf) and
                    (leaf.startswith("write") or leaf.startswith("log") or
                     leaf.startswith("record"))):
                return f"journal write ({recv_leaf}.{leaf})"
        return None

    def _check_sort_key(self, node: ast.Call) -> None:
        """``sorted(xs, key=lambda v: id(v))``: an address-dependent order."""
        if not self.collecting:
            return
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            if (isinstance(kw.value, ast.Name) and
                    kw.value.id in ("id", "hash")):
                self._finding(
                    "RL008", node,
                    f"{kw.value.id} as a sort key orders by interpreter "
                    "addresses/hashes — derive sort keys from stable data")
                continue
            for sub in ast.walk(kw.value):
                if (isinstance(sub, ast.Call) and
                        isinstance(sub.func, ast.Name) and
                        sub.func.id in ("id", "hash")):
                    self._finding(
                        "RL008", node,
                        f"{sub.func.id}() in a sort key orders by "
                        "interpreter addresses/hashes — derive sort keys "
                        "from stable data")

    # ----------------------------------------------------------- findings

    def _hit(self, taints: set[Taint], sink: str, node: ast.AST) -> None:
        for t in sorted(taints):
            if t.kind == PARAM:
                self.param_sinks.add((int(t.desc), sink))
            elif self.collecting:
                self._sunk.add(t.key())
                self._finding(
                    RULE_FOR_KIND[t.kind], node,
                    f"{t.desc} ({t.path}:{t.line}) reaches {sink}"
                    f"{_via_str(t)} — nondeterminism in "
                    "determinism-critical state")

    def _escape(self, taint: Taint, how: str) -> None:
        """An order taint left the sanctioned uses; report at its source."""
        if not self.collecting or taint.kind not in ORDER_KINDS:
            return
        rule = RULE_FOR_KIND[taint.kind]
        key = taint.key() + (rule,)
        if key in self._escapes:
            return
        fix = ("sort the listing" if taint.kind == FSORDER
               else "sort before iterating" if taint.kind == SETORDER
               else "key by stable data" if taint.kind == IDHASH
               else "collect in submission order")
        self._escapes[key] = Violation(
            taint.path, taint.line, 0, rule,
            f"{taint.desc} order is nondeterministic and escapes "
            f"({how}) — {fix} or suppress with a justification")

    def _finding(self, rule: str, node: ast.AST, message: str) -> None:
        key = (rule, self.info.path, getattr(node, "lineno", 1), message)
        self.findings.setdefault(key, Violation(
            self.info.path, getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0), rule, message))


def _is_id_hash_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call) and
            isinstance(node.func, ast.Name) and
            node.func.id in ("id", "hash"))


def _via_str(taint: Taint) -> str:
    if not taint.via:
        return ""
    return " via " + " -> ".join(taint.via)


def _call_name(func: ast.AST) -> str:
    chain = dotted(func)
    return ".".join(chain) if chain else "<dynamic>"


def _expr_is_set(value: ast.AST | None) -> bool:
    if value is None:
        return False
    if isinstance(value, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(value, ast.Call) and
            isinstance(value.func, ast.Name) and
            value.func.id in ("set", "frozenset"))


def _ann_is_set(ann: ast.AST) -> bool:
    target = ann.value if isinstance(ann, ast.Subscript) else ann
    if isinstance(target, ast.Name):
        return target.id in ("set", "frozenset", "Set", "FrozenSet")
    if isinstance(target, ast.Attribute):
        return target.attr in ("Set", "FrozenSet")
    return False


# -------------------------------------------------------- whole-program pass


class DetFlow:
    """The interprocedural analysis over one set of parsed modules."""

    def __init__(self, files: list[tuple[str, ast.Module]]) -> None:
        self.graph = CallGraph.build(files)
        self.summaries: dict[str, Summary] = {
            q: EMPTY_SUMMARY for q in self.graph.functions}

    def run(self) -> list[Violation]:
        order = sorted(self.graph.functions)
        callers = self.graph.callers_of()
        work: deque[str] = deque(order)
        queued = set(order)
        steps = 0
        limit = max(1000, 50 * len(order))
        while work and steps < limit:
            steps += 1
            qual = work.popleft()
            queued.discard(qual)
            analyzer = _FunctionAnalyzer(self, self.graph.functions[qual])
            analyzer.run(collect=False)
            summary = analyzer.summary()
            if summary != self.summaries[qual]:
                self.summaries[qual] = summary
                for caller in callers.get(qual, ()):
                    if caller not in queued:
                        work.append(caller)
                        queued.add(caller)
        findings: dict[tuple, Violation] = {}
        for qual in order:
            info = self.graph.functions[qual]
            if not _in_sim_src(info.path):
                continue
            analyzer = _FunctionAnalyzer(self, info)
            analyzer.run(collect=True)
            findings.update(analyzer.findings)
        for violation in self._worker_partition_pass():
            findings.setdefault(
                (violation.rule_id, violation.path, violation.line,
                 violation.message), violation)
        out = sorted(findings.values(),
                     key=lambda v: (v.path, v.line, v.col, v.rule_id,
                                    v.message))
        return out

    # The PR 5 class, statically: anything reachable from a worker entry
    # point (``Process(target=fn)``) runs outside the host's serial charge
    # order, so a SimClock charge or stateful float accumulation there can
    # never be bit-deterministic across worker counts.
    def _worker_partition_pass(self) -> list[Violation]:
        roots: set[str] = set()
        for qual in sorted(self.graph.functions):
            info = self.graph.functions[qual]
            if info.node.name == "_worker_main":
                roots.add(qual)
            for sub in ast.walk(info.node):
                if isinstance(sub, ast.Call):
                    for kw in sub.keywords:
                        if kw.arg == "target":
                            callee = self.graph.resolve_call(info, kw.value)
                            if callee is not None:
                                roots.add(callee)
        if not roots:
            return []
        reachable = self.graph.reachable_from(sorted(roots))
        out: list[Violation] = []
        for qual in sorted(reachable):
            info = self.graph.functions.get(qual)
            if info is None or not _in_sim_src(info.path):
                continue
            for sub in ast.walk(info.node):
                if (isinstance(sub, ast.Call) and
                        isinstance(sub.func, ast.Attribute) and
                        sub.func.attr.startswith("charge")):
                    out.append(Violation(
                        info.path, sub.lineno, sub.col_offset, "RL009",
                        f"SimClock {sub.func.attr}() inside "
                        f"{_short(qual)}() is reachable from a worker "
                        "entry point — charges must stay on the host in "
                        "serial order"))
                elif (isinstance(sub, ast.AugAssign) and
                      isinstance(sub.op, ast.Add) and
                      isinstance(sub.target, ast.Attribute) and
                      isinstance(sub.target.value, ast.Name) and
                      sub.target.value.id == "self" and
                      _FLOATACC_NAME.search(sub.target.attr)):
                    out.append(Violation(
                        info.path, sub.lineno, sub.col_offset, "RL009",
                        f"float accumulation self.{sub.target.attr} += in "
                        f"{_short(qual)}() is reachable from a worker "
                        "entry point — partition order moves the low "
                        "bits"))
        return out


def analyze_program(files: list[tuple[str, ast.Module]]) -> list[Violation]:
    """Run det-flow over parsed sim-source modules; returns raw findings
    (suppressions are applied by the engine)."""
    sim = [(path, tree) for path, tree in files if _in_sim_src(path)]
    if not sim:
        return []
    return DetFlow(sim).run()


# ------------------------------------------------------- rule descriptors
# Thin Rule shells so RL007-RL010 show up in --list-rules / --explain and
# share the suppression syntax; the actual checking happens in
# ``analyze_program`` because it needs the whole program at once.


class _ProgramRule(Rule):
    def applies(self, path: str) -> bool:  # per-file API: never directly
        return False

    def check(self, tree: ast.Module, path: str):
        return iter(())


class RuleFsOrder(_ProgramRule):
    """RL007: unsorted directory-listing order escapes.

    ``os.listdir``/``os.scandir``/``os.walk``, ``glob.glob``/``iglob`` and
    ``Path.iterdir/glob/rglob`` return entries in on-disk order, which
    differs across filesystems, machines and even repeated runs.  The
    moment that order escapes — materialized into a list, accumulated
    across loop iterations, stored into object state, handed to an opaque
    call, or reaching a determinism sink (journal/checkpoint writes,
    SimClock charges, traces, run naming) — replayed recovery and
    cross-host goldens diverge.  Wrap the listing in ``sorted()`` (the
    fix for every historical instance), or suppress with a justification
    when the surrounding code provably restores determinism.
    """

    id = "RL007"
    summary = "unsorted filesystem listing order escapes"


class RuleSetOrder(_ProgramRule):
    """RL008: set/dict iteration order or id()/hash() ordering escapes.

    Iterating a ``set``/``frozenset`` yields elements in hash order,
    which depends on insertion history (and, for strings, on
    ``PYTHONHASHSEED``).  ``id()``/``hash()`` used as dict keys that get
    iterated, or inside sort keys, orders data by interpreter addresses.
    When such an order escapes into a list, a loop-carried value or a
    determinism sink, results stop being bit-identical.  Sort before
    iterating (``sorted(s)``), key containers by stable data, or suppress
    with a justification when order provably cannot matter.
    """

    id = "RL008"
    summary = "set/dict iteration or id()/hash() order escapes"


class RulePoolOrder(_ProgramRule):
    """RL009: completion-order data feeds order-sensitive accumulation.

    Results collected in worker *completion* order (``as_completed``,
    ``imap_unordered``) arrive in a scheduler-dependent sequence.
    Feeding them into a float accumulation — ``SimClock.charge*`` above
    all, since ``elapsed_s`` is a sequential float sum — moves the low
    bits between runs and across ``--workers N``: exactly the PR 5
    parallel-merge regression, where deferring a chunk's charges past
    caller charges broke BFS bit-identity.  The same reasoning bans
    SimClock charges and stateful float accumulation in code reachable
    from a worker entry point (``Process(target=...)``): workers must be
    pure functions; every charge stays on the host in serial submission
    order.
    """

    id = "RL009"
    summary = "completion-order data reaches float accumulation or a sink"


class RuleTransitiveEntropy(_ProgramRule):
    """RL010: wall-clock/unseeded RNG reaches a determinism sink transitively.

    The interprocedural generalization of RL001: a ``time.time()`` or
    unseeded random draw is just as fatal when it arrives through a
    helper's return value — including helpers in files RL001 allowlists
    for host-side use (``harness.py``, ``core/parallel.py``).  det-flow
    tracks the value through calls, returns and assignments and reports
    when it reaches a SimClock charge, a journal/checkpoint write, trace/
    checksum construction, sort-reduce key material or run naming.  Use
    ``SimClock`` for simulated time and thread explicit seeds; host-side
    wall-clock is fine as long as it never flows into simulated state.
    """

    id = "RL010"
    summary = "wall-clock/RNG reaches a determinism sink through calls"


PROGRAM_RULES: list[Rule] = [
    RuleFsOrder(),
    RuleSetOrder(),
    RulePoolOrder(),
    RuleTransitiveEntropy(),
]
