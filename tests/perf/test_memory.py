"""MemoryTracker budget semantics."""

import pytest

from repro.perf.memory import MemoryBudgetExceeded, MemoryTracker


def test_allocate_and_free():
    mem = MemoryTracker(budget=1000)
    mem.allocate("a", 400)
    mem.allocate("b", 300)
    assert mem.in_use == 700
    assert mem.available == 300
    mem.free("a")
    assert mem.in_use == 300


def test_strict_policy_raises_on_overflow():
    mem = MemoryTracker(budget=100)
    mem.allocate("a", 80)
    with pytest.raises(MemoryBudgetExceeded) as excinfo:
        mem.allocate("b", 30)
    assert excinfo.value.budget == 100
    assert excinfo.value.requested == 30


def test_swap_policy_records_overflow():
    mem = MemoryTracker(budget=100, policy="swap")
    mem.allocate("a", 150)
    assert mem.overflow == 50
    assert mem.overflow_fraction == pytest.approx(1 / 3)


def test_peak_tracking():
    mem = MemoryTracker(budget=1000)
    mem.allocate("a", 600)
    mem.free("a")
    mem.allocate("b", 100)
    assert mem.peak == 600


def test_repeated_label_grows_allocation():
    mem = MemoryTracker(budget=1000)
    mem.allocate("buf", 100)
    mem.allocate("buf", 200)
    assert mem.allocation("buf") == 300


def test_resize_replaces_allocation():
    mem = MemoryTracker(budget=1000)
    mem.allocate("buf", 500)
    mem.resize("buf", 100)
    assert mem.allocation("buf") == 100
    assert mem.in_use == 100


def test_free_unknown_label_raises():
    mem = MemoryTracker(budget=10)
    with pytest.raises(KeyError):
        mem.free("ghost")


def test_invalid_construction():
    with pytest.raises(ValueError):
        MemoryTracker(budget=0)
    with pytest.raises(ValueError):
        MemoryTracker(budget=10, policy="yolo")


def test_overflow_fraction_empty():
    mem = MemoryTracker(budget=10, policy="swap")
    assert mem.overflow_fraction == 0.0
