"""Hardware profiles: paper constants and scaling behaviour."""

import pytest

from repro.perf.profiles import (
    GB,
    GRAFBOOST,
    GRAFBOOST2,
    GRAFSOFT,
    SERVER_SSD_ARRAY,
    SINGLE_SSD_SERVER,
    profile_by_name,
)


def test_grafboost_matches_paper_constants():
    # §V-C: 1 GB DDR3 at 10 GB/s, two flash cards at 1.2 GB/s read and
    # 0.5 GB/s write each, 1 TB total.
    assert GRAFBOOST.dram_bw == 10 * GB
    assert GRAFBOOST.flash_read_bw == pytest.approx(2.4 * GB)
    assert GRAFBOOST.flash_write_bw == pytest.approx(1.0 * GB)
    assert GRAFBOOST.flash_capacity == 1024 * GB
    assert GRAFBOOST.has_accelerator


def test_grafboost2_only_differs_in_dram_bandwidth():
    # §V-C.3: "The only difference of the projected GraFBoost2 system ...
    # is double the DRAM bandwidth."
    assert GRAFBOOST2.dram_bw == 2 * GRAFBOOST.dram_bw
    assert GRAFBOOST2.flash_read_bw == GRAFBOOST.flash_read_bw
    assert GRAFBOOST2.accel_clock_hz == GRAFBOOST.accel_clock_hz


def test_server_matches_paper_constants():
    # §V-C: 32 Xeon cores, 128 GB DRAM, five SSDs totalling 6 GB/s.
    assert SERVER_SSD_ARRAY.cpu_threads == 32
    assert SERVER_SSD_ARRAY.dram_capacity == 128 * GB
    assert SERVER_SSD_ARRAY.flash_read_bw == pytest.approx(6 * GB)
    assert SERVER_SSD_ARRAY.ssd_count == 5
    assert not SERVER_SSD_ARRAY.has_accelerator


def test_grafsoft_memory_cap():
    # §I: the software implementation uses 16 GB of the 128 GB.
    assert GRAFSOFT.dram_capacity == 16 * GB


def test_single_ssd_server_for_small_graphs():
    # Fig 15 setup: one SSD, 1.2 GB/s.
    assert SINGLE_SSD_SERVER.flash_read_bw == pytest.approx(1.2 * GB)
    assert SINGLE_SSD_SERVER.ssd_count == 1


def test_accel_bandwidth_is_one_word_per_cycle():
    # §V-C.3: 256-bit tuples at 125 MHz sustain 4 GB/s.
    assert GRAFBOOST.accel_bw == pytest.approx(125e6 * 32)


def test_scaling_shrinks_capacities_not_speeds():
    scaled = GRAFSOFT.scaled(2.0 ** -10)
    assert scaled.dram_capacity == GRAFSOFT.dram_capacity // 1024
    assert scaled.flash_capacity == GRAFSOFT.flash_capacity // 1024
    assert scaled.flash_read_bw == GRAFSOFT.flash_read_bw
    assert scaled.cpu_threads == GRAFSOFT.cpu_threads


def test_scaling_rejects_nonpositive():
    with pytest.raises(ValueError):
        GRAFSOFT.scaled(0)


def test_with_dram_override():
    small = GRAFSOFT.with_dram(1 * GB)
    assert small.dram_capacity == 1 * GB
    assert small.flash_read_bw == GRAFSOFT.flash_read_bw


def test_profile_lookup():
    assert profile_by_name("grafboost") is GRAFBOOST
    assert profile_by_name("GraFSoft") is GRAFSOFT
    with pytest.raises(KeyError):
        profile_by_name("nonexistent")
