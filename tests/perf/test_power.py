"""Power model: reproduces the §V-C.6 numbers."""

import pytest

from repro.perf.power import PowerModel
from repro.perf.profiles import GRAFBOOST, SERVER_SSD_ARRAY


def test_grafboost_power_near_paper():
    # "Our GraFBoost prototype consumes about 160W of power, of which 110W
    # is consumed by the host Xeon server which is under a very low load."
    model = PowerModel(GRAFBOOST)
    power = model.average_power(cpu_utilization=2.0)  # Table II: 200%
    assert power.host_w == pytest.approx(110, rel=0.35)
    assert power.total_w == pytest.approx(160, rel=0.25)


def test_wimpy_host_projection():
    # "a wimpy server with a 30W power budget will bring down its power
    # consumption to half, or 80W."
    model = PowerModel(GRAFBOOST)
    power = model.average_power(cpu_utilization=2.0, host_idle_w=30.0)
    assert power.total_w == pytest.approx(80, rel=0.3)


def test_flashgraph_power_near_paper():
    # "our setup running FlashGraph ... was consuming over 410W."
    model = PowerModel(SERVER_SSD_ARRAY)
    power = model.average_power(cpu_utilization=32.0)  # Table II: 3200%
    assert power.total_w == pytest.approx(410, rel=0.1)
    assert power.storage_w == pytest.approx(30)  # five SSDs under 6 W each


def test_utilization_is_clamped():
    model = PowerModel(SERVER_SSD_ARRAY)
    over = model.average_power(cpu_utilization=64.0)
    full = model.average_power(cpu_utilization=SERVER_SSD_ARRAY.host_cores)
    assert over.host_w == full.host_w
    idle = model.average_power(cpu_utilization=-1.0)
    assert idle.host_w == pytest.approx(SERVER_SSD_ARRAY.host_idle_w)


def test_breakdown_rows_sum_to_total():
    model = PowerModel(GRAFBOOST)
    power = model.average_power(cpu_utilization=2.0)
    rows = dict(power.rows())
    assert rows["total"] == pytest.approx(
        rows["host"] + rows["accelerator"] + rows["storage"])
