"""SimClock accounting semantics."""

import pytest

from repro.perf.clock import SimClock


def test_serial_charge_advances_elapsed():
    clock = SimClock()
    clock.charge("flash", 0.5, nbytes=100)
    clock.charge("cpu", 0.25)
    assert clock.elapsed_s == pytest.approx(0.75)
    assert clock.busy_s("flash") == pytest.approx(0.5)
    assert clock.busy_s("cpu") == pytest.approx(0.25)


def test_parallel_charge_advances_by_max():
    clock = SimClock()
    clock.charge_parallel({"flash": 1.0, "cpu": 0.25, "accel": 0.5})
    assert clock.elapsed_s == pytest.approx(1.0)
    assert clock.busy_s("cpu") == pytest.approx(0.25)
    assert clock.busy_s("accel") == pytest.approx(0.5)


def test_parallel_charge_empty_is_noop():
    clock = SimClock()
    clock.charge_parallel({})
    assert clock.elapsed_s == 0.0


def test_pool_charge_separates_busy_from_elapsed():
    clock = SimClock()
    clock.charge_pool("cpu", work_seconds=8.0, parallelism=4)
    assert clock.elapsed_s == pytest.approx(2.0)
    assert clock.busy_s("cpu") == pytest.approx(8.0)
    # Utilization reports busy-unit count, like Table II's CPU%.
    assert clock.utilization("cpu") == pytest.approx(4.0)


def test_bytes_and_bandwidth():
    clock = SimClock()
    clock.charge("flash", 2.0, nbytes=4000)
    assert clock.bytes_moved("flash") == 4000
    assert clock.bandwidth("flash") == pytest.approx(2000.0)


def test_unknown_resource_reads_as_zero():
    clock = SimClock()
    assert clock.busy_s("net") == 0.0
    assert clock.bytes_moved("net") == 0
    assert clock.utilization("net") == 0.0
    assert clock.bandwidth("net") == 0.0


def test_negative_charge_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.charge("flash", -1.0)
    with pytest.raises(ValueError):
        clock.charge_parallel({"cpu": -0.1})
    with pytest.raises(ValueError):
        clock.charge_pool("cpu", -1.0, 2)
    with pytest.raises(ValueError):
        clock.charge_pool("cpu", 1.0, 0)


def test_checkpoint_measures_deltas():
    clock = SimClock()
    clock.charge("flash", 1.0)
    checkpoint = clock.checkpoint()
    clock.charge("flash", 0.5)
    clock.charge("cpu", 0.25)
    assert checkpoint.elapsed_s == pytest.approx(0.75)
    assert checkpoint.busy_s("flash") == pytest.approx(0.5)
    assert checkpoint.busy_s("cpu") == pytest.approx(0.25)


def test_reset_clears_everything():
    clock = SimClock()
    clock.charge("flash", 1.0, nbytes=10)
    clock.reset()
    assert clock.elapsed_s == 0.0
    assert clock.busy_s("flash") == 0.0
