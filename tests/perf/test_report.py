"""Report formatting helpers."""

import math

import pytest

from repro.perf.report import format_table, human_bytes, human_seconds, normalize_series


def test_format_table_alignment():
    out = format_table(["name", "n"], [["a", 1], ["bb", 22]])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert all("|" in line for line in (lines[0], lines[2], lines[3]))


def test_format_table_title_and_nan():
    out = format_table(["x"], [[float("nan")]], title="T")
    assert out.splitlines()[0] == "T"
    assert "DNF" in out


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_normalize_series_higher_is_faster():
    # Fig 12 normalizes to GraFSoft: a system twice as fast scores 2.0.
    normalized = normalize_series([50.0, 100.0, 200.0], baseline=100.0)
    assert normalized == [2.0, 1.0, 0.5]


def test_normalize_series_dnf_becomes_zero():
    normalized = normalize_series([float("nan"), None, -1.0], baseline=10.0)
    assert normalized == [0.0, 0.0, 0.0]


def test_normalize_series_rejects_bad_baseline():
    with pytest.raises(ValueError):
        normalize_series([1.0], baseline=0.0)


def test_human_bytes():
    assert human_bytes(512) == "512 B"
    assert human_bytes(1536) == "1.5 KB"
    assert human_bytes(3 * 1024 ** 3) == "3.0 GB"


def test_human_seconds():
    assert human_seconds(0.05) == "50.0ms"
    assert human_seconds(5) == "5.0s"
    assert human_seconds(90) == "1m30s"
    assert human_seconds(7200) == "2h0m"
    assert human_seconds(float("nan")) == "DNF"


def test_default_results_dir_is_repo_anchored():
    # Regression: emit_results used a CWD-relative "benchmarks/results", so
    # running a bench from outside the repo root scattered artifacts.
    import os
    from repro.perf.report import default_results_dir

    path = default_results_dir()
    assert os.path.isabs(path)
    assert path.endswith(os.path.join("benchmarks", "results"))
    repo_root = os.path.dirname(os.path.dirname(path))
    assert os.path.exists(os.path.join(repo_root, "src", "repro"))


def test_emit_results_honors_explicit_directory(tmp_path, capsys):
    from repro.perf.report import emit_results

    path = emit_results("t", "hello", directory=str(tmp_path))
    assert path == str(tmp_path / "t.txt")
    assert (tmp_path / "t.txt").read_text() == "hello\n"
    assert "hello" in capsys.readouterr().out


def test_superstep_timeline_samples_long_runs():
    from repro.engine.engine import SuperstepMetrics
    from repro.perf.report import superstep_timeline

    steps = [SuperstepMetrics(superstep=i, activated=i, traversed_edges=2 * i,
                              update_pairs=2 * i, reduced_pairs=i,
                              elapsed_s=0.001 * i, flash_bytes=1024 * i)
             for i in range(100)]
    text = superstep_timeline(steps, max_rows=10)
    lines = text.splitlines()
    assert len(lines) <= 13  # title + header + separator + 10 rows
    assert "99" in text  # the last superstep always appears
    assert superstep_timeline([]) == "(no supersteps)"
