"""repro-lint rule coverage: every rule fires on a bad snippet, stays
quiet on a good one, suppressions work, and the real tree is clean."""

from __future__ import annotations

import textwrap

from repro.lint import lint_paths, lint_source, main

#: Paths chosen so every rule's scope predicate applies.
SIM_PATH = "src/repro/core/example.py"
FLASH_PATH = "src/repro/flash/example.py"
ENGINE_PATH = "src/repro/engine/example.py"


def rules_hit(source: str, path: str) -> set[str]:
    return {v.rule_id for v in lint_source(textwrap.dedent(source), path)}


# ------------------------------------------------------------------- RL001

def test_rl001_fires_on_wall_clock_and_unseeded_rng():
    bad = """
        import time
        import random
        import numpy as np
        from datetime import datetime

        def f():
            a = time.time()
            b = time.perf_counter()
            c = datetime.now()
            d = random.randint(0, 3)
            e = np.random.rand(4)
            g = np.random.default_rng()
            return a, b, c, d, e, g
    """
    violations = lint_source(textwrap.dedent(bad), SIM_PATH)
    rl001 = [v for v in violations if v.rule_id == "RL001"]
    assert len(rl001) == 6


def test_rl001_allows_simclock_and_seeded_rng():
    good = """
        import numpy as np

        def f(seed: int):
            rng = np.random.default_rng(seed)
            return rng.integers(0, 10, size=4)
    """
    assert "RL001" not in rules_hit(good, SIM_PATH)


def test_rl001_skips_harness_and_benchmarks():
    bad = "import time\nstamp = time.time()\n"
    assert lint_source(bad, "src/repro/harness.py") == []
    assert lint_source(bad, "benchmarks/bench_x.py") == []


def test_rl001_skips_parallel_worker_pool():
    # The pool is host-side orchestration (queue timeouts, process joins);
    # the sim-clock goldens already pin that it cannot leak wall-clock time
    # into simulated results.
    bad = "import time\nstamp = time.monotonic()\n"
    assert lint_source(bad, "src/repro/core/parallel.py") == []
    assert "RL001" in rules_hit(bad, SIM_PATH)


def test_rl001_tracks_import_aliases():
    bad = """
        from time import perf_counter as pc

        def f():
            return pc()
    """
    assert "RL001" in rules_hit(bad, SIM_PATH)


# ------------------------------------------------------------------- RL002

def test_rl002_fires_on_swallowing_bare_except():
    bad = """
        def f():
            try:
                work()
            except:
                pass
    """
    assert "RL002" in rules_hit(bad, SIM_PATH)
    bad_base = """
        def f():
            try:
                work()
            except BaseException:
                log()
    """
    assert "RL002" in rules_hit(bad_base, SIM_PATH)


def test_rl002_allows_reraising_handler():
    good = """
        def f():
            try:
                work()
            except BaseException:
                cleanup()
                raise
    """
    assert "RL002" not in rules_hit(good, SIM_PATH)
    narrow = """
        def f():
            try:
                work()
            except ValueError:
                pass
    """
    assert "RL002" not in rules_hit(narrow, SIM_PATH)


# ------------------------------------------------------------------- RL003

def test_rl003_fires_on_foreign_raise_in_flash():
    bad = """
        def f():
            raise RuntimeError("oops")
    """
    assert "RL003" in rules_hit(bad, FLASH_PATH)
    # Outside the flash stack the rule does not apply.
    assert "RL003" not in rules_hit(bad, ENGINE_PATH)


def test_rl003_allows_taxonomy_validation_and_local_subclasses():
    good = """
        from repro.flash.device import FlashError

        class MyFlashError(FlashError):
            pass

        def f(x):
            if x < 0:
                raise ValueError("x must be >= 0")
            error = FlashError("boom")
            raise error

        def g():
            raise MyFlashError("typed")
    """
    assert "RL003" not in rules_hit(good, FLASH_PATH)


# ------------------------------------------------------------------- RL004

def test_rl004_fires_on_host_io_below_store_layer():
    bad = """
        import os
        import numpy as np

        def f(path):
            with open(path) as fh:
                data = fh.read()
            os.unlink(path)
            np.save(path, np.zeros(3))
            return data
    """
    violations = lint_source(textwrap.dedent(bad), ENGINE_PATH)
    assert len([v for v in violations if v.rule_id == "RL004"]) == 3


def test_rl004_allows_dataset_cache_and_store_traffic():
    cache = "import os\n\ndef f(p):\n    return open(p).read()\n"
    assert lint_source(cache, "src/repro/graph/datasets.py") == []
    good = """
        def f(store, name):
            return store.read(name, 0, 64)
    """
    assert "RL004" not in rules_hit(good, ENGINE_PATH)


# ------------------------------------------------------------------- RL005

def test_rl005_fires_on_float_arithmetic_over_keys():
    bad = """
        import numpy as np

        def f(key_space, n):
            bounds = np.linspace(0, key_space, n + 1)
            return bounds
    """
    assert "RL005" in rules_hit(bad, SIM_PATH)
    division = """
        def f(lpn, n):
            return lpn / n
    """
    assert "RL005" in rules_hit(division, SIM_PATH)


def test_rl005_allows_integer_key_arithmetic():
    good = """
        def f(key_space, n):
            return [key_space * i // n for i in range(n + 1)]
    """
    assert "RL005" not in rules_hit(good, SIM_PATH)
    unrelated = """
        def f(total_bytes, seconds):
            return total_bytes / seconds
    """
    assert "RL005" not in rules_hit(unrelated, SIM_PATH)


# ------------------------------------------------------------------- RL006

def test_rl006_fires_on_unchargd_device_method():
    bad = """
        class FlashDevice:
            def peek(self, block, page):
                return self._data[(block, page)]
    """
    assert "RL006" in rules_hit(bad, FLASH_PATH)
    primitive = """
        def helper(device, block, page):
            return device._read_silent(block, page)
    """
    assert "RL006" in rules_hit(primitive, FLASH_PATH)


def test_rl006_allows_charged_methods_and_pure_state_queries():
    good = """
        class FlashDevice:
            def read_page(self, block, page):
                data = self._data[(block, page)]
                self.clock.charge("flash", 1e-4, nbytes=len(data))
                return data

            def page_state(self, block, page):
                return int(self._page_state[block, page])
    """
    assert "RL006" not in rules_hit(good, FLASH_PATH)


# ------------------------------------------------------- engine behaviour

def test_suppression_comment_silences_one_rule():
    bad = (
        "import time\n"
        "def f():\n"
        "    return time.time()  # repro-lint: disable=RL001\n"
    )
    assert lint_source(bad, SIM_PATH) == []
    wrong_id = (
        "import time\n"
        "def f():\n"
        "    return time.time()  # repro-lint: disable=RL002\n"
    )
    assert {v.rule_id for v in lint_source(wrong_id, SIM_PATH)} == {"RL001"}
    disable_all = (
        "import time\n"
        "def f():\n"
        "    return time.time()  # repro-lint: disable=all\n"
    )
    assert lint_source(disable_all, SIM_PATH) == []


def test_syntax_error_reports_rl000():
    assert [v.rule_id for v in
            lint_source("def broken(:\n", SIM_PATH)] == ["RL000"]


def test_list_rules_exits_zero(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
        assert rule_id in out


def test_repo_tree_is_clean():
    """The acceptance gate: repro-lint exits 0 on the shipped tree."""
    violations = lint_paths(["src", "tests", "benchmarks"])
    assert violations == [], "\n".join(v.render() for v in violations)


def test_main_reports_violations_for_bad_file(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nT = time.time()\n")
    assert main([str(tmp_path / "src")]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out and "bad.py" in out
