"""det-flow coverage: call-graph resolution, interprocedural taint, the
two historical nondeterminism classes (PR 5 completion-order charges and
RL001-through-a-wrapper), suppression/baseline round-trips, and the
determinism of the analysis itself."""

from __future__ import annotations

import ast
import json
import textwrap

from repro.lint import lint_sources, main
from repro.lint.callgraph import CallGraph, module_name_for_path
from repro.lint.detflow import analyze_program
from repro.lint.engine import apply_baseline, load_baseline

SIM_A = "src/repro/core/a.py"
SIM_B = "src/repro/core/b.py"


def parse(sources: dict[str, str]) -> list[tuple[str, ast.Module]]:
    return [(path, ast.parse(textwrap.dedent(src)))
            for path, src in sources.items()]


def findings(sources: dict[str, str]):
    return lint_sources({p: textwrap.dedent(s) for p, s in sources.items()})


def rules_hit(sources: dict[str, str]) -> set[str]:
    return {v.rule_id for v in findings(sources)}


# -------------------------------------------------------------- call graph

def test_module_name_for_path_anchors_at_repro():
    assert module_name_for_path("src/repro/core/merge.py") == "repro.core.merge"
    assert module_name_for_path("src/repro/lint/__init__.py") == "repro.lint"
    assert module_name_for_path("/abs/src/repro/flash/device.py") == \
        "repro.flash.device"


def test_callgraph_resolves_alias_imports():
    graph = CallGraph.build(parse({
        SIM_A: """
            def helper():
                return 1
        """,
        SIM_B: """
            from repro.core import a as aliased
            from repro.core.a import helper as h2

            def caller():
                aliased.helper()
                h2()
        """,
    }))
    callees = {q for _, q in graph.edges["repro.core.b.caller"]}
    assert callees == {"repro.core.a.helper"}


def test_callgraph_methods_vs_functions():
    graph = CallGraph.build(parse({
        SIM_A: """
            def tick():
                return 0

            class Clock:
                def tick(self):
                    return self.read()

                def read(self):
                    return 1

            def use():
                c = Clock()
                c.tick()
                tick()
        """,
    }))
    # Module function and method with the same bare name stay distinct.
    assert "repro.core.a.tick" in graph.functions
    assert "repro.core.a.Clock.tick" in graph.functions
    callees = {q for _, q in graph.edges["repro.core.a.use"]}
    assert "repro.core.a.tick" in callees
    assert "repro.core.a.Clock.tick" in callees
    # self-calls resolve to the method on the same class.
    assert {q for _, q in graph.edges["repro.core.a.Clock.tick"]} == \
        {"repro.core.a.Clock.read"}


def test_callgraph_indexes_decorated_functions():
    graph = CallGraph.build(parse({
        SIM_A: """
            import functools

            @functools.lru_cache(maxsize=None)
            def cached():
                return 2

            def caller():
                return cached()
        """,
    }))
    info = graph.functions["repro.core.a.cached"]
    assert "functools.lru_cache" in info.decorators
    assert {q for _, q in graph.edges["repro.core.a.caller"]} == \
        {"repro.core.a.cached"}


def test_callgraph_inherited_method_resolution():
    graph = CallGraph.build(parse({
        SIM_A: """
            class Base:
                def work(self):
                    return self.leaf()

                def leaf(self):
                    return 1

            class Child(Base):
                def leaf(self):
                    return self.work()
        """,
    }))
    # Child has no ``work`` of its own; self.work() resolves through Base.
    assert {q for _, q in graph.edges["repro.core.a.Child.leaf"]} == \
        {"repro.core.a.Base.work"}


# -------------------------------------- historical class 1: PR 5 / RL009

def test_rl009_completion_order_charge():
    """The PR 5 bug, statically: charging the SimClock in pool completion
    order moves the low bits of ``elapsed_s`` across worker counts."""
    hits = findings({SIM_A: """
        from concurrent.futures import as_completed

        def merge(futures, clock):
            for fut in as_completed(futures):
                kv, seconds = fut.result()
                clock.charge("cpu", seconds)
    """})
    rl009 = [v for v in hits if v.rule_id == "RL009"]
    assert len(rl009) == 1
    assert "as_completed" in rl009[0].message
    assert "charge" in rl009[0].message


def test_rl009_imap_unordered():
    assert "RL009" in rules_hit({SIM_A: """
        def collect(pool, items, out):
            for r in pool.imap_unordered(work, items):
                out.append(r)

        def work(x):
            return x
    """})


def test_rl009_worker_partition_float_accumulation():
    """Float ``+=`` on shared state inside code reachable from a worker
    entry point (``Process(target=...)``) can never be bit-identical
    across ``--workers N``."""
    hits = findings({SIM_A: """
        from multiprocessing import Process

        class Pool:
            def start(self):
                p = Process(target=_worker_loop, args=(self,))
                p.start()

        def _worker_loop(pool):
            pool.accumulate(0.5)

        class Stats:
            def __init__(self):
                self.elapsed_s = 0.0
    """, SIM_B: """
        def accumulate(self, seconds):
            self.elapsed_s += seconds
    """})
    # The target= reference makes _worker_loop a root; accumulate is not
    # resolvable here (method on an unknown receiver), so assert via the
    # direct shape instead:
    hits = findings({SIM_A: """
        from multiprocessing import Process

        class Worker:
            def start(self):
                p = Process(target=self.loop)
                p.start()

            def loop(self):
                self.charge_local(0.5)

            def charge_local(self, seconds):
                self.elapsed_s += seconds
    """})
    rl009 = [v for v in hits if v.rule_id == "RL009"]
    assert any("elapsed_s" in v.message and "worker" in v.message
               for v in rl009)


# --------------------------- historical class 2: RL001 via wrapper / RL010

def test_rl010_wall_clock_through_intermediate_call():
    """The RL001 generalization: harness.py is allowlisted for RL001, so a
    wall-clock read that travels through a harness helper into a sim-path
    charge is invisible intraprocedurally — det-flow follows the return
    value across the file boundary."""
    hits = findings({
        "src/repro/harness.py": """
            import time

            def now_seconds():
                return time.time()
        """,
        SIM_A: """
            from repro.harness import now_seconds

            def record(clock):
                t = now_seconds()
                clock.charge("io", t)
        """,
    })
    assert all(v.rule_id != "RL001" for v in hits)
    rl010 = [v for v in hits if v.rule_id == "RL010"]
    assert len(rl010) == 1
    assert rl010[0].path == SIM_A
    assert "time.time()" in rl010[0].message
    assert "via" in rl010[0].message and "now_seconds" in rl010[0].message


def test_rl010_unseeded_rng_two_hops():
    hits = findings({SIM_A: """
        import random

        def draw():
            return random.random()

        def jitter():
            return draw() * 2.0

        def apply(journal):
            journal.write_entry(jitter())
    """})
    rl010 = [v for v in hits if v.rule_id == "RL010"]
    assert len(rl010) >= 1
    assert any("jitter" in v.message or "draw" in v.message
               for v in rl010)


def test_rl010_quiet_when_value_never_reaches_sink():
    assert "RL010" not in rules_hit({SIM_A: """
        import time

        def log_only():
            t = time.time()
            print(t)
    """})


# ------------------------------------------------- RL007/RL008 + sanction

def test_rl007_unsorted_listdir_escape_and_sorted_sanction():
    bad = {SIM_A: """
        import os

        def names(d):
            out = []
            for n in os.listdir(d):
                out.append(n)
            return out
    """}
    good = {SIM_A: """
        import os

        def names(d):
            out = []
            for n in sorted(os.listdir(d)):
                out.append(n)
            return out
    """}
    assert "RL007" in rules_hit(bad)
    assert "RL007" not in rules_hit(good)


def test_rl007_taint_through_return_value():
    """Order taint survives a return and fires in the caller's loop."""
    hits = findings({
        SIM_A: """
            from pathlib import Path

            def entries(d):
                return Path(d).iterdir()
        """,
        SIM_B: """
            from repro.core.a import entries

            def collect(d):
                out = []
                for p in entries(d):
                    out.append(p)
                return out
        """,
    })
    assert any(v.rule_id == "RL007" for v in hits)


def test_rl008_set_iteration_escape_and_membership_is_fine():
    assert "RL008" in rules_hit({SIM_A: """
        def order(keys):
            pending = set(keys)
            out = []
            for k in pending:
                out.append(k)
            return out
    """})
    # Membership tests and len() never observe order.
    assert "RL008" not in rules_hit({SIM_A: """
        def check(keys, probe):
            pending = set(keys)
            return probe in pending and len(pending) > 0
    """})


def test_rl008_taint_through_container_membership():
    """A tainted element poisoning a list poisons what's read back out."""
    assert "RL008" in rules_hit({SIM_A: """
        def collect(keys):
            out = []
            for k in set(keys):
                out.append(k)
            return out

        def emit(journal, keys):
            journal.write_entry(collect(keys))
    """})


def test_rl008_id_in_sort_key():
    assert "RL008" in rules_hit({SIM_A: """
        def order(objs):
            return sorted(objs, key=id)
    """})


# ------------------------------------------- suppression / baseline / CLI

def test_suppression_round_trip():
    src = textwrap.dedent("""
        import os

        def names(d):
            out = []
            for n in os.listdir(d):  # repro-lint: disable=RL007
                out.append(n)
            return out
    """)
    hits = lint_sources({SIM_A: src})
    assert all(v.rule_id != "RL007" for v in hits)


def test_suppression_inside_string_literal_is_not_a_suppression():
    assert "RL008" in rules_hit({SIM_A: """
        NOTE = "use  # repro-lint: disable=RL008  on the next line"

        def order(keys):
            out = []
            for k in set(keys):
                out.append(k)
            return out
    """})


def test_unused_suppression_reported_and_escape_hatch(tmp_path, capsys):
    mod = tmp_path / "src" / "repro" / "core" / "m.py"
    mod.parent.mkdir(parents=True)
    mod.write_text("def f():\n    return 1  # repro-lint: disable=RL001\n")
    assert main([str(tmp_path / "src")]) == 1
    out = capsys.readouterr().out
    assert "RL100" in out and "disable=RL001" in out
    assert main([str(tmp_path / "src"),
                 "--ignore-unused-suppressions"]) == 0


def test_baseline_round_trip(tmp_path, capsys):
    mod = tmp_path / "src" / "repro" / "core" / "m.py"
    mod.parent.mkdir(parents=True)
    mod.write_text(textwrap.dedent("""\
        import os

        def names(d):
            out = []
            for n in os.listdir(d):
                out.append(n)
            return out
    """))
    base = tmp_path / "baseline.json"
    assert main([str(tmp_path / "src"),
                 "--write-baseline", str(base)]) == 0
    capsys.readouterr()
    # Accepted findings no longer fail the run...
    assert main([str(tmp_path / "src"), "--baseline", str(base)]) == 0
    capsys.readouterr()
    # ...but a *new* instance of the same pattern still does.
    mod.write_text(mod.read_text() +
                   "\ndef more(d):\n"
                   "    out = []\n"
                   "    for n in os.listdir(d):\n"
                   "        out.append(n)\n"
                   "    return out\n")
    assert main([str(tmp_path / "src"), "--baseline", str(base)]) == 1
    out = capsys.readouterr().out
    assert "RL007" in out
    entries = load_baseline(str(base))
    new, stale = apply_baseline([], entries)
    assert new == [] and len(stale) == len(entries)


def test_explain_prints_full_docstring(capsys):
    assert main(["--explain", "RL009"]) == 0
    out = capsys.readouterr().out
    # Full rationale, not just the summary line.
    assert "RL009" in out
    assert len(out.strip().splitlines()) > 3
    assert main(["--explain", "RL999"]) == 2


def test_json_output_is_deterministic(tmp_path, capsys):
    mod = tmp_path / "src" / "repro" / "core" / "m.py"
    mod.parent.mkdir(parents=True)
    mod.write_text(textwrap.dedent("""\
        import os

        def names(d):
            out = []
            for n in os.listdir(d):
                out.append(n)
            return out
    """))
    runs = []
    for _ in range(2):
        main([str(tmp_path / "src"), "--format", "json"])
        runs.append(capsys.readouterr().out)
    assert runs[0] == runs[1]
    payload = json.loads(runs[0])
    assert payload["version"] == 1
    assert "RL007" in {f["rule"] for f in payload["findings"]}


def test_analyze_program_is_deterministic_across_orderings():
    sources = {
        SIM_A: """
            import time

            def leak():
                return time.time()
        """,
        SIM_B: """
            from repro.core.a import leak

            def record(clock):
                clock.charge("io", leak())
        """,
    }
    forward = analyze_program(parse(sources))
    backward = analyze_program(list(reversed(parse(sources))))
    assert [v.render() for v in forward] == [v.render() for v in backward]
    assert any(v.rule_id == "RL010" for v in forward)
