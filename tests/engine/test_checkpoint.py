"""Superstep checkpoint/restart: cadence, auto-resume after power loss,
sorted-run recovery, and the narrowed cleanup-path exception contract."""

import numpy as np
import pytest

from repro.algorithms.bfs import run_bfs
from repro.algorithms.pagerank import run_pagerank
from repro.core.external import ExternalSortReducer, RunHandle, recover_runs
from repro.core.kvstream import record_dtype
from repro.core.reduce_ops import SUM
from repro.engine.config import make_system
from repro.flash.device import FlashError, PowerLossError
from repro.flash.faults import CrashPlan
from repro.harness import run_grafboost_system, run_with_crashes

SCALE = 2.0 ** -14
ITERATIONS = 3


def build(kind, graph, crashes=None, durable=False):
    system = make_system(kind, SCALE, num_vertices_hint=graph.num_vertices,
                         crashes=crashes, durable=durable)
    flash_graph = system.load_graph(graph)
    return system, flash_graph


def counted_clean_run(kind, graph, algorithm="pagerank"):
    """Uninterrupted run on an op-counting device.

    Returns (final values, flash ops spent loading the graph, total ops),
    so crash tests can aim at op indices that land inside the engine run.
    """
    system, flash_graph = build(kind, graph, crashes=CrashPlan(crashes=0))
    load_ops = system.device.crashes.op_index
    engine = system.engine_for(flash_graph, graph.num_vertices)
    if algorithm == "pagerank":
        result = run_pagerank(engine, graph.num_vertices,
                              iterations=ITERATIONS)
    else:
        result = run_bfs(engine, root=0)
    return result.final_values(), load_ops, system.device.crashes.op_index


# --------------------------------------------------------------- checkpoints


def test_checkpointing_does_not_change_results(random_graph):
    system, flash_graph = build("grafboost", random_graph, durable=True)
    engine = system.engine_for(flash_graph, random_graph.num_vertices,
                               checkpoint_every=1)
    result = run_pagerank(engine, random_graph.num_vertices,
                          iterations=ITERATIONS)
    plain_system, plain_graph = build("grafboost", random_graph)
    plain = run_pagerank(
        plain_system.engine_for(plain_graph, random_graph.num_vertices),
        random_graph.num_vertices, iterations=ITERATIONS)
    assert np.array_equal(result.final_values(), plain.final_values())
    # Checkpoints are real flash traffic, cleared again on completion.
    assert (system.clock.bytes_moved("flash")
            > plain_system.clock.bytes_moved("flash"))
    assert not [n for n in system.store.list_files() if n.startswith("ckpt:")]


def test_crash_resume_from_checkpoint_is_bit_identical(random_graph):
    clean_values, load_ops, total_ops = counted_clean_run(
        "grafboost", random_graph)
    # Crash late in the run: by then a checkpoint_every=1 engine has
    # published at least one checkpoint, so resume must not start over.
    crash_at = load_ops + int((total_ops - load_ops) * 0.9)
    system, flash_graph = build(
        "grafboost", random_graph,
        crashes=CrashPlan(at_ops=(crash_at,), torn_write_p=1.0))
    engine = system.engine_for(flash_graph, random_graph.num_vertices,
                               checkpoint_every=1)
    with pytest.raises(PowerLossError):
        run_pagerank(engine, random_graph.num_vertices, iterations=ITERATIONS)

    system.remount()
    flash_graph = system.reattach_graph(flash_graph)
    engine = system.engine_for(flash_graph, random_graph.num_vertices,
                               checkpoint_every=1, auto_resume=True)
    result = run_pagerank(engine, random_graph.num_vertices,
                          iterations=ITERATIONS)
    assert engine.resumed_from_superstep is not None
    assert engine.resumed_from_superstep > 0
    assert np.array_equal(result.final_values(), clean_values)
    # Completion swept the checkpoint, its staging file, and crash orphans.
    leftovers = [n for n in system.store.list_files()
                 if n.startswith("ckpt:")]
    assert leftovers == []


def test_power_loss_is_not_swallowed_by_superstep_cleanup(random_graph):
    """The superstep executor's ``except FlashError`` cleanup must let a
    power loss fly through — nothing below the crash harness may absorb
    it."""
    _, load_ops, total_ops = counted_clean_run("grafsoft", random_graph)
    crash_at = load_ops + (total_ops - load_ops) // 2
    system, flash_graph = build(
        "grafsoft", random_graph,
        crashes=CrashPlan(at_ops=(crash_at,), torn_write_p=0.0))
    engine = system.engine_for(flash_graph, random_graph.num_vertices)
    with pytest.raises(PowerLossError):
        run_pagerank(engine, random_graph.num_vertices, iterations=ITERATIONS)


def test_run_with_crashes_harness_smoke(random_graph):
    clean = run_grafboost_system("GraFSoft", random_graph, "bfs",
                                 scale=SCALE, seed_root=0)
    clean_values, load_ops, total_ops = counted_clean_run(
        "grafsoft", random_graph, algorithm="bfs")
    plan = CrashPlan(at_ops=(load_ops // 2, load_ops + 50,
                             load_ops + (total_ops - load_ops) // 2),
                     torn_write_p=0.5)
    crashed = run_with_crashes("GraFSoft", random_graph, "bfs", scale=SCALE,
                               crashes=plan, checkpoint_every=2, seed_root=0)
    assert crashed.completed
    assert crashed.power_losses == 3
    assert crashed.remounts >= 3
    assert np.array_equal(crashed.final_values, clean_values)
    assert crashed.elapsed_s >= clean.elapsed_s


# ------------------------------------------------------------- run recovery


def test_recover_runs_adopts_sealed_and_discards_unsealed(random_graph):
    system, _ = build("grafboost", random_graph, durable=True)
    store = system.store
    dtype = np.dtype(np.float64)
    rec = np.dtype(record_dtype(dtype))

    def write_run(name, n, seal):
        records = np.zeros(n, dtype=rec)
        store.append(name, records.tobytes())
        if seal:
            store.seal(name)

    write_run("sr:run-2", 8, seal=True)
    write_run("sr:run-0", 5, seal=True)
    write_run("sr:run-1", 3, seal=False)   # died mid-write: discard
    store.append("other:file", b"x" * 16)  # foreign prefix: untouched
    store.seal("other:file")

    recovered, discarded = recover_runs(store, "sr:", dtype)
    assert [r.name for r in recovered] == ["sr:run-0", "sr:run-2"]  # by age
    assert [r.num_records for r in recovered] == [5, 8]
    assert all(r.level == 0 for r in recovered)
    assert discarded == ["sr:run-1"]
    assert not store.exists("sr:run-1")
    assert store.exists("other:file")


def test_adopted_runs_feed_a_fresh_reducer(random_graph):
    system, _ = build("grafboost", random_graph)
    store = system.store
    dtype = np.dtype(np.float64)
    rec = np.dtype(record_dtype(dtype))
    records = np.zeros(4, dtype=rec)
    store.append("sr:run-0", records.tobytes())
    store.seal("sr:run-0")
    recovered, _ = recover_runs(store, "sr:", dtype)

    reducer = ExternalSortReducer(store, SUM, dtype, system.backend,
                                  chunk_bytes=system.chunk_bytes,
                                  name_prefix="sr")
    reducer.adopt_runs(recovered)
    out = reducer.finish()
    assert out.num_records == 4


# --------------------------------------------------- cleanup-path narrowing


def adopted_reducer(system):
    store = system.store
    dtype = np.dtype(np.float64)
    records = np.zeros(4, dtype=np.dtype(record_dtype(dtype)))
    store.append("sr:run-0", records.tobytes())
    store.seal("sr:run-0")
    handle = RunHandle(store, "sr:run-0", 4, dtype)
    reducer = ExternalSortReducer(store, SUM, dtype, system.backend,
                                  chunk_bytes=system.chunk_bytes,
                                  name_prefix="sr")
    reducer.adopt_runs([handle])
    return reducer, store


def test_reducer_close_tolerates_flash_errors(random_graph, monkeypatch):
    system, _ = build("grafboost", random_graph)
    reducer, store = adopted_reducer(system)

    def dying_delete(name):
        raise FlashError("device already failing")

    monkeypatch.setattr(store, "delete", dying_delete)
    reducer.close()  # best-effort cleanup: FlashError is expected here


def test_reducer_close_propagates_foreign_errors(random_graph, monkeypatch):
    """The ``except FlashError`` in close() is deliberately narrow: a bug
    (TypeError, ValueError...) in the cleanup path must surface, not be
    eaten by best-effort error handling."""
    system, _ = build("grafboost", random_graph)
    reducer, store = adopted_reducer(system)

    def buggy_delete(name):
        raise ValueError("not a device failure")

    monkeypatch.setattr(store, "delete", buggy_delete)
    with pytest.raises(ValueError, match="not a device failure"):
        reducer.close()
