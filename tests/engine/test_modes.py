"""Execution modes: static correctness, adaptive policy, bit-identity.

The contracts under test (see repro.engine.modes):

* every static mode computes the same answers as the default sort-reduce
  path on every algorithm;
* each mode's simulated clock is bit-identical across ``--workers 1/2/4``
  and across crash → remount → resume;
* the adaptive policy is a pure function of checkpointed state, so its
  per-superstep mode trace is deterministic — pinned here as goldens —
  and a run whose trace is constant matches the static mode bit for bit.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

import repro.core.dense as dense_mod
import repro.core.external as external_mod
import repro.graph.vertexdata as vertexdata_mod
from repro.algorithms.bfs import run_bfs
from repro.algorithms.cc import run_label_propagation
from repro.algorithms.pagerank import run_pagerank
from repro.algorithms.reference import pagerank_push, validate_parents
from repro.algorithms.bfs import UNVISITED
from repro.engine.config import make_system
from repro.engine.modes import (
    MODES,
    STATIC_MODES,
    AdaptivePolicy,
    charge_mode_switch,
    resolve_mode,
    semiexternal_footprint,
)
from repro.flash.faults import CrashPlan
from repro.harness import default_root, load_dataset, run_with_crashes
from repro.perf.clock import SimClock
from repro.perf.profiles import GRAFSOFT

SCALE = 1 / 65536


def _load():
    return load_dataset("kron30", scale=SCALE, seed=7)


def _run(graph, algorithm, mode, workers=1, system_kind="grafsoft"):
    """One engine run; flash bytes snapshotted before final_values() reads
    (reading vertex data charges the clock like any other flash traffic)."""
    system = make_system(system_kind, SCALE, num_vertices_hint=graph.num_vertices,
                         workers=workers, mode=mode)
    flash_graph = system.load_graph(graph)
    engine = system.engine_for(flash_graph, graph.num_vertices)
    if algorithm == "pagerank":
        result = run_pagerank(engine, graph.num_vertices, 2)
    elif algorithm == "bfs":
        result = run_bfs(engine, default_root(graph))
    else:
        result = run_label_propagation(engine)
    flash = system.clock.bytes_moved("flash")
    return {
        "values": result.final_values(),
        "elapsed": result.elapsed_s,
        "flash": flash,
        "trace": result.mode_trace,
        "stats": [s.to_dict() for s in result.sort_stats],
    }


# --------------------------------------------------------------------------
# policy + plumbing units
# --------------------------------------------------------------------------


def test_resolve_mode_env(monkeypatch):
    monkeypatch.delenv("REPRO_MODE", raising=False)
    assert resolve_mode(None) == "sortreduce"
    monkeypatch.setenv("REPRO_MODE", "adaptive")
    assert resolve_mode(None) == "adaptive"
    assert resolve_mode("densescan") == "densescan"  # explicit beats env
    with pytest.raises(ValueError):
        resolve_mode("turbo")


def test_mode_lists_consistent():
    assert set(STATIC_MODES) | {"adaptive"} == set(MODES)
    assert MODES[0] == "sortreduce"  # the default stays first-class


def test_adaptive_policy_decisions():
    # 1000 vertices x f8: footprint 9000 B.  Budget 100 KB fits it easily.
    fits = AdaptivePolicy(1000, 8000, np.dtype("<f8"), dram_budget=100_000)
    assert fits.choose(1) == "semiexternal"
    # Tiny budget: never semiexternal; dense frontier scans, sparse sorts.
    tight = AdaptivePolicy(1000, 8000, np.dtype("<f8"), dram_budget=1000)
    assert tight.choose(900) == "densescan"    # 90% density
    assert tight.choose(10) == "sortreduce"    # sparse frontier
    # The density threshold is inclusive: exactly 30% active scans.
    assert tight.choose(300) == "densescan"
    assert tight.choose(299) == "sortreduce"


def test_adaptive_policy_is_pure():
    policy = AdaptivePolicy(5000, 40000, np.dtype("<f8"), dram_budget=4096)
    picks = [policy.choose(n) for n in (1, 10, 100, 1000, 5000)]
    assert picks == [policy.choose(n) for n in (1, 10, 100, 1000, 5000)]


def test_mode_switch_charges():
    profile = GRAFSOFT
    clock = SimClock()
    # Staying put, or moving between the streaming modes, is free.
    charge_mode_switch(clock, profile, None, "sortreduce", 1 << 20)
    charge_mode_switch(clock, profile, "sortreduce", "densescan", 1 << 20)
    charge_mode_switch(clock, profile, "densescan", "sortreduce", 1 << 20)
    charge_mode_switch(clock, profile, "semiexternal", "semiexternal", 1 << 20)
    assert clock.elapsed_s == 0.0
    # Entering semiexternal loads the pinned vertex data: time passes.
    charge_mode_switch(clock, profile, "sortreduce", "semiexternal", 1 << 20)
    assert clock.elapsed_s > 0.0


def test_semiexternal_footprint():
    # value bytes + 1 touched byte per vertex
    assert semiexternal_footprint(100, np.dtype("<f8")) == 900
    assert semiexternal_footprint(100, np.dtype("<u8")) == 900


def test_engine_rejects_unknown_mode(tiny_graph):
    from repro.engine.engine import GraFBoostEngine

    system = make_system("grafsoft", SCALE, num_vertices_hint=tiny_graph.num_vertices)
    flash_graph = system.load_graph(tiny_graph)
    with pytest.raises(ValueError, match="mode"):
        GraFBoostEngine(flash_graph, system.store, system.backend,
                        tiny_graph.num_vertices, chunk_bytes=system.chunk_bytes,
                        memory=system.memory, mode="turbo")


# --------------------------------------------------------------------------
# static-mode correctness on small graphs
# --------------------------------------------------------------------------


@pytest.mark.parametrize("mode", STATIC_MODES + ("adaptive",))
def test_all_modes_match_pagerank_reference(random_graph, mode):
    system = make_system("grafsoft", 2.0 ** -14,
                        num_vertices_hint=random_graph.num_vertices, mode=mode)
    flash_graph = system.load_graph(random_graph)
    engine = system.engine_for(flash_graph, random_graph.num_vertices)
    result = run_pagerank(engine, random_graph.num_vertices, 2)
    assert np.allclose(result.final_values(), pagerank_push(random_graph, 2))
    assert len(result.mode_trace) == result.num_supersteps
    assert all(m in STATIC_MODES for m in result.mode_trace)


@pytest.mark.parametrize("mode", STATIC_MODES + ("adaptive",))
def test_all_modes_match_bfs_reference(random_graph, mode):
    root = int(np.flatnonzero(random_graph.out_degrees() > 0)[0])
    system = make_system("grafsoft", 2.0 ** -14,
                        num_vertices_hint=random_graph.num_vertices, mode=mode)
    flash_graph = system.load_graph(random_graph)
    engine = system.engine_for(flash_graph, random_graph.num_vertices)
    result = run_bfs(engine, root)
    assert validate_parents(random_graph, root, result.final_values(), UNVISITED)


# --------------------------------------------------------------------------
# adaptive mode-trace goldens (pinned; deterministic across workers)
# --------------------------------------------------------------------------

ADAPTIVE_TRACES = {
    # Dense two-iteration PageRank: vertex data outgrows the DRAM headroom
    # at this scale, and every superstep is an all-active frontier — the
    # policy scans the adjacency both times.
    "pagerank": ["densescan", "densescan"],
    # BFS: single-seed start and the narrow tail sort-reduce; the two
    # middle waves cross the density threshold and scan.
    "bfs": ["sortreduce", "sortreduce", "sortreduce", "densescan",
            "densescan", "sortreduce", "sortreduce"],
    # Label propagation starts all-active (scan) and converges to a
    # sparse correcting frontier (sort-reduce).
    "cc": ["densescan", "densescan", "densescan", "densescan", "densescan",
           "sortreduce", "sortreduce"],
}


@pytest.mark.parametrize("algorithm", sorted(ADAPTIVE_TRACES))
def test_adaptive_mode_trace_golden(algorithm):
    graph = _load()
    base = _run(graph, algorithm, "adaptive")
    assert base["trace"] == ADAPTIVE_TRACES[algorithm]
    for workers in (2, 4):
        again = _run(graph, algorithm, "adaptive", workers=workers)
        assert again["trace"] == base["trace"], workers
        assert again["elapsed"] == base["elapsed"], workers
        assert again["flash"] == base["flash"], workers
        assert np.array_equal(again["values"], base["values"]), workers


# --------------------------------------------------------------------------
# static-mode bit-identity across worker counts
# --------------------------------------------------------------------------


@pytest.mark.parametrize("mode", STATIC_MODES)
@pytest.mark.parametrize("algorithm", ["pagerank", "bfs"])
def test_static_mode_worker_sweep_bit_identical(mode, algorithm):
    graph = _load()
    base = _run(graph, algorithm, mode)
    assert base["trace"] == [mode] * len(base["trace"])
    for workers in (2, 4):
        again = _run(graph, algorithm, mode, workers=workers)
        assert again["elapsed"] == base["elapsed"], (mode, workers)
        assert again["flash"] == base["flash"], (mode, workers)
        assert again["stats"] == base["stats"], (mode, workers)
        assert np.array_equal(again["values"], base["values"]), (mode, workers)


def test_semiexternal_cuts_flash_traffic_on_pagerank():
    # The point of the semi-external mode: vertex values live in DRAM, so
    # no intermediate sorted runs hit flash on an all-active workload.
    graph = _load()
    sortreduce = _run(graph, "pagerank", "sortreduce")
    semi = _run(graph, "pagerank", "semiexternal")
    assert semi["flash"] < sortreduce["flash"]
    assert np.allclose(semi["values"], sortreduce["values"])


# --------------------------------------------------------------------------
# crash → remount → resume bit-identity, per mode
# --------------------------------------------------------------------------


def _pin_name_counters():
    # Durable stores journal file *names* to flash; pin the global name
    # counters so journal bytes can't drift between compared runs (same
    # trick as tests/test_perf_invariance.py).
    external_mod._run_counter = itertools.count(1000)
    vertexdata_mod._va_counter = itertools.count(1000)
    dense_mod._dense_counter = itertools.count(1000)


@pytest.mark.parametrize("mode", STATIC_MODES + ("adaptive",))
def test_crash_resume_bit_identical_per_mode(mode):
    graph = _load()
    # Dry run with a zero-crash durable plan counts flash ops so the real
    # crash lands mid-engine-run, past the graph load.
    system = make_system("grafsoft", SCALE, num_vertices_hint=graph.num_vertices,
                         crashes=CrashPlan(crashes=0), mode=mode)
    flash_graph = system.load_graph(graph)
    load_ops = system.device.crashes.op_index
    engine = system.engine_for(flash_graph, graph.num_vertices)
    _pin_name_counters()
    clean = run_pagerank(engine, graph.num_vertices, 2)
    total_ops = system.device.crashes.op_index
    plan_ops = (load_ops + (total_ops - load_ops) // 2,)

    def crashed(workers):
        _pin_name_counters()
        return run_with_crashes(
            "GraFSoft", graph, "pagerank", scale=SCALE,
            crashes=CrashPlan(at_ops=plan_ops, torn_write_p=0.5),
            checkpoint_every=1, pagerank_iterations=2,
            workers=workers, mode=mode)

    serial = crashed(1)
    parallel = crashed(4)
    assert serial.completed and parallel.completed
    assert serial.power_losses == parallel.power_losses == 1
    assert serial.mode_trace == clean.mode_trace == parallel.mode_trace
    assert np.array_equal(serial.final_values, clean.final_values())
    assert np.array_equal(parallel.final_values, serial.final_values)
    assert parallel.elapsed_s == serial.elapsed_s
    assert parallel.flash_bytes == serial.flash_bytes


# --------------------------------------------------------------------------
# adaptive == chosen-static-mode equivalence
# --------------------------------------------------------------------------


def test_adaptive_matches_static_mode_bit_for_bit():
    # Adaptive PageRank picks densescan every superstep (golden above), and
    # switching into a streaming mode is free — so the adaptive run must be
    # indistinguishable from the static mode it chose.
    graph = _load()
    adaptive = _run(graph, "pagerank", "adaptive")
    static = _run(graph, "pagerank", "densescan")
    assert adaptive["trace"] == static["trace"]
    assert adaptive["elapsed"] == static["elapsed"]
    assert adaptive["flash"] == static["flash"]
    assert np.array_equal(adaptive["values"], static["values"])


def test_metrics_record_mode(random_graph):
    system = make_system("grafsoft", 2.0 ** -14,
                        num_vertices_hint=random_graph.num_vertices,
                        mode="semiexternal")
    flash_graph = system.load_graph(random_graph)
    engine = system.engine_for(flash_graph, random_graph.num_vertices)
    result = run_pagerank(engine, random_graph.num_vertices, 1)
    assert [s.mode for s in result.supersteps] == ["semiexternal"]
