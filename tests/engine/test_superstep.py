"""Superstep executor details: weighted programs, eager path, edge cases."""

import numpy as np
import pytest

from repro.algorithms.pagerank import run_weighted_pagerank
from repro.algorithms.sssp import run_sssp
from repro.engine.config import make_system
from repro.graph.csr import CSRGraph
from repro.graph.generators import random_weights, uniform_edges

SCALE = 2.0 ** -14


@pytest.fixture
def weighted_graph():
    src, dst, n = uniform_edges(300, 2400, seed=6)
    return CSRGraph.from_edges(src, dst, n, random_weights(2400, seed=6))


def build(graph, kind="grafsoft", lazy=True):
    system = make_system(kind, SCALE, num_vertices_hint=graph.num_vertices)
    flash_graph = system.load_graph(graph)
    return system, system.engine_for(flash_graph, graph.num_vertices, lazy=lazy)


def test_weighted_program_through_lazy_and_eager(weighted_graph):
    _, lazy_engine = build(weighted_graph, lazy=True)
    _, eager_engine = build(weighted_graph, lazy=False)
    lazy_result = run_weighted_pagerank(lazy_engine, weighted_graph, 1)
    eager_result = run_weighted_pagerank(eager_engine, weighted_graph, 1)
    assert np.allclose(lazy_result.final_values(), eager_result.final_values())


def test_sssp_eager_agrees_with_lazy(weighted_graph):
    _, lazy_engine = build(weighted_graph, lazy=True)
    _, eager_engine = build(weighted_graph, lazy=False)
    a = run_sssp(lazy_engine, 0).final_values()
    b = run_sssp(eager_engine, 0).final_values()
    finite = ~np.isinf(a)
    assert np.array_equal(np.isinf(a), np.isinf(b))
    assert np.allclose(a[finite], b[finite])


def test_superstep_metrics_resource_deltas(weighted_graph):
    _, engine = build(weighted_graph)
    result = run_sssp(engine, 0)
    for step in result.supersteps:
        assert step.flash_bytes >= 0
        assert step.flash_busy_s >= 0
        assert step.elapsed_s > 0
    total_flash = sum(s.flash_bytes for s in result.supersteps)
    assert total_flash > 0
    busiest = max(result.supersteps, key=lambda s: s.traversed_edges)
    assert busiest.flash_bandwidth > 0


def test_vertex_with_no_outgoing_edges_terminates():
    # A star pointing at a sink: the sink activates but pushes nothing.
    src = np.array([0, 0, 0], dtype=np.uint64)
    dst = np.array([1, 2, 3], dtype=np.uint64)
    graph = CSRGraph.from_edges(src, dst, 4)
    _, engine = build(graph, kind="grafboost")
    from repro.algorithms.bfs import run_bfs

    result = run_bfs(engine, 0)
    parents = result.final_values()
    assert parents[1] == 0 and parents[2] == 0 and parents[3] == 0
    assert result.num_supersteps == 2


def test_self_loops_are_harmless():
    src = np.array([0, 0, 1, 1], dtype=np.uint64)
    dst = np.array([0, 1, 1, 0], dtype=np.uint64)
    graph = CSRGraph.from_edges(src, dst, 2)
    _, engine = build(graph)
    from repro.algorithms.bfs import run_bfs

    result = run_bfs(engine, 0)
    parents = result.final_values()
    assert parents[0] == 0 and parents[1] in (0, 1)
