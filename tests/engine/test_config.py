"""System assembly: stacks, scaling, store/backend dispatch."""

import pytest

from repro.core.accelerator import AcceleratorBackend, SoftwareBackend
from repro.engine.config import MIN_CHUNK_BYTES, make_system, scaled_geometry
from repro.flash.aoffs import AppendOnlyFlashFS
from repro.flash.filestore import SSDFileSystem
from repro.perf.profiles import GRAFBOOST, MB, SINGLE_SSD_SERVER


def test_grafboost_stack():
    system = make_system("grafboost", 2.0 ** -14, num_vertices_hint=100_000)
    assert isinstance(system.store, AppendOnlyFlashFS)
    assert isinstance(system.backend, AcceleratorBackend)
    assert system.profile.has_accelerator
    # Key packing sized for the *paper-equivalent* vertex count:
    # 100k scaled keys at 2^-14 stand for ~1.6B, needing 31 bits.
    assert system.backend.packing.key_bits == 31
    # The device charges packed traffic at a discount (Fig 7).
    assert system.device.traffic_scale < 1.0


def test_grafsoft_stack():
    system = make_system("grafsoft", 2.0 ** -14)
    assert isinstance(system.store, SSDFileSystem)
    assert isinstance(system.backend, SoftwareBackend)


def test_grafboost2_differs_in_dram_bw():
    a = make_system("grafboost", 2.0 ** -14)
    b = make_system("grafboost2", 2.0 ** -14)
    assert b.profile.dram_bw == 2 * a.profile.dram_bw


def test_unknown_kind():
    with pytest.raises(KeyError, match="unknown system"):
        make_system("spark")


def test_chunk_scales_with_paper_512mb():
    system = make_system("grafsoft", 2.0 ** -10)
    assert system.chunk_bytes == int(512 * MB * 2.0 ** -10)
    tiny = make_system("grafsoft", 2.0 ** -20)
    assert tiny.chunk_bytes >= MIN_CHUNK_BYTES


def test_dram_override_for_memory_sweep():
    system = make_system("grafsoft", 2.0 ** -14, dram_bytes=123_456)
    assert system.profile.dram_capacity == 123_456


def test_custom_profile():
    system = make_system("ignored", 2.0 ** -14, profile=SINGLE_SSD_SERVER)
    assert system.name == SINGLE_SSD_SERVER.name
    assert isinstance(system.store, SSDFileSystem)


def test_scaled_geometry_keeps_page_size():
    geometry = scaled_geometry(64 * MB)
    assert geometry.page_bytes == 8192
    assert geometry.num_blocks >= 512


def test_clocks_are_independent():
    a = make_system("grafsoft", 2.0 ** -14)
    b = make_system("grafsoft", 2.0 ** -14)
    a.clock.charge("flash", 1.0)
    assert b.clock.elapsed_s == 0.0


def test_engine_for_builds_engine(tiny_graph):
    system = make_system("grafboost", 2.0 ** -14, num_vertices_hint=6)
    flash_graph = system.load_graph(tiny_graph, prefix="tiny")
    engine = system.engine_for(flash_graph, tiny_graph.num_vertices)
    assert engine.num_vertices == 6
    assert engine.chunk_bytes == system.chunk_bytes
