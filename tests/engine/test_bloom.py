"""Bloom filter (Algorithm 4's active-list marker)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.bloom import BloomFilter


def test_no_false_negatives():
    bloom = BloomFilter(num_bits=4096, num_hashes=3)
    keys = np.arange(0, 1000, 7, dtype=np.uint64)
    bloom.add(keys)
    assert bloom.contains(keys).all()


def test_mostly_rejects_absent_keys():
    bloom = BloomFilter.for_expected_items(200, false_positive_rate=0.01)
    present = np.arange(200, dtype=np.uint64)
    absent = np.arange(10_000, 20_000, dtype=np.uint64)
    bloom.add(present)
    false_positive_rate = bloom.contains(absent).mean()
    assert false_positive_rate < 0.05


def test_empty_operations():
    bloom = BloomFilter(64)
    bloom.add(np.empty(0, dtype=np.uint64))
    assert bloom.contains(np.empty(0, dtype=np.uint64)).tolist() == []
    assert bloom.fill_ratio() == 0.0


def test_clear():
    bloom = BloomFilter(256)
    bloom.add(np.array([1, 2, 3], dtype=np.uint64))
    assert bloom.fill_ratio() > 0
    bloom.clear()
    assert bloom.fill_ratio() == 0.0
    assert not bloom.contains(np.array([1], dtype=np.uint64))[0]


def test_sizing():
    small = BloomFilter.for_expected_items(100, 0.01)
    large = BloomFilter.for_expected_items(10_000, 0.01)
    assert large.num_bits > small.num_bits
    assert small.nbytes == (small.num_bits + 7) // 8


def test_validation():
    with pytest.raises(ValueError):
        BloomFilter(4)
    with pytest.raises(ValueError):
        BloomFilter(64, num_hashes=0)
    with pytest.raises(ValueError):
        BloomFilter.for_expected_items(0)
    with pytest.raises(ValueError):
        BloomFilter.for_expected_items(10, false_positive_rate=1.5)


@settings(deadline=None, max_examples=30)
@given(st.lists(st.integers(0, 2 ** 62), max_size=100))
def test_membership_property(keys):
    bloom = BloomFilter(8192, num_hashes=2)
    array = np.array(keys, dtype=np.uint64)
    bloom.add(array)
    if len(array):
        assert bloom.contains(array).all()
