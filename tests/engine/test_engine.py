"""Engine driver: supersteps, quiescence, metrics, lazy vs eager."""

import numpy as np
import pytest

from repro.algorithms.bfs import BFSProgram, UNVISITED, run_bfs
from repro.algorithms.pagerank import run_pagerank
from repro.algorithms.reference import pagerank_push, validate_parents
from repro.engine.api import VertexProgram, all_active_chunks, single_seed
from repro.engine.config import make_system
from repro.core.reduce_ops import SUM


SCALE = 2.0 ** -14


def build(system_kind, graph, lazy=True, mode=None):
    system = make_system(system_kind, SCALE, num_vertices_hint=graph.num_vertices,
                         mode=mode)
    flash_graph = system.load_graph(graph)
    return system, system.engine_for(flash_graph, graph.num_vertices, lazy=lazy)


def test_bfs_on_tiny_graph(tiny_graph):
    _, engine = build("grafboost", tiny_graph)
    result = run_bfs(engine, root=0)
    parents = result.final_values()
    assert parents[0] == 0
    assert parents[1] == 0 and parents[2] == 0
    assert parents[3] in (1, 2)
    assert parents[4] == 3
    assert parents[5] == UNVISITED
    assert result.num_supersteps == 4  # waves: {0},{1,2},{3},{4}
    assert result.total_traversed_edges == 5
    assert result.total_activated == 5  # all reachable vertices


def test_bfs_matches_reference_on_random_graph(random_graph):
    _, engine = build("grafsoft", random_graph)
    root = int(np.flatnonzero(random_graph.out_degrees() > 0)[0])
    result = run_bfs(engine, root)
    assert validate_parents(random_graph, root, result.final_values(), UNVISITED)


def test_lazy_and_eager_agree(random_graph):
    root = int(np.flatnonzero(random_graph.out_degrees() > 0)[0])
    _, lazy_engine = build("grafsoft", random_graph, lazy=True)
    _, eager_engine = build("grafsoft", random_graph, lazy=False)
    lazy_result = run_bfs(lazy_engine, root)
    eager_result = run_bfs(eager_engine, root)
    assert np.array_equal(lazy_result.final_values(), eager_result.final_values())
    assert lazy_result.num_supersteps == eager_result.num_supersteps


def test_eager_costs_more_io(random_graph):
    # Algorithm 3 vs Algorithm 2: the lazy path does "two fewer I/O
    # operations per active vertex" (§III-C).
    root = int(np.flatnonzero(random_graph.out_degrees() > 0)[0])
    # The lazy-vs-eager I/O claim is about the sort-reduce path; pin the
    # mode so the comparison survives a REPRO_MODE=adaptive test run.
    lazy_system, lazy_engine = build("grafsoft", random_graph, lazy=True,
                                     mode="sortreduce")
    eager_system, eager_engine = build("grafsoft", random_graph, lazy=False,
                                       mode="sortreduce")
    run_bfs(lazy_engine, root)
    run_bfs(eager_engine, root)
    assert eager_system.clock.bytes_moved("flash") > lazy_system.clock.bytes_moved("flash")


def test_pagerank_first_iteration_matches_reference(random_graph):
    _, engine = build("grafboost", random_graph)
    result = run_pagerank(engine, random_graph.num_vertices, iterations=1)
    assert np.allclose(result.final_values(), pagerank_push(random_graph, 1))
    assert result.num_supersteps == 1


def test_pagerank_metrics(random_graph):
    _, engine = build("grafsoft", random_graph)
    result = run_pagerank(engine, random_graph.num_vertices, iterations=1)
    step = result.supersteps[0]
    assert step.activated == random_graph.num_vertices
    assert step.traversed_edges == random_graph.num_edges
    assert step.update_pairs == random_graph.num_edges
    assert step.reduced_pairs <= step.update_pairs
    assert step.elapsed_s > 0
    assert result.mteps > 0


def test_engines_agree_across_stacks(random_graph):
    root = int(np.flatnonzero(random_graph.out_degrees() > 0)[0])
    values = []
    for kind in ("grafboost", "grafboost2", "grafsoft"):
        _, engine = build(kind, random_graph)
        values.append(run_bfs(engine, root).final_values())
    assert np.array_equal(values[0], values[1])
    assert np.array_equal(values[0], values[2])


def test_hardware_faster_than_software():
    # §V: hardware acceleration gives "typically between a factor of two to
    # four" over the software implementation on large graphs.  Use a graph
    # big enough for sort-reduce to dominate (tiny graphs are noise).
    from repro.graph.datasets import build_graph
    graph = build_graph("kron28", SCALE, seed=7)
    hw_system, hw_engine = build("grafboost", graph)
    sw_system, sw_engine = build("grafsoft", graph)
    run_pagerank(hw_engine, graph.num_vertices, 1)
    run_pagerank(sw_engine, graph.num_vertices, 1)
    assert hw_system.clock.elapsed_s < sw_system.clock.elapsed_s
    ratio = sw_system.clock.elapsed_s / hw_system.clock.elapsed_s
    assert 1.2 < ratio < 10


def test_unreachable_root_terminates(tiny_graph):
    _, engine = build("grafsoft", tiny_graph)
    result = run_bfs(engine, root=5)  # isolated vertex
    assert result.num_supersteps == 1
    parents = result.final_values()
    assert parents[5] == 5
    assert (parents[:5] == UNVISITED).all()


def test_max_supersteps_cuts_and_folds(random_graph):
    _, engine = build("grafsoft", random_graph)
    root = int(np.flatnonzero(random_graph.out_degrees() > 0)[0])
    result = run_bfs(engine, root, max_supersteps=2)
    assert result.num_supersteps == 2
    # The apply pass folded the frontier of superstep 2 into V even though
    # its edges were never pushed.
    parents = result.final_values()
    visited = int((parents != UNVISITED).sum())
    assert visited >= result.total_activated


def test_superstep_zero_with_all_active_generator(tiny_graph):
    class CountingProgram(VertexProgram):
        name = "counting"
        value_dtype = np.dtype("<f8")
        reduce_op = SUM
        default_value = 0.0

        def edge_program(self, src_values, src_ids, edge_weights, src_degrees):
            return np.ones(len(src_values))

    _, engine = build("grafsoft", tiny_graph)
    result = engine.run(CountingProgram(), max_supersteps=1)
    # newV counts in-degree; folded into V by the apply pass.
    counts = result.final_values()
    assert counts[3] == 2.0  # two in-edges (from 1 and 2)
    assert counts[0] == 0.0


def test_initial_generators():
    chunks = list(all_active_chunks(10, np.float64, 0.5, chunk_records=4))
    assert [len(c) for c in chunks] == [4, 4, 2]
    assert chunks[0].values[0] == 0.5
    seed = list(single_seed(3, np.uint64(3), np.uint64))
    assert len(seed) == 1 and seed[0].keys[0] == 3


def test_bfs_program_validation():
    with pytest.raises(ValueError):
        BFSProgram(-1)
    with pytest.raises(ValueError):
        list(BFSProgram(100).initial_updates(10))
