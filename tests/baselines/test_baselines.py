"""Baseline engines: correct answers, characteristic behaviours, DNF modes."""

import numpy as np
import pytest

from repro.algorithms.bfs import UNVISITED
from repro.algorithms.reference import (
    bfs_tree_descendants,
    pagerank_push,
    validate_parents,
)
from repro.baselines import (
    ClusterInMemoryEngine,
    EdgeCentricEngine,
    InMemoryEngine,
    SemiExternalEngine,
    ShardedExternalEngine,
)
from repro.graph.datasets import build_graph
from repro.perf.profiles import SERVER_SSD_ARRAY

SCALE = 2.0 ** -14
SERVER = SERVER_SSD_ARRAY.scaled(SCALE)
ALL_ENGINES = [InMemoryEngine, SemiExternalEngine, EdgeCentricEngine,
               ShardedExternalEngine]


@pytest.fixture(scope="module")
def twitter():
    # twitter is the one dataset every system handles in the paper.
    return build_graph("twitter", SCALE, seed=13)


@pytest.fixture(scope="module")
def twitter_root(twitter):
    return int(np.flatnonzero(twitter.out_degrees() > 0)[0])


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
def test_bfs_correct(engine_cls, twitter, twitter_root):
    result = engine_cls(twitter, SERVER).run_bfs(twitter_root)
    assert result.completed
    assert validate_parents(twitter, twitter_root, result.final_values(), UNVISITED)
    assert result.elapsed_s > 0
    assert result.supersteps > 0


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
def test_pagerank_correct(engine_cls, twitter):
    result = engine_cls(twitter, SERVER).run_pagerank(iterations=2)
    assert result.completed
    assert np.allclose(result.final_values(), pagerank_push(twitter, 2))


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
def test_bc_correct(engine_cls, twitter, twitter_root):
    bfs = engine_cls(twitter, SERVER).run_bfs(twitter_root)
    result = engine_cls(twitter, SERVER).run_bc(twitter_root)
    assert result.completed
    expected = bfs_tree_descendants(twitter, twitter_root,
                                    bfs.final_values(), UNVISITED)
    assert np.allclose(result.final_values(), expected)


def test_graphlab_oom_on_kron28():
    # §V-D: "GraphLab cannot handle graphs larger than the twitter graph."
    kron = build_graph("kron28", SCALE, seed=13)
    engine = InMemoryEngine(kron, SERVER)
    assert not engine.fits()
    result = engine.run_pagerank()
    assert not result.completed
    assert "out of memory" in result.dnf_reason
    assert result.elapsed_s != result.elapsed_s  # NaN
    with pytest.raises(RuntimeError):
        result.final_values()


def test_graphlab5_handles_kron28_not_kron30():
    # §V-D: "GraphLab5 cannot handle graphs larger than Kron28."
    kron28 = build_graph("kron28", SCALE, seed=13)
    assert ClusterInMemoryEngine(kron28, SERVER).run_pagerank().completed
    kron30 = build_graph("kron30", SCALE, seed=13)
    assert not ClusterInMemoryEngine(kron30, SERVER).run_pagerank().completed


def test_graphlab5_network_hurts_bfs(twitter, twitter_root):
    # §V-D: GraphLab5 "is relatively slow for BFS, even against single-node
    # GraphLab ... the network becoming the bottleneck."
    single = InMemoryEngine(twitter, SERVER).run_bfs(twitter_root)
    cluster = ClusterInMemoryEngine(twitter, SERVER).run_bfs(twitter_root)
    assert cluster.elapsed_s > single.elapsed_s


def test_flashgraph_dnf_on_kron32():
    # Fig 12a: FlashGraph "did not finish for any algorithms" on kron32 —
    # its (scaled) vertex id space cannot hold 2^32 vertices.
    kron32 = build_graph("kron32", SCALE, seed=13)
    engine = SemiExternalEngine(kron32, SERVER,
                                max_vertices=int(2 ** 32 * SCALE) - 1)
    result = engine.run_bfs(0)
    assert not result.completed
    assert "id space" in result.dnf_reason


def test_flashgraph_oom_when_state_cannot_swap(twitter):
    # Vertex state beyond the thrashing tolerance refuses to run.
    tiny = SERVER.with_dram(max(4096, twitter.num_vertices * 2))
    result = SemiExternalEngine(twitter, tiny).run_bc(0)
    assert not result.completed
    assert "vertex state" in result.dnf_reason


def test_flashgraph_degrades_with_less_memory(twitter):
    # Fig 13b: FlashGraph's performance "degrades sharply" as memory shrinks.
    roomy = SemiExternalEngine(twitter, SERVER).run_pagerank()
    vertex_state = SemiExternalEngine(twitter, SERVER).state_bytes("pagerank")
    tight_profile = SERVER.with_dram(int(vertex_state * 0.95))
    tight = SemiExternalEngine(twitter, tight_profile).run_pagerank()
    assert roomy.completed and tight.completed
    assert tight.elapsed_s > roomy.elapsed_s


def test_flashgraph_bfs_needs_little_memory(twitter, twitter_root):
    # §V-C.2: BFS memory requirements are low; FlashGraph stays fast on
    # machines with small memory.
    vertex_state = SemiExternalEngine(twitter, SERVER).state_bytes("bfs")
    small_profile = SERVER.with_dram(int(vertex_state * 1.2))
    result = SemiExternalEngine(twitter, small_profile).run_bfs(twitter_root)
    assert result.completed


def test_xstream_immune_to_memory_pressure(twitter):
    # Fig 13b: X-Stream keeps performance with little memory by splitting
    # into more streaming partitions.
    state = twitter.num_vertices * 24  # X-Stream vertex state bytes
    tiny_profile = SERVER.with_dram(max(4096, state // 2))
    engine = EdgeCentricEngine(twitter, tiny_profile)
    assert engine.num_partitions() > 1
    result = engine.run_pagerank()
    assert result.completed
    roomy = EdgeCentricEngine(twitter, SERVER).run_pagerank()
    # Partitioning costs extra update-log traffic but not collapse.
    assert result.elapsed_s < 10 * max(roomy.elapsed_s, 1e-9)


def test_xstream_pays_full_scan_per_superstep(twitter, twitter_root):
    engine = EdgeCentricEngine(twitter, SERVER)
    result = engine.run_bfs(twitter_root)
    # Every superstep streams all edges: flash traffic is at least
    # supersteps * edge bytes.
    assert result.flash_bytes >= result.supersteps * twitter.num_edges * 12


def test_xstream_dnf_on_long_tail_bfs():
    # §V-C.1: X-Stream on WDC BFS would take "two million seconds, or 23
    # days" — the experiment's patience runs out first.
    wdc = build_graph("wdc", 2.0 ** -17, seed=13)
    sparse_cutoff = EdgeCentricEngine(wdc, SERVER, cutoff_s=0.05)
    result = sparse_cutoff.run_bfs(0)
    assert not result.completed
    assert "patience" in result.dnf_reason


def test_graphchi_constant_memory():
    # GraphChi works even when vertex data exceeds DRAM.
    kron32 = build_graph("kron32", SCALE, seed=13)
    engine = ShardedExternalEngine(kron32, SERVER)
    result = engine.run_pagerank()
    assert result.completed
    assert result.peak_memory <= SERVER.dram_capacity


def test_graphchi_slowest_on_pagerank(twitter):
    # "Its performance is not competitive with any of the other systems."
    times = {}
    for engine_cls in ALL_ENGINES:
        result = engine_cls(twitter, SERVER).run_pagerank()
        if result.completed:
            times[engine_cls.__name__] = result.elapsed_s
    assert times["ShardedExternalEngine"] == max(times.values())


def test_inmemory_fastest_when_it_fits(twitter):
    fast = InMemoryEngine(twitter, SERVER).run_pagerank()
    slow = ShardedExternalEngine(twitter, SERVER).run_pagerank()
    assert fast.elapsed_s < slow.elapsed_s


def test_cluster_requires_multiple_nodes(twitter):
    with pytest.raises(ValueError):
        ClusterInMemoryEngine(twitter, SERVER, num_nodes=1)


def test_result_time_or_nan(twitter, twitter_root):
    good = InMemoryEngine(twitter, SERVER).run_bfs(twitter_root)
    assert good.time_or_nan == good.elapsed_s
    bad = InMemoryEngine(build_graph("kron30", SCALE), SERVER).run_bfs(0)
    assert bad.time_or_nan != bad.time_or_nan
