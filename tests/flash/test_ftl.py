"""Page-mapped FTL: translation, overwrites, garbage collection, wear."""

import pytest

from repro.flash.device import FlashDevice, FlashError, FlashGeometry
from repro.flash.ftl import SSD, PageMappedFTL
from repro.perf.clock import SimClock
from repro.perf.profiles import GRAFSOFT


def make_ftl(num_blocks=16, pages_per_block=8, overprovision=0.2):
    geometry = FlashGeometry(page_bytes=4096, pages_per_block=pages_per_block,
                             num_blocks=num_blocks)
    device = FlashDevice(geometry, GRAFSOFT, SimClock())
    return PageMappedFTL(device, overprovision=overprovision)


def test_write_read_roundtrip():
    ftl = make_ftl()
    ftl.write(5, b"data5")
    assert ftl.read(5) == b"data5"
    assert ftl.is_mapped(5)
    assert not ftl.is_mapped(6)


def test_overwrite_remaps():
    ftl = make_ftl()
    ftl.write(0, b"v1")
    old_physical = ftl.translate(0)
    ftl.write(0, b"v2")
    assert ftl.read(0) == b"v2"
    assert ftl.translate(0) != old_physical


def test_read_unwritten_is_error():
    ftl = make_ftl()
    with pytest.raises(FlashError, match="unwritten"):
        ftl.read(3)
    with pytest.raises(FlashError):
        ftl.read(10 ** 9)


def test_trim_unmaps():
    ftl = make_ftl()
    ftl.write(1, b"x")
    ftl.trim(1)
    assert not ftl.is_mapped(1)
    ftl.trim(1)  # idempotent


def test_gc_reclaims_overwritten_space():
    # Overwrite a small working set far beyond device capacity; GC must
    # keep making room and data must survive relocations.
    ftl = make_ftl(num_blocks=8, pages_per_block=4, overprovision=0.3)
    for round_index in range(20):
        for lpn in range(10):
            ftl.write(lpn, f"{round_index}:{lpn}".encode())
    assert ftl.gc_runs > 0
    for lpn in range(10):
        assert ftl.read(lpn) == f"19:{lpn}".encode()


def test_write_amplification_reported():
    ftl = make_ftl(num_blocks=8, pages_per_block=4, overprovision=0.3)
    assert ftl.write_amplification == 1.0  # nothing written yet
    for round_index in range(30):
        for lpn in range(8):
            ftl.write(lpn, b"x" * 64)
    assert ftl.write_amplification >= 1.0
    assert ftl.device.total_pages_written >= ftl.user_pages_written


def test_sustained_overwrites_never_exhaust():
    # Over-provisioning guarantees GC always finds garbage at steady state:
    # writing the full logical space repeatedly must never raise.
    ftl = make_ftl(num_blocks=4, pages_per_block=4, overprovision=0.3)
    for round_index in range(6):
        for lpn in range(ftl.logical_pages):
            ftl.write(lpn, f"{round_index}-{lpn}".encode())
    for lpn in range(ftl.logical_pages):
        assert ftl.read(lpn) == f"5-{lpn}".encode()


def test_write_many_matches_individual_writes():
    ftl_a = make_ftl()
    ftl_b = make_ftl()
    payload = [(i, bytes([i]) * 128) for i in range(20)]
    ftl_a.write_many(payload)
    for lpn, data in payload:
        ftl_b.write(lpn, data)
    for lpn, data in payload:
        assert ftl_a.read(lpn) == data
        assert ftl_b.read(lpn) == data


def test_write_many_cheaper_than_individual():
    geometry = FlashGeometry(page_bytes=4096, pages_per_block=8, num_blocks=32)
    clock_a, clock_b = SimClock(), SimClock()
    ftl_a = PageMappedFTL(FlashDevice(geometry, GRAFSOFT, clock_a))
    ftl_b = PageMappedFTL(FlashDevice(geometry, GRAFSOFT, clock_b))
    payload = [(i, b"z" * 4096) for i in range(64)]
    ftl_a.write_many(payload)
    for lpn, data in payload:
        ftl_b.write(lpn, data)
    assert clock_a.elapsed_s < clock_b.elapsed_s


def test_ssd_charges_ftl_overhead():
    geometry = FlashGeometry(page_bytes=4096, pages_per_block=8, num_blocks=16)
    clock = SimClock()
    ssd = SSD(FlashDevice(geometry, GRAFSOFT, clock), ftl_overhead_s=1e-3)
    ssd.write_page(0, b"a")
    with_overhead = clock.elapsed_s

    clock2 = SimClock()
    ssd2 = SSD(FlashDevice(geometry, GRAFSOFT, clock2), ftl_overhead_s=0.0)
    ssd2.write_page(0, b"a")
    assert with_overhead - clock2.elapsed_s == pytest.approx(1e-3)


def test_ssd_batch_roundtrip():
    geometry = FlashGeometry(page_bytes=4096, pages_per_block=8, num_blocks=16)
    ssd = SSD(FlashDevice(geometry, GRAFSOFT, SimClock()))
    ssd.write_pages([(i, bytes([i]) * 10) for i in range(10)])
    pages = ssd.read_pages(list(range(10)))
    assert pages == [bytes([i]) * 10 for i in range(10)]
    assert ssd.read_pages([]) == []


def test_overprovision_validation():
    geometry = FlashGeometry(page_bytes=4096, pages_per_block=8, num_blocks=16)
    device = FlashDevice(geometry, GRAFSOFT, SimClock())
    with pytest.raises(ValueError):
        PageMappedFTL(device, overprovision=0.0)
    with pytest.raises(ValueError):
        PageMappedFTL(device, overprovision=1.0)
