"""Wear accounting and lifetime estimates."""

import pytest

from repro.flash.device import FlashDevice, FlashGeometry
from repro.flash.wear import WearReport, lifetime_writes_remaining
from repro.perf.clock import SimClock
from repro.perf.profiles import GRAFSOFT


def make_device():
    geometry = FlashGeometry(page_bytes=4096, pages_per_block=4, num_blocks=8)
    return FlashDevice(geometry, GRAFSOFT, SimClock())


def test_fresh_device_report():
    report = WearReport.from_device(make_device())
    assert report.pages_written == 0
    assert report.blocks_erased == 0
    assert report.max_erase_count == 0
    assert report.wear_evenness() == pytest.approx(1.0)


def test_report_counts_activity():
    device = make_device()
    device.write_page(0, 0, b"a" * 4096)
    device.write_page(0, 1, b"b" * 4096)
    device.erase_block(0)
    report = WearReport.from_device(device)
    assert report.pages_written == 2
    assert report.blocks_erased == 1
    assert report.bytes_written == 8192
    assert report.max_erase_count == 1


def test_uneven_wear_lowers_evenness():
    device = make_device()
    for _ in range(50):
        device.erase_block(0)  # hammer one block
    report = WearReport.from_device(device)
    even_device = make_device()
    for block in range(8):
        for _ in range(6):
            even_device.erase_block(block)
    even_report = WearReport.from_device(even_device)
    assert report.wear_evenness() < even_report.wear_evenness()


def test_lifetime_fraction():
    device = make_device()
    assert lifetime_writes_remaining(device) == pytest.approx(1.0)
    for _ in range(300):
        device.erase_block(0)
    assert lifetime_writes_remaining(device, rated_pe_cycles=3000) == pytest.approx(0.9)
    with pytest.raises(ValueError):
        lifetime_writes_remaining(device, rated_pe_cycles=0)
