"""Deterministic fault injection, ECC/read-retry recovery, bad-block
remapping, checksum repair, and the FlashError taxonomy."""

import numpy as np
import pytest

from repro.flash.aoffs import AppendOnlyFlashFS
from repro.flash.device import (
    FlashDevice,
    FlashEraseError,
    FlashError,
    FlashGeometry,
    FlashProgramError,
    FlashUncorrectableError,
    FlashWearOutError,
)
from repro.flash.faults import FaultInjector, FaultPlan, FaultStats, verify_pages
from repro.flash.filestore import SSDFileSystem
from repro.flash.ftl import SSD
from repro.flash.wear import WearReport
from repro.perf.clock import SimClock
from repro.perf.profiles import GRAFSOFT

GEOMETRY = FlashGeometry(page_bytes=4096, pages_per_block=8, num_blocks=64)


def make_device(faults=None, clock=None, geometry=GEOMETRY):
    return FlashDevice(geometry, GRAFSOFT, clock or SimClock(), faults=faults)


def page_of(byte: int) -> bytes:
    return bytes([byte]) * GEOMETRY.page_bytes


# --------------------------------------------------------------------- plans


def test_fault_plan_parse_spec():
    plan = FaultPlan.parse("seed=3,ber=5e-5,pfail=1e-4,retries=2,jitter=0.1")
    assert plan.seed == 3
    assert plan.read_ber == 5e-5
    assert plan.program_fail_p == 1e-4
    assert plan.read_retry_limit == 2
    assert plan.latency_jitter == 0.1
    # Full field names work too, and empty entries are ignored.
    assert FaultPlan.parse("read_ber=0.01,").read_ber == 0.01
    assert FaultPlan.parse("") == FaultPlan()


def test_fault_plan_parse_rejects_garbage():
    with pytest.raises(ValueError, match="unknown fault spec key"):
        FaultPlan.parse("bogus=1")
    with pytest.raises(ValueError, match="not key=value"):
        FaultPlan.parse("ber")
    with pytest.raises(ValueError, match="bad value"):
        FaultPlan.parse("ber=lots")


def test_fault_plan_validates_ranges():
    with pytest.raises(ValueError):
        FaultPlan(read_ber=1.5)
    with pytest.raises(ValueError):
        FaultPlan(latency_jitter=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(read_retry_limit=-1)


def test_fault_stats_as_dict_roundtrip():
    stats = FaultStats(bits_corrected=3, read_retries=1)
    d = stats.as_dict()
    assert d["bits_corrected"] == 3
    assert d["read_retries"] == 1
    assert stats.corrected_errors == 3


# -------------------------------------------------------------- determinism


def _exercise(device):
    fs = AppendOnlyFlashFS(device)
    rng = np.random.default_rng(11)
    blob = rng.integers(0, 256, 40 * GEOMETRY.page_bytes, dtype=np.uint8).tobytes()
    fs.append("f", blob)
    fs.seal("f")
    out = fs.read("f")
    fs.delete("f")
    return out, blob


def test_zero_rate_plan_is_bit_identical_to_no_plan():
    clock_none, clock_zero = SimClock(), SimClock()
    out_none, blob = _exercise(make_device(clock=clock_none))
    out_zero, _ = _exercise(make_device(faults=FaultPlan(), clock=clock_zero))
    assert out_none == blob
    assert out_zero == blob
    assert clock_zero.elapsed_s == clock_none.elapsed_s
    assert clock_zero.bytes_moved("flash") == clock_none.bytes_moved("flash")


def test_same_plan_replays_identically():
    plan = FaultPlan(seed=5, read_ber=3e-4, latency_jitter=0.2)
    clock_a, clock_b = SimClock(), SimClock()
    out_a, _ = _exercise(make_device(faults=plan, clock=clock_a))
    out_b, _ = _exercise(make_device(faults=plan, clock=clock_b))
    assert out_a == out_b
    assert clock_a.elapsed_s == clock_b.elapsed_s


# ---------------------------------------------------------------- ECC model


def test_ecc_corrects_small_error_counts_inline():
    clock = SimClock()
    # Mean ~0.3 raw bit errors per 4 KB page: always within ECC strength.
    device = make_device(faults=FaultPlan(seed=1, read_ber=1e-5), clock=clock)
    baseline_clock = SimClock()
    baseline = make_device(clock=baseline_clock)
    for dev in (device, baseline):
        for page in range(8):
            dev.write_page(0, page, page_of(page))
    got = device.read_pages([(0, p) for p in range(8)])
    baseline.read_pages([(0, p) for p in range(8)])
    assert [bytes(p) for p in got] == [page_of(p) for p in range(8)]
    stats = device.faults.stats
    assert stats.bits_corrected > 0
    assert stats.read_retries == 0
    # Inline correction is free: same charged time as the clean device.
    assert clock.elapsed_s == baseline_clock.elapsed_s


def test_read_retry_recovers_and_charges_time():
    clock = SimClock()
    # Mean ~100 raw errors (far beyond t=8); each retry drops BER 100x, so
    # the first retry almost surely recovers.
    plan = FaultPlan(seed=2, read_ber=3e-3, retry_ber_scale=0.01)
    device = make_device(faults=plan, clock=clock)
    device.write_page(0, 0, page_of(0xAB))
    before = clock.elapsed_s
    assert device.read_page(0, 0) == page_of(0xAB)
    stats = device.faults.stats
    assert stats.read_retries >= 1
    assert stats.retry_recoveries >= 1
    # The retry cost a full extra page access, not just the nominal read.
    nominal = GRAFSOFT.flash_read_latency_s + \
        GEOMETRY.page_bytes / GRAFSOFT.flash_read_bw
    assert clock.elapsed_s - before > nominal * 1.5


def test_uncorrectable_read_raises_typed_error():
    # Retries never help (scale 1.0) and errors always exceed ECC.
    plan = FaultPlan(seed=3, read_ber=1e-2, retry_ber_scale=1.0,
                     read_retry_limit=2)
    device = make_device(faults=plan)
    device.write_page(0, 0, page_of(1))
    with pytest.raises(FlashUncorrectableError) as excinfo:
        device.read_page(0, 0)
    assert isinstance(excinfo.value, FlashError)
    assert excinfo.value.block == 0
    assert excinfo.value.page == 0
    assert device.faults.stats.uncorrectable_reads == 1


def test_wear_scaling_raises_effective_ber():
    plan = FaultPlan(seed=4, read_ber=1e-5, wear_ber_scale=0.5)
    device = make_device(faults=plan)
    injector = device.faults
    fresh = injector._effective_ber(0)
    device.erase_counts[0] = 10
    assert injector._effective_ber(0) == pytest.approx(fresh * 6.0)
    # Capped at 0.5 no matter how worn the block is.
    device.erase_counts[0] = 10**9
    assert injector._effective_ber(0) == 0.5


def test_latency_jitter_slows_every_op():
    plan = FaultPlan(seed=5, latency_jitter=0.5)
    clock, baseline_clock = SimClock(), SimClock()
    device = make_device(faults=plan, clock=clock)
    baseline = make_device(clock=baseline_clock)
    for dev in (device, baseline):
        dev.write_page(0, 0, page_of(7))
        dev.read_page(0, 0)
        dev.erase_block(0)
    assert clock.elapsed_s > baseline_clock.elapsed_s


# --------------------------------------------------- program/erase failures


def test_program_failure_retires_block_and_charges_tprog():
    plan = FaultPlan(seed=6, program_fail_p=1.0)
    clock = SimClock()
    device = make_device(faults=plan, clock=clock)
    with pytest.raises(FlashProgramError) as excinfo:
        device.write_page(0, 0, page_of(1))
    assert excinfo.value.block == 0
    assert device.is_bad(0)
    assert device.bad_block_count == 1
    assert clock.elapsed_s > 0  # the failed tProg still elapsed
    # Retired blocks reject every further program and erase.
    with pytest.raises(FlashProgramError, match="retired"):
        device.write_page(0, 0, page_of(2))
    with pytest.raises(FlashEraseError, match="retired"):
        device.erase_block(0)


def test_batched_program_failure_commits_prefix():
    # Fail the 3rd program of the run: pages 0-1 land, the rest do not.
    device = make_device(faults=FaultPlan(seed=0, program_fail_p=1e-9))
    injector = device.faults
    injector.first_program_failure = lambda block, page0, count: \
        2 if count > 2 else None
    with pytest.raises(FlashProgramError) as excinfo:
        device.write_pages([(0, p, page_of(p)) for p in range(6)])
    assert excinfo.value.batch_committed == 2
    assert device.read_page(0, 0) == page_of(0)
    assert device.read_page(0, 1) == page_of(1)
    assert device.is_bad(0)


def test_erase_failure_retires_block():
    plan = FaultPlan(seed=7, erase_fail_p=1.0)
    device = make_device(faults=plan)
    device.write_page(0, 0, page_of(1))
    with pytest.raises(FlashEraseError, match="retired"):
        device.erase_block(0)
    assert device.is_bad(0)
    # Data programmed before the failed erase stays readable.
    assert device.read_page(0, 0) == page_of(1)


def test_pe_cycle_limit_wears_block_out():
    plan = FaultPlan(seed=8, pe_cycle_limit=2)
    device = make_device(faults=plan)
    device.erase_block(0)
    device.erase_block(0)
    with pytest.raises(FlashEraseError, match="endurance"):
        device.erase_block(0)
    assert device.is_bad(0)
    assert WearReport.from_device(device).bad_blocks == 1


# ----------------------------------------------------- AOFFS/FTL recovery


def test_aoffs_survives_program_failures():
    plan = FaultPlan(seed=9, program_fail_p=0.05)
    device = make_device(faults=plan)
    fs = AppendOnlyFlashFS(device)
    rng = np.random.default_rng(21)
    blob = rng.integers(0, 256, 30 * GEOMETRY.page_bytes + 100,
                        dtype=np.uint8).tobytes()
    fs.append("f", blob)
    fs.seal("f")
    assert fs.read("f") == blob
    assert device.faults.stats.program_failures > 0
    assert device.bad_block_count > 0


def test_ftl_survives_program_failures():
    plan = FaultPlan(seed=9, program_fail_p=0.1)
    device = make_device(faults=plan)
    fs = SSDFileSystem(SSD(device))
    rng = np.random.default_rng(22)
    blob = rng.integers(0, 256, 30 * GEOMETRY.page_bytes + 100,
                        dtype=np.uint8).tobytes()
    fs.append("f", blob)
    fs.seal("f")
    assert fs.read("f") == blob
    assert device.bad_block_count > 0
    assert fs.ssd.ftl.blocks_retired == device.bad_block_count


def test_ftl_spare_exhaustion_raises_wearout():
    plan = FaultPlan(seed=11, program_fail_p=1.0)
    device = make_device(faults=plan)
    fs = SSDFileSystem(SSD(device))
    with pytest.raises(FlashWearOutError, match="spare pool exhausted"):
        fs.append("f", page_of(1) * 8)


def test_aoffs_delete_survives_erase_failures():
    plan = FaultPlan(seed=12, erase_fail_p=1.0)
    device = make_device(faults=plan)
    fs = AppendOnlyFlashFS(device)
    fs.append("f", page_of(3) * 4)
    fs.seal("f")
    free_before = fs.free_bytes
    fs.delete("f")  # every erase fails; delete still completes
    assert not fs.exists("f")
    assert device.bad_block_count > 0
    assert fs.free_bytes < free_before + GEOMETRY.block_bytes
    # The file system keeps working on the remaining blocks.
    fs.append("g", page_of(4) * 2)
    fs.seal("g")
    assert fs.read("g") == page_of(4) * 2


# ------------------------------------------------------------- checksums


def test_checksums_catch_silent_corruption():
    # Uncorrectable reads always escape as silently corrupted data
    # (retries never help); only the file-store CRCs can catch them, and
    # each repair re-read draws fresh (usually correctable) errors.
    plan = FaultPlan(seed=13, read_ber=2.4e-4, retry_ber_scale=1.0,
                     read_retry_limit=2, silent_corruption_p=1.0)
    device = make_device(faults=plan)
    fs = AppendOnlyFlashFS(device)
    rng = np.random.default_rng(23)
    blob = rng.integers(0, 256, 60 * GEOMETRY.page_bytes,
                        dtype=np.uint8).tobytes()
    fs.append("f", blob)
    fs.seal("f")
    assert fs.read("f") == blob
    stats = device.faults.stats
    assert stats.silent_corruptions > 0
    assert stats.checksum_mismatches > 0
    assert stats.checksum_recoveries == stats.checksum_mismatches


def test_verify_pages_passthrough_without_injector():
    pages = [b"a", b"b"]
    assert verify_pages(pages, [1, 2], 0, None, None, "x") is pages
