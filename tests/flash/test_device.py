"""NAND device simulator: physical constraints, data integrity, timing."""

import pytest

from repro.flash.device import FlashDevice, FlashError, FlashGeometry
from repro.perf.clock import SimClock
from repro.perf.profiles import GRAFSOFT


def make_device(clock=None):
    geometry = FlashGeometry(page_bytes=4096, pages_per_block=8, num_blocks=16)
    return FlashDevice(geometry, GRAFSOFT, clock or SimClock())


def test_write_read_roundtrip():
    device = make_device()
    device.write_page(0, 0, b"hello")
    assert device.read_page(0, 0) == b"hello"


def test_program_order_enforced():
    device = make_device()
    with pytest.raises(FlashError, match="out-of-order"):
        device.write_page(0, 3, b"skip")
    device.write_page(0, 0, b"a")
    device.write_page(0, 1, b"b")
    with pytest.raises(FlashError, match="out-of-order"):
        device.write_page(0, 5, b"skip ahead")
    with pytest.raises(FlashError, match="un-erased"):
        device.write_page(0, 1, b"rewrite")


def test_erase_before_write_enforced():
    device = make_device()
    device.write_page(0, 0, b"x")
    device.erase_block(0)
    device.write_page(0, 0, b"y")  # fine after erase
    assert device.read_page(0, 0) == b"y"


def test_read_of_erased_page_is_error():
    device = make_device()
    with pytest.raises(FlashError, match="erased"):
        device.read_page(0, 0)


def test_page_size_limit():
    device = make_device()
    with pytest.raises(FlashError, match="exceeds page size"):
        device.write_page(0, 0, b"z" * 5000)


def test_erase_destroys_data_and_counts_wear():
    device = make_device()
    device.write_page(2, 0, b"doomed")
    device.erase_block(2)
    assert device.erase_counts[2] == 1
    assert device.block_is_erased(2)
    with pytest.raises(FlashError):
        device.read_page(2, 0)


def test_invalidate_tracks_page_state():
    device = make_device()
    device.write_page(0, 0, b"v")
    assert device.valid_pages(0) == 1
    device.invalidate_page(0, 0)
    assert device.valid_pages(0) == 0
    with pytest.raises(FlashError):
        device.invalidate_page(0, 0)  # already invalid


def test_read_of_invalidated_page_is_flash_error():
    # Regression: this used to escape as a bare KeyError from the page map.
    device = make_device()
    device.write_page(0, 0, b"v")
    device.invalidate_page(0, 0)
    with pytest.raises(FlashError, match="invalidated"):
        device.read_page(0, 0)


def test_batched_read_of_invalidated_page_is_flash_error():
    # Regression: a multi-page run hitting an invalidated page used to raise
    # KeyError from the batched fast path instead of a typed error.
    device = make_device()
    for page in range(4):
        device.write_page(0, page, bytes([page]) * 16)
    device.invalidate_page(0, 1)
    with pytest.raises(FlashError, match="invalidated"):
        device.read_pages([(0, page) for page in range(4)])


def test_batched_read_of_erased_page_matches_scalar():
    device = make_device()
    device.write_page(0, 0, b"a")
    with pytest.raises(FlashError, match="erased"):
        device.read_pages([(0, 0), (0, 1), (0, 2)])


def test_batched_write_errors_match_scalar():
    # Out-of-order program: same typed error from the batched run path.
    device = make_device()
    with pytest.raises(FlashError, match="out-of-order"):
        device.write_pages([(0, 3, b"x"), (0, 4, b"y")])
    # Oversize page: both paths reject before touching state.
    device2 = make_device()
    with pytest.raises(FlashError, match="exceeds page size"):
        device2.write_pages([(0, 0, b"ok"), (0, 1, b"z" * 5000)])
    assert device2.valid_pages(0) == 0


def test_out_of_range_addresses():
    device = make_device()
    with pytest.raises(FlashError):
        device.write_page(99, 0, b"")
    with pytest.raises(FlashError):
        device.read_page(0, 99)
    with pytest.raises(FlashError):
        device.erase_block(-1)


def test_batched_read_pays_one_latency():
    clock_single = SimClock()
    device = make_device(clock_single)
    for page in range(8):
        device.write_page(0, page, b"d" * 4096)
    write_time = clock_single.elapsed_s

    # Read the 8 pages one by one vs in one batch.
    start = clock_single.elapsed_s
    for page in range(8):
        device.read_page(0, page)
    individual = clock_single.elapsed_s - start

    start = clock_single.elapsed_s
    device.read_pages([(0, page) for page in range(8)])
    batched = clock_single.elapsed_s - start

    assert batched < individual
    # 7 extra latencies is exactly the difference.
    expected_gap = 7 * GRAFSOFT.flash_read_latency_s
    assert individual - batched == pytest.approx(expected_gap)
    assert write_time > 0


def test_batched_write_pays_one_latency():
    clock = SimClock()
    device = make_device(clock)
    start = clock.elapsed_s
    device.write_pages([(0, page, b"w" * 4096) for page in range(8)])
    batched = clock.elapsed_s - start

    clock2 = SimClock()
    device2 = make_device(clock2)
    for page in range(8):
        device2.write_page(0, page, b"w" * 4096)
    assert batched < clock2.elapsed_s


def test_clock_records_bytes():
    clock = SimClock()
    device = make_device(clock)
    device.write_page(0, 0, b"q" * 4096)
    device.read_page(0, 0)
    assert clock.bytes_moved("flash") == 8192


def test_geometry_from_profile():
    geometry = FlashGeometry.from_profile(GRAFSOFT, capacity=100 * 1024 * 1024)
    assert geometry.page_bytes == GRAFSOFT.flash_page_bytes
    assert geometry.capacity_bytes >= 100 * 1024 * 1024
