"""Multi-channel flash parallelism (§II-B, BlueDBM's 8-channel cards)."""

import pytest

from repro.flash.device import FlashDevice, FlashError, FlashGeometry
from repro.perf.clock import SimClock
from repro.perf.profiles import GRAFSOFT


def make_device(channels):
    geometry = FlashGeometry(page_bytes=4096, pages_per_block=4,
                             num_blocks=64, channels=channels)
    return FlashDevice(geometry, GRAFSOFT, SimClock())


def fill_blocks(device, blocks, pages=4):
    for block in blocks:
        for page in range(pages):
            device._write_silent(block, page, b"d" * 4096)


def test_geometry_validation():
    with pytest.raises(ValueError, match="channels"):
        FlashGeometry(4096, 4, 8, channels=0)
    with pytest.raises(ValueError, match="more channels"):
        FlashGeometry(4096, 4, 8, channels=16)


def test_channel_striping():
    geometry = FlashGeometry(4096, 4, 64, channels=8)
    assert geometry.channel_of(0) == 0
    assert geometry.channel_of(7) == 7
    assert geometry.channel_of(8) == 0


def test_single_channel_matches_aggregate_model():
    # channels=1 must reproduce the original aggregate-bandwidth charge.
    a = make_device(1)
    fill_blocks(a, range(8))
    a.read_pages([(b, p) for b in range(8) for p in range(4)])
    expected = GRAFSOFT.flash_read_latency_s + 32 * 4096 / GRAFSOFT.flash_read_bw
    assert a.clock.elapsed_s == pytest.approx(expected)


def test_striped_batch_reaches_aggregate_bandwidth():
    # A batch spread over all 8 channels transfers 8x faster than the same
    # bytes confined to one channel.
    spread = make_device(8)
    fill_blocks(spread, range(8))
    spread.read_pages([(b, p) for b in range(8) for p in range(4)])

    confined = make_device(8)
    fill_blocks(confined, [0, 8, 16, 24, 32, 40, 48, 56])
    confined.read_pages([(b, p) for b in (0, 8, 16, 24, 32, 40, 48, 56)
                         for p in range(4)])
    latency = GRAFSOFT.flash_read_latency_s
    spread_transfer = spread.clock.elapsed_s - latency
    confined_transfer = confined.clock.elapsed_s - latency
    assert confined_transfer == pytest.approx(8 * spread_transfer)


def test_single_page_read_uses_one_channel():
    one = make_device(1)
    eight = make_device(8)
    for device in (one, eight):
        device._write_silent(0, 0, b"x" * 4096)
    one.read_page(0, 0)
    eight.read_page(0, 0)
    # Same latency, 8x the transfer time on the 8-channel device's single
    # channel share.
    latency = GRAFSOFT.flash_read_latency_s
    assert (eight.clock.elapsed_s - latency) == pytest.approx(
        8 * (one.clock.elapsed_s - latency))


def test_striped_writes():
    spread = make_device(8)
    spread.write_pages([(b, 0, b"w" * 4096) for b in range(8)])
    confined = make_device(8)
    # Program order forces page sequence within each block, so use
    # same-channel blocks (0, 8, 16, ...) page 0 each.
    confined.write_pages([(b, 0, b"w" * 4096) for b in (0, 8, 16, 24, 32, 40, 48, 56)])
    latency = GRAFSOFT.flash_write_latency_s
    assert (confined.clock.elapsed_s - latency) == pytest.approx(
        8 * (spread.clock.elapsed_s - latency))
