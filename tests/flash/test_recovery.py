"""Mount recovery: the crash-at-every-op consistency sweep, FTL
out-of-band mapping recovery, and metadata-log / journal replay."""

import numpy as np
import pytest

from repro.flash.aoffs import SUPERBLOCK_BLOCKS, AppendOnlyFlashFS
from repro.flash.device import (
    FlashDevice,
    FlashError,
    FlashGeometry,
    PowerLossError,
)
from repro.flash.faults import CrashPlan
from repro.flash.filestore import SSDFileSystem
from repro.flash.ftl import SSD
from repro.perf.clock import SimClock
from repro.perf.profiles import GRAFBOOST, GRAFSOFT

GEOMETRY = FlashGeometry(page_bytes=4096, pages_per_block=8, num_blocks=64)
PAGE = GEOMETRY.page_bytes


def content(name: str, nbytes: int) -> bytes:
    rng = np.random.default_rng(abs(hash(name)) % 2**32)
    return rng.integers(0, 256, size=nbytes, dtype=np.uint8).tobytes()


# The scripted workload: create/append/seal/delete/rename/rename-overwrite,
# with multi-page appends and partial tails.  ``allowed`` maps every name
# that can exist at *any* point to the full contents it may hold.
A = content("a", 3 * PAGE + 100)
B = content("b", 2 * PAGE)
C = content("c", PAGE // 2)
D = content("d", PAGE + 7)
F = content("f", PAGE)
G = content("g", 2 * PAGE + 1)

H = {i: content(f"h{i}", PAGE + i * 37) for i in range(12)}
BIG = content("big", 6 * PAGE + 5)

ALLOWED = {
    "a": (A,), "b": (B,), "c": (C,), "d": (D,), "e": (D,),
    "f": (F, G), "g": (G,), "big": (BIG,),
    **{f"h{i}": (H[i],) for i in range(12)},
}


def run_script(fs) -> None:
    fs.append("a", A)
    fs.seal("a")
    fs.append("b", B[:PAGE])
    fs.append("c", C)
    fs.seal("c")
    fs.append("b", B[PAGE:])
    fs.delete("c")
    fs.append("d", D)
    fs.seal("d")
    fs.rename("d", "e")
    for i in range(12):  # churn: small sealed files, half deleted again
        fs.append(f"h{i}", H[i])
        fs.seal(f"h{i}")
    for i in range(0, 12, 2):
        fs.delete(f"h{i}")
    fs.append("big", BIG[:4 * PAGE])
    fs.append("big", BIG[4 * PAGE:])  # left unsealed: tail must not survive
    fs.append("f", F)
    fs.seal("f")
    fs.append("g", G)
    fs.seal("g")
    fs.rename("g", "f", overwrite=True)


def check_contents(fs) -> None:
    """Every surviving file holds a page-aligned prefix of an allowed
    content (exactly equal, if sealed) — torn/uncommitted data never
    surfaces."""
    for name in fs.list_files():
        assert name in ALLOWED, f"unexpected file {name!r} after crash"
        data = bytes(fs.read(name))
        if fs.is_sealed(name):
            assert any(data == full for full in ALLOWED[name]), \
                f"sealed {name!r} content corrupt"
        else:
            assert len(data) % PAGE == 0, \
                f"unsealed {name!r} kept a partial tail across power loss"
            assert any(data == full[:len(data)] for full in ALLOWED[name]), \
                f"unsealed {name!r} is not a prefix of any allowed content"


def check_aoffs_structure(fs) -> None:
    owner: dict[int, str] = {}
    for name in fs.list_files():
        f = fs._files[name]
        for block in f.blocks:
            assert block not in owner, \
                f"block {block} shared by {owner[block]!r} and {name!r}"
            assert block not in SUPERBLOCK_BLOCKS
            owner[block] = name
    journal = set(fs._journal_blocks)
    free = {block for _wear, block in fs._free_blocks}
    used = set(owner)
    assert not used & journal
    assert not free & (used | journal | set(SUPERBLOCK_BLOCKS))
    bad = {b for b in range(fs.geometry.num_blocks) if fs.device.is_bad(b)}
    accounted = used | journal | free | bad | set(SUPERBLOCK_BLOCKS)
    assert accounted == set(range(fs.geometry.num_blocks)), \
        f"leaked blocks: {set(range(fs.geometry.num_blocks)) - accounted}"


def check_ssd_fs_structure(fs) -> None:
    owner: dict[int, str] = {}
    for name in fs.list_files():
        f = fs._files[name]
        for lpn in f.lpns:
            assert lpn not in owner, \
                f"lpn {lpn} shared by {owner[lpn]!r} and {name!r}"
            assert lpn >= fs.meta_lpns, f"file lpn {lpn} inside metadata log"
            owner[lpn] = name
    data_lpns = set(range(fs.meta_lpns, fs.ssd.logical_pages))
    assert set(fs._free_lpns) == data_lpns - set(owner), \
        "free-lpn pool is not the exact complement of live files"


def total_ops_of(make_fs_and_run) -> int:
    """Run the script uninterrupted on an op-counting device."""
    device = make_fs_and_run(CrashPlan(crashes=0))
    return device.crashes.op_index


def aoffs_workload(plan: CrashPlan) -> FlashDevice:
    device = FlashDevice(GEOMETRY, GRAFBOOST, SimClock(), crashes=plan)
    run_script(AppendOnlyFlashFS(device, durable=True))
    return device


def ssd_workload(plan: CrashPlan) -> FlashDevice:
    device = FlashDevice(GEOMETRY, GRAFSOFT, SimClock(), crashes=plan)
    ssd = SSD(device, durable=True)
    # A small log forces several compactions inside the scripted workload,
    # so crash points land inside the ping-pong snapshot path too.
    run_script(SSDFileSystem(ssd, durable=True, meta_lpns=8))
    return device


def test_aoffs_crash_at_every_op_leaves_consistent_fs():
    total = total_ops_of(aoffs_workload)
    assert total > 100, "script too small to be a meaningful sweep"
    for op in range(total):
        plan = CrashPlan(at_ops=(op,), torn_write_p=float(op % 2))
        device = FlashDevice(GEOMETRY, GRAFBOOST, SimClock(), crashes=plan)
        try:
            run_script(AppendOnlyFlashFS(device, durable=True))
        except PowerLossError:
            pass
        else:
            pytest.fail(f"crash at op {op} never fired")
        fs = AppendOnlyFlashFS(device, durable=True)
        check_contents(fs)
        check_aoffs_structure(fs)
        # The recovered store stays fully usable.
        fs.append("post", content("post", PAGE + 3))
        fs.seal("post")
        assert fs.read("post") == content("post", PAGE + 3)


def test_ssd_fs_crash_at_every_op_leaves_consistent_fs():
    total = total_ops_of(ssd_workload)
    assert total > 100, "script too small to be a meaningful sweep"
    for op in range(total):
        plan = CrashPlan(at_ops=(op,), torn_write_p=float(op % 2))
        device = FlashDevice(GEOMETRY, GRAFSOFT, SimClock(), crashes=plan)
        try:
            ssd = SSD(device, durable=True)
            run_script(SSDFileSystem(ssd, durable=True, meta_lpns=8))
        except PowerLossError:
            pass
        else:
            pytest.fail(f"crash at op {op} never fired")
        ssd = SSD.mount(device)
        fs = SSDFileSystem.mount(ssd, meta_lpns=8)
        check_contents(fs)
        check_ssd_fs_structure(fs)
        fs.append("post", content("post", PAGE + 3))
        fs.seal("post")
        assert fs.read("post") == content("post", PAGE + 3)


def test_crash_during_recovery_is_survivable():
    """Power can die during the mount scan / journal replay itself; the
    next mount attempt starts over from the same durable state."""
    device = FlashDevice(GEOMETRY, GRAFBOOST, SimClock(),
                         crashes=CrashPlan(at_ops=(60, 75), torn_write_p=0.0))
    fs = AppendOnlyFlashFS(device, durable=True)
    try:
        run_script(fs)
    except PowerLossError:
        pass
    attempts = 0
    while True:
        attempts += 1
        try:
            fs = AppendOnlyFlashFS(device, durable=True)
            break
        except PowerLossError:
            continue
    check_contents(fs)
    check_aoffs_structure(fs)


# ------------------------------------------------------------- FTL recovery


def page_of(byte: int) -> bytes:
    return bytes([byte]) * PAGE


def test_ftl_mount_rebuilds_mapping_from_oob():
    device = FlashDevice(GEOMETRY, GRAFSOFT, SimClock())
    ssd = SSD(device, durable=True)
    for lpn in range(10):
        ssd.write_page(lpn, page_of(lpn))
    for lpn in range(5):  # overwrites: stale copies must lose at mount
        ssd.write_page(lpn, page_of(100 + lpn))
    remounted = SSD.mount(device)
    for lpn in range(5):
        assert bytes(remounted.read_page(lpn)) == page_of(100 + lpn)
    for lpn in range(5, 10):
        assert bytes(remounted.read_page(lpn)) == page_of(lpn)
    assert remounted.ftl.logical_pages == ssd.ftl.logical_pages


def test_ftl_mount_discards_torn_page_without_oob():
    device = FlashDevice(GEOMETRY, GRAFSOFT, SimClock(),
                         crashes=CrashPlan(at_ops=(4,), torn_write_p=1.0))
    ssd = SSD(device, durable=True)
    for lpn in range(4):
        ssd.write_page(lpn, page_of(lpn))
    with pytest.raises(PowerLossError):
        ssd.write_page(4, page_of(4))
    remounted = SSD.mount(device)
    for lpn in range(4):
        assert bytes(remounted.read_page(lpn)) == page_of(lpn)
    # The torn page carries no OOB record: the mapping never saw lpn 4.
    with pytest.raises(FlashError):
        remounted.read_page(4)


def test_non_durable_stores_reject_remount_recovery():
    device = FlashDevice(GEOMETRY, GRAFSOFT, SimClock())
    ssd = SSD(device)  # durable=False: no OOB records on flash
    ssd.write_page(0, page_of(1))
    remounted = SSD.mount(device)  # mounts, but finds nothing tagged
    with pytest.raises(FlashError):
        remounted.read_page(0)
    with pytest.raises(FlashError):
        SSDFileSystem(SSD(FlashDevice(GEOMETRY, GRAFSOFT, SimClock())),
                      durable=True)  # durable FS needs a durable FTL


def test_aoffs_recovery_stats_account_replay():
    device = FlashDevice(GEOMETRY, GRAFBOOST, SimClock())
    fs = AppendOnlyFlashFS(device, durable=True)
    run_script(fs)
    remounted = AppendOnlyFlashFS(device, durable=True)
    assert remounted.recovery.mounts == 1
    assert remounted.recovery.replayed_records > 0
    assert remounted.recovery.recovered_files == len(remounted.list_files())
    for name in fs.list_files():
        recovered = remounted.read(name)
        if fs.is_sealed(name):
            assert recovered == fs.read(name)
        else:
            # Unflushed tail bytes are volatile by contract: a remount keeps
            # exactly the flushed page-aligned prefix.
            assert recovered == fs.read(name)[:len(recovered)]
            assert len(recovered) % PAGE == 0
