"""Power-loss injection: crash plans, torn writes, the PowerLossError
contract, typed out-of-space errors, and atomic rename-overwrite."""

import numpy as np
import pytest

from repro.flash.aoffs import AppendOnlyFlashFS
from repro.flash.device import (
    FlashDevice,
    FlashError,
    FlashGeometry,
    FlashOutOfSpaceError,
    PowerLossError,
)
from repro.flash.faults import CrashPlan, PowerLossInjector
from repro.flash.filestore import SSDFileSystem
from repro.flash.ftl import SSD
from repro.perf.clock import SimClock
from repro.perf.profiles import GRAFBOOST, GRAFSOFT

GEOMETRY = FlashGeometry(page_bytes=4096, pages_per_block=8, num_blocks=64)


def raw_device(crashes=None, geometry=GEOMETRY):
    return FlashDevice(geometry, GRAFBOOST, SimClock(), crashes=crashes)


def ssd_device(crashes=None, geometry=GEOMETRY):
    return FlashDevice(geometry, GRAFSOFT, SimClock(), crashes=crashes)


def page_of(byte: int, geometry=GEOMETRY) -> bytes:
    return bytes([byte]) * geometry.page_bytes


# ---------------------------------------------------------------------- plans


def test_crash_plan_parse_spec():
    plan = CrashPlan.parse("seed=3,ops=7,first=100,gap=500,torn=0.25")
    assert plan.seed == 3
    assert plan.crashes == 7
    assert plan.first_op == 100
    assert plan.mean_gap == 500
    assert plan.torn_write_p == 0.25
    assert CrashPlan.parse("at=10/250/9000").at_ops == (10, 250, 9000)
    assert CrashPlan.parse("") == CrashPlan()


def test_crash_plan_parse_rejects_garbage():
    with pytest.raises(ValueError):
        CrashPlan.parse("seed")
    with pytest.raises(ValueError):
        CrashPlan.parse("bogus=1")
    with pytest.raises(ValueError):
        CrashPlan(torn_write_p=1.5)
    with pytest.raises(ValueError):
        CrashPlan(mean_gap=0)


def test_crash_schedule_is_deterministic_and_bounded():
    a = CrashPlan(seed=11, crashes=6, first_op=40, mean_gap=100.0)
    assert a.schedule() == a.schedule()
    assert a.schedule() != CrashPlan(seed=12, crashes=6, first_op=40,
                                     mean_gap=100.0).schedule()
    assert all(op >= a.first_op for op in a.schedule())
    assert a.schedule() == sorted(a.schedule())
    # Explicit op indices override the seeded drawing entirely.
    assert CrashPlan(seed=11, at_ops=(5, 2, 5)).schedule() == [2, 5]
    assert CrashPlan(crashes=0).schedule() == []


def test_power_loss_fires_at_exact_op_index():
    dev = raw_device(crashes=CrashPlan(at_ops=(3,), torn_write_p=0.0))
    for page in range(3):  # ops 0..2
        dev.write_page(2, page, page_of(page))
    with pytest.raises(PowerLossError) as exc:
        dev.write_page(2, 3, page_of(3))  # op 3: interrupted, not programmed
    assert exc.value.op_index == 3
    assert dev.crashes.stats.power_losses == 1
    # Schedule drained: the device now runs forever.
    dev.write_page(2, 3, page_of(3))
    dev.write_page(2, 4, page_of(4))


def test_power_loss_is_not_catchable_as_exception():
    """PowerLossError must sail through ``except Exception`` / ``except
    FlashError`` cleanup paths — only the crash harness may catch it."""
    assert not issubclass(PowerLossError, Exception)
    assert not issubclass(PowerLossError, FlashError)
    dev = raw_device(crashes=CrashPlan(at_ops=(0,)))
    with pytest.raises(PowerLossError):
        try:
            dev.write_page(0, 0, page_of(1))
        except Exception:  # noqa: BLE001 - the point of the test
            pytest.fail("PowerLossError was swallowed by `except Exception`")


def test_batched_write_stops_op_counter_at_the_crash():
    """Ops after the power cut never execute, so a batch hit must not
    advance the counter past the interrupted op — later scheduled points
    each fire on their own."""
    dev = raw_device(crashes=CrashPlan(at_ops=(2, 4), torn_write_p=0.0))
    writes = [(1, page, page_of(page)) for page in range(8)]
    with pytest.raises(PowerLossError) as exc:
        dev.write_pages(writes)
    assert exc.value.op_index == 2
    assert dev.crashes.op_index == 3
    # The prefix before the interrupted op committed; the rest did not.
    assert bytes(dev.read_page(1, 0)) == page_of(0)  # op counter: 3 -> 4 fires
    assert dev.crashes.stats.power_losses == 1
    with pytest.raises(PowerLossError):
        dev.read_page(1, 1)
    assert dev.crashes.stats.power_losses == 2


def test_torn_write_commits_prefix_plus_garbage_without_oob():
    dev = raw_device(crashes=CrashPlan(at_ops=(0,), torn_write_p=1.0))
    with pytest.raises(PowerLossError):
        dev.write_page(5, 0, page_of(0xAB))
    assert dev.crashes.stats.torn_writes == 1
    torn = bytes(dev.read_page(5, 0))
    assert len(torn) == GEOMETRY.page_bytes
    assert torn != page_of(0xAB)          # garbage tail somewhere
    assert dev.read_oob(5, 0) is None     # torn pages never carry OOB
    # Untorn crash (torn=0): the page simply never programmed.
    dev2 = raw_device(crashes=CrashPlan(at_ops=(0,), torn_write_p=0.0))
    with pytest.raises(PowerLossError):
        dev2.write_page(5, 0, page_of(0xAB))
    with pytest.raises(FlashError):
        dev2.read_page(5, 0)


def test_injector_survives_across_injector_state_not_plan():
    """Two identical plans on identical workloads crash identically."""
    outcomes = []
    for _ in range(2):
        dev = raw_device(crashes=CrashPlan(seed=5, crashes=3, first_op=4,
                                           mean_gap=10.0))
        fired = []
        for page in range(GEOMETRY.pages_per_block):
            try:
                dev.write_page(1, page, page_of(page))
            except PowerLossError as e:
                fired.append(e.op_index)
        outcomes.append((fired, dev.crashes.stats.as_dict()))
    assert outcomes[0] == outcomes[1]


def test_injector_requires_plan_like_object():
    injector = PowerLossInjector(CrashPlan(at_ops=(1,)), device=None)
    assert injector.advance(1) is None
    assert not injector.exhausted
    assert injector.advance(1) == 0
    with pytest.raises(PowerLossError):
        injector.fire("unit test")
    assert injector.exhausted


# -------------------------------------------------------------- out of space


def test_aoffs_raises_typed_out_of_space_when_full():
    tiny = FlashGeometry(page_bytes=4096, pages_per_block=4, num_blocks=8)
    fs = AppendOnlyFlashFS(FlashDevice(tiny, GRAFBOOST, SimClock()))
    with pytest.raises(FlashOutOfSpaceError) as exc:
        for i in range(tiny.num_blocks + 1):
            fs.append(f"f{i}", page_of(i, tiny))  # block-per-file: one each
    assert issubclass(FlashOutOfSpaceError, FlashError)
    assert "space" in str(exc.value).lower() or "full" in str(exc.value).lower()


def test_ssd_fs_raises_typed_out_of_space_when_full():
    tiny = FlashGeometry(page_bytes=4096, pages_per_block=4, num_blocks=8)
    fs = SSDFileSystem(SSD(FlashDevice(tiny, GRAFSOFT, SimClock())))
    with pytest.raises(FlashOutOfSpaceError):
        for i in range(200):
            fs.append("big", page_of(i % 256, tiny))


def test_ftl_gc_exhaustion_raises_typed_out_of_space():
    tiny = FlashGeometry(page_bytes=4096, pages_per_block=4, num_blocks=8)
    ssd = SSD(FlashDevice(tiny, GRAFSOFT, SimClock()))
    for lpn in range(ssd.logical_pages):
        ssd.write_page(lpn, page_of(lpn % 256, tiny))
    # Simulate the writable pool dying (every spare block retired): with
    # every surviving block fully live, GC has nothing to reclaim.
    for block in range(tiny.num_blocks):
        if ssd.device.valid_pages(block) < tiny.pages_per_block:
            ssd.device._retire(block)
    ssd.ftl._free_blocks.clear()
    ssd.ftl._active_block = None
    with pytest.raises(FlashOutOfSpaceError):
        ssd.write_page(0, page_of(1, tiny))


# --------------------------------------------------------- rename(overwrite)


@pytest.mark.parametrize("make_fs", [
    lambda: AppendOnlyFlashFS(raw_device()),
    lambda: SSDFileSystem(SSD(ssd_device())),
], ids=["aoffs", "ssd_fs"])
def test_rename_still_refuses_existing_target_by_default(make_fs):
    fs = make_fs()
    fs.append("a", b"aaa")
    fs.seal("a")
    fs.append("b", b"bbb")
    fs.seal("b")
    with pytest.raises(FileExistsError):
        fs.rename("a", "b")
    assert fs.read("b") == b"bbb"


@pytest.mark.parametrize("make_fs", [
    lambda: AppendOnlyFlashFS(raw_device()),
    lambda: SSDFileSystem(SSD(ssd_device())),
], ids=["aoffs", "ssd_fs"])
def test_rename_overwrite_atomically_replaces(make_fs):
    fs = make_fs()
    fs.append("victim", page_of(1) * 2)
    fs.seal("victim")
    fs.append("staging", b"fresh contents")
    fs.seal("staging")
    fs.rename("staging", "victim", overwrite=True)
    assert not fs.exists("staging")
    assert fs.read("victim") == b"fresh contents"
    # The replaced file's space returns to the pool.
    fs.rename("victim", "victim2")
    assert fs.read("victim2") == b"fresh contents"


def test_rename_overwrite_survives_remount():
    fs = AppendOnlyFlashFS(raw_device(), durable=True)
    fs.append("victim", page_of(7))
    fs.seal("victim")
    fs.append("staging", b"new")
    fs.seal("staging")
    fs.rename("staging", "victim", overwrite=True)
    remounted = AppendOnlyFlashFS(fs.device, durable=True)
    assert remounted.read("victim") == b"new"
    assert not remounted.exists("staging")


def test_rename_overwrite_survives_remount_ssd():
    fs = SSDFileSystem(SSD(ssd_device(), durable=True), durable=True)
    fs.append("victim", page_of(7))
    fs.seal("victim")
    fs.append("staging", b"new")
    fs.seal("staging")
    fs.rename("staging", "victim", overwrite=True)
    ssd = SSD.mount(fs.device)
    remounted = SSDFileSystem.mount(ssd)
    assert remounted.read("victim") == b"new"
    assert not remounted.exists("staging")
