"""Append-Only Flash File System: the paper's AOFFS (§IV-A)."""

import numpy as np
import pytest

from repro.flash.device import FlashError


def test_append_read_roundtrip(aoffs):
    aoffs.append("f", b"hello ")
    aoffs.append("f", b"world")
    assert aoffs.read("f") == b"hello world"
    assert aoffs.size("f") == 11


def test_read_ranges(aoffs):
    data = bytes(range(256)) * 100  # spans several pages
    aoffs.append("f", data)
    assert aoffs.read("f", 0, 10) == data[:10]
    assert aoffs.read("f", 5000, 3000) == data[5000:8000]
    assert aoffs.read("f", len(data) - 7) == data[-7:]
    assert aoffs.read("f", 100, 0) == b""


def test_read_out_of_range(aoffs):
    aoffs.append("f", b"abc")
    with pytest.raises(ValueError):
        aoffs.read("f", 0, 10)
    with pytest.raises(ValueError):
        aoffs.read("f", -1, 1)


def test_tail_visible_before_seal(aoffs):
    aoffs.append("f", b"tiny")  # smaller than a page: stays in tail buffer
    assert aoffs.read("f") == b"tiny"
    aoffs.seal("f")
    assert aoffs.read("f") == b"tiny"


def test_seal_makes_immutable(aoffs):
    aoffs.append("f", b"x")
    aoffs.seal("f")
    aoffs.seal("f")  # idempotent
    with pytest.raises(FlashError, match="sealed"):
        aoffs.append("f", b"more")


def test_append_only_no_random_update_api(aoffs):
    # AOFFS deliberately exposes no in-place write; the attribute must not
    # exist (SSDFileSystem has it, AOFFS must not).
    assert not hasattr(aoffs, "write_at")


def test_create_conflicts(aoffs):
    aoffs.create("f")
    with pytest.raises(FileExistsError):
        aoffs.create("f")


def test_missing_file(aoffs):
    with pytest.raises(FileNotFoundError):
        aoffs.read("ghost")
    with pytest.raises(FileNotFoundError):
        aoffs.delete("ghost")
    assert not aoffs.exists("ghost")


def test_delete_returns_space(aoffs):
    free_before = aoffs.free_bytes
    aoffs.append("f", b"z" * 20000)
    assert aoffs.free_bytes < free_before
    aoffs.delete("f")
    assert aoffs.free_bytes == free_before
    assert not aoffs.exists("f")


def test_delete_erases_blocks(aoffs):
    device = aoffs.device
    erased_before = device.total_blocks_erased
    aoffs.append("f", b"z" * 20000)
    aoffs.delete("f")
    assert device.total_blocks_erased > erased_before


def test_no_write_amplification(aoffs):
    # Block-per-file allocation means AOFFS never relocates data: pages
    # programmed == pages of data appended (plus seal padding).
    data = b"q" * (aoffs.geometry.page_bytes * 10)
    aoffs.append("f", data)
    aoffs.seal("f")
    assert aoffs.device.total_pages_written == 10


def test_array_roundtrip(aoffs):
    array = np.arange(5000, dtype=np.uint64)
    aoffs.append_array("a", array)
    aoffs.seal("a")
    back = aoffs.read_array("a", np.uint64)
    assert np.array_equal(back, array)
    middle = aoffs.read_array("a", np.uint64, start_item=100, count=50)
    assert np.array_equal(middle, array[100:150])


def test_stream_chunks(aoffs):
    data = bytes(range(256)) * 64
    aoffs.append("f", data)
    chunks = list(aoffs.stream("f", 1000))
    assert b"".join(chunks) == data
    assert all(len(c) <= 1000 for c in chunks)
    with pytest.raises(ValueError):
        list(aoffs.stream("f", 0))


def test_rename(aoffs):
    aoffs.append("old", b"payload")
    aoffs.rename("old", "new")
    assert aoffs.read("new") == b"payload"
    assert not aoffs.exists("old")
    aoffs.append("other", b"x")
    with pytest.raises(FileExistsError):
        aoffs.rename("other", "new")


def test_out_of_space(aoffs):
    capacity = aoffs.free_bytes
    with pytest.raises(FlashError, match="out of space"):
        aoffs.append("big", b"\xff" * (capacity + aoffs.geometry.block_bytes))


def test_list_files(aoffs):
    aoffs.append("b", b"1")
    aoffs.append("a", b"2")
    assert aoffs.list_files() == ["a", "b"]


def test_wear_leveled_allocation(aoffs):
    # Creating and deleting files repeatedly must spread erases across the
    # whole device instead of hammering the same blocks (§II-B): with
    # least-erased-first allocation, max and min erase counts stay within
    # one cycle of each other.
    block_bytes = aoffs.geometry.block_bytes
    for round_index in range(4 * aoffs.geometry.num_blocks // 4):
        aoffs.append("scratch", b"w" * (2 * block_bytes))
        aoffs.delete("scratch")
    counts = aoffs.device.erase_counts
    assert max(counts) - min(counts) <= 1
    assert max(counts) >= 1
