"""FlashSan: every invariant fires when violated, and a sanitized run of
the real stack is clean and bit-identical to an unsanitized one.

The device model's own validation rejects API misuse before the sanitizer
ever sees it, so the violation tests simulate *bookkeeping bugs*: they
corrupt device/FTL internals directly (`_page_state`, `_data`, `_oob`,
`_next_program_page`, free pools, the clock) exactly as a regression in
the stack would, then drive the public API over the damage.
"""

import heapq

import pytest

from repro.flash.aoffs import AppendOnlyFlashFS
from repro.flash.device import (
    PAGE_ERASED,
    PAGE_VALID,
    FlashDevice,
    FlashGeometry,
)
from repro.flash.faults import CrashPlan
from repro.flash.ftl import SSD, PageMappedFTL
from repro.flash.sanitizer import FlashSanitizer, SanitizerError, sanitizer_enabled
from repro.perf.clock import SimClock
from repro.perf.profiles import GRAFBOOST, GRAFSOFT

GEOMETRY = FlashGeometry(page_bytes=4096, pages_per_block=8, num_blocks=64)


def make_device(**kwargs):
    kwargs.setdefault("sanitize", True)
    return FlashDevice(GEOMETRY, GRAFBOOST, SimClock(), **kwargs)


def page_of(byte: int) -> bytes:
    return bytes([byte]) * GEOMETRY.page_bytes


# ------------------------------------------------------------------ enablement


def test_sanitizer_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    device = FlashDevice(GEOMETRY, GRAFBOOST, SimClock())
    assert device.sanitizer is None
    assert not sanitizer_enabled()


def test_env_var_enables_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert sanitizer_enabled()
    device = FlashDevice(GEOMETRY, GRAFBOOST, SimClock())
    assert isinstance(device.sanitizer, FlashSanitizer)
    # An explicit argument beats the environment in both directions.
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert FlashDevice(GEOMETRY, GRAFBOOST, SimClock(),
                       sanitize=True).sanitizer is not None
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert FlashDevice(GEOMETRY, GRAFBOOST, SimClock(),
                       sanitize=False).sanitizer is None


def test_sanitizer_error_is_not_a_flash_error():
    from repro.flash.device import FlashError
    assert not issubclass(SanitizerError, FlashError)
    assert issubclass(SanitizerError, Exception)


# ------------------------------------------------------------- program checks


def test_double_program_detected():
    device = make_device()
    device.write_page(0, 0, page_of(1))
    # Simulate state-matrix corruption: the device forgets the page was
    # programmed, so its own erase-before-write check passes.
    device._page_state[0, 0] = PAGE_ERASED
    device._next_program_page[0] = 0
    with pytest.raises(SanitizerError, match="double program"):
        device.write_page(0, 0, page_of(2))


def test_program_to_invalidated_page_detected():
    device = make_device()
    device.write_page(0, 0, page_of(1))
    device.invalidate_page(0, 0)
    device._page_state[0, 0] = PAGE_ERASED
    device._next_program_page[0] = 0
    with pytest.raises(SanitizerError, match="non-erased"):
        device.write_page(0, 0, page_of(2))


def test_out_of_order_program_detected():
    device = make_device()
    device.write_page(0, 0, page_of(1))
    # Corrupt the device's program cursor; pages 1.. are still erased so
    # only the shadow cursor knows page 1 was skipped.
    device._next_program_page[0] = 2
    with pytest.raises(SanitizerError, match="out-of-order"):
        device.write_page(0, 2, page_of(2))


# ---------------------------------------------------------------- read checks


def test_read_of_never_written_page_detected():
    device = make_device()
    # Conjure a valid page out of nowhere (state-matrix corruption).
    device._page_state[3, 0] = PAGE_VALID
    device._data[(3, 0)] = page_of(9)
    with pytest.raises(SanitizerError, match="never-written"):
        device.read_page(3, 0)


def test_content_divergence_detected():
    device = make_device()
    device.write_page(0, 0, page_of(1))
    device._data[(0, 0)] = page_of(2)  # bit-rot outside the fault model
    with pytest.raises(SanitizerError, match="diverged"):
        device.read_page(0, 0)


def test_content_divergence_detected_on_batched_read():
    device = make_device()
    device.write_pages([(0, 0, page_of(1)), (0, 1, page_of(2))])
    device._data[(0, 1)] = page_of(7)
    with pytest.raises(SanitizerError, match="diverged"):
        device.read_pages([(0, 0), (0, 1)])


def test_oob_divergence_detected():
    device = make_device()
    device.write_page(0, 0, page_of(1), oob=b"lpn=42")
    device._oob[(0, 0)] = b"lpn=43"
    with pytest.raises(SanitizerError, match="OOB"):
        device.read_oob(0, 0)
    device2 = make_device()
    device2.write_page(0, 0, page_of(1))  # no OOB programmed
    device2._oob[(0, 0)] = b"ghost"
    with pytest.raises(SanitizerError, match="OOB"):
        device2.read_oob(0, 0)


# --------------------------------------------------------------- erase checks


def test_erase_of_ftl_mapped_pages_detected():
    device = make_device()
    ftl = PageMappedFTL(device)
    ftl.write(0, page_of(1))
    block = ftl._map[0][0]
    with pytest.raises(SanitizerError, match="still mapped"):
        device.erase_block(block)


def test_erase_of_live_aoffs_file_detected():
    device = make_device()
    fs = AppendOnlyFlashFS(device)
    fs.append("f", page_of(1))
    fs.seal("f")
    block = fs._files["f"].blocks[0]
    with pytest.raises(SanitizerError, match="owned by live"):
        device.erase_block(block)


def test_erase_of_aoffs_journal_and_superblock_detected():
    device = make_device()
    fs = AppendOnlyFlashFS(device, durable=True)
    fs.append("f", page_of(1))
    fs.seal("f")
    with pytest.raises(SanitizerError, match="journal"):
        device.erase_block(fs._journal_blocks[0])
    with pytest.raises(SanitizerError, match="superblock"):
        device.erase_block(fs._sb_active)


def test_erase_of_reclaimed_block_is_clean():
    device = make_device()
    fs = AppendOnlyFlashFS(device)
    fs.append("f", page_of(1))
    fs.seal("f")
    block = fs._files["f"].blocks[0]
    fs.delete("f")  # delete erases the block back into the pool — legal
    assert device.sanitizer._state[block].any() == False  # noqa: E712


# ----------------------------------------------------------- free-pool audits


def test_free_pool_drift_detected():
    device = make_device()
    ftl = PageMappedFTL(device)
    ftl.write(0, page_of(1))
    live_block = ftl._map[0][0]
    # A bookkeeping bug returns a block holding live data to the free pool.
    heapq.heappush(ftl._free_blocks, live_block)
    with pytest.raises(SanitizerError, match="free"):
        ftl._sanity_check()


def test_map_reverse_disagreement_detected():
    device = make_device()
    ftl = PageMappedFTL(device)
    ftl.write(0, page_of(1))
    ftl._reverse[ftl._map[0]] = 1  # reverse map points at the wrong lpn
    with pytest.raises(SanitizerError, match="reverse"):
        ftl._sanity_check()


def test_spare_accounting_drift_detected():
    device = make_device()
    ftl = PageMappedFTL(device)
    ftl.write(0, page_of(1))
    ftl.spare_blocks_remaining += 1
    with pytest.raises(SanitizerError, match="spare"):
        ftl._sanity_check()


def test_map_to_unprogrammed_page_detected():
    device = make_device()
    ftl = PageMappedFTL(device)
    ftl.write(0, page_of(1))
    ftl._map[1] = (5, 0)  # maps a page nothing ever programmed
    ftl._reverse[(5, 0)] = 1
    with pytest.raises(SanitizerError, match="never saw"):
        ftl._sanity_check()


# --------------------------------------------------------------- clock checks


def test_zero_cost_device_op_detected(monkeypatch):
    device = make_device()
    device.write_page(0, 0, page_of(1))
    monkeypatch.setattr(device.clock, "charge",
                        lambda *args, **kwargs: None)
    with pytest.raises(SanitizerError, match="zero-cost"):
        device.read_page(0, 0)


def test_non_monotonic_clock_detected():
    device = make_device()
    device.write_page(0, 0, page_of(1))
    device.clock.elapsed_s -= 1e-3
    with pytest.raises(SanitizerError, match="backwards"):
        device.read_page(0, 0)


# --------------------------------------------------------- clean-run positive


def test_normal_ftl_workload_is_clean_through_gc():
    device = make_device()
    ftl = PageMappedFTL(device, gc_reserve_blocks=2)
    # Overwrite a small working set until GC must run several times.
    for round_ in range(14):
        ftl.write_many([(lpn, page_of((round_ + lpn) % 251))
                        for lpn in range(64)])
    for lpn in range(0, 64, 3):
        ftl.trim(lpn)
    ftl.write_many([(lpn, page_of(lpn % 251)) for lpn in range(64)])
    assert ftl.gc_runs > 0
    for lpn in range(64):
        assert ftl.read(lpn) == page_of(lpn % 251)
    sanitizer = device.sanitizer
    sanitizer.check_ftl(ftl)
    assert sanitizer.ftl_checks > 0
    assert sanitizer.pages_checked >= 64


def test_normal_aoffs_workload_is_clean():
    device = make_device()
    fs = AppendOnlyFlashFS(device, durable=True)
    for i in range(4):
        fs.append(f"f{i}", page_of(i + 1) * 3)
        fs.seal(f"f{i}")
    fs.delete("f1")
    fs.rename("f2", "f0", overwrite=True)  # erases f0's old blocks
    assert fs.read("f0") == page_of(3) * 3
    assert device.sanitizer.pages_checked > 0


def test_durable_ftl_mount_is_clean():
    device = make_device()
    ftl = PageMappedFTL(device, durable=True)
    ftl.write_many([(lpn, page_of(lpn + 1)) for lpn in range(20)])
    ftl.write(3, page_of(99))  # leave an invalidated old copy behind
    remounted = PageMappedFTL.mount(device)
    assert remounted.device.sanitizer is device.sanitizer
    assert remounted.read(3) == page_of(99)
    remounted._sanity_check()


def test_crash_and_torn_write_recovery_is_clean():
    device = FlashDevice(GEOMETRY, GRAFSOFT, SimClock(),
                         crashes=CrashPlan(at_ops=(25,), torn_write_p=1.0),
                         sanitize=True)
    ssd = SSD(device, durable=True)
    from repro.flash.device import PowerLossError
    with pytest.raises(PowerLossError):
        for lpn in range(40):
            ssd.ftl.write(lpn, page_of(lpn + 1))
    # Remount replays OOB records past the torn page; the sanitizer rides
    # along through the whole scan and must stay silent.
    recovered = SSD.mount(device)
    surviving = [lpn for lpn in range(40) if lpn in recovered.ftl._map]
    assert surviving
    for lpn in surviving:
        assert recovered.ftl.read(lpn) == page_of(lpn + 1)
    recovered.ftl._sanity_check()
