"""SSD-backed file system: interface parity with AOFFS plus in-place writes."""

import numpy as np
import pytest

from repro.flash.device import FlashError


def test_append_read_roundtrip(ssd_fs):
    ssd_fs.append("f", b"abc")
    ssd_fs.append("f", b"def")
    assert ssd_fs.read("f") == b"abcdef"


def test_multi_page_file(ssd_fs):
    data = bytes(range(256)) * 80
    ssd_fs.append("f", data)
    ssd_fs.seal("f")
    assert ssd_fs.read("f") == data
    assert ssd_fs.read("f", 7000, 2000) == data[7000:9000]


def test_array_roundtrip(ssd_fs):
    array = np.linspace(0, 1, 3000)
    ssd_fs.append_array("a", array)
    ssd_fs.seal("a")
    assert np.allclose(ssd_fs.read_array("a", np.float64), array)


def test_write_at_in_place_update(ssd_fs):
    page = ssd_fs.page_bytes
    ssd_fs.append("f", b"\x00" * (page * 3))
    ssd_fs.write_at("f", page + 10, b"PATCH")
    content = ssd_fs.read("f")
    assert content[page + 10:page + 15] == b"PATCH"
    assert content[:page + 10] == b"\x00" * (page + 10)


def test_write_at_spanning_pages(ssd_fs):
    page = ssd_fs.page_bytes
    ssd_fs.append("f", b"\x00" * (page * 2))
    blob = b"R" * 100
    ssd_fs.write_at("f", page - 50, blob)
    assert ssd_fs.read("f", page - 50, 100) == blob


def test_write_at_outside_flushed_region(ssd_fs):
    ssd_fs.append("f", b"tiny")  # still in the tail buffer
    with pytest.raises(ValueError):
        ssd_fs.write_at("f", 0, b"x")


def test_write_at_causes_ftl_garbage(ssd_fs):
    page = ssd_fs.page_bytes
    ssd_fs.append("f", b"\x00" * (page * 2))
    user_writes_before = ssd_fs.ssd.ftl.user_pages_written
    ssd_fs.write_at("f", 0, b"y" * page)
    assert ssd_fs.ssd.ftl.user_pages_written == user_writes_before + 1


def test_delete_trims_and_frees(ssd_fs):
    free_before = ssd_fs.free_bytes
    ssd_fs.append("f", b"z" * 50000)
    ssd_fs.delete("f")
    assert ssd_fs.free_bytes == free_before
    with pytest.raises(FileNotFoundError):
        ssd_fs.read("f")


def test_seal_then_append_rejected(ssd_fs):
    ssd_fs.append("f", b"x")
    ssd_fs.seal("f")
    with pytest.raises(FlashError, match="sealed"):
        ssd_fs.append("f", b"y")


def test_stream(ssd_fs):
    data = b"m" * 10000
    ssd_fs.append("f", data)
    assert b"".join(ssd_fs.stream("f", 3000)) == data


def test_rename(ssd_fs):
    ssd_fs.append("a", b"1")
    ssd_fs.rename("a", "b")
    assert ssd_fs.read("b") == b"1"


def test_interface_parity_with_aoffs(ssd_fs, aoffs):
    # The sort-reduce and graph layers use these members on either store.
    for member in ("create", "append", "seal", "read", "stream", "delete",
                   "exists", "size", "list_files", "append_array",
                   "read_array", "rename", "device"):
        assert hasattr(ssd_fs, member), member
        assert hasattr(aoffs, member), member
