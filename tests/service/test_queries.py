"""Batched point queries: shared passes, solo-equality, parent determinism."""

import numpy as np
import pytest

from repro.service.queries import run_point_batch


def run_queries(service, queries):
    return run_point_batch(service.graph, service.system.backend,
                           service.system.clock, queries)


def test_batched_equals_one_at_a_time(make_service):
    queries = [
        ("q1", "neighborhood", {"v": 0, "depth": 2}),
        ("q2", "neighborhood", {"v": 3, "depth": 1}),
        ("q3", "path", {"src": 0, "dst": 5}),
        ("q4", "path", {"src": 1, "dst": 4}),
        ("q5", "neighborhood", {"v": 7, "depth": 3}),
    ]
    batched = run_queries(make_service(), queries)
    for query in queries:
        solo = run_queries(make_service(), [query])
        assert batched[query[0]] == solo[query[0]]


def test_neighborhood_matches_reference_bfs(make_service, service_graph):
    service = make_service()
    result = run_queries(service, [("q", "neighborhood",
                                    {"v": 2, "depth": 2})])["q"]
    # Reference: in-memory BFS over the CSR arrays.
    reach = {2}
    frontier = {2}
    for _ in range(2):
        nxt = set()
        for v in frontier:
            nxt.update(int(d) for d in service_graph.targets[
                service_graph.offsets[v]:service_graph.offsets[v + 1]])
        frontier = nxt - reach
        reach |= frontier
    assert result["count"] == len(reach)


def test_path_is_a_real_shortest_path(make_service, service_graph):
    service = make_service()
    result = run_queries(service, [("q", "path", {"src": 0, "dst": 9})])["q"]
    assert result["found"]
    path = result["path"]
    assert path[0] == 0 and path[-1] == 9
    # Every hop must be a real edge.
    for a, b in zip(path, path[1:]):
        targets = service_graph.targets[
            service_graph.offsets[a]:service_graph.offsets[a + 1]]
        assert b in targets
    # And no shorter path may exist (reference BFS distance).
    dist = {0: 0}
    frontier = [0]
    while frontier and 9 not in dist:
        nxt = []
        for v in frontier:
            for d in service_graph.targets[
                    service_graph.offsets[v]:service_graph.offsets[v + 1]]:
                if int(d) not in dist:
                    dist[int(d)] = dist[v] + 1
                    nxt.append(int(d))
        frontier = nxt
    assert result["hops"] == dist[9]


def test_path_to_self(make_service):
    result = run_queries(make_service(), [("q", "path",
                                           {"src": 4, "dst": 4})])["q"]
    assert result["found"] and result["path"] == [4] and result["hops"] == 0


def test_path_depth_cap_gives_not_found(make_service):
    # cap=0 forbids taking any edge: unreachable unless src == dst.
    result = run_queries(make_service(), [("q", "path",
                                           {"src": 0, "dst": 9,
                                            "cap": 0})])["q"]
    assert not result["found"] and result["path"] == []


def test_batch_shares_flash_reads(make_service):
    queries = [("q1", "neighborhood", {"v": 0, "depth": 2}),
               ("q2", "neighborhood", {"v": 1, "depth": 2}),
               ("q3", "neighborhood", {"v": 2, "depth": 2})]
    batch_service = make_service()
    base = batch_service.system.clock.bytes_moved("flash")
    run_queries(batch_service, queries)
    batched_bytes = batch_service.system.clock.bytes_moved("flash") - base
    solo_bytes = 0
    for query in queries:
        service = make_service()
        base = service.system.clock.bytes_moved("flash")
        run_queries(service, [query])
        solo_bytes += service.system.clock.bytes_moved("flash") - base
    assert batched_bytes < solo_bytes


def test_vertex_out_of_range_is_per_query_error(make_service):
    # A bad query is its own failure domain: it gets an error result, the
    # rest of the batch completes untouched.
    service = make_service()
    results = run_queries(service, [
        ("bad", "neighborhood", {"v": service.num_vertices, "depth": 1}),
        ("good", "neighborhood", {"v": 0, "depth": 1}),
    ])
    assert "out of range" in results["bad"]["error"]
    assert results["good"]["count"] >= 1 and "error" not in results["good"]
    solo = run_queries(make_service(), [("good", "neighborhood",
                                         {"v": 0, "depth": 1})])
    assert results["good"] == solo["good"]


def test_missing_param_is_per_query_error(make_service):
    results = run_queries(make_service(), [
        ("q", "path", {"src": 0}),          # no dst
    ])
    assert results["q"]["error"].startswith("KeyError")


def test_results_are_json_safe(make_service):
    import json

    results = run_queries(make_service(), [
        ("q1", "neighborhood", {"v": 0, "depth": 1}),
        ("q2", "path", {"src": 0, "dst": 5}),
    ])
    round_tripped = json.loads(json.dumps(results))
    assert round_tripped == results
    assert all(isinstance(v, int)
               for v in results["q1"]["vertices"])
    assert not any(isinstance(v, np.integer)
                   for v in results["q2"]["path"])
