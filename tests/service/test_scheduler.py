"""Scheduler end-to-end: demo workload, determinism, crash durability."""

import numpy as np
import pytest

from repro.flash.faults import CrashPlan
from repro.service import (
    GraphService,
    JobSpec,
    TenantQuota,
    demo_quotas,
    demo_workload,
    parse_job_spec,
)
from repro.service.scheduler import JOURNAL_FILE


def run_demo(make_service, **kwargs):
    service = make_service(quotas=demo_quotas(), **kwargs)
    service.submit_all(demo_workload())
    return service.run()


# ------------------------------------------------------------------ the demo

def test_demo_workload_completes(make_service):
    report = run_demo(make_service)
    # 2 analytics + 6 point queries complete; 1 submission rejected.
    assert len(report.jobs) == 9
    assert len(report.jobs_by_state("done")) == 8
    assert len(report.jobs_by_state("rejected")) == 1
    assert report.rejections == 1
    rejected = report.jobs_by_state("rejected")[0]
    assert rejected.spec.kind == "bfs" and rejected.spec.tenant == "tB"


def test_demo_trace_shape(make_service):
    report = run_demo(make_service)
    assert len(report.trace) == 10  # 9 jobs + rejection count
    assert report.trace[-1] == "rejections=1"
    assert any("admission=rejected" in line for line in report.trace)
    assert all("checksum=" in line for line in report.trace
               if "state=done" in line)


# -------------------------------------------------------------- determinism

@pytest.mark.parametrize("workers", [2, 4])
def test_trace_bit_identical_across_workers(make_service, workers):
    base = run_demo(make_service, workers=1)
    other = run_demo(make_service, workers=workers)
    assert other.trace == base.trace


def test_trace_bit_identical_under_power_loss(make_service):
    base = run_demo(make_service)
    crashed = run_demo(make_service, crashes=CrashPlan.parse("seed=3,ops=40"))
    assert crashed.power_losses > 0      # the plan actually fired
    assert crashed.remounts > 0
    assert crashed.trace == base.trace   # ...and left no trace of itself


def test_trace_bit_identical_under_power_loss_with_workers(make_service):
    base = run_demo(make_service)
    crashed = run_demo(make_service, workers=2,
                       crashes=CrashPlan.parse("at=300/1500/4000"))
    assert crashed.power_losses > 0
    assert crashed.trace == base.trace


def test_adaptive_mode_completes(make_service):
    report = run_demo(make_service, mode="adaptive")
    assert len(report.jobs_by_state("done")) == 8
    assert report.rejections == 1


def test_rerun_is_reproducible(make_service):
    assert run_demo(make_service).trace == run_demo(make_service).trace


# ---------------------------------------------------------------- durability

def test_job_state_survives_in_journal(make_service):
    service = make_service(quotas=demo_quotas())
    service.submit_all(demo_workload())
    report = service.run()
    store = service.system.store
    assert store.exists(JOURNAL_FILE)
    import json

    state = json.loads(bytes(store.read(JOURNAL_FILE)))
    assert state["round"] == report.rounds
    assert len(state["jobs"]) == 9
    done = [j for j in state["jobs"] if j["state"] == "done"]
    assert len(done) == 8


def test_analytics_values_durable_and_crash_invariant(make_service):
    def values_of(report, job_id):
        job = next(j for j in report.jobs if j.job_id == job_id)
        return job.result["checksum"], job.result["values_file"]

    base = run_demo(make_service)
    crashed = run_demo(make_service,
                       crashes=CrashPlan.parse("at=500/2500/6000"))
    assert crashed.power_losses > 0
    for job_id in ("svc-1", "svc-2"):
        assert values_of(base, job_id) == values_of(crashed, job_id)


def test_vstate_reads_finished_run(make_service, service_graph):
    service = make_service()
    pr = service.submit("t0:pagerank:iters=1")
    service.submit(JobSpec(tenant="t0", kind="vstate",
                           params={"ref": pr, "v": [0, 1, 2]}))
    report = service.run()
    vstate = report.jobs[1]
    assert vstate.state == "done"
    assert vstate.result["vertices"] == [0, 1, 2]
    assert len(vstate.result["values"]) == 3
    # Cross-check against the durable values file.
    ref = report.jobs[0]
    values = service.system.store.read_array(
        ref.result["values_file"], np.dtype(ref.result["dtype"]))
    assert vstate.result["values"] == [float(values[v]) for v in (0, 1, 2)]


def test_vstate_unknown_ref_fails(make_service):
    service = make_service()
    service.submit("t0:vstate:ref=nope,v=0")
    report = service.run()
    job = report.jobs[0]
    assert job.state == "failed"
    assert "unknown ref" in job.reason


def test_vstate_on_rejected_ref_fails(make_service):
    service = make_service(quotas={"t0": TenantQuota(max_running=1,
                                                     max_queued=0)})
    service.submit("t0:pagerank:iters=1")
    service.submit("t0:cc")        # admitted? no — t0 already running
    service.submit("t0:vstate:ref=svc-2,v=0")
    report = service.run()
    assert report.jobs[1].state == "rejected"
    vstate = report.jobs[2]
    assert vstate.state == "failed"
    assert "rejected" in vstate.reason


# ------------------------------------------------------------------ arrivals

def test_arrival_rounds_defer_admission(make_service):
    service = make_service(quotas={"t0": TenantQuota(max_running=1,
                                                     max_queued=0)})
    service.submit("t0:pagerank:iters=1")
    # Arrives only after the first run has finished: admitted, not rejected.
    service.submit("t0:bfs@10")
    report = service.run()
    assert [j.state for j in report.jobs] == ["done", "done"]
    assert report.rejections == 0


def test_queued_job_runs_after_release(make_service):
    service = make_service(quotas={"t0": TenantQuota(max_running=1,
                                                     max_queued=1)})
    service.submit("t0:pagerank:iters=1")
    service.submit("t0:bfs")
    report = service.run()
    states = {j.job_id: (j.admission, j.state) for j in report.jobs}
    assert states["svc-1"] == ("admitted", "done")
    assert states["svc-2"] == ("queued", "done")


def test_point_quota_rejection(make_service):
    service = make_service(quotas={"t0": TenantQuota(max_point=1)})
    service.submit("t0:neighborhood:v=0,depth=1")
    service.submit("t0:neighborhood:v=1,depth=1")
    report = service.run()
    assert [j.state for j in report.jobs] == ["done", "rejected"]
    assert "quota" in report.jobs[1].reason


# ------------------------------------------------------------------- parsing

def test_parse_job_spec_forms():
    spec = parse_job_spec("t0:pagerank:iters=3")
    assert spec.tenant == "t0" and spec.kind == "pagerank"
    assert spec.params == {"iters": 3} and spec.at_round == 0
    spec = parse_job_spec("t1:vstate:ref=svc-2,v=0+3+7@4")
    assert spec.params == {"ref": "svc-2", "v": [0, 3, 7]}
    assert spec.at_round == 4


@pytest.mark.parametrize("bad", [
    "noseparator", "t0:unknownkind", "t0:bfs@x", "t0:bfs:rootless",
    "bad tenant:bfs",
])
def test_parse_job_spec_rejects(bad):
    with pytest.raises(ValueError):
        parse_job_spec(bad)


def test_namespaced_program_names_are_scoped():
    from repro.algorithms.pagerank import PageRankProgram

    p = PageRankProgram(8).namespaced("svc-3")
    assert p.name.endswith("@svc-3")
    with pytest.raises(ValueError):
        PageRankProgram(8).namespaced("bad label")


def test_service_for_wires_through_config(make_service):
    service = make_service()
    assert isinstance(service, GraphService)
    assert service.system.durable
