"""Shared fixtures for the service-layer suite."""

import itertools

import pytest

from repro.engine.config import make_system
from repro.harness import load_dataset

SCALE = 2.0 ** -16


def pin_name_counters():
    """Pin the global file-name counters so cross-run comparisons see the
    same on-flash names regardless of test execution order."""
    import repro.core.dense as dense_mod
    import repro.core.external as external_mod
    import repro.graph.vertexdata as vertexdata_mod

    external_mod._run_counter = itertools.count(1000)
    vertexdata_mod._va_counter = itertools.count(1000)
    dense_mod._dense_counter = itertools.count(1000)


@pytest.fixture()
def service_graph():
    return load_dataset("twitter", SCALE, seed=1)


@pytest.fixture()
def make_service(service_graph):
    """Factory: a fresh durable system + service over the shared graph."""

    def build(quotas=None, crashes=None, faults=None, workers=None,
              mode=None, config=None):
        pin_name_counters()
        system = make_system("grafboost", SCALE,
                             num_vertices_hint=service_graph.num_vertices,
                             durable=True, crashes=crashes, faults=faults,
                             workers=workers, mode=mode)
        flash_graph = system.load_graph(service_graph)
        return system.service_for(flash_graph, service_graph.num_vertices,
                                  config=config, quotas=quotas)

    return build
